//! Cross-crate integration: every shipped data type runs on the full
//! simulated cluster, converges, and ends in a state satisfying its
//! invariant; conflict-free types additionally run under the MSG
//! baseline and the Mu-SMR baseline.

use hamband::core::coord::CoordSpec;
use hamband::core::object::{ObjectSpec, WorkloadSupport};
use hamband::core::wire::Wire;
use hamband::runtime::{RunConfig, Runner, System, WorkloadSpec};
use hamband::types::{
    Account, Cart, Counter, Courseware, GSet, LwwRegister, Movie, OrSet, Project,
};

fn hamband_converges<O>(spec: &O, coord: &CoordSpec, nodes: usize)
where
    O: WorkloadSupport + Clone + Send,
    O::Update: Wire + Send,
    O::State: Send,
{
    let run = RunConfig::new(nodes, WorkloadSpec::ops(600).with_update_ratio(0.4).with_seed(0xc0de));
    let rep = Runner::new(System::Hamband, run).run(spec, coord).report;
    assert!(rep.converged, "{} did not converge: {rep}", spec.name());
    assert!(rep.total_updates > 0, "{} acked no updates", spec.name());
}

fn smr_converges<O>(spec: &O, nodes: usize)
where
    O: WorkloadSupport + Clone + Send,
    O::Update: Wire + Send,
    O::State: Send,
{
    let run = RunConfig::new(nodes, WorkloadSpec::ops(600).with_update_ratio(0.4).with_seed(0xc0de));
    let rep = Runner::new(System::MuSmr, run)
        .run(spec, &CoordSpec::builder(spec.method_count()).build())
        .report;
    assert!(rep.converged, "{} SMR did not converge: {rep}", spec.name());
}

fn msg_converges<O>(spec: &O, coord: &CoordSpec, nodes: usize)
where
    O: WorkloadSupport + Clone + Send,
    O::Update: Wire + Send,
    O::State: Send,
{
    let run = RunConfig::new(nodes, WorkloadSpec::ops(600).with_update_ratio(0.4).with_seed(0xc0de));
    let rep = Runner::new(System::Msg, run).run(spec, coord).report;
    assert!(rep.converged, "{} MSG did not converge: {rep}", spec.name());
}

#[test]
fn counter_all_systems() {
    let c = Counter::default();
    hamband_converges(&c, &c.coord_spec(), 4);
    smr_converges(&c, 4);
    msg_converges(&c, &c.coord_spec(), 4);
}

#[test]
fn lww_all_systems() {
    let l = LwwRegister::default();
    hamband_converges(&l, &l.coord_spec(), 4);
    smr_converges(&l, 4);
    msg_converges(&l, &l.coord_spec(), 4);
}

#[test]
fn gset_both_coordinations() {
    let g = GSet::default();
    hamband_converges(&g, &g.coord_spec(), 4);
    hamband_converges(&g, &g.coord_spec_buffered(), 4);
    msg_converges(&g, &g.coord_spec_buffered(), 4);
}

#[test]
fn orset_and_cart() {
    let o = OrSet::default();
    hamband_converges(&o, &o.coord_spec(), 5);
    msg_converges(&o, &o.coord_spec(), 5);
    let cart = Cart::default();
    hamband_converges(&cart, &cart.coord_spec(), 5);
    msg_converges(&cart, &cart.coord_spec(), 5);
}

#[test]
fn account_hamband_and_smr() {
    let a = Account::new(50);
    hamband_converges(&a, &a.coord_spec(), 3);
    smr_converges(&a, 3);
}

#[test]
fn relational_schemata() {
    let p = Project::default();
    hamband_converges(&p, &p.coord_spec(), 4);
    let m = Movie::default();
    hamband_converges(&m, &m.coord_spec(), 4);
    let cw = Courseware::default();
    hamband_converges(&cw, &cw.coord_spec(), 4);
    smr_converges(&cw, 4);
}

#[test]
fn seven_node_cluster_like_the_paper() {
    // The paper's testbed size.
    let c = Counter::default();
    hamband_converges(&c, &c.coord_spec(), 7);
    let cw = Courseware::default();
    hamband_converges(&cw, &cw.coord_spec(), 7);
}

#[test]
fn final_states_satisfy_invariants() {
    use hamband::runtime::{HambandNode, Layout, RuntimeConfig};
    use hamband::sim::{LatencyModel, NodeId, SimDuration, Simulator};

    let p = Project::default();
    let coord = p.coord_spec();
    let n = 4;
    let workload = WorkloadSpec::ops(800).with_update_ratio(0.5).with_seed(3);
    let cfg = RuntimeConfig::default();
    let mut sim: Simulator<HambandNode<Project>> =
        Simulator::new(n, LatencyModel::default(), 9);
    let layout = Layout::install(&mut sim, &coord, &cfg);
    let leaders = coord.default_leaders(n);
    {
        let coord = coord.clone();
        let p2 = p.clone();
        sim.set_apps(move |id| {
            HambandNode::new(
                p2.clone(),
                coord.clone(),
                cfg.clone(),
                layout.clone(),
                id,
                n,
                &leaders,
                workload.clone(),
            )
        });
    }
    for _ in 0..200 {
        sim.run_for(SimDuration::micros(50));
        if (0..n).all(|i| sim.app(NodeId(i)).workload_done()) {
            break;
        }
    }
    sim.run_for(SimDuration::millis(1));
    for i in 0..n {
        let state = sim.app(NodeId(i)).state_snapshot();
        assert!(
            p.invariant(&state),
            "referential integrity violated at node {i}: {state:?}"
        );
    }
}
