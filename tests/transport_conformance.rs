//! Cross-backend transport conformance suite.
//!
//! The same `HambandNode` state machine runs over three transports
//! (simulator, loopback, threaded); the simulator's behaviour is
//! pinned elsewhere (golden trace fingerprints, chaos campaigns), so
//! this suite pins the other two: for each object shape — reducible
//! (Counter), conflicting (Bank), buffered conflict-free with
//! state-aware updates (OrSet) — and each cluster size 3..=5, a run
//! must
//!
//! 1. **converge**: every replica ends with the same applied-call
//!    count, the same per-(node, method) applied map, and the same
//!    state snapshot;
//! 2. **commit before ack**: nothing was aborted, and every update
//!    acknowledged to a client session is applied on *every* replica
//!    (cluster-wide acked sum == each node's applied count) — an ack
//!    for an update some replica never applies is precisely the
//!    durability lie the protocol's commit rule exists to prevent.
//!
//! The threaded runs execute on real OS threads over shared atomic
//! memory, so under `-Zsanitizer=thread` this suite doubles as the
//! data-race gate for the `threaded` backend's word-level publication
//! discipline.
//!
//! Leadership failover is exercised on the loopback backend (the
//! threaded backend injects no faults): suspend the heartbeat of a
//! group leader mid-run and the survivors must elect a replacement
//! and finish without it.

use std::time::Duration;

use hamband_core::coord::CoordSpec;
use hamband_core::counts::CountMap;
use hamband_core::object::WorkloadSupport;
use hamband_core::wire::Wire;
use hamband_runtime::{
    HambandNode, LoopbackCluster, RuntimeConfig, ThreadedCluster, WorkloadSpec,
};
use hamband_types::{Bank, Counter, OrSet};
use rdma_sim::{AppFault, SimDuration, SimTime};

/// What the conformance checks need from one finished replica.
struct NodeObs<S> {
    applied: u64,
    map: CountMap,
    state: S,
    acked: u64,
    aborted: u64,
    status: String,
}

fn observe<O>(node: &HambandNode<O>) -> NodeObs<O::State>
where
    O: WorkloadSupport,
    O::Update: Wire,
{
    let sessions = node.session_stats();
    NodeObs {
        applied: node.applied_updates(),
        map: node.applied_map().clone(),
        state: node.state_snapshot(),
        acked: sessions.iter().map(|s| s.acked).sum(),
        aborted: sessions.iter().map(|s| s.aborted).sum(),
        status: node.status().to_string(),
    }
}

/// The two conformance properties over a converged, fault-free run.
fn check<S: PartialEq + std::fmt::Debug>(obs: &[NodeObs<S>], what: &str) {
    let cluster_acked: u64 = obs.iter().map(|o| o.acked).sum();
    assert!(cluster_acked > 0, "{what}: no update was ever acknowledged");
    for (i, o) in obs.iter().enumerate() {
        assert_eq!(
            o.applied, obs[0].applied,
            "{what}: node {i} applied-count diverges ({} | {})",
            o.status, obs[0].status
        );
        assert_eq!(o.map, obs[0].map, "{what}: node {i} applied map diverges");
        assert!(o.state == obs[0].state, "{what}: node {i} state snapshot diverges");
        assert_eq!(o.aborted, 0, "{what}: node {i} aborted updates in a fault-free run");
        assert_eq!(
            o.applied, cluster_acked,
            "{what}: node {i} applied {} updates but clients were acked {}",
            o.applied, cluster_acked
        );
    }
}

fn run_loopback<O>(spec: &O, coord: &CoordSpec, n: usize, workload: WorkloadSpec, what: &str)
where
    O: WorkloadSupport + Clone,
    O::Update: Wire,
{
    let mut cluster = LoopbackCluster::new(n, spec, coord, RuntimeConfig::default(), workload);
    assert!(
        cluster.run_to_convergence(SimDuration::millis(500)),
        "{what}: loopback cluster did not converge: {}",
        (0..n).map(|i| cluster.node(i).status().to_string()).collect::<Vec<_>>().join(" | "),
    );
    let obs: Vec<_> = (0..n).map(|i| observe(cluster.node(i))).collect();
    check(&obs, what);
}

fn run_threaded<O>(spec: &O, coord: &CoordSpec, n: usize, workload: WorkloadSpec, what: &str)
where
    O: WorkloadSupport + Clone + Send,
    O::Update: Wire + Send,
    O::State: Send,
{
    let mut cluster = ThreadedCluster::new(n, spec, coord, RuntimeConfig::default(), workload);
    assert!(
        cluster.run_to_convergence(Duration::from_secs(60)),
        "{what}: threaded cluster did not converge: {}",
        (0..n).map(|i| cluster.node(i).status().to_string()).collect::<Vec<_>>().join(" | "),
    );
    let obs: Vec<_> = (0..n).map(|i| observe(cluster.node(i))).collect();
    check(&obs, what);
}

/// One object across both backends and cluster sizes 3..=5.
fn conform<O>(spec: &O, coord: &CoordSpec, name: &str)
where
    O: WorkloadSupport + Clone + Send,
    O::Update: Wire + Send,
    O::State: Send,
{
    for n in 3..=5 {
        let workload = WorkloadSpec::ops(240).with_update_ratio(0.6).with_seed(90 + n as u64);
        run_loopback(spec, coord, n, workload.clone(), &format!("{name}/loopback/n={n}"));
        run_threaded(spec, coord, n, workload, &format!("{name}/threaded/n={n}"));
    }
}

#[test]
fn counter_conforms_across_backends() {
    let c = Counter::default();
    conform(&c, &c.coord_spec(), "counter");
}

#[test]
fn bank_conforms_across_backends() {
    let b = Bank::default();
    conform(&b, &b.coord_spec(), "bank");
}

#[test]
fn orset_conforms_across_backends() {
    let o = OrSet::default();
    conform(&o, &o.coord_spec(), "orset");
}

/// Multi-session ingress over both backends: flat-combining must not
/// change what clients were promised (ack ⇒ applied everywhere).
#[test]
fn sessions_conform_across_backends() {
    let c = Counter::default();
    let coord = c.coord_spec();
    let workload =
        WorkloadSpec::ops(400).with_update_ratio(0.5).with_sessions(40).with_seed(17);
    run_loopback(&c, &coord, 3, workload.clone(), "counter-sessions/loopback");
    run_threaded(&c, &coord, 3, workload, "counter-sessions/threaded");
}

/// Suspend a group leader's heartbeat mid-run over loopback: the
/// survivors must suspect it, elect a replacement, and finish the
/// workload without it (§5's failure-injection method, previously
/// exercised only under the simulator).
#[test]
fn election_under_loopback_replaces_suspended_leader() {
    let b = Bank::default();
    let coord = b.coord_spec();
    let n = 3;
    let workload = WorkloadSpec::ops(300).with_update_ratio(0.8).with_seed(11);
    let mut cluster = LoopbackCluster::new(n, &b, &coord, RuntimeConfig::default(), workload);

    // Let leadership establish, then read group 0's leader.
    cluster.step_until(SimTime(50_000));
    let old = cluster.node(0).leader_view(0);
    cluster.inject_fault(old.index(), AppFault::SuspendHeartbeat);

    // Plenty of virtual time: suspicion, election, ring catch-up, and
    // the survivors' (plus the dead node's adopted) quota.
    cluster.step_until(SimTime(200_000_000));

    let survivors: Vec<usize> = (0..n).filter(|&i| i != old.index()).collect();
    for &i in &survivors {
        let view = cluster.node(i).leader_view(0);
        assert_ne!(view, old, "node {i} still believes the suspended leader leads group 0");
        assert!(!cluster.node(i).is_halted(), "survivor {i} halted");
        assert!(
            cluster.node(i).workload_done(),
            "survivor {i} never finished: {}",
            cluster.node(i).status()
        );
    }
    let s0 = cluster.node(survivors[0]).state_snapshot();
    let m0 = cluster.node(survivors[0]).applied_map().clone();
    for &i in &survivors[1..] {
        assert!(cluster.node(i).state_snapshot() == s0, "survivor {i} state diverges");
        assert_eq!(*cluster.node(i).applied_map(), m0, "survivor {i} applied map diverges");
    }
}
