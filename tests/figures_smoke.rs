//! Scaled-down smoke runs of the figure harness: the qualitative shape
//! checks of the paper's evaluation must hold even at small operation
//! counts. (The full sweeps live in `cargo run -p hamband-bench --bin
//! all_figures`; these cover the cheaper figures.)

use hamband_bench::{fig10, fig11, fig13, headline, ExpOptions};

fn small() -> ExpOptions {
    ExpOptions { ops: 400, seed: 0x51_0e }
}

#[test]
fn fig10_shape_holds() {
    let out = fig10(&small());
    assert!(out.all_hold(), "{out}");
}

#[test]
fn fig11_shape_holds() {
    let out = fig11(&small());
    assert!(out.all_hold(), "{out}");
}

#[test]
fn fig13_shape_holds() {
    let out = fig13(&small());
    for c in &out.checks {
        // The throughput-magnitude checks are volume-sensitive; at
        // smoke scale require only convergence and the qualitative
        // leader/follower ordering.
        if c.claim.contains("converged") || c.claim.contains("register_students") {
            assert!(c.holds, "{out}");
        }
    }
}

#[test]
fn headline_shape_holds() {
    let out = headline(&small());
    assert!(out.all_hold(), "{out}");
}
