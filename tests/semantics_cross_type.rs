//! Cross-type semantics checks: for every shipped data type, random
//! executions of the concrete RDMA semantics (Fig. 7) refine the
//! abstract WRDT semantics (Fig. 5) and preserve integrity and
//! convergence — the executable counterpart of the paper's Lemma 3 and
//! its corollaries, exercised beyond the bank-account running example.

use hamband::core::coord::{CoordSpec, MethodCategory};
use hamband::core::ids::{GroupId, MethodId, Pid};
use hamband::core::object::WorkloadSupport;
use hamband::core::rdma_sem::RdmaWrdt;
use hamband::core::refinement::replay_and_check;
use hamband::types::{Cart, Counter, Courseware, GSet, Movie, OrSet, Project};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Drive a random well-formed execution of the concrete semantics:
/// calls generated from each process's *current* state (as a real
/// client would), buffers drained at random points, then fully drained;
/// finally replay the trace abstractly.
fn random_run_refines<O>(spec: &O, coord: &CoordSpec, n: usize, steps: usize, seed: u64)
where
    O: WorkloadSupport,
{
    let mut rng = StdRng::seed_from_u64(seed);
    let mut k = RdmaWrdt::new(spec, coord, n);
    let mut seq = 0u64;
    for _ in 0..steps {
        let p = rng.gen_range(0..n);
        let m = MethodId(rng.gen_range(0..coord.method_count()));
        // Conflicting calls are issued at the group leader against the
        // leader's state (client redirection).
        let (issuer, state) = match coord.category(m) {
            MethodCategory::Conflicting { sync_group } => {
                let l = k.leader(sync_group);
                (l.index(), k.current_state(l))
            }
            _ => (p, k.current_state(Pid(p))),
        };
        if let Some(call) = spec.gen_update(&state, issuer, seq, m, &mut rng) {
            seq += 1;
            let _ = k.issue(issuer, call);
        }
        // Occasionally apply some buffered calls.
        if rng.gen_bool(0.4) {
            let q = Pid(rng.gen_range(0..n));
            let src = Pid(rng.gen_range(0..n));
            let _ = k.free_app(q, src);
            if !coord.sync_groups().is_empty() {
                let g = GroupId(rng.gen_range(0..coord.sync_groups().len()));
                let _ = k.conf_app(q, g);
            }
        }
        assert!(k.check_integrity(), "{}: integrity violated", spec.name());
    }
    k.drain();
    assert!(k.buffers_empty(), "{}: buffers drained", spec.name());
    assert!(k.check_convergence(), "{}: convergence violated", spec.name());
    let w = replay_and_check(spec, coord, n, k.trace())
        .unwrap_or_else(|e| panic!("{}: refinement failed: {e}", spec.name()));
    for p in 0..n {
        assert_eq!(
            *w.state(Pid(p)),
            k.current_state(Pid(p)),
            "{}: abstract/concrete state mismatch at p{p}",
            spec.name()
        );
    }
}

#[test]
fn counter_refines() {
    let c = Counter::default();
    for seed in 0..5 {
        random_run_refines(&c, &c.coord_spec(), 3, 80, seed);
    }
}

#[test]
fn gset_refines_in_both_coordinations() {
    let g = GSet::default();
    for seed in 0..3 {
        random_run_refines(&g, &g.coord_spec(), 3, 60, seed);
        random_run_refines(&g, &g.coord_spec_buffered(), 3, 60, 100 + seed);
    }
}

#[test]
fn orset_refines() {
    let o = OrSet::default();
    for seed in 0..5 {
        random_run_refines(&o, &o.coord_spec(), 4, 80, seed);
    }
}

#[test]
fn cart_refines() {
    let cart = Cart::default();
    for seed in 0..5 {
        random_run_refines(&cart, &cart.coord_spec(), 3, 80, seed);
    }
}

#[test]
fn project_refines() {
    let p = Project::default();
    for seed in 0..5 {
        random_run_refines(&p, &p.coord_spec(), 4, 100, seed);
    }
}

#[test]
fn movie_refines_with_two_groups() {
    let m = Movie::default();
    for seed in 0..5 {
        random_run_refines(&m, &m.coord_spec(), 4, 100, seed);
    }
}

#[test]
fn courseware_refines() {
    let cw = Courseware::default();
    for seed in 0..5 {
        random_run_refines(&cw, &cw.coord_spec(), 4, 100, seed);
    }
}
