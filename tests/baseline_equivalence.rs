//! Cross-system equivalence: the replication systems implement the
//! *same object*. For a state-oblivious workload (the Counter: its
//! generator never consults replica state), the per-node call streams
//! are identical between Hamband and the MSG baseline (same driver
//! structure and seeds), so both must converge to the *same* final
//! value. The Mu-SMR baseline reshapes the workload (all updates
//! become one global conflicting quota at the leader), so for it we
//! assert convergence and the exact acknowledged update count instead.

use hamband::core::coord::CoordSpec;
use hamband::core::ids::Pid;
use hamband::runtime::{
    HambandNode, Layout, MsgCrdtNode, RunConfig, Runner, RuntimeConfig, System, WorkloadSpec,
};
use hamband::sim::{LatencyModel, NodeId, SimDuration, Simulator};
use hamband::types::Counter;

const N: usize = 4;
const OPS: u64 = 800;
const SEED: u64 = 0x3131;

fn workload() -> WorkloadSpec {
    WorkloadSpec::ops(OPS).with_update_ratio(0.5).with_seed(SEED)
}

/// The complete conflict relation over one method (the SMR special
/// case, built explicitly so the test does not depend on harness
/// internals).
fn complete_coord() -> CoordSpec {
    CoordSpec::builder(1).conflict(0, 0).build()
}

fn run_hamband_like(coord: CoordSpec) -> i64 {
    let c = Counter::default();
    let cfg = RuntimeConfig::default();
    let mut sim: Simulator<HambandNode<Counter>> =
        Simulator::new(N, LatencyModel::default(), SEED ^ 0xfab);
    let layout = Layout::install(&mut sim, &coord, &cfg);
    let leaders: Vec<Pid> = coord.default_leaders(N);
    {
        let coord = coord.clone();
        sim.set_apps(move |id| {
            HambandNode::new(
                c.clone(),
                coord.clone(),
                cfg.clone(),
                layout.clone(),
                id,
                N,
                &leaders,
                workload(),
            )
        });
    }
    for _ in 0..1_000 {
        sim.run_for(SimDuration::micros(50));
        let done = (0..N).all(|i| sim.app(NodeId(i)).workload_done())
            && (0..N).all(|i| sim.app(NodeId(i)).applied_map() == sim.app(NodeId(0)).applied_map());
        if done {
            break;
        }
    }
    sim.run_for(SimDuration::millis(1));
    let s0 = sim.app(NodeId(0)).state_snapshot();
    for i in 1..N {
        assert_eq!(sim.app(NodeId(i)).state_snapshot(), s0, "intra-cluster divergence");
    }
    s0
}

fn run_msg_like() -> i64 {
    let c = Counter::default();
    let coord = c.coord_spec();
    let mut sim: Simulator<MsgCrdtNode<Counter>> =
        Simulator::new(N, LatencyModel::default(), SEED ^ 0xfab);
    {
        let coord = coord.clone();
        sim.set_apps(move |id| MsgCrdtNode::new(c.clone(), coord.clone(), id, N, workload()));
    }
    for _ in 0..4_000 {
        sim.run_for(SimDuration::micros(50));
        let done = (0..N).all(|i| sim.app(NodeId(i)).workload_done())
            && (0..N).all(|i| sim.app(NodeId(i)).applied_map() == sim.app(NodeId(0)).applied_map());
        if done {
            break;
        }
    }
    sim.run_for(SimDuration::millis(1));
    let s0 = sim.app(NodeId(0)).state_snapshot();
    for i in 1..N {
        assert_eq!(sim.app(NodeId(i)).state_snapshot(), s0, "intra-cluster divergence");
    }
    s0
}

#[test]
fn hamband_and_msg_compute_the_same_counter() {
    let c = Counter::default();
    let hamband = run_hamband_like(c.coord_spec());
    let msg = run_msg_like();
    assert_eq!(hamband, msg, "hamband vs msg");
    assert_ne!(hamband, 0, "the workload actually did something");
}

#[test]
fn smr_converges_with_full_quota() {
    // Under the complete conflict relation the update quota is global
    // (consumed at the leader); the value differs from Hamband's
    // per-node streams but the count and convergence must not.
    let smr = run_hamband_like(complete_coord());
    let again = run_hamband_like(complete_coord());
    assert_eq!(smr, again, "SMR runs are deterministic");
}

/// The same equivalence through the measurement harness: acknowledged
/// update counts agree across systems for the same workload.
#[test]
fn harnessed_update_counts_agree() {
    let c = Counter::default();
    let coord = c.coord_spec();
    let rc = RunConfig::new(N, workload());
    let hb = Runner::new(System::Hamband, rc.clone()).run(&c, &coord).report;
    let smr = Runner::new(System::MuSmr, rc.clone()).run(&c, &coord).report;
    let msg = Runner::new(System::Msg, rc).run(&c, &coord).report;
    assert!(hb.converged && smr.converged && msg.converged);
    assert_eq!(hb.total_updates, smr.total_updates);
    assert_eq!(hb.total_updates, msg.total_updates);
    assert_eq!(hb.total_calls, msg.total_calls);
}
