//! Small-scope model checking across data types: the paper's lemmas
//! verified over *all* interleavings of small scripted executions, for
//! representatives of each method-category combination.

use hamband::core::explore::{explore_abstract, explore_rdma, ExploreConfig};
use hamband::types::bank::BankUpdate;
use hamband::types::cart::CartUpdate;
use hamband::types::counter::CounterUpdate;
use hamband::types::courseware::CoursewareUpdate;
use hamband::types::movie::MovieUpdate;
use hamband::types::orset::OrSetUpdate;
use hamband::types::{Bank, Cart, Counter, Courseware, Movie, OrSet};

fn cfg() -> ExploreConfig {
    ExploreConfig { max_states: 300_000 }
}

#[test]
fn counter_exhaustive() {
    let c = Counter::default();
    let coord = c.coord_spec();
    let scripts = vec![
        vec![CounterUpdate::Add(3), CounterUpdate::Add(-1)],
        vec![CounterUpdate::Add(7)],
        vec![CounterUpdate::Add(-5)],
    ];
    let abs = explore_abstract(&c, &coord, &scripts, &cfg()).expect("abstract lemmas");
    assert!(abs.exhaustive);
    let conc = explore_rdma(&c, &coord, &scripts, &cfg()).expect("concrete corollaries");
    assert!(conc.exhaustive);
}

#[test]
fn orset_causal_dependency_exhaustive() {
    let o = OrSet::default();
    let coord = o.coord_spec();
    // p0 adds then removes its own tag; p1 adds concurrently.
    let scripts = vec![
        vec![
            OrSetUpdate::Add { element: 1, tag: (0, 0) },
            OrSetUpdate::Remove { element: 1, tags: vec![(0, 0)] },
        ],
        vec![OrSetUpdate::Add { element: 1, tag: (1, 0) }],
    ];
    let abs = explore_abstract(&o, &coord, &scripts, &cfg()).expect("abstract lemmas");
    assert!(abs.exhaustive);
    let conc = explore_rdma(&o, &coord, &scripts, &cfg()).expect("concrete corollaries");
    assert!(conc.exhaustive, "{conc:?}");
}

#[test]
fn cart_exhaustive() {
    let cart = Cart::default();
    let coord = cart.coord_spec();
    let scripts = vec![
        vec![CartUpdate::Add { item: 1, qty: 2 }, CartUpdate::Remove { item: 1, qty: 1 }],
        vec![CartUpdate::Add { item: 1, qty: 3 }],
    ];
    let conc = explore_rdma(&cart, &coord, &scripts, &cfg()).expect("concrete corollaries");
    assert!(conc.exhaustive);
}

#[test]
fn movie_two_groups_exhaustive() {
    let m = Movie::default();
    let coord = m.coord_spec();
    // Conflicting calls on both relations, plus racing deletes.
    let scripts = vec![
        vec![MovieUpdate::AddCustomer(1), MovieUpdate::AddMovie(9)],
        vec![MovieUpdate::DeleteCustomer(1)],
        vec![MovieUpdate::DeleteMovie(9)],
    ];
    let conc = explore_rdma(&m, &coord, &scripts, &cfg()).expect("concrete corollaries");
    assert!(conc.exhaustive, "{conc:?}");
}

#[test]
fn courseware_all_categories_exhaustive() {
    let cw = Courseware::default();
    let coord = cw.coord_spec();
    let scripts = vec![
        vec![CoursewareUpdate::AddCourse(1), CoursewareUpdate::Enroll(7, 1)],
        vec![CoursewareUpdate::RegisterStudents(vec![7])],
    ];
    let conc = explore_rdma(&cw, &coord, &scripts, &cfg()).expect("concrete corollaries");
    assert!(conc.exhaustive, "{conc:?}");
}

#[test]
fn bank_dependent_free_method_exhaustive() {
    let bank = Bank::default();
    let coord = bank.coord_spec();
    // The §2 scenario: open at p0, deposit at p0 (depends on the open),
    // concurrent withdraw redirected to the leader.
    let scripts = vec![
        vec![
            BankUpdate::OpenAccounts(vec![4]),
            BankUpdate::Deposit(4, 10),
            BankUpdate::Withdraw(4, 6),
        ],
        vec![BankUpdate::Deposit(4, 3)],
    ];
    let conc = explore_rdma(&bank, &coord, &scripts, &cfg()).expect("concrete corollaries");
    assert!(conc.exhaustive, "{conc:?}");
    let abs = explore_abstract(&bank, &coord, &scripts, &cfg()).expect("abstract lemmas");
    assert!(abs.exhaustive, "{abs:?}");
}
