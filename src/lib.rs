//! # Hamband: RDMA Replicated Data Types
//!
//! A comprehensive Rust reproduction of *Hamband: RDMA Replicated Data
//! Types* (Houshmand, Saberlatibari, Lesani; PLDI 2022) — the first
//! hybrid replicated data types for the RDMA network model.
//!
//! This facade crate re-exports the whole system:
//!
//! * [`core`] ([`hamband_core`]) — the object model, coordination
//!   relations, method categories, and both operational semantics
//!   (abstract WRDT, Fig. 5; concrete RDMA WRDT, Fig. 7), with
//!   executable refinement, integrity, and convergence checking.
//! * [`sim`] ([`rdma_sim`]) — a deterministic discrete-event simulator
//!   of an RDMA Reliable Connection cluster (one-sided verbs, registered
//!   memory, write permissions, latency model, fault injection), the
//!   substrate standing in for the paper's InfiniBand testbed.
//! * [`runtime`] ([`hamband_runtime`]) — the Hamband runtime: wire
//!   codec, single-writer ring buffers with canary bits, summary slots,
//!   RDMA reliable broadcast, Mu-style consensus, the replica node, the
//!   MSG-CRDT and Mu-SMR baselines, and the workload driver.
//! * [`types`] ([`hamband_types`]) — the evaluated data types: Counter,
//!   LWW register, GSet, ORSet, Shopping cart, Bank account, Project
//!   management, Movie, and Courseware.
//!
//! See `examples/quickstart.rs` for an end-to-end tour.

pub use hamband_core as core;
pub use hamband_runtime as runtime;
pub use hamband_types as types;
pub use rdma_sim as sim;
