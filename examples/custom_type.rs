//! Building your own replicated data type: a warehouse inventory with
//! a never-negative stock invariant.
//!
//! This walks the full downstream-user path: implement [`ObjectSpec`]
//! (executable definition) plus the sampling/workload traits, let the
//! bounded analyzer *infer* the coordination relations, check them,
//! and run the type on a simulated RDMA cluster.
//!
//! ```sh
//! cargo run --example custom_type
//! ```

use std::collections::BTreeMap;

use hamband::core::analysis::{infer, validate, AnalysisConfig};
use hamband::core::ids::MethodId;
use hamband::core::object::{ObjectSpec, SpecSampler, WorkloadSupport};
use hamband::core::wire::{DecodeError, Reader, Wire, Writer};
use hamband::runtime::{RunConfig, Runner, System};
use hamband::runtime::WorkloadSpec;
use rand::rngs::StdRng;
use rand::Rng;

const RESTOCK: MethodId = MethodId(0);
const SHIP: MethodId = MethodId(1);

/// Stock per item; the invariant keeps every count non-negative.
type Stock = BTreeMap<u64, i64>;

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum InventoryUpdate {
    /// Restock a batch of items — always safe, and two batches merge
    /// into one by adding counts, so `restock` will be *reducible*.
    Restock(Vec<(u64, u32)>),
    /// Ship units of one item — two concurrent shipments can oversell,
    /// so `ship` will be *conflicting*; and a shipment covered by a
    /// recent restock must not overtake it, so `ship` *depends on*
    /// `restock`.
    Ship(u64, u32),
}

#[derive(Debug, Clone, Copy)]
enum InventoryQuery {
    OnHand(u64),
}

#[derive(Debug, Clone)]
struct Inventory {
    items: u64,
}

impl ObjectSpec for Inventory {
    type State = Stock;
    type Update = InventoryUpdate;
    type Query = InventoryQuery;
    type Reply = i64;

    fn name(&self) -> &str {
        "inventory"
    }

    fn initial(&self) -> Stock {
        Stock::new()
    }

    fn invariant(&self, s: &Stock) -> bool {
        s.values().all(|&v| v >= 0)
    }

    fn apply(&self, s: &Stock, call: &InventoryUpdate) -> Stock {
        let mut s = s.clone();
        match call {
            InventoryUpdate::Restock(batch) => {
                for &(item, n) in batch {
                    *s.entry(item).or_insert(0) += i64::from(n);
                }
            }
            InventoryUpdate::Ship(item, n) => {
                *s.entry(*item).or_insert(0) -= i64::from(*n);
            }
        }
        s
    }

    fn query(&self, s: &Stock, q: &InventoryQuery) -> i64 {
        let InventoryQuery::OnHand(item) = q;
        s.get(item).copied().unwrap_or(0)
    }

    fn method_names(&self) -> Vec<&'static str> {
        vec!["restock", "ship"]
    }

    fn method_of(&self, call: &InventoryUpdate) -> MethodId {
        match call {
            InventoryUpdate::Restock(_) => RESTOCK,
            InventoryUpdate::Ship(..) => SHIP,
        }
    }

    fn summarize(&self, a: &InventoryUpdate, b: &InventoryUpdate) -> Option<InventoryUpdate> {
        match (a, b) {
            (InventoryUpdate::Restock(x), InventoryUpdate::Restock(y)) => {
                let mut merged: BTreeMap<u64, u32> = BTreeMap::new();
                for &(item, n) in x.iter().chain(y) {
                    *merged.entry(item).or_insert(0) += n;
                }
                Some(InventoryUpdate::Restock(merged.into_iter().collect()))
            }
            _ => None,
        }
    }
}

impl SpecSampler for Inventory {
    fn sample_state(&self, rng: &mut StdRng) -> Stock {
        (0..rng.gen_range(0..6))
            .map(|_| (rng.gen_range(0..self.items), rng.gen_range(0..30)))
            .collect()
    }

    fn sample_update_of(&self, method: MethodId, rng: &mut StdRng) -> InventoryUpdate {
        let item = rng.gen_range(0..self.items);
        match method {
            RESTOCK => InventoryUpdate::Restock(vec![(item, rng.gen_range(1..5))]),
            SHIP => InventoryUpdate::Ship(item, rng.gen_range(1..5)),
            other => panic!("inventory has no method {other}"),
        }
    }
}

impl WorkloadSupport for Inventory {
    fn sample_query(&self, rng: &mut StdRng) -> InventoryQuery {
        InventoryQuery::OnHand(rng.gen_range(0..self.items))
    }

    fn gen_update(
        &self,
        state: &Stock,
        _node: usize,
        _seq: u64,
        method: MethodId,
        rng: &mut StdRng,
    ) -> Option<InventoryUpdate> {
        match method {
            RESTOCK => Some(self.sample_update_of(RESTOCK, rng)),
            SHIP => {
                // Ship only what the local view can cover.
                let stocked: Vec<(u64, i64)> =
                    state.iter().filter(|&(_, &v)| v >= 2).map(|(&i, &v)| (i, v)).collect();
                if stocked.is_empty() {
                    return None;
                }
                let (item, have) = stocked[rng.gen_range(0..stocked.len())];
                Some(InventoryUpdate::Ship(item, rng.gen_range(1..=(have / 2).min(4)) as u32))
            }
            other => panic!("inventory has no method {other}"),
        }
    }
}

impl Wire for InventoryUpdate {
    fn encode(&self, w: &mut Writer) {
        match self {
            InventoryUpdate::Restock(batch) => {
                w.u8(0);
                w.varint(batch.len() as u64);
                for &(item, n) in batch {
                    w.varint(item);
                    w.varint(u64::from(n));
                }
            }
            InventoryUpdate::Ship(item, n) => {
                w.u8(1);
                w.varint(*item);
                w.varint(u64::from(*n));
            }
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        match r.u8()? {
            0 => {
                let len = r.varint()? as usize;
                if len > r.remaining() {
                    return Err(DecodeError);
                }
                let mut batch = Vec::with_capacity(len);
                for _ in 0..len {
                    batch.push((
                        r.varint()?,
                        u32::try_from(r.varint()?).map_err(|_| DecodeError)?,
                    ));
                }
                Ok(InventoryUpdate::Restock(batch))
            }
            1 => Ok(InventoryUpdate::Ship(
                r.varint()?,
                u32::try_from(r.varint()?).map_err(|_| DecodeError)?,
            )),
            _ => Err(DecodeError),
        }
    }
}

fn main() {
    let inv = Inventory { items: 16 };

    // Infer the coordination relations from the executable definition.
    let cfg = AnalysisConfig::default();
    let coord = infer(&inv, &cfg);
    println!("== inferred coordination for `{}` ==", inv.name());
    for (m, name) in inv.method_names().iter().enumerate() {
        let mid = MethodId(m);
        println!(
            "  {name:<8} {} deps={:?}",
            coord.category(mid),
            coord
                .dependencies(mid)
                .iter()
                .map(|d| inv.method_names()[d.index()])
                .collect::<Vec<_>>()
        );
    }
    assert!(coord.category(RESTOCK).is_reducible(), "restock should be reducible");
    assert!(coord.category(SHIP).is_conflicting(), "ship should be conflicting");
    assert!(coord.dependencies(SHIP).contains(&RESTOCK), "ship depends on restock");

    // And it validates against the definition.
    let report = validate(&inv, &coord, &cfg);
    assert!(report.is_valid(), "{report}");
    println!("  {report}");

    // Run it on a 5-node cluster.
    let run = RunConfig::new(5, WorkloadSpec::ops(3_000).with_update_ratio(0.4));
    let rep = Runner::new(System::Hamband, run).run(&inv, &coord).report;
    println!("  {rep}");
    assert!(rep.converged, "inventory cluster must converge");
}
