//! Quickstart: the bank account of the paper's Fig. 1, from semantics
//! to a running simulated RDMA cluster.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use hamband::core::abstract_sem::AbstractWrdt;
use hamband::core::analysis::{validate, AnalysisConfig};
use hamband::core::demo::{Account, AccountQuery};
use hamband::core::object::ObjectSpec;
use hamband::core::rdma_sem::RdmaWrdt;
use hamband::core::refinement::replay;
use hamband::runtime::{RunConfig, Runner, System};
use hamband::runtime::WorkloadSpec;

fn main() {
    // 1. An object class: state, invariant, and executable methods.
    //    The account keeps a non-negative balance; `deposit` and
    //    `withdraw` are its update methods (Fig. 1).
    let account = Account::new(50);
    let coord = account.coord_spec();
    println!("== {} ==", account.name());
    for (m, name) in account.method_names().iter().enumerate() {
        println!("  method {name:<10} -> {}", coord.category(hamband::core::ids::MethodId(m)));
    }

    // 2. The declared coordination relations hold against the
    //    executable definition (bounded checking).
    let report = validate(&account, &coord, &AnalysisConfig::default());
    println!("  analysis: {report}");
    assert!(report.is_valid());

    // 3. The abstract WRDT semantics (Fig. 5): calls execute only when
    //    well-coordination allows.
    let mut wrdt = AbstractWrdt::new(&account, &coord, 3);
    let d = wrdt.call(0, Account::deposit(10)).expect("deposit accepted");
    wrdt.propagate(1, 0, d).expect("deposit propagates");
    wrdt.call(1, Account::withdraw(4)).expect("covered withdraw accepted");
    assert!(wrdt.call(2, Account::withdraw(1)).is_err(), "uncovered withdraw rejected");
    wrdt.propagate_all();
    assert!(wrdt.check_integrity() && wrdt.check_convergence());
    println!("  abstract semantics: integrity and convergence hold");

    // 4. The concrete RDMA semantics (Fig. 7) — and Lemma 3: its trace
    //    replays in the abstract semantics.
    let mut k = RdmaWrdt::new(&account, &coord, 3);
    k.reduce(1, Account::deposit(25)).unwrap(); // one remote write per peer
    k.conf(0, Account::withdraw(5)).unwrap(); //   ordered by the leader
    k.drain();
    assert_eq!(k.query(2, &AccountQuery::Balance), 20);
    replay(&account, &coord, 3, k.trace()).expect("refinement (Lemma 3) holds");
    println!("  concrete semantics: trace refines the abstract semantics");

    // 5. The full runtime on a simulated 4-node RDMA cluster: summary
    //    slots, ring buffers, reliable broadcast, Mu-style consensus.
    let run = RunConfig::new(4, WorkloadSpec::ops(2_000).with_update_ratio(0.5));
    let report = Runner::new(System::Hamband, run).run(&account, &coord).report;
    println!("  cluster:  {report}");
    assert!(report.converged);
}
