//! The paper's running example in depth: why each method of the bank
//! account lands in its coordination category, shown by evaluating the
//! semantic relations of §3.2 directly.
//!
//! ```sh
//! cargo run --example bank_account
//! ```

use hamband::core::demo::Account;
use hamband::core::object::ObjectSpec;
use hamband::core::relations::BoundedRelations;
use hamband::runtime::{RunConfig, Runner, System};
use hamband::runtime::WorkloadSpec;

fn main() {
    let account = Account::new(50);
    let rel = BoundedRelations::new(&account, 0xacc0, 400);

    let deposit = Account::deposit(10);
    let withdraw = Account::withdraw(10);

    println!("== semantic relations (bounded over sampled states) ==");
    println!(
        "  deposit invariant-sufficient:     {}",
        rel.invariant_sufficient(&deposit)
    );
    println!(
        "  withdraw invariant-sufficient:    {}",
        rel.invariant_sufficient(&withdraw)
    );
    println!(
        "  withdraw ▷ withdraw (P-R-commute): {}",
        rel.p_r_commutes(&withdraw, &Account::withdraw(20))
    );
    println!(
        "  withdraw ⋈ withdraw (conflict):    {}",
        rel.conflict(&withdraw, &Account::withdraw(20))
    );
    println!(
        "  deposit ⋈ withdraw (conflict):     {}",
        rel.conflict(&deposit, &withdraw)
    );
    println!(
        "  withdraw depends on deposit:       {}",
        rel.dependent(&withdraw, &deposit)
    );
    println!(
        "  deposits summarize soundly:        {}",
        rel.summary_sound(&deposit, &Account::deposit(3))
    );

    // The consequences (Fig. 1(b,c)): deposit is reducible — one remote
    // write per peer, no buffers; withdraw is conflicting — ordered by
    // the synchronization group's leader; and withdraw's dependency on
    // deposit ships as a count vector with every propagated withdraw.
    let coord = account.coord_spec();
    println!("\n== derived categories ==");
    for (m, name) in account.method_names().iter().enumerate() {
        println!("  {name:<10} {}", coord.category(hamband::core::ids::MethodId(m)));
    }

    // Run the account on the cluster under all three systems.
    println!("\n== 4-node cluster, 4000 calls, 50% updates ==");
    let run = RunConfig::new(4, WorkloadSpec::ops(4_000).with_update_ratio(0.5));
    let hb = Runner::new(System::Hamband, run.clone()).run(&account, &coord).report;
    let mu = Runner::new(System::MuSmr, run).run(&account, &coord).report;
    println!("  {hb}");
    println!("  {mu}");
    assert!(hb.converged && mu.converged);
    println!(
        "  hybrid coordination gains {:.0}% throughput over full SMR",
        (hb.throughput_ops_per_us / mu.throughput_ops_per_us - 1.0) * 100.0
    );

    // The MSG baseline cannot even run this object: withdrawals need
    // synchronization, which message-passing CRDTs do not provide.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {})); // silence the expected panic
    let msg_attempt = std::panic::catch_unwind(|| {
        let run = RunConfig::new(4, WorkloadSpec::ops(400).with_update_ratio(0.5));
        Runner::new(System::Msg, run).run(&account, &coord).report
    });
    std::panic::set_hook(default_hook);
    assert!(msg_attempt.is_err());
    println!("  (MSG baseline rejects the account: withdraw needs synchronization)");
}
