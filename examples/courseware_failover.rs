//! Leader failover, end to end: a 4-node courseware cluster whose
//! synchronization-group leader is failed mid-run (the paper's §5
//! failure injection: suspending the heartbeat thread). A new leader is
//! elected through the Mu-style permission hand-off, takes over the
//! `L` ring, and finishes the conflicting workload; every node —
//! including the deposed leader — converges.
//!
//! ```sh
//! cargo run --example courseware_failover
//! ```

use hamband::core::ids::Pid;
use hamband::runtime::{HambandNode, Layout, RuntimeConfig, WorkloadSpec};
use hamband::sim::{Fault, FaultPlan, LatencyModel, NodeId, SimDuration, SimTime, Simulator};
use hamband::types::Courseware;

fn main() {
    let courseware = Courseware::default();
    let coord = courseware.coord_spec();
    let n = 4;
    let workload = WorkloadSpec::ops(3_000).with_update_ratio(0.5).with_seed(7);
    let cfg = RuntimeConfig::default();

    let mut sim: Simulator<HambandNode<Courseware>> =
        Simulator::new(n, LatencyModel::default(), 42);
    let layout = Layout::install(&mut sim, &coord, &cfg);
    let leaders: Vec<Pid> = coord.default_leaders(n);
    println!("initial leader of the course group: {}", leaders[0]);

    // Fail the leader 300 us in.
    sim.install_fault_plan(
        &FaultPlan::new().at(SimTime(300_000), Fault::SuspendHeartbeat(NodeId(0))),
    );
    {
        let coord = coord.clone();
        sim.set_apps(move |id| {
            HambandNode::new(
                courseware.clone(),
                coord.clone(),
                cfg.clone(),
                layout.clone(),
                id,
                n,
                &leaders,
                workload.clone(),
            )
        });
    }

    let mut failover_seen = false;
    for _ in 0..400 {
        sim.run_for(SimDuration::micros(25));
        let view = sim.app(NodeId(1)).leader_view(0);
        if !failover_seen && view != Pid(0) {
            println!(
                "t={}: node 1 now recognizes {} as leader (election done)",
                sim.now(),
                view
            );
            failover_seen = true;
        }
        let alive: Vec<NodeId> = (1..n).map(NodeId).collect();
        let done = sim.now() > SimTime(300_000)
            && alive.iter().all(|&id| sim.app(id).workload_done())
            && alive
                .iter()
                .all(|&id| sim.app(id).applied_map() == sim.app(NodeId(1)).applied_map());
        if done {
            println!("t={}: workload complete", sim.now());
            break;
        }
    }
    sim.run_for(SimDuration::millis(1));

    assert!(failover_seen, "a new leader must have been elected");
    let reference = sim.app(NodeId(1)).state_snapshot();
    for i in 0..n {
        let app = sim.app(NodeId(i));
        println!(
            "node {i}: applied {} updates, halted={}, state matches new leader: {}",
            app.applied_updates(),
            app.is_halted(),
            app.state_snapshot() == reference
        );
        assert_eq!(app.state_snapshot(), reference, "node {i} diverged");
    }
    println!("all nodes converged across the failover, deposed leader included");
}
