//! Behavior-parity fingerprint: run fixed-seed workloads (including a
//! faulty one) with trace collection on and print a digest of the full
//! event stream. Used to verify refactors preserve identical traces.

use hamband_runtime::{RunConfig, Runner, System, TraceMode, WorkloadSpec};
use hamband_types::{Bank, Counter, GSet};
use rdma_sim::{Fault, FaultPlan, NodeId, SimTime};

fn digest(events: &[hamband_runtime::TraceRecord]) -> (usize, u64) {
    let mut h: u64 = 0xcbf29ce484222325;
    for e in events {
        let s = format!("{:?}@{:?}", e.event, e.at);
        for b in s.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
    }
    (events.len(), h)
}

fn main() {
    for seed in [1u64, 7, 13] {
        let c = Counter::default();
        let cfg = RunConfig::new(3, WorkloadSpec::ops(300).with_update_ratio(0.5).with_seed(seed))
            .with_seed(seed)
            .with_trace(TraceMode::Collect);
        let out = Runner::new(System::Hamband, cfg).run(&c, &c.coord_spec());
        let (n, h) = digest(&out.events);
        println!("counter seed={seed} conv={} events={n} hash={h:016x}", out.report.converged);

        let b = Bank::default();
        let cfg = RunConfig::new(4, WorkloadSpec::ops(400).with_update_ratio(0.5).with_seed(seed))
            .with_seed(seed)
            .with_trace(TraceMode::Collect);
        let out = Runner::new(System::Hamband, cfg).run(&b, &b.coord_spec());
        let (n, h) = digest(&out.events);
        println!("bank seed={seed} conv={} events={n} hash={h:016x}", out.report.converged);

        let g = GSet::default();
        let plan = FaultPlan::new()
            .at(SimTime(40_000), Fault::SuspendHeartbeat(NodeId(0)))
            .at(SimTime(60_000), Fault::Crash(NodeId(2)));
        let cfg = RunConfig::new(4, WorkloadSpec::ops(300).with_update_ratio(0.5).with_seed(seed))
            .with_seed(seed)
            .with_faults(plan)
            .with_trace(TraceMode::Collect);
        let out = Runner::new(System::Hamband, cfg).run(&g, &g.coord_spec_buffered());
        let (n, h) = digest(&out.events);
        println!("gset+faults seed={seed} conv={} events={n} hash={h:016x}", out.report.converged);

        let b = Bank::default();
        let plan = FaultPlan::new().at(SimTime(50_000), Fault::SuspendHeartbeat(NodeId(1)));
        let cfg = RunConfig::new(5, WorkloadSpec::ops(400).with_update_ratio(0.5).with_seed(seed))
            .with_seed(seed)
            .with_faults(plan)
            .with_trace(TraceMode::Collect);
        let out = Runner::new(System::Hamband, cfg).run(&b, &b.coord_spec());
        let (n, h) = digest(&out.events);
        println!(
            "bank+leaderfault seed={seed} conv={} events={n} hash={h:016x}",
            out.report.converged
        );
    }
}
