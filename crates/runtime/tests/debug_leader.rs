//! Regression test for leader failover: after the group leader's
//! heartbeat is suspended, a new leader must take over the ring,
//! consume the remaining conflicting quota, and *every* node — the
//! deposed leader included — must apply the full update workload.
//! (Run with `--nocapture` to see the per-node status trail.)

use hamband_core::ids::Pid;
use hamband_runtime::{HambandNode, Layout, RuntimeConfig, WorkloadSpec};
use hamband_types::Courseware;
use rdma_sim::{Fault, FaultPlan, LatencyModel, NodeId, SimDuration, SimTime, Simulator};

#[test]
fn leader_failure_trace() {
    let cw = Courseware::default();
    let coord = cw.coord_spec();
    let n = 4;
    let workload = WorkloadSpec::ops(600).with_update_ratio(0.5);
    let cfg = RuntimeConfig::default();
    let mut sim: Simulator<HambandNode<Courseware>> =
        Simulator::new(n, LatencyModel::default(), 0x5eed);
    let layout = Layout::install(&mut sim, &coord, &cfg);
    let leaders: Vec<Pid> = coord.default_leaders(n);
    sim.install_fault_plan(
        &FaultPlan::new().at(SimTime(60_000), Fault::SuspendHeartbeat(NodeId(0))),
    );
    {
        let coord = coord.clone();
        sim.set_apps(move |id| {
            HambandNode::new(
                cw.clone(),
                coord.clone(),
                cfg.clone(),
                layout.clone(),
                id,
                n,
                &leaders,
                workload.clone(),
            )
        });
    }
    for step in 0..60 {
        sim.run_for(SimDuration::micros(50));
        if step % 4 == 0 {
            println!("--- t={} ---", sim.now());
            for i in 0..n {
                println!("{}", sim.app(NodeId(i)).status());
            }
        }
        let alive: Vec<NodeId> = (1..n).map(NodeId).collect();
        let done = alive.iter().all(|&id| sim.app(id).workload_done())
            && alive
                .iter()
                .all(|&id| sim.app(id).applied_map() == sim.app(NodeId(1)).applied_map());
        if done {
            println!("done at {}", sim.now());
            break;
        }
    }
    // Let in-flight commit-index writes and summary writes settle.
    sim.run_for(SimDuration::micros(500));
    for i in 0..n {
        println!("final: {}", sim.app(NodeId(i)).status());
    }
    // 300 updates total; all nodes, including the suspended old leader
    // n0 (which keeps applying), must have applied every one.
    for i in 0..n {
        assert_eq!(
            sim.app(NodeId(i)).applied_updates(),
            300,
            "node {i} missed updates: {}",
            sim.app(NodeId(i)).status()
        );
    }
    // New leader is node 1 everywhere.
    for i in 0..n {
        assert_eq!(sim.app(NodeId(i)).leader_view(0), Pid(1));
    }
    let s1 = sim.app(NodeId(1)).state_snapshot();
    for i in 0..n {
        assert_eq!(sim.app(NodeId(i)).state_snapshot(), s1, "node {i} diverged");
    }
}
