//! Properties of the structured trace and the metric accounting:
//! commit ordering is observable in the event stream, and the latency
//! histograms account for exactly the acknowledged calls.

use hamband_core::demo::Account;
use hamband_runtime::{Phase, RunConfig, Runner, System, TraceEvent, TraceMode, WorkloadSpec};
use hamband_types::Counter;

/// Every acknowledged conflicting update is covered by a
/// `CommitAdvance` earlier in the trace: the acking node advanced its
/// commit index past the call's ring seq before acking the client.
#[test]
fn conf_acks_follow_commit_advance() {
    let a = Account::new(100);
    let config = RunConfig::for_nodes(3)
        .with_workload(WorkloadSpec::ops(600).with_update_ratio(0.5))
        .with_trace(TraceMode::Collect);
    let outcome = Runner::new(System::Hamband, config).run(&a, &a.coord_spec());
    assert!(outcome.report.converged, "{}", outcome.report);
    assert!(!outcome.events.is_empty(), "collect mode must record events");

    let mut conf_acks = 0usize;
    for (i, rec) in outcome.events.iter().enumerate() {
        let TraceEvent::Ack { node, phase: Phase::Conf, group: Some(g), seq: Some(s), .. } =
            rec.event
        else {
            continue;
        };
        conf_acks += 1;
        let committed = outcome.events[..i].iter().any(|earlier| {
            matches!(
                earlier.event,
                TraceEvent::CommitAdvance { node: n, group, commit }
                    if n == node && group == g && commit >= s
            )
        });
        assert!(
            committed,
            "ack of seq {s} in group {g} on node {node:?} (event {i}) \
             has no earlier CommitAdvance covering it"
        );
    }
    assert!(conf_acks > 0, "the account workload must exercise the CONF path");
}

/// The overall latency histogram of each node holds exactly one sample
/// per acknowledged call (updates and queries alike) — nothing dropped,
/// nothing double-counted.
#[test]
fn histograms_account_for_every_ack() {
    for system in [System::Hamband, System::Msg] {
        let c = Counter::default();
        let config = RunConfig::for_nodes(3).with_workload(WorkloadSpec::ops(400).with_update_ratio(0.5));
        let outcome = Runner::new(system, config).run(&c, &c.coord_spec());
        assert!(outcome.report.converged, "{}", outcome.report);
        for (i, m) in outcome.node_metrics.iter().enumerate() {
            assert_eq!(
                m.rt.count(),
                m.updates_acked + m.queries,
                "node {i} of {} histogram vs counters",
                system.label()
            );
            let phase_total: u64 =
                Phase::ALL.iter().map(|p| m.rt_per_phase[p.index()].count()).sum();
            assert_eq!(phase_total, m.rt.count(), "node {i} phase split sums to total");
        }
    }
}

/// Trace collection must not change the run itself: same seed, same
/// workload, identical report with tracing off and on.
#[test]
fn tracing_does_not_perturb_the_run() {
    let a = Account::new(100);
    let base = RunConfig::for_nodes(3).with_workload(WorkloadSpec::ops(300).with_update_ratio(0.5)).with_seed(11);
    let quiet = Runner::new(System::Hamband, base.clone()).run(&a, &a.coord_spec());
    let traced = Runner::new(System::Hamband, base.with_trace(TraceMode::Collect))
        .run(&a, &a.coord_spec());
    assert_eq!(quiet.report.to_json(), traced.report.to_json());
    assert!(quiet.events.is_empty() && !traced.events.is_empty());
}
