//! Property tests of the runtime's byte-level machinery: every codec
//! survives arbitrary values, slots reject every corruption that could
//! masquerade as a landed entry, and rings deliver arbitrary workloads
//! in order.

use hamband_core::counts::DepMap;
use hamband_core::demo::{Account, AccountUpdate};
use hamband_core::ids::{MethodId, Pid, Rid};
use hamband_runtime::codec::{Entry, SummarySlot, CANARY_TRAILER};
use proptest::prelude::*;

fn arb_deps() -> impl Strategy<Value = Vec<(usize, usize, u64)>> {
    prop::collection::vec((0..7usize, 0..4usize, 1..1_000_000u64), 0..6)
}

fn arb_update() -> impl Strategy<Value = AccountUpdate> {
    prop_oneof![
        (1..u64::MAX / 2).prop_map(Account::deposit),
        (1..u64::MAX / 2).prop_map(Account::withdraw),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn entry_payload_roundtrips(
        issuer in 0..7usize,
        seq in 0..u64::MAX / 2,
        update in arb_update(),
        deps in arb_deps(),
    ) {
        let entry = Entry {
            rid: Rid::new(Pid(issuer), seq),
            update,
            deps: DepMap::from_entries(
                deps.into_iter().map(|(p, m, c)| (Pid(p), MethodId(m), c)),
            ),
        };
        let bytes = entry.encode_payload();
        let back = Entry::<AccountUpdate>::decode_payload(&bytes).unwrap();
        prop_assert_eq!(back, entry);
    }

    #[test]
    fn entry_slot_roundtrips_and_rejects_other_seqs(
        seq in 1..u64::MAX / 2,
        update in arb_update(),
    ) {
        let entry = Entry { rid: Rid::new(Pid(1), 7), update, deps: DepMap::empty() };
        let slot = entry.to_slot(seq, 128);
        prop_assert_eq!(Entry::<AccountUpdate>::from_slot(&slot, seq).unwrap(), entry);
        prop_assert!(Entry::<AccountUpdate>::from_slot(&slot, seq + 1).is_none());
        prop_assert!(Entry::<AccountUpdate>::from_slot(&slot, seq.wrapping_sub(1)).is_none());
    }

    /// A slot whose canary trailer echoes anything but the expected
    /// sequence is invisible, whatever else it contains — the §4
    /// torn-write guard, plus the stale-epoch guard for reused ring
    /// slots (the trailer of a wrapped-over entry echoes an older seq
    /// and must not validate the new one).
    #[test]
    fn slot_without_canary_is_never_visible(
        seq in 1..1_000u64,
        update in arb_update(),
        echo in 0..u64::MAX / 2,
    ) {
        let entry = Entry { rid: Rid::new(Pid(0), 3), update, deps: DepMap::empty() };
        let mut slot = entry.to_slot(seq, 128);
        let tail = slot.len() - CANARY_TRAILER;
        // `0` models a torn trailer (zeroes); other values stale epochs.
        prop_assume!(echo != seq);
        slot[tail..].copy_from_slice(&echo.to_le_bytes());
        prop_assert!(Entry::<AccountUpdate>::from_slot(&slot, seq).is_none());
    }

    /// Arbitrary byte garbage never decodes into a *visible* entry for
    /// the expected sequence number unless it genuinely encodes one.
    #[test]
    fn corrupted_payload_is_dropped_not_misread(
        mut slot in prop::collection::vec(any::<u8>(), 128),
        flip in 10..127usize,
    ) {
        let entry = Entry {
            rid: Rid::new(Pid(1), 9),
            update: Account::deposit(5),
            deps: DepMap::empty(),
        };
        let good = entry.to_slot(4, 128);
        slot.copy_from_slice(&good);
        slot[flip] ^= 0xff;
        // Either invisible or decodes to *some* well-formed entry — but
        // never panics, and never fabricates an out-of-range process.
        if let Some(e) = Entry::<AccountUpdate>::from_slot(&slot, 4) {
            prop_assert!(e.rid.issuer.index() < 1 << 20);
        }
    }

    #[test]
    fn summary_slot_roundtrips(
        version in 1..u64::MAX / 2,
        counts in prop::collection::vec(0..u64::MAX / 2, 1..5),
        update in arb_update(),
    ) {
        let s = SummarySlot { version, counts: counts.clone(), summary: Some(update) };
        let slot = s.to_slot(8 + 8 * counts.len() + 2 + 64 + 8);
        let back = SummarySlot::<AccountUpdate>::from_slot(&slot, counts.len()).unwrap();
        prop_assert_eq!(back, s);
    }

    /// The seqlock check: any mismatch between leading and trailing
    /// version makes the slot unreadable (a concurrent overwrite).
    #[test]
    fn summary_seqlock_mismatch_is_invisible(
        version in 2..1_000u64,
        skew in 1..100u64,
    ) {
        let s = SummarySlot {
            version,
            counts: vec![version],
            summary: Some(Account::deposit(1)),
        };
        let mut slot = s.to_slot(8 + 8 + 2 + 64 + 8);
        let end = slot.len();
        slot[end - 8..].copy_from_slice(&(version - skew % version).to_le_bytes());
        prop_assume!(version - skew % version != version);
        prop_assert!(SummarySlot::<AccountUpdate>::from_slot(&slot, 1).is_none());
    }
}
