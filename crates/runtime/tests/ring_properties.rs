//! Property tests of the single-writer ring buffers: in-order,
//! loss-free delivery for arbitrary entry counts, capacities, polling
//! cadences, and torn-write fabrics.

use hamband_core::counts::DepMap;
use hamband_core::demo::{Account, AccountUpdate};
use hamband_core::ids::{Pid, Rid};
use hamband_runtime::codec::Entry;
use hamband_runtime::rings::{RingReader, RingWriter};
use proptest::prelude::*;
use rdma_sim::{
    App, Ctx, Event, Fault, FaultPlan, LatencyModel, NodeId, RegionId, RingKind, SimDuration,
    SimTime, Simulator,
};

const SLOT: usize = 64;

struct RingApp {
    writer: Option<RingWriter>,
    reader: Option<RingReader>,
    to_send: u64,
    sent: u64,
    poll_every: u64,
    received: Vec<u64>,
}

impl App for RingApp {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        self.pump_writer(ctx);
        ctx.set_timer(SimDuration::nanos(self.poll_every), 0);
    }

    fn on_event(&mut self, ctx: &mut Ctx<'_>, event: Event) {
        match event {
            Event::Timer { .. } => {
                if let Some(r) = self.reader.as_mut() {
                    while let Some(e) = r.peek::<AccountUpdate>(ctx) {
                        let AccountUpdate::Deposit(v) = e.update else { panic!("deposit") };
                        self.received.push(v);
                        r.advance(ctx, NodeId(0));
                    }
                }
                self.pump_writer(ctx);
                ctx.set_timer(SimDuration::nanos(self.poll_every), 0);
            }
            Event::Completion { wr, status, data, .. } => {
                if let Some(w) = self.writer.as_mut() {
                    let _ = w.on_completion(ctx, wr, status, data.as_deref());
                }
                self.pump_writer(ctx);
            }
            _ => {}
        }
    }
}

impl RingApp {
    fn pump_writer(&mut self, ctx: &mut Ctx<'_>) {
        if let Some(w) = self.writer.as_mut() {
            while self.sent < self.to_send && !w.is_backpressured() {
                let e = Entry {
                    rid: Rid::new(Pid(0), self.sent),
                    update: Account::deposit(self.sent + 1),
                    deps: DepMap::empty(),
                };
                w.append(ctx, &e);
                self.sent += 1;
            }
        }
    }
}

fn run_ring(count: u64, cap: usize, poll_every: u64, torn: bool, seed: u64) -> Vec<u64> {
    let mut sim = Simulator::new(2, LatencyModel::default(), seed);
    let ring: RegionId = sim.add_region_all(cap * SLOT);
    let heads: RegionId = sim.add_region_all(8);
    if torn {
        sim.install_fault_plan(
            &FaultPlan::new().at(SimTime::ZERO, Fault::TornWrites(NodeId(1))),
        );
    }
    sim.set_apps(|id| RingApp {
        writer: (id.index() == 0)
            .then(|| RingWriter::new(RingKind::Free, NodeId(1), ring, 0, cap, SLOT, heads, 0)),
        reader: (id.index() == 1).then(|| RingReader::new(RingKind::Free, ring, 0, cap, SLOT, heads, 0)),
        to_send: count,
        sent: 0,
        poll_every,
        received: Vec::new(),
    });
    sim.run_for(SimDuration::millis(200));
    sim.app(NodeId(1)).received.clone()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Whatever the entry count, ring capacity, polling cadence, and
    /// fabric seed, every entry is delivered exactly once, in order.
    #[test]
    fn ring_delivers_everything_in_order(
        count in 1..200u64,
        cap in 2..32usize,
        poll_every in 300..5_000u64,
        seed in 0..u64::MAX / 2,
    ) {
        let received = run_ring(count, cap, poll_every, false, seed);
        prop_assert_eq!(received, (1..=count).collect::<Vec<u64>>());
    }

    /// The canary protocol: the same property holds when every landing
    /// at the reader is torn in two.
    #[test]
    fn ring_survives_torn_writes(
        count in 1..120u64,
        cap in 2..16usize,
        seed in 0..u64::MAX / 2,
    ) {
        let received = run_ring(count, cap, 800, true, seed);
        prop_assert_eq!(received, (1..=count).collect::<Vec<u64>>());
    }
}
