//! Property tests of the single-writer ring buffers: in-order,
//! loss-free delivery for arbitrary entry counts, capacities, polling
//! cadences, torn-write fabrics, and doorbell batching factors —
//! including the equivalence of batched and one-write-per-entry
//! configurations on identical seeds.

use hamband_core::counts::DepMap;
use hamband_core::demo::{Account, AccountUpdate};
use hamband_core::ids::{Pid, Rid};
use hamband_runtime::codec::Entry;
use hamband_runtime::rings::{RingReader, RingWriter};
use proptest::prelude::*;
use rdma_sim::{
    App, CollectingSink, Ctx, Event, Fault, FaultPlan, LatencyModel, NodeId, RegionId, RingKind,
    SimDuration, SimTime, Simulator, TraceEvent,
};

const SLOT: usize = 64;

struct RingApp {
    writer: Option<RingWriter>,
    reader: Option<RingReader>,
    to_send: u64,
    sent: u64,
    poll_every: u64,
    received: Vec<u64>,
}

impl App for RingApp {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        self.pump_writer(ctx);
        ctx.set_timer(SimDuration::nanos(self.poll_every), 0);
    }

    fn on_event(&mut self, ctx: &mut Ctx<'_>, event: Event) {
        match event {
            Event::Timer { .. } => {
                if let Some(r) = self.reader.as_mut() {
                    while let Some(e) = r.peek::<AccountUpdate>(ctx) {
                        let AccountUpdate::Deposit(v) = e.update else { panic!("deposit") };
                        self.received.push(v);
                        r.advance(ctx, NodeId(0));
                    }
                }
                self.pump_writer(ctx);
                ctx.set_timer(SimDuration::nanos(self.poll_every), 0);
            }
            Event::Completion { wr, status, data, .. } => {
                if let Some(w) = self.writer.as_mut() {
                    let _ = w.on_completion(ctx, wr, status, data.as_deref());
                }
                self.pump_writer(ctx);
            }
            _ => {}
        }
    }
}

impl RingApp {
    fn pump_writer(&mut self, ctx: &mut Ctx<'_>) {
        if let Some(w) = self.writer.as_mut() {
            while self.sent < self.to_send && !w.is_backpressured() {
                let e = Entry {
                    rid: Rid::new(Pid(0), self.sent),
                    update: Account::deposit(self.sent + 1),
                    deps: DepMap::empty(),
                };
                w.append(ctx, &e);
                self.sent += 1;
            }
            w.flush(ctx);
        }
    }
}

/// One `run_ring_traced` outcome: delivered values, the append-seq and
/// apply-seq trace streams, and the fabric's ring-write counters
/// (writes posted, slots carried).
struct RingRun {
    received: Vec<u64>,
    appends: Vec<u64>,
    applies: Vec<u64>,
    ring_writes: u64,
    ring_slots: u64,
}

/// Drive one writer/reader pair to completion under the given batching
/// factor and return what happened.
fn run_ring_traced(
    count: u64,
    cap: usize,
    poll_every: u64,
    torn: bool,
    seed: u64,
    max_batch: usize,
) -> RingRun {
    let mut sim = Simulator::new(2, LatencyModel::default(), seed);
    let (sink, buffer) = CollectingSink::new();
    sim.set_trace_sink(Box::new(sink));
    let ring: RegionId = sim.add_region_all(cap * SLOT);
    let heads: RegionId = sim.add_region_all(8);
    if torn {
        sim.install_fault_plan(
            &FaultPlan::new().at(SimTime::ZERO, Fault::TornWrites(NodeId(1))),
        );
    }
    sim.set_apps(|id| RingApp {
        writer: (id.index() == 0).then(|| {
            RingWriter::new(RingKind::Free, NodeId(1), ring, 0, cap, SLOT, heads, 0)
                .with_max_batch(max_batch)
        }),
        reader: (id.index() == 1)
            .then(|| RingReader::new(RingKind::Free, ring, 0, cap, SLOT, heads, 0)),
        to_send: count,
        sent: 0,
        poll_every,
        received: Vec::new(),
    });
    sim.run_for(SimDuration::millis(200));
    // The append stream and the apply stream, compared separately: the
    // *interleaving* legitimately differs between batching factors
    // (batched posts land later), but each stream's order must not.
    let mut appends = Vec::new();
    let mut applies = Vec::new();
    for rec in buffer.take() {
        match rec.event {
            TraceEvent::RingAppend { seq, .. } => appends.push(seq),
            TraceEvent::RingApply { seq, .. } => applies.push(seq),
            _ => {}
        }
    }
    let stats = sim.stats().clone();
    RingRun {
        received: sim.app(NodeId(1)).received.clone(),
        appends,
        applies,
        ring_writes: stats.ring_writes,
        ring_slots: stats.ring_slots,
    }
}

fn run_ring(count: u64, cap: usize, poll_every: u64, torn: bool, seed: u64) -> Vec<u64> {
    run_ring_traced(count, cap, poll_every, torn, seed, 1).received
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Whatever the entry count, ring capacity, polling cadence, and
    /// fabric seed, every entry is delivered exactly once, in order.
    #[test]
    fn ring_delivers_everything_in_order(
        count in 1..200u64,
        cap in 2..32usize,
        poll_every in 300..5_000u64,
        seed in 0..u64::MAX / 2,
    ) {
        let received = run_ring(count, cap, poll_every, false, seed);
        prop_assert_eq!(received, (1..=count).collect::<Vec<u64>>());
    }

    /// The canary protocol: the same property holds when every landing
    /// at the reader is torn in two.
    #[test]
    fn ring_survives_torn_writes(
        count in 1..120u64,
        cap in 2..16usize,
        seed in 0..u64::MAX / 2,
    ) {
        let received = run_ring(count, cap, 800, true, seed);
        prop_assert_eq!(received, (1..=count).collect::<Vec<u64>>());
    }

    /// Doorbell batching is invisible to the reader: on the same seed,
    /// a batched writer delivers exactly the entry sequence the
    /// one-write-per-entry writer delivers, in the same
    /// RingAppend/RingApply order — across wraparounds (count >> cap)
    /// and flow-control stalls (small caps, slow polls) — while
    /// posting strictly fewer ring WRITEs whenever a batch formed.
    #[test]
    fn batched_append_is_equivalent_to_unbatched(
        count in 1..150u64,
        cap in 2..16usize,
        poll_every in 300..5_000u64,
        max_batch in 2..12usize,
        seed in 0..u64::MAX / 2,
    ) {
        let base = run_ring_traced(count, cap, poll_every, false, seed, 1);
        let batched = run_ring_traced(count, cap, poll_every, false, seed, max_batch);
        prop_assert_eq!(&base.received, &(1..=count).collect::<Vec<u64>>());
        prop_assert_eq!(&batched.received, &base.received);
        prop_assert_eq!(batched.appends, base.appends);
        prop_assert_eq!(batched.applies, base.applies);
        // Both configurations move every slot exactly once...
        prop_assert_eq!(base.ring_slots, count);
        prop_assert_eq!(batched.ring_slots, count);
        prop_assert_eq!(base.ring_writes, count);
        // ...but the batched writer never posts more WRITEs.
        prop_assert!(batched.ring_writes <= base.ring_writes);
    }

    /// The canary protocol survives torn writes under batching too: the
    /// simulator tears the *last* byte of a posted write, which is the
    /// final slot's canary — inner slots land whole, and the reader's
    /// per-slot canary check masks the torn tail until the rewrite.
    #[test]
    fn batched_ring_survives_torn_writes(
        count in 1..100u64,
        cap in 2..16usize,
        max_batch in 2..8usize,
        seed in 0..u64::MAX / 2,
    ) {
        let run = run_ring_traced(count, cap, 800, true, seed, max_batch);
        prop_assert_eq!(run.received, (1..=count).collect::<Vec<u64>>());
        // Rewrites repost torn slots, so slots >= count.
        prop_assert!(run.ring_slots >= count);
    }
}
