//! Key-sharded sync groups, end to end: runs with `sync_shards > 1`
//! must stay convergent, deterministic, and commit-before-ack per
//! *mapped* group, and the [`GroupMapper`] itself must obey the safety
//! contract the routing relies on — two conflicting calls on the same
//! key land in the same mapped group for *any* shard count, so Lemma 1
//! keeps holding per shard (cross-key conflicting calls of a sharded
//! group are commutative by the shard-key declaration, validated by
//! `hamband_core::analysis`).

use hamband_core::coord::{CoordSpec, GroupMapper};
use hamband_core::ids::GroupId;
use hamband_runtime::{
    Phase, RunConfig, Runner, System, TraceMode, TraceRecord, WorkloadSpec,
};
use hamband_types::{Bank, OrSet};
use proptest::prelude::*;
use rdma_sim::TraceEvent;

/// FNV-1a over the debug rendering of the full event stream (the same
/// digest the parity suite uses).
fn digest(events: &[TraceRecord]) -> (usize, u64) {
    let mut h: u64 = 0xcbf29ce484222325;
    for e in events {
        let s = format!("{:?}@{:?}", e.event, e.at);
        for b in s.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
    }
    (events.len(), h)
}

/// Every conflicting ack must be covered by an earlier `CommitAdvance`
/// on the acking node for the same *mapped* group — the chaos campaign
/// invariant, asserted here against a sharded trace.
fn assert_commit_before_ack(events: &[TraceRecord]) {
    for (i, rec) in events.iter().enumerate() {
        let TraceEvent::Ack { node, phase: Phase::Conf, group: Some(g), seq: Some(s), .. } =
            rec.event
        else {
            continue;
        };
        let committed = events[..i].iter().any(|earlier| {
            matches!(
                earlier.event,
                TraceEvent::CommitAdvance { node: n, group, commit }
                    if n == node && group == g && commit >= s
            )
        });
        assert!(committed, "conf ack of seq {s} in mapped group {g} on {node:?} outran commit");
    }
}

#[test]
fn bank_converges_with_four_shards() {
    let b = Bank::new(64, 50);
    for seed in [1u64, 7, 13] {
        let spec = WorkloadSpec::ops(600).with_update_ratio(0.6).with_seed(seed);
        let cfg = RunConfig::new(4, spec)
            .with_seed(seed)
            .with_sync_shards(4)
            .with_trace(TraceMode::Collect);
        let out = Runner::new(System::Hamband, cfg).run(&b, &b.coord_spec());
        assert!(out.report.converged, "bank seed={seed} with 4 shards must converge");
        assert_commit_before_ack(&out.events);
    }
}

#[test]
fn orset_converges_with_four_shards() {
    let o = OrSet::new(64);
    for seed in [1u64, 9] {
        let spec = WorkloadSpec::ops(500).with_update_ratio(0.5).with_seed(seed);
        let cfg = RunConfig::new(3, spec)
            .with_seed(seed)
            .with_sync_shards(4)
            .with_trace(TraceMode::Collect);
        let out = Runner::new(System::Hamband, cfg).run(&o, &o.coord_spec());
        assert!(out.report.converged, "orset seed={seed} with 4 shards must converge");
        assert_commit_before_ack(&out.events);
    }
}

#[test]
fn sharded_runs_are_deterministic() {
    let run = || {
        let b = Bank::new(64, 50);
        let spec =
            WorkloadSpec::ops(500).with_update_ratio(0.6).with_sessions(8).with_seed(21);
        let cfg = RunConfig::new(4, spec)
            .with_seed(21)
            .with_sync_shards(8)
            .with_trace(TraceMode::Collect);
        let out = Runner::new(System::Hamband, cfg).run(&b, &b.coord_spec());
        assert!(out.report.converged);
        (digest(&out.events), out.report.to_json())
    };
    let (d1, j1) = run();
    let (d2, j2) = run();
    assert_eq!(d1, d2, "same seed + same shard count, same event stream");
    assert_eq!(j1, j2);
}

#[test]
fn smr_baseline_ignores_shard_config() {
    // Under the complete conflict relation cross-key calls conflict
    // too, so the harness must force the SMR baseline back to one log
    // even when the config (or env) asks for shards.
    let b = Bank::new(64, 50);
    let spec = WorkloadSpec::ops(300).with_update_ratio(0.5).with_seed(5);
    let cfg = RunConfig::new(3, spec).with_seed(5).with_sync_shards(4);
    let out = Runner::new(System::MuSmr, cfg).run(&b, &b.coord_spec());
    assert!(out.report.converged, "MuSmr must converge regardless of sync_shards");
}

/// A two-group conflict spec (methods 0↔1 and 2↔3 conflict) to exercise
/// mapping across more than one synchronization group.
fn two_group_coord() -> CoordSpec {
    CoordSpec::builder(4).conflict(0, 1).conflict(2, 3).build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Safety of the routing: for ANY shard count, two calls of the
    /// same synchronization group carrying the same key map to the same
    /// engine — the serialization Lemma 1 needs for same-key conflicts
    /// never splits across logs.
    #[test]
    fn same_key_same_group_for_any_shard_count(
        shards in 1usize..64,
        key in any::<u64>(),
        sg in 0usize..2,
    ) {
        let coord = two_group_coord();
        let m = GroupMapper::new(&coord, shards);
        let g1 = m.group_of(GroupId(sg), Some(key));
        let g2 = m.group_of(GroupId(sg), Some(key));
        prop_assert_eq!(g1, g2);
        prop_assert!(m.shard_range(GroupId(sg)).contains(&g1));
        prop_assert_eq!(m.sync_group_of(g1), GroupId(sg));
    }

    /// Keys never leak across synchronization groups: the shard ranges
    /// of distinct groups are disjoint, so a mapped group index always
    /// identifies one sync group (conflicts across groups don't exist
    /// by construction, and the mapping keeps it that way).
    #[test]
    fn shard_ranges_of_distinct_groups_are_disjoint(
        shards in 1usize..64,
        key in any::<u64>(),
    ) {
        let coord = two_group_coord();
        let m = GroupMapper::new(&coord, shards);
        let a = m.group_of(GroupId(0), Some(key));
        let b = m.group_of(GroupId(1), Some(key));
        prop_assert!(a != b, "groups 0 and 1 mapped key {} to the same engine {}", key, a);
        prop_assert!(!m.shard_range(GroupId(0)).contains(&b));
        prop_assert!(!m.shard_range(GroupId(1)).contains(&a));
        prop_assert_eq!(m.group_count(), 2 * shards);
    }

    /// Keyless calls conflict with every call of their group, so they
    /// must always pin to the group's shard 0 — sharing a log with any
    /// keyed call's shard would otherwise be required of *all* shards.
    #[test]
    fn keyless_calls_pin_to_shard_zero(shards in 1usize..64, sg in 0usize..2) {
        let coord = two_group_coord();
        let m = GroupMapper::new(&coord, shards);
        prop_assert_eq!(m.group_of(GroupId(sg), None), sg * shards);
    }

}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// End-to-end sampled run: small sharded Bank runs converge for
    /// arbitrary seeds and shard counts (few cases, tiny workloads —
    /// full cluster runs are the expensive strategy here).
    #[test]
    fn sharded_bank_runs_converge_across_seeds(seed in 1u64..500, shards in 1usize..9) {
        let b = Bank::new(32, 50);
        let spec = WorkloadSpec::ops(120).with_update_ratio(0.6).with_seed(seed);
        let cfg = RunConfig::new(3, spec).with_seed(seed).with_sync_shards(shards);
        let out = Runner::new(System::Hamband, cfg).run(&b, &b.coord_spec());
        prop_assert!(out.report.converged, "seed={} shards={}", seed, shards);
    }
}
