//! End-to-end runtime tests: full Hamband clusters (and baselines)
//! driven to convergence over the simulated fabric.

use hamband_core::demo::Account;
use hamband_runtime::{RunConfig, Runner, System, WorkloadSpec};
use hamband_types::{Counter, Courseware, GSet, Movie, OrSet, Project};
use rdma_sim::{Fault, FaultPlan, NodeId, SimTime};

#[test]
fn counter_reducible_converges() {
    let c = Counter::default();
    let config = RunConfig::new(3, WorkloadSpec::ops(600).with_update_ratio(0.5));
    let report = Runner::new(System::Hamband, config).run(&c, &c.coord_spec()).report;
    assert!(report.converged, "{report}");
    assert!(report.total_updates >= 295, "most updates acked: {report}");
    assert!(report.throughput_ops_per_us > 0.1, "{report}");
}

#[test]
fn gset_buffered_converges() {
    let g = GSet::default();
    let config = RunConfig::new(3, WorkloadSpec::ops(400).with_update_ratio(0.5));
    let report = Runner::new(System::Hamband, config).run(&g, &g.coord_spec_buffered()).report;
    assert!(report.converged, "{report}");
}

#[test]
fn orset_with_dependencies_converges() {
    let o = OrSet::default();
    let config = RunConfig::new(4, WorkloadSpec::ops(600).with_update_ratio(0.5));
    let report = Runner::new(System::Hamband, config).run(&o, &o.coord_spec()).report;
    assert!(report.converged, "{report}");
}

#[test]
fn account_all_categories_converges() {
    let a = Account::new(50);
    let config = RunConfig::new(3, WorkloadSpec::ops(600).with_update_ratio(0.5));
    let report = Runner::new(System::Hamband, config).run(&a, &a.coord_spec()).report;
    assert!(report.converged, "{report}");
    // Some withdrawals must actually have committed.
    assert!(report.per_method_rt_us.contains_key("withdraw"), "{report:?}");
    // Withdrawals go through consensus, so the report must carry a CONF
    // phase distribution alongside REDUCE/FREE.
    assert!(report.phases.contains_key("conf"), "{report:?}");
}

#[test]
fn project_schema_converges() {
    let p = Project::default();
    let config = RunConfig::new(4, WorkloadSpec::ops(600).with_update_ratio(0.5));
    let report = Runner::new(System::Hamband, config).run(&p, &p.coord_spec()).report;
    assert!(report.converged, "{report}");
}

#[test]
fn movie_two_leaders_converges() {
    let m = Movie::default();
    let config = RunConfig::new(4, WorkloadSpec::ops(600).with_update_ratio(1.0));
    let report = Runner::new(System::Hamband, config).run(&m, &m.coord_spec()).report;
    assert!(report.converged, "{report}");
}

#[test]
fn smr_baseline_converges_and_is_slower() {
    let c = Counter::default();
    let config = RunConfig::new(3, WorkloadSpec::ops(600).with_update_ratio(0.5));
    let hb = Runner::new(System::Hamband, config.clone()).run(&c, &c.coord_spec()).report;
    let smr = Runner::new(System::MuSmr, config).run(&c, &c.coord_spec()).report;
    assert!(smr.converged, "{smr}");
    assert!(
        hb.throughput_ops_per_us > smr.throughput_ops_per_us,
        "hamband {hb} should beat smr {smr}"
    );
}

#[test]
fn msg_baseline_converges_and_is_much_slower() {
    let c = Counter::default();
    let config = RunConfig::new(3, WorkloadSpec::ops(600).with_update_ratio(0.5));
    let hb = Runner::new(System::Hamband, config.clone()).run(&c, &c.coord_spec()).report;
    let msg = Runner::new(System::Msg, config).run(&c, &c.coord_spec()).report;
    assert!(msg.converged, "{msg}");
    assert!(
        hb.throughput_ops_per_us > 3.0 * msg.throughput_ops_per_us,
        "hamband {hb} should dominate msg {msg}"
    );
    assert!(hb.mean_rt_us < msg.mean_rt_us, "hamband {hb} rt below msg {msg}");
}

#[test]
fn follower_failure_is_tolerated() {
    let c = Counter::default();
    let config = RunConfig::new(4, WorkloadSpec::ops(800).with_update_ratio(0.5))
        .with_faults(FaultPlan::new().at(SimTime(40_000), Fault::SuspendHeartbeat(NodeId(3))));
    let report = Runner::new(System::Hamband, config).run(&c, &c.coord_spec()).report;
    assert!(report.converged, "{report}");
}

#[test]
fn leader_failure_elects_new_leader() {
    let cw = Courseware::default();
    // Group leader is node 0 by default; suspend its heartbeat mid-run.
    let config = RunConfig::new(4, WorkloadSpec::ops(600).with_update_ratio(0.5))
        .with_faults(FaultPlan::new().at(SimTime(60_000), Fault::SuspendHeartbeat(NodeId(0))));
    let report = Runner::new(System::Hamband, config).run(&cw, &cw.coord_spec()).report;
    assert!(report.converged, "{report}");
}
