//! End-to-end runtime tests: full Hamband clusters (and baselines)
//! driven to convergence over the simulated fabric.

use hamband_core::demo::Account;
use hamband_runtime::harness::{run_hamband, run_msg, smr_coord, RunConfig};
use hamband_runtime::Workload;
use hamband_types::{Counter, Courseware, GSet, Movie, OrSet, Project};
use rdma_sim::{Fault, FaultPlan, NodeId, SimTime};

#[test]
fn counter_reducible_converges() {
    let c = Counter::default();
    let run = RunConfig::new(3, Workload::new(600, 0.5));
    let report = run_hamband(&c, &c.coord_spec(), &run, "hamband");
    assert!(report.converged, "{report}");
    assert!(report.total_updates >= 295, "most updates acked: {report}");
    assert!(report.throughput_ops_per_us > 0.1, "{report}");
}

#[test]
fn gset_buffered_converges() {
    let g = GSet::default();
    let run = RunConfig::new(3, Workload::new(400, 0.5));
    let report = run_hamband(&g, &g.coord_spec_buffered(), &run, "hamband");
    assert!(report.converged, "{report}");
}

#[test]
fn orset_with_dependencies_converges() {
    let o = OrSet::default();
    let run = RunConfig::new(4, Workload::new(600, 0.5));
    let report = run_hamband(&o, &o.coord_spec(), &run, "hamband");
    assert!(report.converged, "{report}");
}

#[test]
fn account_all_categories_converges() {
    let a = Account::new(50);
    let run = RunConfig::new(3, Workload::new(600, 0.5));
    let report = run_hamband(&a, &a.coord_spec(), &run, "hamband");
    assert!(report.converged, "{report}");
    // Some withdrawals must actually have committed.
    assert!(report.per_method_rt_us.contains_key("withdraw"), "{report:?}");
}

#[test]
fn project_schema_converges() {
    let p = Project::default();
    let run = RunConfig::new(4, Workload::new(600, 0.5));
    let report = run_hamband(&p, &p.coord_spec(), &run, "hamband");
    assert!(report.converged, "{report}");
}

#[test]
fn movie_two_leaders_converges() {
    let m = Movie::default();
    let run = RunConfig::new(4, Workload::new(600, 1.0));
    let report = run_hamband(&m, &m.coord_spec(), &run, "hamband");
    assert!(report.converged, "{report}");
}

#[test]
fn smr_baseline_converges_and_is_slower() {
    let c = Counter::default();
    let run = RunConfig::new(3, Workload::new(600, 0.5));
    let hb = run_hamband(&c, &c.coord_spec(), &run, "hamband");
    let smr = run_hamband(&c, &smr_coord(1), &run, "mu-smr");
    assert!(smr.converged, "{smr}");
    assert!(
        hb.throughput_ops_per_us > smr.throughput_ops_per_us,
        "hamband {hb} should beat smr {smr}"
    );
}

#[test]
fn msg_baseline_converges_and_is_much_slower() {
    let c = Counter::default();
    let run = RunConfig::new(3, Workload::new(600, 0.5));
    let hb = run_hamband(&c, &c.coord_spec(), &run, "hamband");
    let msg = run_msg(&c, &c.coord_spec(), &run);
    assert!(msg.converged, "{msg}");
    assert!(
        hb.throughput_ops_per_us > 3.0 * msg.throughput_ops_per_us,
        "hamband {hb} should dominate msg {msg}"
    );
    assert!(hb.mean_rt_us < msg.mean_rt_us, "hamband {hb} rt below msg {msg}");
}

#[test]
fn follower_failure_is_tolerated() {
    let c = Counter::default();
    let mut run = RunConfig::new(4, Workload::new(800, 0.5));
    run.faults = FaultPlan::new().at(SimTime(40_000), Fault::SuspendHeartbeat(NodeId(3)));
    let report = run_hamband(&c, &c.coord_spec(), &run, "hamband");
    assert!(report.converged, "{report}");
}

#[test]
fn leader_failure_elects_new_leader() {
    let cw = Courseware::default();
    let mut run = RunConfig::new(4, Workload::new(600, 0.5));
    // Group leader is node 0 by default; suspend its heartbeat mid-run.
    run.faults = FaultPlan::new().at(SimTime(60_000), Fault::SuspendHeartbeat(NodeId(0)));
    let report = run_hamband(&cw, &cw.coord_spec(), &run, "hamband");
    assert!(report.converged, "{report}");
}
