//! Adversarial audit of [`RunReport::to_json`]'s hand-rolled encoder.
//!
//! The bench gates parse the committed `BENCH_*.json` files with a
//! string scanner, and external tooling parses them with real JSON
//! parsers — so the encoder must emit strictly well-formed JSON for
//! *any* system label or method name an object spec might carry:
//! quotes, backslashes, control characters, astral-plane unicode. The
//! tree has no JSON dependency, so this test carries its own strict
//! recursive-descent validator (which doubles as a string decoder so
//! escaping can be checked for round-tripping, not just validity).

use std::collections::BTreeMap;

use hamband_runtime::metrics::{FairnessSummary, LatencySummary, RunReport};
use proptest::prelude::*;
use rdma_sim::SimTime;

/// Strict JSON validator/decoder: returns the decoded string values
/// encountered (in document order) iff the input is one well-formed
/// JSON value with no trailing garbage.
fn validate_json(s: &str) -> Result<Vec<String>, String> {
    let b: Vec<char> = s.chars().collect();
    let mut strings = Vec::new();
    let mut i = 0usize;
    value(&b, &mut i, &mut strings)?;
    skip_ws(&b, &mut i);
    if i != b.len() {
        return Err(format!("trailing garbage at char {i}"));
    }
    Ok(strings)
}

fn skip_ws(b: &[char], i: &mut usize) {
    while *i < b.len() && matches!(b[*i], ' ' | '\t' | '\n' | '\r') {
        *i += 1;
    }
}

fn value(b: &[char], i: &mut usize, out: &mut Vec<String>) -> Result<(), String> {
    skip_ws(b, i);
    match b.get(*i) {
        Some('{') => object(b, i, out),
        Some('[') => array(b, i, out),
        Some('"') => string(b, i).map(|s| out.push(s)),
        Some('t') => literal(b, i, "true"),
        Some('f') => literal(b, i, "false"),
        Some('n') => literal(b, i, "null"),
        Some(c) if *c == '-' || c.is_ascii_digit() => number(b, i),
        other => Err(format!("unexpected {other:?} at {i:?}")),
    }
}

fn literal(b: &[char], i: &mut usize, word: &str) -> Result<(), String> {
    for w in word.chars() {
        if b.get(*i) != Some(&w) {
            return Err(format!("broken literal {word} at {i:?}"));
        }
        *i += 1;
    }
    Ok(())
}

fn number(b: &[char], i: &mut usize) -> Result<(), String> {
    let start = *i;
    if b.get(*i) == Some(&'-') {
        *i += 1;
    }
    let digits = |b: &[char], i: &mut usize| {
        let from = *i;
        while b.get(*i).is_some_and(|c| c.is_ascii_digit()) {
            *i += 1;
        }
        *i > from
    };
    let int_from = *i;
    if !digits(b, i) {
        return Err(format!("number without integer part at {start}"));
    }
    if b[int_from] == '0' && *i - int_from > 1 {
        return Err(format!("leading zero at {start}"));
    }
    if b.get(*i) == Some(&'.') {
        *i += 1;
        if !digits(b, i) {
            return Err(format!("number without fraction digits at {start}"));
        }
    }
    if matches!(b.get(*i), Some('e') | Some('E')) {
        *i += 1;
        if matches!(b.get(*i), Some('+') | Some('-')) {
            *i += 1;
        }
        if !digits(b, i) {
            return Err(format!("number without exponent digits at {start}"));
        }
    }
    Ok(())
}

fn string(b: &[char], i: &mut usize) -> Result<String, String> {
    if b.get(*i) != Some(&'"') {
        return Err(format!("expected string at {i:?}"));
    }
    *i += 1;
    let mut s = String::new();
    loop {
        match b.get(*i) {
            None => return Err("unterminated string".into()),
            Some('"') => {
                *i += 1;
                return Ok(s);
            }
            Some('\\') => {
                *i += 1;
                match b.get(*i) {
                    Some('"') => s.push('"'),
                    Some('\\') => s.push('\\'),
                    Some('/') => s.push('/'),
                    Some('n') => s.push('\n'),
                    Some('r') => s.push('\r'),
                    Some('t') => s.push('\t'),
                    Some('b') => s.push('\u{8}'),
                    Some('f') => s.push('\u{c}'),
                    Some('u') => {
                        let hex: String = b.get(*i + 1..*i + 5).unwrap_or(&[]).iter().collect();
                        let code = u32::from_str_radix(&hex, 16)
                            .map_err(|_| format!("bad \\u escape {hex:?}"))?;
                        s.push(
                            char::from_u32(code).ok_or(format!("\\u{hex} is not a scalar"))?,
                        );
                        *i += 4;
                    }
                    other => return Err(format!("bad escape {other:?}")),
                }
                *i += 1;
            }
            Some(c) if (*c as u32) < 0x20 => {
                return Err(format!("raw control character {:#x} in string", *c as u32));
            }
            Some(c) => {
                s.push(*c);
                *i += 1;
            }
        }
    }
}

fn object(b: &[char], i: &mut usize, out: &mut Vec<String>) -> Result<(), String> {
    *i += 1; // '{'
    skip_ws(b, i);
    if b.get(*i) == Some(&'}') {
        *i += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, i);
        let key = string(b, i)?;
        out.push(key);
        skip_ws(b, i);
        if b.get(*i) != Some(&':') {
            return Err(format!("missing ':' at {i:?}"));
        }
        *i += 1;
        value(b, i, out)?;
        skip_ws(b, i);
        match b.get(*i) {
            Some(',') => *i += 1,
            Some('}') => {
                *i += 1;
                return Ok(());
            }
            other => return Err(format!("expected ',' or '}}', got {other:?}")),
        }
    }
}

fn array(b: &[char], i: &mut usize, out: &mut Vec<String>) -> Result<(), String> {
    *i += 1; // '['
    skip_ws(b, i);
    if b.get(*i) == Some(&']') {
        *i += 1;
        return Ok(());
    }
    loop {
        value(b, i, out)?;
        skip_ws(b, i);
        match b.get(*i) {
            Some(',') => *i += 1,
            Some(']') => {
                *i += 1;
                return Ok(());
            }
            other => return Err(format!("expected ',' or ']', got {other:?}")),
        }
    }
}

/// Strings drawn to hit the escaper where it hurts: quotes,
/// backslashes, every control character, multi-byte and astral
/// unicode, plus benign filler.
fn adversarial_string() -> impl Strategy<Value = String> {
    proptest::collection::vec(
        prop_oneof![
            Just('"' as u32),
            Just('\\' as u32),
            0u32..0x20,              // all raw controls, incl. \n \r \t
            0x20u32..0x7f,           // printable ASCII
            0xa0u32..0x2000,         // multi-byte BMP
            0x1f300u32..0x1f600,     // astral plane (emoji block)
        ],
        0..24,
    )
    .prop_map(|codes| codes.into_iter().filter_map(char::from_u32).collect())
}

fn report_with(system: String, methods: Vec<String>, phase: String) -> RunReport {
    let mut per_method = BTreeMap::new();
    for (i, m) in methods.into_iter().enumerate() {
        per_method.insert(m, i as f64 * 1.5);
    }
    let mut phases = BTreeMap::new();
    phases.insert(
        phase,
        LatencySummary { count: 2, mean_us: 1.0, p50_us: 1.0, p90_us: 2.0, p99_us: 2.0, max_us: 2.5 },
    );
    RunReport {
        system,
        nodes: 3,
        total_calls: 9,
        total_updates: 4,
        completed_at: SimTime(1_234),
        throughput_ops_per_us: 1.25,
        mean_rt_us: f64::INFINITY, // encoder must still emit a number
        writes_posted: 7,
        bytes_written: 700,
        writes_per_op: 1.75,
        per_method_rt_us: per_method,
        phases,
        converged: true,
        fairness: Some(FairnessSummary::default()),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn to_json_is_well_formed_for_adversarial_names(
        system in adversarial_string(),
        methods in proptest::collection::vec(adversarial_string(), 0..4),
        phase in adversarial_string(),
    ) {
        let report = report_with(system.clone(), methods.clone(), phase.clone());
        let json = report.to_json();
        let decoded = validate_json(&json)
            .map_err(|e| TestCaseError::fail(format!("{e}\njson: {json}")))?;
        // Escaping must round-trip: every name fed in comes back out
        // of a strict decoder unchanged.
        prop_assert!(
            decoded.contains(&system),
            "system label lost in encoding: {system:?}"
        );
        for m in &methods {
            prop_assert!(decoded.contains(m), "method name lost in encoding: {m:?}");
        }
        prop_assert!(decoded.contains(&phase), "phase label lost in encoding: {phase:?}");
    }
}

#[test]
fn validator_rejects_malformed_documents() {
    for bad in [
        "{", "}", "{\"a\":}", "{\"a\":1,}", "[1,]", "{\"a\" 1}", "\"\\x\"",
        "\"unterminated", "{\"a\":1}extra", "01", "1.", "1e", "\"\u{1}\"", "nul",
    ] {
        assert!(validate_json(bad).is_err(), "accepted malformed {bad:?}");
    }
}

#[test]
fn validator_accepts_and_decodes_escapes() {
    let got = validate_json(r#"{"k\n\"\\\u0041": [1.5, -2e-3, true, null, "v"]}"#).unwrap();
    assert_eq!(got, vec!["k\n\"\\A".to_string(), "v".to_string()]);
}
