//! End-to-end chaos-campaign tests: a small clean campaign across the
//! three issue paths (reduce, conflict-free, conflicting), and the
//! planted canary bug, which must be both caught and shrunk to a
//! paste-able repro of at most three schedule entries.

use hamband_runtime::chaos::{run_case, run_seed, shrink_case, ChaosOptions};
use hamband_types::{Bank, Counter, GSet, OrSet};
use rdma_sim::{Fault, FaultPlan, NodeId, SimTime};

#[test]
fn small_campaign_is_clean() {
    let opts = ChaosOptions { ops: 150, ..ChaosOptions::default() };
    for seed in 0..6 {
        let case = match seed % 3 {
            0 => {
                let c = Counter::default();
                run_seed(&c, &c.coord_spec(), seed, &opts)
            }
            1 => {
                let g = GSet::default();
                run_seed(&g, &g.coord_spec_buffered(), seed, &opts)
            }
            _ => {
                let b = Bank::default();
                run_seed(&b, &b.coord_spec(), seed, &opts)
            }
        };
        assert!(case.passed(), "seed {seed} violated: {:?}", case.violations);
    }
}

#[test]
fn five_node_campaign_is_clean() {
    let opts = ChaosOptions { nodes: 5, ops: 200, ..ChaosOptions::default() };
    for seed in 500..504 {
        let b = Bank::default();
        let case = run_seed(&b, &b.coord_spec(), seed, &opts);
        assert!(case.passed(), "seed {seed} violated: {:?}", case.violations);
    }
}

#[test]
fn sharded_campaign_is_clean() {
    // The key-sharded issue paths under fault schedules: Bank and
    // OrSet carry per-call shard keys, so `sync_shards = 4` splits
    // each conflicting group across four logs with four leaders —
    // convergence, integrity, and commit-before-ack must survive
    // elections and quota adoption on every shard independently.
    let opts = ChaosOptions { ops: 150, sync_shards: 4, ..ChaosOptions::default() };
    for seed in 0..6 {
        let case = if seed % 2 == 0 {
            let b = Bank::new(64, 50);
            run_seed(&b, &b.coord_spec(), seed, &opts)
        } else {
            let o = OrSet::new(64);
            run_seed(&o, &o.coord_spec(), seed, &opts)
        };
        assert!(case.passed(), "sharded seed {seed} violated: {:?}", case.violations);
    }
}

#[test]
fn recoverer_crash_cascades_backup_recovery() {
    // Shrunk repro from the 5-node campaign (seed 569): the group
    // leader n0 crashes with a free broadcast still pending in its
    // backup slots, then its designated recoverer n1 crashes before
    // re-executing it. Without cascaded recovery (recovery.rs step
    // 1b) the lost free call leaves a majority-committed conflicting
    // entry with an unsatisfiable dependency map on every survivor:
    // the apply frontier freezes one short of the commit index, the
    // new leader never clears its issue floor, and the run wedges.
    let opts = ChaosOptions { nodes: 5, ops: 400, sync_shards: 1, ..ChaosOptions::default() };
    let plan = FaultPlan::new()
        .at(SimTime(39_956), Fault::Crash(NodeId(0)))
        .at(SimTime(41_825), Fault::Crash(NodeId(1)));
    let b = Bank::default();
    let violations = run_case(&b, &b.coord_spec(), 569, &plan, &opts);
    assert!(violations.is_empty(), "cascaded recovery regressed: {violations:?}");
}

#[test]
fn canary_is_caught_and_shrunk() {
    let opts = ChaosOptions { canary: true, ops: 150, ..ChaosOptions::default() };
    let c = Counter::default();
    let mut caught = 0;
    for seed in 0..8 {
        let case = run_seed(&c, &c.coord_spec(), seed, &opts);
        if case.passed() {
            continue;
        }
        caught += 1;
        assert!(
            case.violations.iter().any(|v| v.check == "canary"),
            "seed {seed} failed for a non-canary reason: {:?}",
            case.violations
        );
        let minimal = shrink_case(&c, &c.coord_spec(), seed, &case.plan, &opts);
        assert!(
            !minimal.is_empty() && minimal.len() <= 3,
            "seed {seed}: repro shrank to {} entries, want 1..=3",
            minimal.len()
        );
    }
    assert!(caught >= 1, "the planted canary was never caught across 8 seeds");
}
