//! End-to-end chaos-campaign tests: a small clean campaign across the
//! three issue paths (reduce, conflict-free, conflicting), and the
//! planted canary bug, which must be both caught and shrunk to a
//! paste-able repro of at most three schedule entries.

use hamband_runtime::chaos::{run_seed, shrink_case, ChaosOptions};
use hamband_types::{Bank, Counter, GSet};

#[test]
fn small_campaign_is_clean() {
    let opts = ChaosOptions { ops: 150, ..ChaosOptions::default() };
    for seed in 0..6 {
        let case = match seed % 3 {
            0 => {
                let c = Counter::default();
                run_seed(&c, &c.coord_spec(), seed, &opts)
            }
            1 => {
                let g = GSet::default();
                run_seed(&g, &g.coord_spec_buffered(), seed, &opts)
            }
            _ => {
                let b = Bank::default();
                run_seed(&b, &b.coord_spec(), seed, &opts)
            }
        };
        assert!(case.passed(), "seed {seed} violated: {:?}", case.violations);
    }
}

#[test]
fn five_node_campaign_is_clean() {
    let opts = ChaosOptions { nodes: 5, ops: 200, ..ChaosOptions::default() };
    for seed in 500..504 {
        let b = Bank::default();
        let case = run_seed(&b, &b.coord_spec(), seed, &opts);
        assert!(case.passed(), "seed {seed} violated: {:?}", case.violations);
    }
}

#[test]
fn canary_is_caught_and_shrunk() {
    let opts = ChaosOptions { canary: true, ops: 150, ..ChaosOptions::default() };
    let c = Counter::default();
    let mut caught = 0;
    for seed in 0..8 {
        let case = run_seed(&c, &c.coord_spec(), seed, &opts);
        if case.passed() {
            continue;
        }
        caught += 1;
        assert!(
            case.violations.iter().any(|v| v.check == "canary"),
            "seed {seed} failed for a non-canary reason: {:?}",
            case.violations
        );
        let minimal = shrink_case(&c, &c.coord_spec(), seed, &case.plan, &opts);
        assert!(
            !minimal.is_empty() && minimal.len() <= 3,
            "seed {seed}: repro shrank to {} entries, want 1..=3",
            minimal.len()
        );
    }
    assert!(caught >= 1, "the planted canary was never caught across 8 seeds");
}
