//! Flat-combining ingress: behavior parity and many-session runs.
//!
//! Two families of guarantees:
//!
//! 1. **Parity** — a fixed-seed run must reproduce its golden trace
//!    fingerprint exactly; equality means every protocol event (ring
//!    appends, summary writes, elections, acks) happens at the same
//!    virtual time with the same payloads, so refactors that claim to
//!    preserve behavior are held to it bit-for-bit.
//! 2. **Many sessions** — session fan-in must not break convergence,
//!    determinism, or the per-session accounting that fairness
//!    reporting is built on.
//!
//! Golden provenance: the fingerprints were originally captured from
//! `examples/trace_fingerprint.rs` against the pre-ingress closed-loop
//! driver. They were re-blessed ONCE, in the key-sharding PR, when the
//! per-session RNG seeding was fixed — the old
//! `seed ^ node·C1 ^ session·C2` derivation let distinct
//! `(node, session)` pairs collide onto one stream, and the
//! splitmix64-chain replacement (`ingress::session_seed`) reseeds every
//! session, which legitimately shifts all RNG-dependent traces. The
//! GSet fingerprints are unchanged by that fix because its workload
//! mints update payloads from `(node, seq)` without consulting the
//! session RNG. A SECOND and THIRD re-bless came with the threaded
//! backend, both pure re-timings (every event count stayed identical,
//! only `at` timestamps moved, because one-sided WRITE byte counts
//! feed byte-proportional virtual latencies): slot strides were
//! rounded up to multiples of 8 (word alignment for the shared-memory
//! atomic region storage), and then the ring canary byte grew into an
//! 8-byte sequence echo (`codec::CANARY_TRAILER`) so a reused slot's
//! stale trailer cannot validate the next epoch's half-landed entry
//! under word-granularity concurrent readers. Counter goldens were
//! unchanged both times (its calls ride the summary path; no ring
//! entries, so no ring byte counts in its timings). Any future
//! mismatch is a regression, not an excuse for another bless.

use hamband_runtime::{
    RunConfig, Runner, System, TraceMode, TraceRecord, WorkloadSpec,
};
use hamband_types::{Bank, Counter, GSet};
use proptest::prelude::*;
use rdma_sim::{Fault, FaultPlan, NodeId, SimTime};

/// FNV-1a over the debug rendering of the full event stream — the same
/// digest `examples/trace_fingerprint.rs` prints.
fn digest(events: &[TraceRecord]) -> (usize, u64) {
    let mut h: u64 = 0xcbf29ce484222325;
    for e in events {
        let s = format!("{:?}@{:?}", e.event, e.at);
        for b in s.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
    }
    (events.len(), h)
}

/// Golden (seed, events, hash) fingerprints per workload (see module
/// header for provenance and the one re-bless). A mismatch means a
/// fixed-seed run no longer reproduces its blessed event stream.
const GOLDEN_COUNTER: [(u64, usize, u64); 3] = [
    (1, 918, 0x772c6b53c61ff199),
    (7, 918, 0x769ee5965b53e51d),
    (13, 918, 0xd21778286864edb0),
];
const GOLDEN_BANK: [(u64, usize, u64); 3] = [
    (1, 3345, 0x110889163c896b2c),
    (7, 3348, 0xa52e1334eaa7d8cd),
    (13, 3372, 0xcffb608059cec8b5),
];
const GOLDEN_GSET_FAULTS: [(u64, usize, u64); 3] = [
    (1, 2675, 0x725f6fe8df6ba1d5),
    (7, 2675, 0xfce172e469afb5a3),
    (13, 2675, 0xa16b947c55f8a459),
];
const GOLDEN_BANK_LEADERFAULT: [(u64, usize, u64); 3] = [
    (1, 4736, 0x8ba74939100c9ec6),
    (7, 4708, 0x699dec5bf3e48500),
    (13, 4711, 0xba5f52f03312bf99),
];

#[test]
fn one_session_ingress_matches_pre_ingress_driver_goldens() {
    for &(seed, events, hash) in &GOLDEN_COUNTER {
        let c = Counter::default();
        let cfg = RunConfig::new(3, WorkloadSpec::ops(300).with_update_ratio(0.5).with_seed(seed))
            .with_seed(seed)
            .with_trace(TraceMode::Collect);
        let out = Runner::new(System::Hamband, cfg).run(&c, &c.coord_spec());
        assert!(out.report.converged);
        assert_eq!(digest(&out.events), (events, hash), "counter seed={seed}");
    }
    for &(seed, events, hash) in &GOLDEN_BANK {
        let b = Bank::default();
        let cfg = RunConfig::new(4, WorkloadSpec::ops(400).with_update_ratio(0.5).with_seed(seed))
            .with_seed(seed)
            .with_trace(TraceMode::Collect);
        let out = Runner::new(System::Hamband, cfg).run(&b, &b.coord_spec());
        assert!(out.report.converged);
        assert_eq!(digest(&out.events), (events, hash), "bank seed={seed}");
    }
}

#[test]
fn one_session_parity_survives_faults_and_quota_adoption() {
    // Faulty runs exercise the adoption path (`adopt_free_quota`) and
    // deposed-leader aborts — both were rewired by the ingress.
    for &(seed, events, hash) in &GOLDEN_GSET_FAULTS {
        let g = GSet::default();
        let plan = FaultPlan::new()
            .at(SimTime(40_000), Fault::SuspendHeartbeat(NodeId(0)))
            .at(SimTime(60_000), Fault::Crash(NodeId(2)));
        let cfg = RunConfig::new(4, WorkloadSpec::ops(300).with_update_ratio(0.5).with_seed(seed))
            .with_seed(seed)
            .with_faults(plan)
            .with_trace(TraceMode::Collect);
        let out = Runner::new(System::Hamband, cfg).run(&g, &g.coord_spec_buffered());
        assert!(out.report.converged);
        assert_eq!(digest(&out.events), (events, hash), "gset+faults seed={seed}");
    }
    for &(seed, events, hash) in &GOLDEN_BANK_LEADERFAULT {
        let b = Bank::default();
        let plan = FaultPlan::new().at(SimTime(50_000), Fault::SuspendHeartbeat(NodeId(1)));
        let cfg = RunConfig::new(5, WorkloadSpec::ops(400).with_update_ratio(0.5).with_seed(seed))
            .with_seed(seed)
            .with_faults(plan)
            .with_trace(TraceMode::Collect);
        let out = Runner::new(System::Hamband, cfg).run(&b, &b.coord_spec());
        assert!(out.report.converged);
        assert_eq!(digest(&out.events), (events, hash), "bank+leaderfault seed={seed}");
    }
}

#[test]
fn many_session_counter_run_converges_with_fairness() {
    let c = Counter::default();
    let spec = WorkloadSpec::ops(2_000).with_sessions(256).with_window(2).with_seed(3);
    let out = Runner::new(System::Hamband, RunConfig::new(3, spec)).run(&c, &c.coord_spec());
    assert!(out.report.converged, "256 sessions/node must still converge");
    let fair = out.report.fairness.expect("harness reports fairness");
    assert_eq!(fair.sessions, 768);
    assert!(fair.ops_per_user_per_sec > 0.0);
    assert!(fair.min_session_ops_per_sec <= fair.max_session_ops_per_sec);
    assert!(
        fair.jain_index > 0.5,
        "round-robin combining should serve sessions roughly evenly, jain={}",
        fair.jain_index
    );
}

#[test]
fn many_session_bank_run_converges_across_protocol_paths() {
    // Bank exercises REDUCE (deposit) and CONF (withdraw) with
    // session fan-in; convergence plus a clean fairness block means
    // per-session ack fan-back survived leader commits and rejections.
    let b = Bank::default();
    let spec = WorkloadSpec::ops(1_200).with_sessions(64).with_window(2).with_seed(11);
    let out = Runner::new(System::Hamband, RunConfig::new(4, spec)).run(&b, &b.coord_spec());
    assert!(out.report.converged);
    let fair = out.report.fairness.expect("fairness present");
    assert_eq!(fair.sessions, 256);
    assert!(fair.jain_index > 0.0 && fair.jain_index <= 1.0 + 1e-9);
}

#[test]
fn many_session_runs_are_deterministic() {
    let run = || {
        let c = Counter::default();
        let spec = WorkloadSpec::ops(1_000).with_sessions(32).with_window(2).with_seed(9);
        let cfg = RunConfig::new(3, spec).with_seed(9).with_trace(TraceMode::Collect);
        let out = Runner::new(System::Hamband, cfg).run(&c, &c.coord_spec());
        (digest(&out.events), out.report.to_json())
    };
    let (d1, j1) = run();
    let (d2, j2) = run();
    assert_eq!(d1, d2, "same seed, same combined event stream");
    assert_eq!(j1, j2, "same seed, same report (fairness included)");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Any seed: a 1-session run and a rerun with the same seed are
    /// trace-identical, and fan-out to several sessions keeps the run
    /// convergent with exactly the expected session count.
    #[test]
    fn ingress_runs_deterministic_and_convergent_across_seeds(seed in 1u64..1_000) {
        let c = Counter::default();
        let one = |sessions: usize| {
            let spec = WorkloadSpec::ops(400)
                .with_update_ratio(0.5)
                .with_sessions(sessions)
                .with_seed(seed);
            let cfg = RunConfig::new(3, spec).with_seed(seed).with_trace(TraceMode::Collect);
            let out = Runner::new(System::Hamband, cfg).run(&c, &c.coord_spec());
            (digest(&out.events), out.report.converged, out.report.fairness)
        };
        let (d_a, conv_a, _) = one(1);
        let (d_b, conv_b, _) = one(1);
        prop_assert!(conv_a && conv_b);
        prop_assert_eq!(d_a, d_b);
        let (_, conv_multi, fair) = one(8);
        prop_assert!(conv_multi);
        prop_assert_eq!(fair.expect("fairness").sessions, 24);
    }
}
