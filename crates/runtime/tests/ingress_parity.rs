//! Flat-combining ingress: behavior parity and many-session runs.
//!
//! Two families of guarantees:
//!
//! 1. **Parity** — a 1-session ingress must be stream-identical to the
//!    pre-ingress closed-loop driver. The golden fingerprints below
//!    were captured from `examples/trace_fingerprint.rs` *before* the
//!    ingress refactor landed; equality means every protocol event
//!    (ring appends, summary writes, elections, acks) happens at the
//!    same virtual time with the same payloads.
//! 2. **Many sessions** — session fan-in must not break convergence,
//!    determinism, or the per-session accounting that fairness
//!    reporting is built on.

use hamband_runtime::{
    RunConfig, Runner, System, TraceMode, TraceRecord, WorkloadSpec,
};
use hamband_types::{Bank, Counter, GSet};
use proptest::prelude::*;
use rdma_sim::{Fault, FaultPlan, NodeId, SimTime};

/// FNV-1a over the debug rendering of the full event stream — the same
/// digest `examples/trace_fingerprint.rs` prints.
fn digest(events: &[TraceRecord]) -> (usize, u64) {
    let mut h: u64 = 0xcbf29ce484222325;
    for e in events {
        let s = format!("{:?}@{:?}", e.event, e.at);
        for b in s.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
    }
    (events.len(), h)
}

/// Golden (events, hash) fingerprints captured from the pre-ingress
/// driver, per workload and seed. A mismatch means the 1-session
/// ingress diverged from the old closed-loop client.
const GOLDEN_COUNTER: [(u64, usize, u64); 3] = [
    (1, 918, 0x23338fad217430ff),
    (7, 918, 0x83eee43120e936b5),
    (13, 918, 0x638a01a974a65af0),
];
const GOLDEN_BANK: [(u64, usize, u64); 3] = [
    (1, 3363, 0x3ef85d4c38ba9ec2),
    (7, 3345, 0x118c74220bbf936f),
    (13, 3351, 0xc31423d4cbe94d4a),
];
const GOLDEN_GSET_FAULTS: [(u64, usize, u64); 3] = [
    (1, 2675, 0x290f388650b5f544),
    (7, 2675, 0x647f778736d966ca),
    (13, 2675, 0xc82247fddbbeb6a4),
];
const GOLDEN_BANK_LEADERFAULT: [(u64, usize, u64); 3] = [
    (1, 4728, 0x256d0cfac55c74c9),
    (7, 4692, 0xf0b77df7859e46c3),
    (13, 4728, 0x22f3e2f5ca126dca),
];

#[test]
fn one_session_ingress_matches_pre_ingress_driver_goldens() {
    for &(seed, events, hash) in &GOLDEN_COUNTER {
        let c = Counter::default();
        let cfg = RunConfig::new(3, WorkloadSpec::ops(300).with_update_ratio(0.5).with_seed(seed))
            .with_seed(seed)
            .with_trace(TraceMode::Collect);
        let out = Runner::new(System::Hamband, cfg).run(&c, &c.coord_spec());
        assert!(out.report.converged);
        assert_eq!(digest(&out.events), (events, hash), "counter seed={seed}");
    }
    for &(seed, events, hash) in &GOLDEN_BANK {
        let b = Bank::default();
        let cfg = RunConfig::new(4, WorkloadSpec::ops(400).with_update_ratio(0.5).with_seed(seed))
            .with_seed(seed)
            .with_trace(TraceMode::Collect);
        let out = Runner::new(System::Hamband, cfg).run(&b, &b.coord_spec());
        assert!(out.report.converged);
        assert_eq!(digest(&out.events), (events, hash), "bank seed={seed}");
    }
}

#[test]
fn one_session_parity_survives_faults_and_quota_adoption() {
    // Faulty runs exercise the adoption path (`adopt_free_quota`) and
    // deposed-leader aborts — both were rewired by the ingress.
    for &(seed, events, hash) in &GOLDEN_GSET_FAULTS {
        let g = GSet::default();
        let plan = FaultPlan::new()
            .at(SimTime(40_000), Fault::SuspendHeartbeat(NodeId(0)))
            .at(SimTime(60_000), Fault::Crash(NodeId(2)));
        let cfg = RunConfig::new(4, WorkloadSpec::ops(300).with_update_ratio(0.5).with_seed(seed))
            .with_seed(seed)
            .with_faults(plan)
            .with_trace(TraceMode::Collect);
        let out = Runner::new(System::Hamband, cfg).run(&g, &g.coord_spec_buffered());
        assert!(out.report.converged);
        assert_eq!(digest(&out.events), (events, hash), "gset+faults seed={seed}");
    }
    for &(seed, events, hash) in &GOLDEN_BANK_LEADERFAULT {
        let b = Bank::default();
        let plan = FaultPlan::new().at(SimTime(50_000), Fault::SuspendHeartbeat(NodeId(1)));
        let cfg = RunConfig::new(5, WorkloadSpec::ops(400).with_update_ratio(0.5).with_seed(seed))
            .with_seed(seed)
            .with_faults(plan)
            .with_trace(TraceMode::Collect);
        let out = Runner::new(System::Hamband, cfg).run(&b, &b.coord_spec());
        assert!(out.report.converged);
        assert_eq!(digest(&out.events), (events, hash), "bank+leaderfault seed={seed}");
    }
}

#[test]
fn many_session_counter_run_converges_with_fairness() {
    let c = Counter::default();
    let spec = WorkloadSpec::ops(2_000).with_sessions(256).with_window(2).with_seed(3);
    let out = Runner::new(System::Hamband, RunConfig::new(3, spec)).run(&c, &c.coord_spec());
    assert!(out.report.converged, "256 sessions/node must still converge");
    let fair = out.report.fairness.expect("harness reports fairness");
    assert_eq!(fair.sessions, 768);
    assert!(fair.ops_per_user_per_sec > 0.0);
    assert!(fair.min_session_ops_per_sec <= fair.max_session_ops_per_sec);
    assert!(
        fair.jain_index > 0.5,
        "round-robin combining should serve sessions roughly evenly, jain={}",
        fair.jain_index
    );
}

#[test]
fn many_session_bank_run_converges_across_protocol_paths() {
    // Bank exercises REDUCE (deposit) and CONF (withdraw) with
    // session fan-in; convergence plus a clean fairness block means
    // per-session ack fan-back survived leader commits and rejections.
    let b = Bank::default();
    let spec = WorkloadSpec::ops(1_200).with_sessions(64).with_window(2).with_seed(11);
    let out = Runner::new(System::Hamband, RunConfig::new(4, spec)).run(&b, &b.coord_spec());
    assert!(out.report.converged);
    let fair = out.report.fairness.expect("fairness present");
    assert_eq!(fair.sessions, 256);
    assert!(fair.jain_index > 0.0 && fair.jain_index <= 1.0 + 1e-9);
}

#[test]
fn many_session_runs_are_deterministic() {
    let run = || {
        let c = Counter::default();
        let spec = WorkloadSpec::ops(1_000).with_sessions(32).with_window(2).with_seed(9);
        let cfg = RunConfig::new(3, spec).with_seed(9).with_trace(TraceMode::Collect);
        let out = Runner::new(System::Hamband, cfg).run(&c, &c.coord_spec());
        (digest(&out.events), out.report.to_json())
    };
    let (d1, j1) = run();
    let (d2, j2) = run();
    assert_eq!(d1, d2, "same seed, same combined event stream");
    assert_eq!(j1, j2, "same seed, same report (fairness included)");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Any seed: a 1-session run and a rerun with the same seed are
    /// trace-identical, and fan-out to several sessions keeps the run
    /// convergent with exactly the expected session count.
    #[test]
    fn ingress_runs_deterministic_and_convergent_across_seeds(seed in 1u64..1_000) {
        let c = Counter::default();
        let one = |sessions: usize| {
            let spec = WorkloadSpec::ops(400)
                .with_update_ratio(0.5)
                .with_sessions(sessions)
                .with_seed(seed);
            let cfg = RunConfig::new(3, spec).with_seed(seed).with_trace(TraceMode::Collect);
            let out = Runner::new(System::Hamband, cfg).run(&c, &c.coord_spec());
            (digest(&out.events), out.report.converged, out.report.fairness)
        };
        let (d_a, conv_a, _) = one(1);
        let (d_b, conv_b, _) = one(1);
        prop_assert!(conv_a && conv_b);
        prop_assert_eq!(d_a, d_b);
        let (_, conv_multi, fair) = one(8);
        prop_assert!(conv_multi);
        prop_assert_eq!(fair.expect("fairness").sessions, 24);
    }
}
