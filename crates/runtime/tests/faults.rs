//! Fault-path tests: reliable-broadcast recovery after a crash, the
//! canary protocol under torn writes, and failure detection timing.

use hamband_core::counts::DepMap;
use hamband_core::ids::{Pid, Rid};
use hamband_runtime::codec::{compose_backup_slot, Entry, BACKUP_FREE};
use hamband_runtime::{HambandNode, Layout, RuntimeConfig, WorkloadSpec};
use hamband_types::{Counter, GSet};
use rdma_sim::{Fault, FaultPlan, LatencyModel, NodeId, SimDuration, SimTime, Simulator};

fn counter_cluster(
    n: usize,
    ops: u64,
    plan: &FaultPlan,
) -> (Simulator<HambandNode<Counter>>, Layout) {
    let c = Counter::default();
    let coord = c.coord_spec();
    let cfg = RuntimeConfig::default();
    let workload = WorkloadSpec::ops(ops).with_update_ratio(0.5).with_seed(0xfa01);
    let mut sim = Simulator::new(n, LatencyModel::default(), 0xfa02);
    let layout = Layout::install(&mut sim, &coord, &cfg);
    let leaders = coord.default_leaders(n);
    sim.install_fault_plan(plan);
    {
        let coord = coord.clone();
        let layout = layout.clone();
        sim.set_apps(move |id| {
            HambandNode::new(
                c.clone(),
                coord.clone(),
                cfg.clone(),
                layout.clone(),
                id,
                n,
                &leaders,
                workload.clone(),
            )
        });
    }
    (sim, layout)
}

/// A node crashes (fail-stop) with a pending conflict-free broadcast
/// sitting in its backup slot that never reached anyone. The reliable
/// broadcast's agreement half must kick in: the designated recoverer
/// reads the backup remotely and re-executes the writes, and every
/// alive node applies the rescued call.
#[test]
fn crash_recovery_delivers_pending_broadcast() {
    // Use the buffered GSet so calls flow through F rings.
    let g = GSet::default();
    let coord = g.coord_spec_buffered();
    let cfg = RuntimeConfig::default();
    let n = 3;
    // No client workload: we inject the pending broadcast by hand.
    let workload = WorkloadSpec::ops(0).with_update_ratio(0.5).with_seed(1);
    let mut sim: Simulator<HambandNode<GSet>> = Simulator::new(n, LatencyModel::default(), 7);
    let layout = Layout::install(&mut sim, &coord, &cfg);
    let leaders = coord.default_leaders(n);
    // Crash node 2 shortly after start.
    sim.install_fault_plan(&FaultPlan::new().at(SimTime(30_000), Fault::Crash(NodeId(2))));
    {
        let coord2 = coord.clone();
        let g2 = g.clone();
        let layout = layout.clone();
        sim.set_apps(move |id| {
            HambandNode::new(
                g2.clone(),
                coord2.clone(),
                cfg.clone(),
                layout.clone(),
                id,
                n,
                &leaders,
                workload.clone(),
            )
        });
    }
    // Before the crash fires, plant a pending broadcast in node 2's
    // backup region: a conflict-free call (seq 1 in node 2's F rings)
    // that "was about to be written" but never went out — the crash
    // window between the local backup write and the remote writes.
    sim.run_for(SimDuration::micros(5));
    let entry = Entry {
        rid: Rid::new(Pid(2), 0),
        update: hamband_types::gset::GSetUpdate::AddAll(vec![42, 43]),
        deps: DepMap::empty(),
    };
    let slot = entry.to_slot(1, layout.entry_size());
    let (off, size) = layout.backup_slot(0);
    let backup = compose_backup_slot(BACKUP_FREE, 0xff, 1, &slot, size);
    sim.with_app_ctx(NodeId(2), |_, ctx| {
        ctx.local_write(layout.backup, off, &backup);
    });
    // Run long enough for the crash, suspicion, recovery read, and
    // rebroadcast to complete.
    sim.run_for(SimDuration::millis(2));
    assert!(sim.is_crashed(NodeId(2)));
    for i in 0..2 {
        let state = sim.app(NodeId(i)).state_snapshot();
        assert!(
            state.contains(&42) && state.contains(&43),
            "node {i} missed the rescued broadcast: {state:?}"
        );
    }
    let s0 = sim.app(NodeId(0)).state_snapshot();
    assert_eq!(sim.app(NodeId(1)).state_snapshot(), s0, "survivors agree");
}

/// The canary protocol under torn landings: with the fabric splitting
/// every write to one node, the cluster still converges to the same
/// state (no partially landed entry is ever consumed).
#[test]
fn torn_writes_do_not_corrupt_replication() {
    let plan = FaultPlan::new().at(SimTime::ZERO, Fault::TornWrites(NodeId(1)));
    let (mut sim, _layout) = counter_cluster(3, 400, &plan);
    for _ in 0..400 {
        sim.run_for(SimDuration::micros(50));
        if (0..3).all(|i| sim.app(NodeId(i)).workload_done()) {
            break;
        }
    }
    sim.run_for(SimDuration::millis(1));
    let s0 = sim.app(NodeId(0)).state_snapshot();
    for i in 0..3 {
        assert_eq!(sim.app(NodeId(i)).state_snapshot(), s0, "node {i} diverged under torn writes");
        assert_eq!(sim.app(NodeId(i)).applied_updates(), sim.app(NodeId(0)).applied_updates());
    }
}

/// Crash (not just heartbeat suspension) of a follower: survivors
/// converge among themselves.
#[test]
fn follower_crash_survivors_converge() {
    let plan = FaultPlan::new().at(SimTime(40_000), Fault::Crash(NodeId(3)));
    let (mut sim, _layout) = counter_cluster(4, 400, &plan);
    for _ in 0..800 {
        sim.run_for(SimDuration::micros(50));
        let survivors_done = (0..3).all(|i| sim.app(NodeId(i)).workload_done());
        let agree = (0..3)
            .all(|i| sim.app(NodeId(i)).applied_map() == sim.app(NodeId(0)).applied_map());
        if sim.now() > SimTime(40_000) && survivors_done && agree {
            break;
        }
    }
    sim.run_for(SimDuration::millis(1));
    let s0 = sim.app(NodeId(0)).state_snapshot();
    for i in 1..3 {
        assert_eq!(sim.app(NodeId(i)).state_snapshot(), s0, "survivor {i} diverged");
    }
}

/// The group leader crashes; the next-in-line candidate (node 1)
/// crashes too, while the failover it drives is still in flight (a
/// delay spike stretches its election reads). The survivors must
/// notice that the stuck candidate is gone, run a fresh election among
/// themselves, and still converge on the full surviving workload.
#[test]
fn leader_crash_during_election_reelects() {
    let plan = FaultPlan::new()
        .at(SimTime(40_000), Fault::Crash(NodeId(0)))
        .at(SimTime(55_000), Fault::DelaySpike(NodeId(1), 20, SimDuration::micros(30)))
        .at(SimTime(62_000), Fault::Crash(NodeId(1)));
    // Bank has a conflicting method, so group 0 actually runs
    // leader-based replication (Counter is reduce-only).
    let b = hamband_types::Bank::default();
    let coord = b.coord_spec();
    let cfg = RuntimeConfig::default();
    let n = 5;
    let workload = WorkloadSpec::ops(400).with_update_ratio(0.5).with_seed(0xfa03);
    let mut sim: Simulator<HambandNode<hamband_types::Bank>> =
        Simulator::new(n, LatencyModel::default(), 0xfa04);
    let layout = Layout::install(&mut sim, &coord, &cfg);
    let leaders = coord.default_leaders(n);
    sim.install_fault_plan(&plan);
    {
        let coord = coord.clone();
        sim.set_apps(move |id| {
            HambandNode::new(
                b.clone(),
                coord.clone(),
                cfg.clone(),
                layout.clone(),
                id,
                n,
                &leaders,
                workload.clone(),
            )
        });
    }
    for _ in 0..1600 {
        sim.run_for(SimDuration::micros(50));
        let done = (2..5).all(|i| sim.app(NodeId(i)).workload_done());
        let agree =
            (2..5).all(|i| sim.app(NodeId(i)).applied_map() == sim.app(NodeId(2)).applied_map());
        if sim.now() > SimTime(62_000) && done && agree {
            break;
        }
    }
    sim.run_for(SimDuration::millis(1));
    assert!(sim.is_crashed(NodeId(0)) && sim.is_crashed(NodeId(1)));
    let s2 = sim.app(NodeId(2)).state_snapshot();
    for i in 3..5 {
        assert_eq!(sim.app(NodeId(i)).state_snapshot(), s2, "survivor {i} diverged");
    }
    // Leadership moved past both crashed nodes to the lowest survivor.
    for i in 2..5 {
        assert_eq!(sim.app(NodeId(i)).leader_view(0), Pid(2), "node {i} leader view");
    }
}
