//! REDUCE path: reducible calls folded into per-(group, source)
//! summaries and broadcast as seqlock-versioned summary slots.
//!
//! Fig. 7's REDUCE rule: a reducible call is summarized with the
//! issuer's current summary for its summarization group; peers learn it
//! by polling the issuer's summary slot (last-writer-wins, carrying the
//! per-method applied counts). The broadcast is write-combined: at most
//! one summary WRITE per (group, peer) channel is in flight; calls
//! folded in meanwhile wait (`sum_waiters`) for a later write to carry
//! their — or a newer — version, and a completion that lands stale
//! reposts the latest slot before crediting anyone.

use hamband_core::ids::{MethodId, Pid};
use hamband_core::object::WorkloadSupport;
use hamband_core::wire::Wire;
use rdma_sim::{NodeId, Phase, TraceEvent};

use crate::calls::{Outstanding, Route};
use crate::codec::{summary_version, SummarySlot};
use crate::replica::HambandNode;
use crate::transport::Transport;

/// Last summary observed from one (summarization group, source):
/// version word, per-method applied counts, and the summary itself.
#[derive(Debug, Clone)]
pub(crate) struct CachedSummary<U> {
    pub(crate) version: u64,
    pub(crate) counts: Vec<u64>,
    pub(crate) summary: Option<U>,
}

impl<O> HambandNode<O>
where
    O: WorkloadSupport,
    O::Update: Wire,
{
    /// REDUCE: fold into the summary, broadcast the slot.
    pub(crate) fn issue_reduce<T: Transport>(
        &mut self,
        ctx: &mut T,
        update: O::Update,
        method: MethodId,
        g: usize,
        session: u32,
    ) {
        if !self.permissible_now(&update) {
            self.reject(method, session);
            return;
        }
        ctx.consume(ctx.latency().apply_cost);
        let me = self.me.index();
        let group_methods: Vec<MethodId> = self.coord.sum_groups()[g].clone();
        let midx = group_methods.iter().position(|&m| m == method).expect("method in group");
        // Summarize with the current own summary.
        let new_summary = match &self.sum_cache[g][me].summary {
            None => update.clone(),
            Some(prev) => self
                .spec
                .summarize(prev, &update)
                .expect("summarization group closed under summarize"),
        };
        let cache = &mut self.sum_cache[g][me];
        cache.version += 1;
        cache.counts[midx] += 1;
        cache.summary = Some(new_summary);
        let version = cache.version;
        // Encode the latest slot once into the group's reusable buffer
        // (used prefix only) straight from the cache — no clones.
        let mut slot = std::mem::take(&mut self.sum_slot_buf[g]);
        {
            let cache = &self.sum_cache[g][me];
            SummarySlot::encode_parts_into(
                version,
                &cache.counts,
                cache.summary.as_ref(),
                self.layout.summary_size(g),
                &mut slot,
            );
        }
        self.applied.set(Pid(me), method, self.sum_cache[g][me].counts[midx]);
        // Local effects: the call itself lands in the views.
        self.apply_to_views(&update);
        self.metrics.last_apply = ctx.now();

        let (call_id, _rid) = self.mint_call(method);
        // Reliable broadcast: backup first, then the remote writes.
        let backup_slot = self.write_backup(ctx, call_id, crate::codec::BACKUP_SUMMARY, g as u8, version, &slot);
        let offset = self.layout.summary_offset(g, self.me);
        ctx.local_write(self.layout.summaries, offset, &slot);
        // Durability seam: the own summary slot is this node's only
        // record of its reducible calls — fence it before the remote
        // copies can land.
        ctx.fence_region(self.layout.summaries);
        // Write-combining: post only where the (group, peer) channel is
        // idle; otherwise the call waits for a later write to carry its
        // (or a newer) version — the slot is last-writer-wins, so a
        // landed version v acknowledges every call folded in up to v.
        let mut remotes = 0;
        for q in 0..self.n {
            if q == me {
                continue;
            }
            remotes += 1;
            self.sum_waiters[g][q].push_back((version, call_id));
            if self.sum_inflight[g][q].is_none() {
                self.post_summary(ctx, g, NodeId(q), version, &slot, method.index());
            }
        }
        self.sum_slot_buf[g] = slot;
        self.outstanding.insert(
            call_id,
            Outstanding {
                issued_at: self.pending_arrival.take().unwrap_or_else(|| ctx.now()),
                method,
                session,
                phase: Phase::Reduce,
                conf: None,
                ack_remaining: remotes,
                total_remaining: remotes,
                backup_slot: Some(backup_slot),
            },
        );
        if remotes == 0 {
            self.finish_call(ctx, call_id);
        }
    }

    /// Post one summary WRITE of `slot` (carrying `version`) to
    /// `target` and mark the (group, peer) channel busy. `method` only
    /// labels the trace event (a combined write carries the whole
    /// group's summary).
    pub(crate) fn post_summary<T: Transport>(
        &mut self,
        ctx: &mut T,
        g: usize,
        target: NodeId,
        version: u64,
        slot: &[u8],
        method: usize,
    ) {
        debug_assert!(self.sum_inflight[g][target.index()].is_none(), "one in flight per peer");
        let offset = self.layout.summary_offset(g, self.me);
        let wr = ctx.post_write(target, self.layout.summaries, offset, slot);
        let issuer = self.me;
        ctx.emit(|| TraceEvent::SummaryWrite { issuer, target, method, version });
        self.sum_inflight[g][target.index()] = Some(version);
        self.wr_routes.insert(wr, Route::SummaryWrite { group: g, target, version });
    }

    /// Poll every peer's summary slots: adopt newer versions into the
    /// cache, raise the applied counts, and fold the summary into the
    /// views (or invalidate them, for non-monotone summaries).
    pub(crate) fn poll_summaries<T: Transport>(&mut self, ctx: &mut T) {
        let monotone = self.spec.summaries_monotone();
        for g in 0..self.sum_cache.len() {
            let group_methods: Vec<MethodId> = self.coord.sum_groups()[g].clone();
            for src in 0..self.n {
                if src == self.me.index() {
                    continue;
                }
                let off = self.layout.summary_offset(g, NodeId(src));
                let size = self.layout.summary_size(g);
                let parsed = {
                    let bytes = ctx.local(self.layout.summaries, off, size);
                    // Fast path: peek the leading version word before
                    // paying for a full seqlock parse — an unchanged
                    // slot is the common case in the poll loop.
                    if summary_version(bytes) <= self.sum_cache[g][src].version {
                        continue;
                    }
                    SummarySlot::<O::Update>::from_slot(bytes, group_methods.len())
                };
                let Some(slot) = parsed else { continue };
                if slot.version <= self.sum_cache[g][src].version {
                    continue;
                }
                ctx.consume(ctx.latency().apply_cost);
                for (i, &m) in group_methods.iter().enumerate() {
                    let old = self.applied.get(Pid(src), m);
                    self.applied.set(Pid(src), m, old.max(slot.counts[i]));
                }
                if monotone {
                    if let Some(sum) = &slot.summary {
                        if !self.mat_dirty {
                            self.spec.apply_mut(&mut self.mat, sum);
                        }
                        if let Some(sm) = self.spec_mat.as_mut() {
                            self.spec.apply_mut(sm, sum);
                        }
                    }
                } else {
                    self.mat_dirty = true;
                    // A stale speculative view would corrupt checks:
                    // rebuild it from scratch below if present.
                    if self.spec_mat.is_some() {
                        self.rebuild_spec_mat();
                    }
                }
                self.metrics.remote_applied += 1;
                self.metrics.last_apply = ctx.now();
                self.sum_cache[g][src] = CachedSummary {
                    version: slot.version,
                    counts: slot.counts,
                    summary: slot.summary,
                };
            }
        }
    }

    /// A summary WRITE to `(g, target)` completed: free the channel,
    /// repost if the local summary already moved past what landed, and
    /// credit every call whose version the landed write covers.
    pub(crate) fn on_summary_write_done<T: Transport>(
        &mut self,
        ctx: &mut T,
        g: usize,
        target: NodeId,
        version: u64,
    ) {
        // Summary regions never revoke write permission, so the
        // status needs no inspection (same as before combining).
        let q = target.index();
        debug_assert_eq!(self.sum_inflight[g][q], Some(version), "routed write matches");
        self.sum_inflight[g][q] = None;
        // The slot is last-writer-wins: landing version v makes
        // every folded-in call up to v durable at this peer.
        let mut credited = Vec::new();
        while let Some(&(v, cid)) = self.sum_waiters[g][q].front() {
            if v > version {
                break;
            }
            self.sum_waiters[g][q].pop_front();
            credited.push(cid);
        }
        // Dirty channel: the local summary moved past what
        // landed — repost the latest slot (it is already
        // encoded in the group's reuse buffer). This must
        // happen BEFORE crediting: crediting re-enters the
        // pump, and a fresh reduce issued there must find the
        // channel busy again, not post a second in-flight
        // write on it.
        let latest = self.sum_cache[g][self.me.index()].version;
        if latest > version {
            debug_assert!(
                !self.sum_waiters[g][q].is_empty(),
                "a newer local version implies someone still waits"
            );
            let slot = std::mem::take(&mut self.sum_slot_buf[g]);
            let method = self.coord.sum_groups()[g][0].index();
            self.post_summary(ctx, g, target, latest, &slot, method);
            self.sum_slot_buf[g] = slot;
        }
        for cid in credited {
            self.credit_summary_peer(ctx, cid);
        }
    }
}
