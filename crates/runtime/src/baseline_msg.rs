//! The message-passing CRDT baseline (MSG) of the evaluation.
//!
//! Op-based CRDT replication over the two-sided channel: an update is
//! applied locally and broadcast as a message carrying the call and its
//! dependency map; receivers buffer out-of-causal-order calls until
//! their dependencies are satisfied, apply them, and send an
//! acknowledgement back. The client is acknowledged once every peer has
//! confirmed receipt — the delivery guarantee a reliable op-based CRDT
//! broadcast provides.
//!
//! Every message traverses the modelled network and OS stack and costs
//! receiver CPU, which is exactly the asymmetry against one-sided RDMA
//! that the paper's MSG-vs-Hamband comparison measures (Figs. 8, 9).

use std::collections::{HashMap, VecDeque};

use hamband_core::coord::{CoordSpec, GroupMapper};
use hamband_core::counts::CountMap;
use hamband_core::ids::{MethodId, Pid, Rid};
use hamband_core::object::{ObjectSpec, WorkloadSupport};
use hamband_core::wire::{DecodeError, Reader, Wire, Writer};
use rdma_sim::{App, AppFault, Ctx, Event, NodeId, Phase, SimTime, TraceEvent};

use crate::codec::Entry;
use crate::driver::{Planned, WorkloadSpec};
use crate::ingress::Ingress;
use crate::metrics::NodeMetrics;

const TAG_PUMP: u64 = 0;

/// Wire frame of the MSG baseline.
enum Frame<U> {
    /// An update call with its dependency map.
    Op(Entry<U>),
    /// Receipt acknowledgement for the sender's call `seq`.
    Ack(u64),
}

impl<U: Wire> Frame<U> {
    fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        match self {
            Frame::Op(e) => {
                w.u8(0);
                let payload = e.encode_payload();
                w.lp_bytes(&payload);
            }
            Frame::Ack(seq) => {
                w.u8(1);
                w.varint(*seq);
            }
        }
        w.into_vec()
    }

    fn decode(bytes: &[u8]) -> Result<Self, DecodeError> {
        let mut r = Reader::new(bytes);
        match r.u8()? {
            0 => Ok(Frame::Op(Entry::decode_payload(r.lp_bytes()?)?)),
            1 => Ok(Frame::Ack(r.varint()?)),
            _ => Err(DecodeError),
        }
    }
}

/// A replica of the message-passing CRDT baseline.
///
/// Only meaningful for conflict-free objects (the paper's MSG baseline
/// covers the CRDT use-cases); constructing it for an object with
/// conflicting methods panics.
pub struct MsgCrdtNode<O: ObjectSpec> {
    spec: O,
    coord: CoordSpec,
    me: NodeId,
    n: usize,
    state: O::State,
    applied: CountMap,
    /// Buffered out-of-order remote calls, per source.
    pending: Vec<VecDeque<Entry<O::Update>>>,
    ingress: Ingress,
    /// Own call seq → (call id, acks still expected, issue time,
    /// method, issuing session).
    awaiting: HashMap<u64, (u64, usize, SimTime, MethodId, u32)>,
    outstanding_meta: HashMap<u64, ()>,
    next_seq: u64,
    next_call_id: u64,
    halted: bool,
    /// Exposed measurements.
    pub metrics: NodeMetrics,
}

impl<O> MsgCrdtNode<O>
where
    O: WorkloadSupport,
    O::Update: Wire,
{
    /// Build the baseline replica.
    ///
    /// # Panics
    ///
    /// Panics if the object has conflicting methods (MSG provides no
    /// synchronization).
    pub fn new(spec: O, coord: CoordSpec, me: NodeId, n: usize, workload: WorkloadSpec) -> Self {
        assert!(
            coord.sync_groups().is_empty(),
            "the MSG baseline only replicates conflict-free objects"
        );
        let state = spec.initial();
        // No backup ring in the MSG baseline: sessions are bounded by
        // their windows alone.
        let ingress =
            Ingress::new(&workload, &coord, GroupMapper::identity(&coord), me.index(), n, usize::MAX);
        MsgCrdtNode {
            state,
            applied: CountMap::new(n, coord.method_count()),
            pending: (0..n).map(|_| VecDeque::new()).collect(),
            ingress,
            awaiting: HashMap::new(),
            outstanding_meta: HashMap::new(),
            next_seq: 0,
            next_call_id: 0,
            halted: false,
            metrics: NodeMetrics::default(),
            spec,
            coord,
            me,
            n,
        }
    }

    /// The node's current state.
    pub fn state_snapshot(&self) -> O::State {
        self.state.clone()
    }

    /// The applied-calls map.
    pub fn applied_map(&self) -> &CountMap {
        &self.applied
    }

    /// Total update calls applied locally.
    pub fn applied_updates(&self) -> u64 {
        self.applied.total()
    }

    /// Whether the local workload is fully issued and acknowledged.
    pub fn workload_done(&self) -> bool {
        (self.ingress.local_done() || self.halted) && self.awaiting.is_empty()
    }

    /// Per-session completion stats (for harness fairness accounting).
    pub fn session_stats(&self) -> Vec<crate::ingress::SessionStats> {
        self.ingress.session_stats()
    }

    /// Whether this node halted.
    pub fn is_halted(&self) -> bool {
        self.halted
    }

    /// One-line diagnostic snapshot (for harness debugging).
    pub fn debug_pending(&self) -> String {
        let pend: Vec<usize> = self.pending.iter().map(|q| q.len()).collect();
        let mut heads = String::new();
        for (src, q) in self.pending.iter().enumerate() {
            if let Some(e) = q.front() {
                use std::fmt::Write as _;
                let _ = write!(heads, " head[{src}]={:?} deps={}", e.rid, e.deps);
                for (p, m, need) in e.deps.iter() {
                    let have = self.applied.get(p, m);
                    if have < need {
                        let _ = write!(heads, " SHORT(p{} u{} have {have} need {need})", p.index(), m.index());
                    }
                }
            }
        }
        format!(
            "awaiting={} pending={pend:?} drv_done={}{heads}",
            self.awaiting.len(),
            self.ingress.local_done()
        )
    }

    fn pump(&mut self, ctx: &mut Ctx<'_>) {
        if self.halted {
            return;
        }
        loop {
            let planned = self.ingress.next(&self.spec, &self.state, &self.coord, &[], &[]);
            match planned {
                None => return,
                Some((_, Planned::Query(q))) => {
                    let _ = self.spec.query(&self.state, &q);
                    ctx.consume(ctx.latency().apply_cost);
                    let cost = ctx.latency().apply_cost;
                    self.metrics.ack_query(cost);
                }
                Some((session, Planned::Update(u))) => self.issue(ctx, u, session),
            }
        }
    }

    fn issue(&mut self, ctx: &mut Ctx<'_>, update: O::Update, session: u32) {
        let method = self.spec.method_of(&update);
        let post = self.spec.apply(&self.state, &update);
        if !self.spec.invariant(&post) {
            self.metrics.rejected += 1;
            self.ingress.on_abort(session);
            return;
        }
        ctx.consume(ctx.latency().apply_cost);
        let deps = self.applied.project(self.coord.dependencies(method));
        let seq = self.next_seq;
        self.next_seq += 1;
        let call_id = self.next_call_id;
        self.next_call_id += 1;
        let rid = Rid::new(Pid(self.me.index()), seq);
        self.state = post;
        self.applied.increment(Pid(self.me.index()), method);
        self.metrics.last_apply = ctx.now();
        let entry = Entry { rid, update, deps };
        let frame = Frame::Op(entry).encode();
        for q in 0..self.n {
            if q != self.me.index() {
                ctx.send(NodeId(q), frame.clone().into());
            }
        }
        self.awaiting.insert(seq, (call_id, self.n - 1, ctx.now(), method, session));
        self.outstanding_meta.insert(call_id, ());
        if self.n == 1 {
            self.complete(ctx, seq);
        }
    }

    fn complete(&mut self, ctx: &mut Ctx<'_>, seq: u64) {
        if let Some((_, _, issued_at, method, session)) = self.awaiting.remove(&seq) {
            // MSG replicates every update through the conflict-free
            // broadcast path; report it under the FREE phase.
            self.metrics.ack_update(method.index(), Phase::Free, issued_at, ctx.now());
            let node = self.me;
            ctx.emit(|| TraceEvent::Ack {
                node,
                method: method.index(),
                phase: Phase::Free,
                group: None,
                seq: Some(seq),
            });
            let rt_ns = ctx.now().since(issued_at).as_nanos();
            self.ingress.on_ack(session, rt_ns);
        }
        self.pump(ctx);
    }

    fn deliver(&mut self, ctx: &mut Ctx<'_>, entry: Entry<O::Update>) {
        let src = entry.rid.issuer.index();
        self.pending[src].push_back(entry);
        self.drain(ctx);
    }

    fn drain(&mut self, ctx: &mut Ctx<'_>) {
        loop {
            let mut progressed = false;
            for src in 0..self.n {
                while let Some(front) = self.pending[src].front() {
                    if !self.applied.satisfies(&front.deps) {
                        break;
                    }
                    let entry = self.pending[src].pop_front().expect("front checked");
                    ctx.consume(ctx.latency().apply_cost);
                    let method = self.spec.method_of(&entry.update);
                    self.spec.apply_mut(&mut self.state, &entry.update);
                    self.applied.increment(entry.rid.issuer, method);
                    self.metrics.remote_applied += 1;
                    self.metrics.last_apply = ctx.now();
                    ctx.send(entry.rid.issuer_node(), Frame::<O::Update>::Ack(entry.rid.seq).encode().into());
                    progressed = true;
                }
            }
            if !progressed {
                return;
            }
        }
    }
}

/// Helper: the simulator node of an issuer pid.
trait RidExt {
    fn issuer_node(&self) -> NodeId;
}

impl RidExt for Rid {
    fn issuer_node(&self) -> NodeId {
        NodeId(self.issuer.index())
    }
}

impl<O> App for MsgCrdtNode<O>
where
    O: WorkloadSupport,
    O::Update: Wire,
{
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.set_timer(rdma_sim::SimDuration::micros(1), TAG_PUMP);
        self.pump(ctx);
    }

    fn on_event(&mut self, ctx: &mut Ctx<'_>, event: Event) {
        match event {
            Event::Timer { tag: TAG_PUMP, .. } => {
                self.pump(ctx);
                ctx.set_timer(rdma_sim::SimDuration::micros(2), TAG_PUMP);
            }
            Event::Timer { .. } => {}
            Event::Message { payload, .. } => match Frame::<O::Update>::decode(&payload) {
                Ok(Frame::Op(entry)) => self.deliver(ctx, entry),
                Ok(Frame::Ack(seq)) => {
                    let done = {
                        match self.awaiting.get_mut(&seq) {
                            Some(slot) => {
                                slot.1 -= 1;
                                slot.1 == 0
                            }
                            None => false,
                        }
                    };
                    if done {
                        self.complete(ctx, seq);
                    }
                }
                Err(_) => {}
            },
            Event::Completion { .. } => {}
            Event::Fault { kind: AppFault::SuspendHeartbeat } => {
                self.halted = true;
                self.ingress.halt();
            }
            Event::Fault { kind: AppFault::ResumeHeartbeat } => {}
        }
    }
}
