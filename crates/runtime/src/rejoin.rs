//! Crash-restart rejoin: the idempotent recovery pass a restarted
//! replica runs before re-entering the cluster.
//!
//! A restarted node's volatile regions are zeroed and its durable
//! regions hold exactly what was remotely written plus what it fenced
//! locally (see [`crate::persist`]). Recovery rebuilds the soft state
//! from scratch and then replays the persist log over it, in log
//! order — which is the original apply order, so every entry's
//! dependency map is satisfied when it is re-applied. The pass is
//! idempotent: running it twice from the same durable image yields the
//! same state, because it only folds logged entries into a freshly
//! reset σ.
//!
//! After replay the node:
//!
//! * republishes its ring-reader heads at the replayed frontiers (so
//!   peers' writers never reuse a slot this node has applied),
//! * re-posts its own free-ring window and summary slot to every peer
//!   (closing the bounded per-peer gap of appends that were minted but
//!   not yet posted when it crashed — slot re-writes are idempotent),
//! * rebuilds the summary caches from the durable slot copies,
//! * re-arms the timer chains (the pre-crash chains died inside the
//!   crash window), and
//! * announces [`ControlMsg::Retired`] followed by a
//!   [`ControlMsg::JoinRequest`]: peers treat its workload as
//!   crash-stop (quota adoption, elections for groups it led) and
//!   reply per mapped group with the leadership they currently
//!   recognize, which re-seeds this node's permission grants.
//!
//! The node rejoins as a full protocol participant — it polls, votes,
//! serves reads, and performs delegate recovery duties — but never
//! issues workload again and never runs for leadership
//! (`workload_retired`): its pre-crash client sessions are gone, and a
//! retired leader would wedge convergence because peers keep its
//! suspicion sticky.

use std::collections::VecDeque;

use hamband_core::coord::GroupMapper;
use hamband_core::counts::CountMap;
use hamband_core::ids::{MethodId, Pid};
use hamband_core::object::WorkloadSupport;
use hamband_core::wire::Wire;
use rdma_sim::{NodeId, RingKind};

use crate::codec::{Entry, SummarySlot};
use crate::conf::GroupEngine;
use crate::heartbeat::{FailureDetector, Heartbeat};
use crate::ingress::Ingress;
use crate::messages::ControlMsg;
use crate::persist::LogRecord;
use crate::reduce::CachedSummary;
use crate::replica::{HambandNode, TAG_FD, TAG_HEARTBEAT, TAG_POLL};
use crate::rings::RingReader;
use crate::transport::Transport;

impl<O> HambandNode<O>
where
    O: WorkloadSupport,
    O::Update: Wire,
{
    /// Append a [`LogRecord::GroupHard`] snapshot of group `g`'s hard
    /// consensus state (epoch, promise, commit) and fence it. Called at
    /// every point where that state changes *before* its consequences
    /// leave the node — a vote must not be forgotten once acted on.
    pub(crate) fn log_group_hard<T: Transport>(&mut self, ctx: &mut T, g: usize) {
        if self.log.is_none() {
            return;
        }
        let e = &self.engines[g];
        let rec = LogRecord::GroupHard {
            group: g as u32,
            epoch: e.epoch,
            promised: e.promised,
            commit: e.commit,
        };
        self.log_and_fence(ctx, &rec);
    }

    /// Append `rec` to the persist log and fence it immediately; a
    /// no-op under [`DurabilityMode::Off`](crate::persist::DurabilityMode::Off).
    pub(crate) fn log_and_fence<T: Transport>(&mut self, ctx: &mut T, rec: &LogRecord) {
        if let Some(log) = self.log.as_mut() {
            log.append(ctx, rec);
            log.fence(ctx);
        }
    }

    /// The recovery pass. Runs on the restart event, after the fabric
    /// has restored the node's regions (durable contents kept or rolled
    /// back to the last fence; volatile contents zeroed).
    pub(crate) fn restart_recover<T: Transport>(&mut self, ctx: &mut T) {
        if self.log.is_none() {
            // Crash-stop configuration: nothing durable survived, so a
            // "restarted" node can only stay silent — exactly the
            // behavior the crash-stop campaigns already verify.
            self.halted = true;
            self.ingress.halt();
            return;
        }
        self.reset_soft_state();

        // Replay the persist log in order. Log order is the original
        // apply order, so dependency maps are satisfied as we go.
        let records = self.log.as_mut().expect("checked above").replay(ctx);
        let mut free_frontier = vec![0u64; self.n];
        let mut conf_frontier = vec![0u64; self.engines.len()];
        // Own free-ring entries (seq ascending — the re-post window).
        let mut own_free: Vec<(u64, Vec<u8>)> = Vec::new();
        for rec in records {
            match rec {
                LogRecord::FreeSlot { src, slot } => {
                    let src = src as usize;
                    if src >= self.n {
                        continue;
                    }
                    let Some(seq) = slot_seq(&slot) else { continue };
                    let Some(entry) = Entry::<O::Update>::from_slot(&slot, seq) else {
                        continue;
                    };
                    let method = self.spec.method_of(&entry.update);
                    self.spec.apply_mut(&mut self.sigma, &entry.update);
                    self.applied.increment(entry.rid.issuer, method);
                    free_frontier[src] = free_frontier[src].max(seq);
                    if src == self.me.index() {
                        own_free.push((seq, slot));
                    }
                }
                LogRecord::ConfSlot { group, slot } => {
                    let g = group as usize;
                    if g >= self.engines.len() {
                        continue;
                    }
                    let Some(seq) = slot_seq(&slot) else { continue };
                    let Some(entry) = Entry::<O::Update>::from_slot(&slot, seq) else {
                        continue;
                    };
                    let method = self.spec.method_of(&entry.update);
                    self.spec.apply_mut(&mut self.sigma, &entry.update);
                    self.applied.increment(entry.rid.issuer, method);
                    conf_frontier[g] = conf_frontier[g].max(seq);
                }
                LogRecord::GroupHard { group, epoch, promised, commit } => {
                    let g = group as usize;
                    if let Some(e) = self.engines.get_mut(g) {
                        e.epoch = e.epoch.max(epoch);
                        e.promised = e.promised.max(promised);
                        e.commit = e.commit.max(commit);
                    }
                }
            }
        }

        // Republish ring-reader heads at the replayed frontiers: the
        // persist discipline logs+fences every entry *before* the head
        // is published, so the durable frontier is always at or past
        // what peers' writers believe we acked — they never reuse a
        // slot above it.
        for (src, &frontier) in free_frontier.iter().enumerate() {
            if src == self.me.index() {
                continue;
            }
            self.free_readers[src].as_mut().expect("reader for peer").adopt_head(ctx, frontier);
        }
        let own_tail = own_free.last().map_or(0, |&(s, _)| s);
        for w in self.free_writers.iter_mut().flatten() {
            w.adopt_tail(own_tail);
        }
        for (g, &frontier) in conf_frontier.iter().enumerate() {
            // The commit cell is remote-written (durable as it lands),
            // so it may be ahead of the last logged GroupHard. Committed
            // entries past the replayed frontier are re-applied from the
            // ring copy by the ordinary poll once the reader reaches
            // them.
            let cell = {
                let b = ctx.local(self.layout.conf[g], self.layout.conf_commit_offset(), 8);
                u64::from_le_bytes(b.try_into().expect("8 bytes"))
            };
            let e = &mut self.engines[g];
            e.commit = e.commit.max(cell);
            e.reader.adopt_head(ctx, frontier);
        }

        // Rebuild the summary caches from the durable slot copies
        // (remote slots landed durably; the own slot was fenced at every
        // issue). Re-post the own slot to every peer: a crash between
        // the local fence and the remote writes may have left peers one
        // version behind, and summary slots are last-writer-wins.
        for g in 0..self.sum_cache.len() {
            let group_methods: Vec<MethodId> = self.coord.sum_groups()[g].clone();
            for src in 0..self.n {
                let off = self.layout.summary_offset(g, NodeId(src));
                let size = self.layout.summary_size(g);
                let parsed = {
                    let bytes = ctx.local(self.layout.summaries, off, size);
                    SummarySlot::<O::Update>::from_slot(bytes, group_methods.len())
                };
                let Some(slot) = parsed else { continue };
                for (i, &m) in group_methods.iter().enumerate() {
                    let old = self.applied.get(Pid(src), m);
                    self.applied.set(Pid(src), m, old.max(slot.counts[i]));
                }
                if src == self.me.index() && slot.version > 0 {
                    let image = ctx.local(self.layout.summaries, off, size).to_vec();
                    for q in 0..self.n {
                        if q != self.me.index() {
                            ctx.post_write(NodeId(q), self.layout.summaries, off, &image);
                        }
                    }
                }
                self.sum_cache[g][src] =
                    CachedSummary { version: slot.version, counts: slot.counts, summary: slot.summary };
            }
        }

        // Re-post the tail window of the own free ring to every peer:
        // appends minted before the crash may not have been posted to
        // every peer (the unposted gap is a contiguous suffix bounded by
        // the backup-slot cap, far below the ring capacity), and slot
        // re-writes are idempotent. Completions arrive with no claiming
        // writer and fall through the dispatch harmlessly.
        let window_lo = own_tail.saturating_sub(self.layout.free_cap() as u64);
        for (seq, slot) in own_free.iter().filter(|&&(s, _)| s > window_lo) {
            let off = self.layout.free_ring_base(self.me)
                + ((seq - 1) as usize % self.layout.free_cap()) * self.layout.entry_size();
            for q in 0..self.n {
                if q != self.me.index() {
                    ctx.post_write(NodeId(q), self.layout.free_rings, off, slot);
                }
            }
        }

        // Views: σ is rebuilt; let the materialized view refresh lazily
        // from σ + the rebuilt caches on the next pump.
        self.mat_dirty = true;

        // The pre-crash timer chains died inside the crash window
        // (their events were dropped while the node was down), so fresh
        // chains re-arm without doubling.
        ctx.set_timer(self.cfg.poll_interval, TAG_POLL);
        ctx.set_timer_isolated(self.cfg.heartbeat_interval, TAG_HEARTBEAT);
        ctx.set_timer_isolated(self.cfg.fd_interval, TAG_FD);
        self.hb.beat(ctx);

        // Membership handshake: retire the pre-crash workload first
        // (peers adopt the remaining quota and elect replacements for
        // any group this node led), then ask every peer which leader it
        // currently recognizes per mapped group.
        for q in 0..self.n {
            if q != self.me.index() {
                ctx.send(NodeId(q), ControlMsg::Retired.to_bytes().into());
                ctx.send(NodeId(q), ControlMsg::JoinRequest.to_bytes().into());
            }
        }
    }

    /// Reset every piece of *soft* (reconstructible) state to its
    /// initial value, exactly as [`HambandNode::new`] builds it — the
    /// replay pass then folds the durable hard state over this blank
    /// slate.
    fn reset_soft_state(&mut self) {
        self.sigma = self.spec.initial();
        self.mat = self.sigma.clone();
        self.mat_dirty = false;
        self.spec_mat = None;
        self.applied = CountMap::new(self.n, self.coord.method_count());
        let sum_group_count = self.coord.sum_groups().len();
        self.sum_cache = self
            .coord
            .sum_groups()
            .iter()
            .map(|g| {
                (0..self.n)
                    .map(|_| CachedSummary { version: 0, counts: vec![0; g.len()], summary: None })
                    .collect()
            })
            .collect();
        self.sum_inflight = (0..sum_group_count).map(|_| vec![None; self.n]).collect();
        self.sum_waiters =
            (0..sum_group_count).map(|_| vec![VecDeque::new(); self.n]).collect();
        self.sum_slot_buf = vec![Vec::new(); sum_group_count];
        self.free_writers.clear();
        self.free_readers.clear();
        self.setup_free_endpoints();
        let leaders = self.initial_leaders.clone();
        self.engines = leaders
            .iter()
            .enumerate()
            .map(|(g, &l)| {
                GroupEngine::new(
                    l,
                    RingReader::new(
                        RingKind::Conf,
                        self.layout.conf[g],
                        self.layout.conf_ring_base(),
                        self.layout.conf_cap(),
                        self.layout.entry_size(),
                        self.layout.heads,
                        self.layout.conf_head_offset(g),
                    ),
                )
            })
            .collect();
        self.hb = Heartbeat::new(self.layout.heartbeat);
        self.fd = FailureDetector::new(self.me, self.n, self.layout.heartbeat, self.cfg.fd_suspect_after)
            .with_min_sample_gap(self.cfg.heartbeat_interval);
        self.adopted = vec![false; self.n];
        let mapper = GroupMapper::new(&self.coord, self.cfg.sync_shards);
        self.ingress = Ingress::new(
            &self.workload,
            &self.coord,
            mapper,
            self.me.index(),
            self.n,
            self.cfg.backup_slots,
        );
        // The pre-crash client sessions are gone: the rejoined node
        // participates in the protocol but issues no further workload.
        self.ingress.halt();
        self.workload_retired = true;
        self.speculative_store.clear();
        self.outstanding.clear();
        self.free_call_by_seq.clear();
        self.wr_routes.clear();
        self.conf_retries.clear();
        self.retry_timer_armed = false;
        self.halted = false;
        self.pending_arrival = None;
        self.join_epoch = vec![0; self.engines.len()];
        // `metrics`, `next_call_id`, `next_rid_seq` deliberately
        // survive: measurements span the restart, and request ids must
        // never be reused even though no further calls are minted.
    }
}

/// The ring sequence number a slot claims (its first eight bytes);
/// `None` for a slot too short to carry one.
fn slot_seq(slot: &[u8]) -> Option<u64> {
    Some(u64::from_le_bytes(slot.get(0..8)?.try_into().ok()?))
}
