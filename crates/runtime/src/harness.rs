//! End-to-end run harness: build a cluster for one of the three
//! systems, drive the workload to completion, and measure.
//!
//! Measurements follow §5 "Platform and setup": *throughput* is the
//! total number of calls divided by the (virtual) time it takes for all
//! update calls to be replicated on all nodes; *response time* is the
//! average over all calls.

use hamband_core::coord::CoordSpec;
use hamband_core::ids::Pid;
use hamband_core::object::WorkloadSupport;
use hamband_core::wire::Wire;
use rdma_sim::{FaultPlan, LatencyModel, NodeId, SimDuration, SimTime, Simulator};

use crate::baseline_msg::MsgCrdtNode;
use crate::config::RuntimeConfig;
use crate::driver::Workload;
use crate::layout::Layout;
use crate::metrics::RunReport;
use crate::replica::HambandNode;
use crate::trace_enabled;

/// Which replication system to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum System {
    /// Hamband: per-category coordination (the paper's contribution).
    Hamband,
    /// A Mu-style SMR: the same runtime with a *complete* conflict
    /// relation, so every update is ordered by a single leader —
    /// "linearizable data types are a special case of WRDTs where the
    /// conflict relation is complete" (§3.2).
    MuSmr,
    /// Message-passing op-based CRDT replication (conflict-free objects
    /// only).
    Msg,
}

impl System {
    /// Harness label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            System::Hamband => "hamband",
            System::MuSmr => "mu-smr",
            System::Msg => "msg",
        }
    }
}

/// Everything needed to run one experiment.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// Cluster size.
    pub nodes: usize,
    /// The workload to apply.
    pub workload: Workload,
    /// Runtime tuning.
    pub runtime: RuntimeConfig,
    /// Fabric latency model.
    pub latency: LatencyModel,
    /// Fabric RNG seed.
    pub seed: u64,
    /// Faults to inject.
    pub faults: FaultPlan,
    /// Hard cap on virtual time (a run that exceeds it reports
    /// `converged = false`).
    pub max_time: SimTime,
    /// Explicit leader assignment per synchronization group
    /// (defaults to the coordination spec's round-robin assignment;
    /// used e.g. by the Fig. 10 single-leader ablation).
    pub leaders: Option<Vec<Pid>>,
}

impl RunConfig {
    /// A default configuration for `nodes` nodes and `workload`.
    ///
    /// The summary-slot capacity is scaled to the workload, since
    /// grow-only summaries accumulate every call their issuer folded
    /// in.
    pub fn new(nodes: usize, workload: Workload) -> Self {
        let mut runtime = RuntimeConfig::default();
        runtime.summary_payload_cap =
            runtime.summary_payload_cap.max(workload.total_ops as usize * 16);
        RunConfig {
            nodes,
            workload,
            runtime,
            latency: LatencyModel::default(),
            seed: 0x5eed,
            faults: FaultPlan::new(),
            max_time: SimTime(200_000_000), // 200 virtual milliseconds
            leaders: None,
        }
    }
}

/// The complete conflict relation over `n_methods` methods: one
/// synchronization group containing every method (the SMR special
/// case).
pub fn smr_coord(n_methods: usize) -> CoordSpec {
    let mut b = CoordSpec::builder(n_methods);
    for m in 0..n_methods {
        b = b.conflict(0, m);
        b = b.conflict(m, m);
    }
    b.build()
}

/// Run Hamband (or, with [`smr_coord`], the Mu-SMR baseline) to
/// completion.
pub fn run_hamband<O>(spec: &O, coord: &CoordSpec, run: &RunConfig, label: &str) -> RunReport
where
    O: WorkloadSupport + Clone,
    O::Update: Wire,
{
    let n = run.nodes;
    let mut sim: Simulator<HambandNode<O>> = Simulator::new(n, run.latency.clone(), run.seed);
    let layout = Layout::install(&mut sim, coord, &run.runtime);
    let leaders: Vec<Pid> =
        run.leaders.clone().unwrap_or_else(|| coord.default_leaders(n));
    sim.install_fault_plan(&run.faults);
    {
        let spec = spec.clone();
        let coord = coord.clone();
        let cfg = run.runtime.clone();
        let workload = run.workload.clone();
        let leaders2 = leaders.clone();
        sim.set_apps(move |id| {
            HambandNode::new(
                spec.clone(),
                coord.clone(),
                cfg.clone(),
                layout.clone(),
                id,
                n,
                &leaders2,
                workload.clone(),
            )
        });
    }
    // Aliveness is dynamic: a node scheduled to fail later still
    // counts until its fault actually fires (it halts or crashes).
    let alive_now = |sim: &Simulator<HambandNode<O>>| -> Vec<NodeId> {
        (0..n)
            .map(NodeId)
            .filter(|&id| !sim.is_crashed(id) && !sim.app(id).is_halted())
            .collect()
    };
    // A run with faults planned must not be declared done before the
    // last fault has fired.
    let last_fault_at = run
        .faults
        .entries()
        .iter()
        .map(|&(t, _)| t)
        .max()
        .unwrap_or(SimTime::ZERO);

    let slice = SimDuration::micros(25);
    let mut done = false;
    let mut last_progress = 0u64;
    let mut stalled = 0usize;
    while sim.now() < run.max_time {
        sim.run_for(slice);
        let alive = alive_now(&sim);
        if sim.now() > last_fault_at && !alive.is_empty() {
            let all_done = alive.iter().all(|&id| sim.app(id).workload_done());
            if all_done {
                let a0 = sim.app(alive[0]).applied_map().clone();
                if alive.iter().all(|&id| *sim.app(id).applied_map() == a0) {
                    if trace_enabled() {
                        eprintln!("done declared at {} alive={:?}", sim.now(), alive);
                        for id in &alive {
                            eprintln!("  {}", sim.app(*id).debug_status());
                        }
                    }
                    done = true;
                    break;
                }
            }
        }
        // Stall watchdog: a workload that cannot progress (e.g. nothing
        // issuable) ends the run as unconverged instead of burning
        // virtual time to the cap.
        let progress: u64 = alive.iter().map(|&id| sim.app(id).applied_updates()).sum();
        if progress == last_progress {
            stalled += 1;
            if stalled > 2_000 {
                if trace_enabled() {
                    eprintln!("harness watchdog break at {}", sim.now());
                    for id in &alive {
                        eprintln!("  {}", sim.app(*id).debug_status());
                    }
                }
                break;
            }
        } else {
            stalled = 0;
            last_progress = progress;
        }
    }
    // Let stragglers (commit writes, backups) settle for convergence.
    sim.run_for(SimDuration::micros(300));

    let alive = alive_now(&sim);
    let completed_at = alive
        .iter()
        .map(|&id| sim.app(id).metrics.last_apply)
        .max()
        .unwrap_or(SimTime::ZERO);
    let s0 = sim.app(alive[0]).state_snapshot();
    let converged = done && alive.iter().all(|&id| sim.app(id).state_snapshot() == s0);
    if trace_enabled() && !converged {
        eprintln!("run not converged: done={done} at {}", sim.now());
        for id in 0..n {
            eprintln!("  {}", sim.app(NodeId(id)).debug_status());
        }
    }
    // Metrics cover every node: a failed node's pre-failure work is
    // real work (the paper counts all calls); only convergence and
    // completion checks exclude it.
    summarize(
        label,
        n,
        (0..n).map(|i| &sim.app(NodeId(i)).metrics),
        spec,
        completed_at,
        converged,
    )
}

/// Run the MSG baseline to completion.
pub fn run_msg<O>(spec: &O, coord: &CoordSpec, run: &RunConfig) -> RunReport
where
    O: WorkloadSupport + Clone,
    O::Update: Wire,
{
    let n = run.nodes;
    let mut sim: Simulator<MsgCrdtNode<O>> = Simulator::new(n, run.latency.clone(), run.seed);
    sim.install_fault_plan(&run.faults);
    {
        let spec = spec.clone();
        let coord = coord.clone();
        let workload = run.workload.clone();
        sim.set_apps(move |id| {
            MsgCrdtNode::new(spec.clone(), coord.clone(), id, n, workload.clone())
        });
    }
    let alive_now = |sim: &Simulator<MsgCrdtNode<O>>| -> Vec<NodeId> {
        (0..n)
            .map(NodeId)
            .filter(|&id| !sim.is_crashed(id) && !sim.app(id).is_halted())
            .collect()
    };
    let last_fault_at = run
        .faults
        .entries()
        .iter()
        .map(|&(t, _)| t)
        .max()
        .unwrap_or(SimTime::ZERO);

    let slice = SimDuration::micros(25);
    let mut done = false;
    let mut last_progress = 0u64;
    let mut stalled = 0usize;
    while sim.now() < run.max_time {
        sim.run_for(slice);
        let alive = alive_now(&sim);
        if sim.now() > last_fault_at && !alive.is_empty() {
            let all_done = alive.iter().all(|&id| sim.app(id).workload_done());
            if all_done {
                let a0 = sim.app(alive[0]).applied_map().clone();
                if alive.iter().all(|&id| *sim.app(id).applied_map() == a0) {
                    done = true;
                    break;
                }
            }
        }
        let progress: u64 = alive.iter().map(|&id| sim.app(id).applied_updates()).sum();
        if progress == last_progress {
            stalled += 1;
            if stalled > 2_000 {
                break;
            }
        } else {
            stalled = 0;
            last_progress = progress;
        }
    }
    sim.run_for(SimDuration::micros(300));

    let alive = alive_now(&sim);
    let completed_at = alive
        .iter()
        .map(|&id| sim.app(id).metrics.last_apply)
        .max()
        .unwrap_or(SimTime::ZERO);
    let s0 = sim.app(alive[0]).state_snapshot();
    let converged = done && alive.iter().all(|&id| sim.app(id).state_snapshot() == s0);
    summarize(
        "msg",
        n,
        (0..n).map(|i| &sim.app(NodeId(i)).metrics),
        spec,
        completed_at,
        converged,
    )
}

fn summarize<'a, O: WorkloadSupport>(
    label: &str,
    nodes: usize,
    metrics: impl Iterator<Item = &'a crate::metrics::NodeMetrics>,
    spec: &O,
    completed_at: SimTime,
    converged: bool,
) -> RunReport {
    let names = spec.method_names();
    let mut total_calls = 0u64;
    let mut total_updates = 0u64;
    let mut rt_sum = 0u64;
    let mut rt_count = 0u64;
    let mut per_method: std::collections::BTreeMap<String, (u64, u64)> = Default::default();
    for m in metrics {
        total_calls += m.updates_acked + m.queries;
        total_updates += m.updates_acked;
        rt_sum += m.rt_sum_ns;
        rt_count += m.rt_count;
        for (&mid, &(sum, count)) in &m.rt_per_method_ns {
            let slot = per_method
                .entry(names.get(mid).copied().unwrap_or("?").to_string())
                .or_insert((0, 0));
            slot.0 += sum;
            slot.1 += count;
        }
    }
    let elapsed_us = completed_at.as_micros().max(1e-9);
    RunReport {
        system: label.to_string(),
        nodes,
        total_calls,
        total_updates,
        completed_at,
        throughput_ops_per_us: total_calls as f64 / elapsed_us,
        mean_rt_us: if rt_count == 0 { 0.0 } else { rt_sum as f64 / rt_count as f64 / 1_000.0 },
        per_method_rt_us: per_method
            .into_iter()
            .map(|(k, (s, c))| (k, if c == 0 { 0.0 } else { s as f64 / c as f64 / 1_000.0 }))
            .collect(),
        converged,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smr_coord_is_one_group() {
        let c = smr_coord(4);
        assert_eq!(c.sync_groups().len(), 1);
        assert_eq!(c.sync_groups()[0].len(), 4);
        for m in 0..4 {
            assert!(c.category(hamband_core::ids::MethodId(m)).is_conflicting());
        }
    }

    #[test]
    fn system_labels() {
        assert_eq!(System::Hamband.label(), "hamband");
        assert_eq!(System::MuSmr.label(), "mu-smr");
        assert_eq!(System::Msg.label(), "msg");
    }
}
