//! End-to-end run harness: build a cluster for one of the three
//! systems, drive the workload to completion, and measure.
//!
//! The entry point is [`Runner`]: pick a [`System`], build a
//! [`RunConfig`] (builder-style, starting from [`RunConfig::for_nodes`]
//! or [`RunConfig::new`]), and call [`Runner::run`] with the object
//! spec and coordination spec. The result is a [`RunOutcome`]: the
//! cluster-level [`RunReport`] (JSON-serializable via
//! [`RunReport::to_json`]), the per-node [`NodeMetrics`], and — when
//! the config asks for [`TraceMode::Collect`] — the run's structured
//! [`TraceRecord`] stream.
//!
//! Measurements follow §5 "Platform and setup": *throughput* is the
//! total number of calls divided by the (virtual) time it takes for all
//! update calls to be replicated on all nodes; *response time* is the
//! average over all calls (now also reported as per-phase
//! p50/p90/p99/max distributions).

use hamband_core::coord::{CoordSpec, GroupMapper};
use hamband_core::counts::CountMap;
use hamband_core::ids::Pid;
use hamband_core::object::WorkloadSupport;
use hamband_core::wire::Wire;
use rdma_sim::{
    App, CollectingSink, FaultPlan, LatencyModel, NodeId, Phase, SimDuration, SimTime, Simulator,
    Stats, StderrSink, TraceBuffer, TraceRecord,
};

use crate::backends::dispatch_replicas;
pub use crate::backends::Backend;
use crate::baseline_msg::MsgCrdtNode;
use crate::config::RuntimeConfig;
use crate::driver::WorkloadSpec;
use crate::ingress::SessionStats;
use crate::layout::Layout;
use crate::metrics::{FairnessSummary, LatencyHistogram, NodeMetrics, RunReport};
use crate::replica::HambandNode;

/// Which replication system to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum System {
    /// Hamband: per-category coordination (the paper's contribution).
    Hamband,
    /// A Mu-style SMR: the same runtime with a *complete* conflict
    /// relation, so every update is ordered by a single leader —
    /// "linearizable data types are a special case of WRDTs where the
    /// conflict relation is complete" (§3.2). [`Runner`] applies the
    /// complete relation internally; the coordination spec passed to
    /// [`Runner::run`] only contributes its method count.
    MuSmr,
    /// Message-passing op-based CRDT replication (conflict-free objects
    /// only).
    Msg,
}

impl System {
    /// Harness label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            System::Hamband => "hamband",
            System::MuSmr => "mu-smr",
            System::Msg => "msg",
        }
    }
}


/// How a run delivers the structured protocol trace
/// ([`rdma_sim::TraceEvent`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TraceMode {
    /// No sink installed — hot paths pay one branch per would-be event
    /// and never construct it.
    #[default]
    Off,
    /// Events (and harness progress diagnostics) printed to stderr as
    /// they happen.
    Stderr,
    /// Events collected in memory and returned in
    /// [`RunOutcome::events`].
    Collect,
}

/// Everything needed to run one experiment.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// Cluster size.
    pub nodes: usize,
    /// The workload to apply.
    pub workload: WorkloadSpec,
    /// Runtime tuning.
    pub runtime: RuntimeConfig,
    /// Fabric latency model.
    pub latency: LatencyModel,
    /// Fabric RNG seed.
    pub seed: u64,
    /// Faults to inject.
    pub faults: FaultPlan,
    /// Hard cap on virtual time (a run that exceeds it reports
    /// `converged = false`).
    pub max_time: SimTime,
    /// Explicit leader assignment per synchronization group
    /// (defaults to the coordination spec's round-robin assignment;
    /// used e.g. by the Fig. 10 single-leader ablation).
    pub leaders: Option<Vec<Pid>>,
    /// How this run delivers trace events.
    pub trace: TraceMode,
    /// Which transport backend executes the run (defaults to the
    /// `HAMBAND_BACKEND` environment selection, normally
    /// [`Backend::Sim`]).
    pub backend: Backend,
}

impl RunConfig {
    /// A default configuration for `nodes` nodes and `workload`.
    ///
    /// The summary-slot capacity is scaled to the workload, since
    /// grow-only summaries accumulate every call their issuer folded
    /// in.
    pub fn new(nodes: usize, workload: WorkloadSpec) -> Self {
        assert!(nodes >= 1, "a cluster needs at least one node");
        let mut runtime = RuntimeConfig::default();
        runtime.summary_payload_cap =
            runtime.summary_payload_cap.max(workload.total_ops as usize * 16);
        RunConfig {
            nodes,
            workload,
            runtime,
            latency: LatencyModel::default(),
            seed: 0x5eed,
            faults: FaultPlan::new(),
            max_time: SimTime(200_000_000), // 200 virtual milliseconds
            leaders: None,
            trace: TraceMode::Off,
            backend: Backend::from_env(),
        }
    }

    /// Builder entry point: a validated default configuration for an
    /// `nodes`-node cluster with a small mixed workload (1000 calls,
    /// 25% updates). Chain `with_*` calls to customize.
    pub fn for_nodes(nodes: usize) -> Self {
        RunConfig::new(nodes, WorkloadSpec::ops(1_000).with_update_ratio(0.25))
    }

    /// Replace the workload (re-scales the summary-slot capacity the
    /// same way [`RunConfig::new`] does).
    pub fn with_workload(mut self, workload: WorkloadSpec) -> Self {
        self.runtime.summary_payload_cap =
            self.runtime.summary_payload_cap.max(workload.total_ops as usize * 16);
        self.workload = workload;
        self
    }

    /// Inject this fault plan.
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Use this fabric latency model.
    pub fn with_latency(mut self, latency: LatencyModel) -> Self {
        self.latency = latency;
        self
    }

    /// Use this fabric RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Deliver trace events this way (off / stderr / collected).
    pub fn with_trace(mut self, trace: TraceMode) -> Self {
        self.trace = trace;
        self
    }

    /// Assign these initial leaders (one per synchronization group).
    pub fn with_leaders(mut self, leaders: Vec<Pid>) -> Self {
        self.leaders = Some(leaders);
        self
    }

    /// Cap the run at this much virtual time.
    pub fn with_max_time(mut self, max_time: SimTime) -> Self {
        assert!(max_time > SimTime::ZERO, "max_time must be positive");
        self.max_time = max_time;
        self
    }

    /// Replace the runtime tuning wholesale.
    pub fn with_runtime(mut self, runtime: RuntimeConfig) -> Self {
        self.runtime = runtime;
        self
    }

    /// Execute the run on this backend (overrides the
    /// `HAMBAND_BACKEND` environment selection).
    pub fn with_backend(mut self, backend: Backend) -> Self {
        self.backend = backend;
        self
    }

    /// Key shards per synchronization group (see
    /// [`RuntimeConfig::sync_shards`]); keeps the rest of the runtime
    /// tuning (including the workload-derived summary cap) intact.
    pub fn with_sync_shards(mut self, shards: usize) -> Self {
        self.runtime = self.runtime.with_sync_shards(shards);
        self
    }
}

/// Everything one [`Runner::run`] produces.
#[derive(Debug)]
pub struct RunOutcome {
    /// The cluster-level summary.
    pub report: RunReport,
    /// The structured trace, in record order (empty unless the config
    /// asked for [`TraceMode::Collect`]).
    pub events: Vec<TraceRecord>,
    /// Per-node metric accumulators, indexed by node id (covers every
    /// node, failed ones included — their pre-failure work is real
    /// work).
    pub node_metrics: Vec<NodeMetrics>,
    /// Fabric traffic counters for the whole run.
    pub stats: Stats,
}

/// A node's final object state at the end of a run, alongside whether
/// the node was still participating. Produced by
/// [`Runner::run_with_states`] for integrity checks that need to look
/// at the states themselves (e.g. chaos-campaign invariant checks),
/// which [`RunOutcome`] — being object-agnostic — cannot carry.
#[derive(Debug, Clone)]
pub struct NodeEndState<S> {
    /// Whether the node finished the run alive (not crashed, not
    /// halted by a fault).
    pub alive: bool,
    /// Its final object-state snapshot (for a crashed node: the state
    /// at the moment it stopped executing).
    pub state: S,
    /// One-line status snapshot taken at the same moment (rendered
    /// from the node's structured status; used by chaos failure
    /// reports so a non-converged case shows *why* each node stalled).
    pub status: String,
}

/// One experiment: a [`System`] plus a [`RunConfig`].
///
/// ```
/// use hamband_runtime::{Runner, RunConfig, System, WorkloadSpec};
/// use hamband_types::Counter;
///
/// let c = Counter::default();
/// let config =
///     RunConfig::for_nodes(3).with_workload(WorkloadSpec::ops(300).with_update_ratio(0.5));
/// let outcome = Runner::new(System::Hamband, config).run(&c, &c.coord_spec());
/// assert!(outcome.report.converged);
/// println!("{}", outcome.report.to_json());
/// ```
#[derive(Debug, Clone)]
pub struct Runner {
    system: System,
    config: RunConfig,
    label: Option<String>,
}

impl Runner {
    /// An experiment running `system` under `config`.
    pub fn new(system: System, config: RunConfig) -> Self {
        Runner { system, config, label: None }
    }

    /// Override the report label (defaults to the system's label).
    pub fn with_label(mut self, label: impl Into<String>) -> Self {
        self.label = Some(label.into());
        self
    }

    /// The system this runner drives.
    pub fn system(&self) -> System {
        self.system
    }

    /// The configuration this runner applies.
    pub fn config(&self) -> &RunConfig {
        &self.config
    }

    /// Build the cluster, drive the workload to completion, and
    /// measure. One call covers all three systems: Mu-SMR substitutes
    /// the complete conflict relation for `coord`, MSG swaps in the
    /// message-passing replica.
    pub fn run<O>(&self, spec: &O, coord: &CoordSpec) -> RunOutcome
    where
        O: WorkloadSupport + Clone + Send,
        O::Update: Wire + Send,
        O::State: Send,
    {
        self.run_with_states(spec, coord).0
    }

    /// Like [`Runner::run`], additionally returning every node's final
    /// object state and aliveness — the inputs an integrity check
    /// (does each final state satisfy the object's invariant?) needs.
    pub fn run_with_states<O>(
        &self,
        spec: &O,
        coord: &CoordSpec,
    ) -> (RunOutcome, Vec<NodeEndState<O::State>>)
    where
        O: WorkloadSupport + Clone + Send,
        O::Update: Wire + Send,
        O::State: Send,
    {
        let label = self.label.as_deref().unwrap_or(self.system.label());
        match self.system {
            System::Hamband => dispatch_replicas(spec, coord, &self.config, label),
            System::MuSmr => {
                // SMR orders *every* update through the one log: under
                // the complete conflict relation cross-key calls
                // conflict too, so key sharding would be unsound here
                // and is forced off regardless of the configured (or
                // env-injected) shard count.
                let mut config = self.config.clone();
                config.runtime.sync_shards = 1;
                dispatch_replicas(spec, &complete_coord(spec.method_count()), &config, label)
            }
            System::Msg => {
                assert!(
                    self.config.backend == Backend::Sim,
                    "System::Msg runs only on Backend::Sim (the {} backend has no \
                     message-passing replica wiring)",
                    self.config.backend.label()
                );
                run_msg_cluster(spec, coord, &self.config, label)
            }
        }
    }
}

/// The complete conflict relation over `n_methods` methods: one
/// synchronization group containing every method (the SMR special
/// case).
fn complete_coord(n_methods: usize) -> CoordSpec {
    let mut b = CoordSpec::builder(n_methods);
    for m in 0..n_methods {
        b = b.conflict(0, m);
        b = b.conflict(m, m);
    }
    b.build()
}

// ---------------------------------------------------------------------
// The unified drive loop
// ---------------------------------------------------------------------

/// What the generic drive loop needs from a replica application —
/// implemented by [`HambandNode`] and [`MsgCrdtNode`].
trait HarnessNode: App {
    /// Comparable object-state snapshot (convergence check).
    type Snapshot: PartialEq;

    fn is_halted(&self) -> bool;
    fn workload_done(&self) -> bool;
    fn applied_map(&self) -> &CountMap;
    fn applied_updates(&self) -> u64;
    fn snapshot(&self) -> Self::Snapshot;
    fn metrics(&self) -> &NodeMetrics;
    /// Per-session completion stats from the node's client ingress.
    fn session_stats(&self) -> Vec<SessionStats>;
    /// One-line human-readable status (debug output, failure reports).
    fn status_line(&self) -> String;
}

impl<O> HarnessNode for HambandNode<O>
where
    O: WorkloadSupport,
    O::Update: Wire,
{
    type Snapshot = O::State;

    fn is_halted(&self) -> bool {
        HambandNode::is_halted(self)
    }
    fn workload_done(&self) -> bool {
        HambandNode::workload_done(self)
    }
    fn applied_map(&self) -> &CountMap {
        HambandNode::applied_map(self)
    }
    fn applied_updates(&self) -> u64 {
        HambandNode::applied_updates(self)
    }
    fn snapshot(&self) -> O::State {
        self.state_snapshot()
    }
    fn metrics(&self) -> &NodeMetrics {
        &self.metrics
    }
    fn session_stats(&self) -> Vec<SessionStats> {
        HambandNode::session_stats(self)
    }
    fn status_line(&self) -> String {
        self.status().to_string()
    }
}

impl<O> HarnessNode for MsgCrdtNode<O>
where
    O: WorkloadSupport,
    O::Update: Wire,
{
    type Snapshot = O::State;

    fn is_halted(&self) -> bool {
        MsgCrdtNode::is_halted(self)
    }
    fn workload_done(&self) -> bool {
        MsgCrdtNode::workload_done(self)
    }
    fn applied_map(&self) -> &CountMap {
        MsgCrdtNode::applied_map(self)
    }
    fn applied_updates(&self) -> u64 {
        MsgCrdtNode::applied_updates(self)
    }
    fn snapshot(&self) -> O::State {
        self.state_snapshot()
    }
    fn metrics(&self) -> &NodeMetrics {
        &self.metrics
    }
    fn session_stats(&self) -> Vec<SessionStats> {
        MsgCrdtNode::session_stats(self)
    }
    fn status_line(&self) -> String {
        self.debug_pending()
    }
}

fn install_trace<A: App>(sim: &mut Simulator<A>, mode: TraceMode) -> Option<TraceBuffer> {
    match mode {
        TraceMode::Off => None,
        TraceMode::Stderr => {
            sim.set_trace_sink(Box::new(StderrSink));
            None
        }
        TraceMode::Collect => {
            let (sink, buffer) = CollectingSink::new();
            sim.set_trace_sink(Box::new(sink));
            Some(buffer)
        }
    }
}

/// Drive a prepared cluster to completion: run in slices until every
/// alive node finished its workload and all applied maps agree (or the
/// time cap / stall watchdog fires), then let stragglers settle and
/// check state convergence.
fn drive<A: HarnessNode>(sim: &mut Simulator<A>, run: &RunConfig) -> (SimTime, bool) {
    let n = run.nodes;
    let verbose = run.trace == TraceMode::Stderr;
    // Aliveness is dynamic: a node scheduled to fail later still
    // counts until its fault actually fires (it halts or crashes).
    let alive_now = |sim: &Simulator<A>| -> Vec<NodeId> {
        (0..n)
            .map(NodeId)
            .filter(|&id| !sim.is_crashed(id) && !sim.app(id).is_halted())
            .collect()
    };
    // A run with faults planned must not be declared done before the
    // last fault has fired.
    let last_fault_at = run
        .faults
        .entries()
        .iter()
        .map(|&(t, _)| t)
        .max()
        .unwrap_or(SimTime::ZERO);

    let slice = SimDuration::micros(25);
    let mut done = false;
    let mut last_progress = 0u64;
    let mut stalled = 0usize;
    while sim.now() < run.max_time {
        sim.run_for(slice);
        let alive = alive_now(sim);
        if sim.now() > last_fault_at && !alive.is_empty() {
            let all_done = alive.iter().all(|&id| sim.app(id).workload_done());
            if all_done {
                let a0 = sim.app(alive[0]).applied_map().clone();
                if alive.iter().all(|&id| *sim.app(id).applied_map() == a0) {
                    if verbose {
                        eprintln!("done declared at {} alive={:?}", sim.now(), alive);
                        for id in &alive {
                            eprintln!("  {}", sim.app(*id).status_line());
                        }
                    }
                    done = true;
                    break;
                }
            }
        }
        // Stall watchdog: a workload that cannot progress (e.g. nothing
        // issuable) ends the run as unconverged instead of burning
        // virtual time to the cap.
        let progress: u64 = alive.iter().map(|&id| sim.app(id).applied_updates()).sum();
        if progress == last_progress {
            stalled += 1;
            if stalled > 2_000 {
                if verbose {
                    eprintln!("harness watchdog break at {}", sim.now());
                    for id in &alive {
                        eprintln!("  {}", sim.app(*id).status_line());
                    }
                }
                break;
            }
        } else {
            stalled = 0;
            last_progress = progress;
        }
    }
    // Let stragglers (commit writes, backups) settle for convergence.
    sim.run_for(SimDuration::micros(300));

    let alive = alive_now(sim);
    let completed_at = alive
        .iter()
        .map(|&id| sim.app(id).metrics().last_apply)
        .max()
        .unwrap_or(SimTime::ZERO);
    let s0 = sim.app(alive[0]).snapshot();
    let converged = done && alive.iter().all(|&id| sim.app(id).snapshot() == s0);
    if verbose && !converged {
        eprintln!("run not converged: done={done} at {}", sim.now());
        for id in 0..n {
            eprintln!("  {}", sim.app(NodeId(id)).status_line());
        }
    }
    (completed_at, converged)
}

fn collect_outcome<A: HarnessNode, O: WorkloadSupport>(
    sim: &Simulator<A>,
    spec: &O,
    label: &str,
    run: &RunConfig,
    completed_at: SimTime,
    converged: bool,
    buffer: Option<TraceBuffer>,
) -> RunOutcome {
    // Metrics cover every node: a failed node's pre-failure work is
    // real work (the paper counts all calls); only convergence and
    // completion checks exclude it.
    let node_metrics: Vec<NodeMetrics> =
        (0..run.nodes).map(|i| sim.app(NodeId(i)).metrics().clone()).collect();
    let sessions: Vec<SessionStats> =
        (0..run.nodes).flat_map(|i| sim.app(NodeId(i)).session_stats()).collect();
    let stats = sim.stats().clone();
    let report = summarize(
        label,
        run.nodes,
        &node_metrics,
        &sessions,
        spec,
        completed_at,
        converged,
        &stats,
    );
    RunOutcome {
        report,
        events: buffer.map(|b| b.take()).unwrap_or_default(),
        node_metrics,
        stats,
    }
}

/// Final per-node aliveness + state snapshots, taken after the drive
/// loop (shared by both replica kinds).
fn collect_states<A: HarnessNode>(
    sim: &Simulator<A>,
    n: usize,
) -> Vec<NodeEndState<A::Snapshot>> {
    (0..n)
        .map(|i| {
            let id = NodeId(i);
            NodeEndState {
                alive: !sim.is_crashed(id) && !sim.app(id).is_halted(),
                state: sim.app(id).snapshot(),
                status: sim.app(id).status_line(),
            }
        })
        .collect()
}


pub(crate) fn run_replicas<O>(
    spec: &O,
    coord: &CoordSpec,
    run: &RunConfig,
    label: &str,
) -> (RunOutcome, Vec<NodeEndState<O::State>>)
where
    O: WorkloadSupport + Clone,
    O::Update: Wire,
{
    let n = run.nodes;
    let mut sim: Simulator<HambandNode<O>> = Simulator::new(n, run.latency.clone(), run.seed);
    let buffer = install_trace(&mut sim, run.trace);
    let layout = Layout::install(&mut sim, coord, &run.runtime);
    // One leader per mapped group (sync group × shard), round-robin
    // over the cluster so shard leadership spreads across nodes.
    let mapper = GroupMapper::new(coord, run.runtime.sync_shards);
    let leaders: Vec<Pid> = run.leaders.clone().unwrap_or_else(|| mapper.default_leaders(n));
    sim.install_fault_plan(&run.faults);
    {
        let spec = spec.clone();
        let coord = coord.clone();
        let cfg = run.runtime.clone();
        let workload = run.workload.clone();
        sim.set_apps(move |id| {
            HambandNode::new(
                spec.clone(),
                coord.clone(),
                cfg.clone(),
                layout.clone(),
                id,
                n,
                &leaders,
                workload.clone(),
            )
        });
    }
    let (completed_at, converged) = drive(&mut sim, run);
    let states = collect_states(&sim, n);
    (collect_outcome(&sim, spec, label, run, completed_at, converged, buffer), states)
}

fn run_msg_cluster<O>(
    spec: &O,
    coord: &CoordSpec,
    run: &RunConfig,
    label: &str,
) -> (RunOutcome, Vec<NodeEndState<O::State>>)
where
    O: WorkloadSupport + Clone,
    O::Update: Wire,
{
    let n = run.nodes;
    let mut sim: Simulator<MsgCrdtNode<O>> = Simulator::new(n, run.latency.clone(), run.seed);
    let buffer = install_trace(&mut sim, run.trace);
    sim.install_fault_plan(&run.faults);
    {
        let spec = spec.clone();
        let coord = coord.clone();
        let workload = run.workload.clone();
        sim.set_apps(move |id| {
            MsgCrdtNode::new(spec.clone(), coord.clone(), id, n, workload.clone())
        });
    }
    let (completed_at, converged) = drive(&mut sim, run);
    let states = collect_states(&sim, n);
    (collect_outcome(&sim, spec, label, run, completed_at, converged, buffer), states)
}

/// Cross-session fairness over every session's completion stats: how
/// evenly the combiners served their client populations, measured over
/// the run's virtual completion time.
fn summarize_fairness(sessions: &[SessionStats], completed_at: SimTime) -> Option<FairnessSummary> {
    if sessions.is_empty() {
        return None;
    }
    let elapsed_sec = (completed_at.as_micros() / 1e6).max(1e-12);
    let completed: Vec<u64> = sessions.iter().map(|s| s.completed()).collect();
    let total: u64 = completed.iter().sum();
    let min = *completed.iter().min().expect("non-empty") as f64 / elapsed_sec;
    let max = *completed.iter().max().expect("non-empty") as f64 / elapsed_sec;
    let sum_sq: f64 = completed.iter().map(|&c| (c as f64) * (c as f64)).sum();
    let jain = if sum_sq > 0.0 {
        let s = total as f64;
        s * s / (sessions.len() as f64 * sum_sq)
    } else {
        1.0 // nobody completed anything: evenly (non-)served
    };
    // p99 across sessions of per-session mean update response time.
    let mut rts: Vec<f64> =
        sessions.iter().filter(|s| s.acked > 0).map(|s| s.mean_rt_us()).collect();
    rts.sort_by(|a, b| a.partial_cmp(b).expect("finite means"));
    let p99 = if rts.is_empty() {
        0.0
    } else {
        let rank = ((0.99 * rts.len() as f64).ceil() as usize).clamp(1, rts.len());
        rts[rank - 1]
    };
    Some(FairnessSummary {
        sessions: sessions.len(),
        ops_per_user_per_sec: total as f64 / sessions.len() as f64 / elapsed_sec,
        min_session_ops_per_sec: min,
        max_session_ops_per_sec: max,
        p99_session_rt_us: p99,
        jain_index: jain,
    })
}

#[allow(clippy::too_many_arguments)]
pub(crate) fn summarize<O: WorkloadSupport>(
    label: &str,
    nodes: usize,
    metrics: &[NodeMetrics],
    sessions: &[SessionStats],
    spec: &O,
    completed_at: SimTime,
    converged: bool,
    stats: &Stats,
) -> RunReport {
    let names = spec.method_names();
    let mut total_calls = 0u64;
    let mut total_updates = 0u64;
    let mut rt = LatencyHistogram::default();
    let mut per_method: std::collections::BTreeMap<String, LatencyHistogram> = Default::default();
    let mut per_phase: [LatencyHistogram; 4] = Default::default();
    for m in metrics {
        total_calls += m.updates_acked + m.queries;
        total_updates += m.updates_acked;
        rt.merge(&m.rt);
        for (&mid, h) in &m.rt_per_method {
            per_method
                .entry(names.get(mid).copied().unwrap_or("?").to_string())
                .or_default()
                .merge(h);
        }
        for p in Phase::ALL {
            per_phase[p.index()].merge(&m.rt_per_phase[p.index()]);
        }
    }
    let elapsed_us = completed_at.as_micros().max(1e-9);
    RunReport {
        system: label.to_string(),
        nodes,
        total_calls,
        total_updates,
        completed_at,
        throughput_ops_per_us: total_calls as f64 / elapsed_us,
        mean_rt_us: rt.mean_us(),
        writes_posted: stats.writes,
        bytes_written: stats.one_sided_bytes,
        writes_per_op: if total_updates > 0 {
            stats.writes as f64 / total_updates as f64
        } else {
            0.0
        },
        per_method_rt_us: per_method.into_iter().map(|(k, h)| (k, h.mean_us())).collect(),
        phases: Phase::ALL
            .iter()
            .filter(|p| !per_phase[p.index()].is_empty())
            .map(|p| (p.label().to_string(), per_phase[p.index()].summarize()))
            .collect(),
        converged,
        fairness: summarize_fairness(sessions, completed_at),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn complete_coord_is_one_group() {
        let c = complete_coord(4);
        assert_eq!(c.sync_groups().len(), 1);
        assert_eq!(c.sync_groups()[0].len(), 4);
        for m in 0..4 {
            assert!(c.category(hamband_core::ids::MethodId(m)).is_conflicting());
        }
    }

    #[test]
    fn system_labels() {
        assert_eq!(System::Hamband.label(), "hamband");
        assert_eq!(System::MuSmr.label(), "mu-smr");
        assert_eq!(System::Msg.label(), "msg");
    }

    #[test]
    fn config_builders_compose() {
        let rc = RunConfig::for_nodes(5)
            .with_workload(WorkloadSpec::ops(10_000).with_update_ratio(0.5))
            .with_seed(42)
            .with_trace(TraceMode::Collect)
            .with_max_time(SimTime(1_000_000));
        assert_eq!(rc.nodes, 5);
        assert_eq!(rc.workload.total_ops, 10_000);
        assert_eq!(rc.seed, 42);
        assert_eq!(rc.trace, TraceMode::Collect);
        assert_eq!(rc.max_time, SimTime(1_000_000));
        // with_workload re-scales the summary cap like new() does.
        assert!(rc.runtime.summary_payload_cap >= 10_000 * 16);
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn zero_node_config_is_rejected() {
        let _ = RunConfig::for_nodes(0);
    }

    #[test]
    fn runner_exposes_system_and_config() {
        let r = Runner::new(System::MuSmr, RunConfig::for_nodes(3));
        assert_eq!(r.system(), System::MuSmr);
        assert_eq!(r.config().nodes, 3);
    }

    #[test]
    fn backend_labels_and_default() {
        assert_eq!(Backend::Sim.label(), "sim");
        assert_eq!(Backend::Loopback.label(), "loopback");
        assert_eq!(Backend::Threaded.label(), "threaded");
        assert_eq!(Backend::default(), Backend::Sim);
    }

    #[test]
    fn loopback_backend_runs_through_runner() {
        let c = hamband_types::Counter::default();
        let config = RunConfig::new(3, WorkloadSpec::ops(150).with_update_ratio(0.5))
            .with_backend(Backend::Loopback);
        let outcome = Runner::new(System::Hamband, config).run(&c, &c.coord_spec());
        assert!(outcome.report.converged, "loopback run did not converge");
        assert_eq!(outcome.report.total_calls, 150);
        assert!(outcome.report.mean_rt_us > 0.0);
        assert!(outcome.events.is_empty(), "loopback collects no trace");
    }

    #[test]
    fn threaded_backend_runs_through_runner() {
        let c = hamband_types::Counter::default();
        let config = RunConfig::new(3, WorkloadSpec::ops(150).with_update_ratio(0.5))
            .with_backend(Backend::Threaded)
            // Wall-clock cap for the threaded backend.
            .with_max_time(SimTime(30_000_000_000));
        let outcome = Runner::new(System::Hamband, config).run(&c, &c.coord_spec());
        assert!(outcome.report.converged, "threaded run did not converge");
        assert_eq!(outcome.report.total_calls, 150);
        assert!(outcome.stats.writes > 0, "threaded stats not collected");
    }

    #[test]
    #[should_panic(expected = "cannot inject faults")]
    fn cluster_backends_reject_fault_plans() {
        let c = hamband_types::Counter::default();
        let faults = FaultPlan::new().at(SimTime(1_000), rdma_sim::Fault::Crash(NodeId(0)));
        let config = RunConfig::for_nodes(3)
            .with_backend(Backend::Loopback)
            .with_faults(faults);
        let _ = Runner::new(System::Hamband, config).run(&c, &c.coord_spec());
    }

    #[test]
    #[should_panic(expected = "only on Backend::Sim")]
    fn msg_system_rejects_cluster_backends() {
        let c = hamband_types::Counter::default();
        let config = RunConfig::for_nodes(3).with_backend(Backend::Threaded);
        let _ = Runner::new(System::Msg, config).run(&c, &c.coord_spec());
    }
}
