//! Execution backends for a harness run: which
//! [`Transport`](crate::transport::Transport) carries the replicas,
//! and the dispatch that routes a [`RunConfig`] to it.
//!
//! The replica state machine is identical everywhere; a backend only
//! decides who supplies memory, messaging, timers and time. The
//! simulator path stays in [`crate::harness`] (it owns the
//! `Simulator` plumbing, traces and fault plans); this module holds
//! the two cluster backends — loopback and threaded — plus the shared
//! config checks and outcome assembly they both need.

use hamband_core::coord::CoordSpec;
use hamband_core::object::WorkloadSupport;
use hamband_core::wire::Wire;
use rdma_sim::{SimDuration, SimTime, Stats};

use crate::harness::{run_replicas, summarize, NodeEndState, RunConfig, RunOutcome, TraceMode};
use crate::ingress::SessionStats;
use crate::loopback::LoopbackCluster;
use crate::metrics::NodeMetrics;
use crate::replica::HambandNode;
use crate::threaded::ThreadedCluster;

/// Which [`Transport`](crate::transport::Transport) backend executes
/// the run.
///
/// The replica state machine is identical across backends; what
/// changes is who supplies memory, messaging, timers and time:
///
/// * [`Backend::Sim`] — the [`rdma_sim`] discrete-event simulator:
///   virtual time, latency models, fault injection, trace collection.
///   The default, and the only backend for
///   [`System::Msg`](crate::System::Msg) and for runs with faults or
///   tracing.
/// * [`Backend::Loopback`] — single-threaded in-process loopback:
///   plain memory, FIFO queues, virtual time without a latency model.
/// * [`Backend::Threaded`] — one OS thread per replica over
///   process-shared atomic memory, wall-clock timers. Here
///   [`RunConfig::max_time`] is a *wall-clock* cap (nanoseconds), and
///   reported times/latencies are wall-clock nanoseconds too.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Backend {
    /// Discrete-event simulation over [`rdma_sim`] (the default).
    #[default]
    Sim,
    /// In-process loopback: one thread, plain memory, virtual time.
    Loopback,
    /// One OS thread per replica, shared atomic memory, wall clock.
    Threaded,
}

impl Backend {
    /// Harness label used in panics and diagnostics.
    pub fn label(self) -> &'static str {
        match self {
            Backend::Sim => "sim",
            Backend::Loopback => "loopback",
            Backend::Threaded => "threaded",
        }
    }

    /// The backend selected by the `HAMBAND_BACKEND` environment
    /// variable (`sim` / `loopback` / `threaded`, case-insensitive;
    /// unset or empty means [`Backend::Sim`]). Panics on an
    /// unrecognized value — a misspelled backend silently simming
    /// would invalidate a wall-clock experiment.
    pub fn from_env() -> Backend {
        match std::env::var("HAMBAND_BACKEND") {
            Err(_) => Backend::Sim,
            Ok(v) => match v.trim().to_ascii_lowercase().as_str() {
                "" | "sim" => Backend::Sim,
                "loopback" => Backend::Loopback,
                "threaded" => Backend::Threaded,
                other => panic!(
                    "HAMBAND_BACKEND={other:?} is not a backend (expected sim, loopback, or threaded)"
                ),
            },
        }
    }
}

/// Route a Hamband-replica run (Hamband or Mu-SMR) to the configured
/// backend.
pub(crate) fn dispatch_replicas<O>(
    spec: &O,
    coord: &CoordSpec,
    run: &RunConfig,
    label: &str,
) -> (RunOutcome, Vec<NodeEndState<O::State>>)
where
    O: WorkloadSupport + Clone + Send,
    O::Update: Wire + Send,
    O::State: Send,
{
    match run.backend {
        Backend::Sim => run_replicas(spec, coord, run, label),
        Backend::Loopback => run_loopback(spec, coord, run, label),
        Backend::Threaded => run_threaded(spec, coord, run, label),
    }
}

/// Reject config knobs only the simulator honours — silently ignoring
/// an injected fault plan or a requested trace would invalidate the
/// experiment.
fn check_cluster_config(run: &RunConfig) {
    let b = run.backend.label();
    assert!(
        run.faults.entries().is_empty(),
        "the {b} backend cannot inject faults; use Backend::Sim"
    );
    assert!(
        run.trace == TraceMode::Off,
        "the {b} backend has no trace sink; use Backend::Sim"
    );
    assert!(
        run.leaders.is_none(),
        "the {b} backend uses the coordination spec's default leaders; use Backend::Sim"
    );
}

/// Assemble a [`RunOutcome`] from per-node metrics gathered off a
/// cluster backend (loopback or threaded). Completion time is the
/// latest apply any node recorded — the same measure the simulator
/// path uses.
fn cluster_outcome<O: WorkloadSupport>(
    label: &str,
    run: &RunConfig,
    spec: &O,
    node_metrics: Vec<NodeMetrics>,
    sessions: Vec<SessionStats>,
    stats: Stats,
    converged: bool,
) -> RunOutcome {
    let completed_at =
        node_metrics.iter().map(|m| m.last_apply).max().unwrap_or(SimTime::ZERO);
    let report = summarize(
        label,
        run.nodes,
        &node_metrics,
        &sessions,
        spec,
        completed_at,
        converged,
        &stats,
    );
    RunOutcome { report, events: Vec::new(), node_metrics, stats }
}

fn run_loopback<O>(
    spec: &O,
    coord: &CoordSpec,
    run: &RunConfig,
    label: &str,
) -> (RunOutcome, Vec<NodeEndState<O::State>>)
where
    O: WorkloadSupport + Clone,
    O::Update: Wire,
{
    check_cluster_config(run);
    let mut cluster = LoopbackCluster::new(
        run.nodes,
        spec,
        coord,
        run.runtime.clone(),
        run.workload.clone(),
    );
    let converged = cluster.run_to_convergence(SimDuration(run.max_time.0));
    let nodes: Vec<&HambandNode<O>> = (0..run.nodes).map(|i| cluster.node(i)).collect();
    let metrics = nodes.iter().map(|n| n.metrics.clone()).collect();
    let sessions = nodes.iter().flat_map(|n| n.session_stats()).collect();
    let states = nodes
        .iter()
        .map(|n| NodeEndState {
            alive: !n.is_halted(),
            state: n.state_snapshot(),
            status: n.status().to_string(),
        })
        .collect();
    // The loopback net counts no fabric traffic (its verbs are plain
    // memcpys), so the traffic columns of the report read zero.
    let outcome =
        cluster_outcome(label, run, spec, metrics, sessions, Stats::new(run.nodes), converged);
    (outcome, states)
}

fn run_threaded<O>(
    spec: &O,
    coord: &CoordSpec,
    run: &RunConfig,
    label: &str,
) -> (RunOutcome, Vec<NodeEndState<O::State>>)
where
    O: WorkloadSupport + Clone + Send,
    O::Update: Wire + Send,
    O::State: Send,
{
    check_cluster_config(run);
    let mut cluster = ThreadedCluster::new(
        run.nodes,
        spec,
        coord,
        run.runtime.clone(),
        run.workload.clone(),
    );
    // Threaded runs on the wall clock: max_time caps wall nanoseconds.
    let limit = std::time::Duration::from_nanos(run.max_time.0);
    let converged = cluster.run_to_convergence(limit);
    let stats = cluster.stats();
    let nodes: Vec<&HambandNode<O>> = (0..run.nodes).map(|i| cluster.node(i)).collect();
    let metrics = nodes.iter().map(|n| n.metrics.clone()).collect();
    let sessions = nodes.iter().flat_map(|n| n.session_stats()).collect();
    let states = nodes
        .iter()
        .map(|n| NodeEndState {
            alive: !n.is_halted(),
            state: n.state_snapshot(),
            status: n.status().to_string(),
        })
        .collect();
    let outcome = cluster_outcome(label, run, spec, metrics, sessions, stats, converged);
    (outcome, states)
}
