//! The per-thread [`Transport`] handle of the threaded backend.
//!
//! Each replica thread owns one `ThreadedCtx`: an `Arc` of the
//! process-shared [`SharedMem`], a clone of every peer's event-channel
//! sender, a private timer heap, and a scratch buffer backing
//! [`Transport::local`] reads. One-sided verbs execute synchronously
//! against the shared memory (the atomic word discipline makes that
//! safe) and their completions are queued on a thread-local FIFO, so
//! RC ordering — writes from one issuer to one target land in posting
//! order — holds by program order. Two-sided messages cross threads
//! over `std::sync::mpsc`.
//!
//! Time is the shared monotonic wall clock: every ctx carries the same
//! [`Instant`] epoch and reports `SimTime` nanoseconds since it, so
//! latency histograms from different threads are directly mergeable.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use std::sync::mpsc::Sender;
use std::sync::Arc;
use std::time::Instant;

use bytes::Bytes;
use rdma_sim::{
    Event, LatencyModel, NodeId, RegionId, SimDuration, SimTime, TimerId, TraceEvent, VerbKind,
    WrId,
};

use super::shared::SharedMem;
use crate::transport::Transport;

/// An armed timer: fires at `at` with `tag`; `seq` breaks ties in
/// arming order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct TimerEntry {
    at: SimTime,
    seq: u64,
    id: TimerId,
    tag: u64,
}

/// Per-thread fabric traffic counters, merged into a
/// [`Stats`](rdma_sim::Stats) after the threads join.
#[derive(Debug, Default, Clone)]
pub(crate) struct Counters {
    pub writes: u64,
    pub reads: u64,
    pub cas: u64,
    pub messages: u64,
    pub one_sided_bytes: u64,
    pub message_bytes: u64,
    pub ring_writes: u64,
    pub ring_slots: u64,
}

/// One replica thread's transport handle.
pub(crate) struct ThreadedCtx {
    node: NodeId,
    n: usize,
    mem: Arc<SharedMem>,
    senders: Vec<Sender<Event>>,
    epoch: Instant,
    latency: LatencyModel,
    /// Synchronous verb completions, drained by the thread's event
    /// loop before it polls the cross-thread channel.
    pub(crate) local_q: VecDeque<Event>,
    timers: BinaryHeap<Reverse<TimerEntry>>,
    next_wr: u64,
    next_timer: u64,
    scratch: Vec<u8>,
    pub(crate) counters: Counters,
}

impl ThreadedCtx {
    pub(crate) fn new(
        node: NodeId,
        n: usize,
        mem: Arc<SharedMem>,
        senders: Vec<Sender<Event>>,
        epoch: Instant,
    ) -> ThreadedCtx {
        ThreadedCtx {
            node,
            n,
            mem,
            senders,
            epoch,
            latency: LatencyModel::deterministic(),
            local_q: VecDeque::new(),
            timers: BinaryHeap::new(),
            // Disjoint per-node id spaces, so ids stay unique
            // cluster-wide without cross-thread coordination.
            next_wr: node.index() as u64,
            next_timer: node.index() as u64,
            scratch: Vec::new(),
            counters: Counters::default(),
        }
    }

    fn mint_wr(&mut self) -> WrId {
        self.next_wr += self.n as u64;
        WrId(self.next_wr)
    }

    fn arm(&mut self, delay: SimDuration, tag: u64) -> TimerId {
        self.next_timer += self.n as u64;
        let id = TimerId(self.next_timer);
        self.timers.push(Reverse(TimerEntry {
            at: self.now() + delay,
            seq: self.next_timer,
            id,
            tag,
        }));
        id
    }

    fn complete(&mut self, wr: WrId, kind: VerbKind, status: rdma_sim::CompletionStatus, data: Option<Bytes>) {
        let completed_at = self.now();
        self.local_q.push_back(Event::Completion { wr, kind, status, data, completed_at });
    }

    /// Pop the earliest armed timer that is due at `now`, as an event.
    pub(crate) fn pop_due_timer(&mut self, now: SimTime) -> Option<Event> {
        if self.timers.peek().is_some_and(|Reverse(t)| t.at <= now) {
            let Reverse(t) = self.timers.pop().expect("peeked");
            return Some(Event::Timer { id: t.id, tag: t.tag });
        }
        None
    }
}

impl Transport for ThreadedCtx {
    fn node(&self) -> NodeId {
        self.node
    }

    /// Wall-clock nanoseconds since the cluster's shared epoch.
    fn now(&self) -> SimTime {
        SimTime(self.epoch.elapsed().as_nanos() as u64)
    }

    fn cluster_size(&self) -> usize {
        self.n
    }

    /// CPU cost is real here — executing the method body *is* the
    /// cost — so the accounting hook is a no-op.
    fn consume(&mut self, _cost: SimDuration) {}

    fn latency(&self) -> &LatencyModel {
        &self.latency
    }

    /// No trace sink: cross-thread trace collection would serialize
    /// the very concurrency this backend exists to measure.
    fn emit(&mut self, _make: impl FnOnce() -> TraceEvent) {}

    fn note_ring_write(&mut self, slots: u64) {
        self.counters.ring_writes += 1;
        self.counters.ring_slots += slots;
    }

    fn post_write(&mut self, target: NodeId, region: RegionId, offset: usize, data: &[u8]) -> WrId {
        let wr = self.mint_wr();
        let status = self.mem.check(self.node, target, region, offset, data.len(), true);
        if status.is_success() {
            self.mem.write(target, region, offset, data);
        }
        self.counters.writes += 1;
        self.counters.one_sided_bytes += data.len() as u64;
        self.complete(wr, VerbKind::Write, status, None);
        wr
    }

    fn post_read(&mut self, target: NodeId, region: RegionId, offset: usize, len: usize) -> WrId {
        let wr = self.mint_wr();
        let status = self.mem.check(self.node, target, region, offset, len, false);
        let data = status.is_success().then(|| {
            let mut buf = Vec::new();
            self.mem.read_into(target, region, offset, len, &mut buf);
            Bytes::from(buf)
        });
        self.counters.reads += 1;
        self.counters.one_sided_bytes += len as u64;
        self.complete(wr, VerbKind::Read, status, data);
        wr
    }

    fn post_cas(
        &mut self,
        target: NodeId,
        region: RegionId,
        offset: usize,
        expected: u64,
        swap: u64,
    ) -> WrId {
        let wr = self.mint_wr();
        let status = self.mem.check(self.node, target, region, offset, 8, true);
        let data = status.is_success().then(|| {
            let prior = self.mem.cas(target, region, offset, expected, swap);
            Bytes::copy_from_slice(&prior.to_le_bytes())
        });
        self.counters.cas += 1;
        self.counters.one_sided_bytes += 8;
        self.complete(wr, VerbKind::CompareAndSwap, status, data);
        wr
    }

    fn send(&mut self, target: NodeId, payload: Bytes) {
        self.counters.messages += 1;
        self.counters.message_bytes += payload.len() as u64;
        let from = self.node;
        // A send to a thread that already exited its event loop (e.g.
        // during shutdown) is dropped, like a message to a dead node.
        let _ = self.senders[target.index()].send(Event::Message { from, payload });
    }

    fn set_timer(&mut self, delay: SimDuration, tag: u64) -> TimerId {
        self.arm(delay, tag)
    }

    /// Every timer already lives on its replica's own thread; the
    /// isolated variant is the plain one.
    fn set_timer_isolated(&mut self, delay: SimDuration, tag: u64) -> TimerId {
        self.arm(delay, tag)
    }

    /// Own-region read: snapshot the atomically published words
    /// (descending-`Acquire`, like any remote read — peers write into
    /// our rings) into the scratch buffer and lend it out.
    fn local(&mut self, region: RegionId, offset: usize, len: usize) -> &[u8] {
        let mut buf = std::mem::take(&mut self.scratch);
        self.mem.read_into(self.node, region, offset, len, &mut buf);
        self.scratch = buf;
        &self.scratch
    }

    fn local_write(&mut self, region: RegionId, offset: usize, data: &[u8]) {
        self.mem.write(self.node, region, offset, data);
    }

    fn set_write_permission(&mut self, region: RegionId, source: NodeId, allowed: bool) {
        self.mem.set_perm(self.node, region, source, allowed);
    }
}
