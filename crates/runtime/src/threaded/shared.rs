//! Process-shared region memory for the threaded backend: every
//! registered region of every node as `AtomicU64` words behind one
//! `Arc`, with per-source write-permission bits.
//!
//! ## Memory-ordering discipline
//!
//! * **Writers store words in ascending address order, each with
//!   `Release`.** A store that covers only part of a boundary word
//!   loads the word (`Relaxed`), merges the covered bytes, and stores
//!   the result back (`Release`) — sound because slot strides are
//!   8-aligned ([`RuntimeConfig::entry_size`] et al.), so at any
//!   moment every word has a single writer and the relaxed load cannot
//!   observe a concurrent store to the same word.
//! * **Readers load words in descending address order, each with
//!   `Acquire`.** Both slot formats place their validation trailer
//!   *after* the payload (the ring slot's seq-echo canary trailer, the
//!   summary slot's trailing version), so a descending reader loads
//!   the trailer first; when its `Acquire` observes the writer's
//!   `Release` of that word, every earlier (lower-address) store of
//!   the same slot write happens-before the reader's subsequent loads.
//!   A reader that instead catches a *newer* write in its lower words
//!   necessarily sees that write's leading validation word too (the
//!   writer stored it first), and the trailer/leader mismatch rejects
//!   the snapshot. See `DESIGN.md` § "Threading and memory-ordering
//!   model" for the full argument.
//!
//! Words hold region bytes little-endian, so the 8-byte cells the
//! protocol CASes (ring heads, commit cells) map 1:1 onto one atomic
//! word and [`SharedMem::cas`] is a plain `compare_exchange`.
//!
//! [`RuntimeConfig::entry_size`]: crate::config::RuntimeConfig::entry_size

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use rdma_sim::{CompletionStatus, NodeId, RegionId};

/// One registered region: its bytes as atomic words plus the
/// per-source write-permission bits (the owner is always allowed).
#[derive(Debug)]
struct Region {
    words: Box<[AtomicU64]>,
    /// Byte length (the words cover `len.div_ceil(8)` slots; a tail
    /// word's spare bytes are unused padding).
    len: usize,
    /// `perms[source]`: may `source` one-sided-WRITE into this region?
    perms: Box<[AtomicBool]>,
}

/// All nodes' region memory, shared across the replica threads.
#[derive(Debug)]
pub(crate) struct SharedMem {
    n: usize,
    /// `regions[node][region]`.
    regions: Vec<Vec<Region>>,
}

impl SharedMem {
    pub(crate) fn new(n: usize) -> SharedMem {
        SharedMem { n, regions: (0..n).map(|_| Vec::new()).collect() }
    }

    /// Register a region of `size` bytes on every node (the threaded
    /// analogue of `Simulator::add_region_all`). Setup-time only: runs
    /// before the `SharedMem` is shared with any thread.
    pub(crate) fn add_region_all(&mut self, size: usize) -> RegionId {
        let id = RegionId(self.regions[0].len());
        let n = self.n;
        for node in &mut self.regions {
            node.push(Region {
                words: (0..size.div_ceil(8)).map(|_| AtomicU64::new(0)).collect(),
                len: size,
                perms: (0..n).map(|_| AtomicBool::new(true)).collect(),
            });
        }
        id
    }

    /// Access check mirroring the simulator's: reads ignore write
    /// permission, the owner's own writes ignore it too.
    pub(crate) fn check(
        &self,
        issuer: NodeId,
        target: NodeId,
        region: RegionId,
        offset: usize,
        len: usize,
        is_write: bool,
    ) -> CompletionStatus {
        let Some(r) = self.regions[target.index()].get(region.index()) else {
            return CompletionStatus::OutOfBounds;
        };
        if offset + len > r.len {
            return CompletionStatus::OutOfBounds;
        }
        if is_write
            && issuer != target
            && !r.perms[issuer.index()].load(Ordering::Acquire)
        {
            return CompletionStatus::AccessDenied;
        }
        CompletionStatus::Success
    }

    /// Copy `[offset, offset+len)` of a region into `out`, loading the
    /// covering words in **descending** address order with `Acquire`.
    /// Bounds must have been checked.
    pub(crate) fn read_into(
        &self,
        node: NodeId,
        region: RegionId,
        offset: usize,
        len: usize,
        out: &mut Vec<u8>,
    ) {
        out.clear();
        out.resize(len, 0);
        if len == 0 {
            return;
        }
        let r = &self.regions[node.index()][region.index()];
        let first = offset / 8;
        let last = (offset + len - 1) / 8;
        for w in (first..=last).rev() {
            let bytes = r.words[w].load(Ordering::Acquire).to_le_bytes();
            // Intersect word `w`'s byte span with the requested range.
            let word_base = w * 8;
            let from = offset.max(word_base);
            let to = (offset + len).min(word_base + 8);
            out[from - offset..to - offset].copy_from_slice(&bytes[from - word_base..to - word_base]);
        }
    }

    /// Store `data` at `[offset, ...)` of a region, storing the
    /// covering words in **ascending** address order with `Release`.
    /// Partially covered boundary words are read-merge-written — sound
    /// under the single-writer-per-word alignment invariant. Bounds
    /// and permission must have been checked.
    pub(crate) fn write(&self, node: NodeId, region: RegionId, offset: usize, data: &[u8]) {
        if data.is_empty() {
            return;
        }
        let r = &self.regions[node.index()][region.index()];
        let first = offset / 8;
        let last = (offset + data.len() - 1) / 8;
        for w in first..=last {
            let word_base = w * 8;
            let from = offset.max(word_base);
            let to = (offset + data.len()).min(word_base + 8);
            let mut bytes = if to - from == 8 {
                [0u8; 8]
            } else {
                r.words[w].load(Ordering::Relaxed).to_le_bytes()
            };
            bytes[from - word_base..to - word_base]
                .copy_from_slice(&data[from - offset..to - offset]);
            r.words[w].store(u64::from_le_bytes(bytes), Ordering::Release);
        }
    }

    /// Compare-and-swap the little-endian u64 at `offset` (which must
    /// be 8-aligned, as every cell the protocol CASes is); returns the
    /// prior value. Bounds and permission must have been checked.
    pub(crate) fn cas(
        &self,
        node: NodeId,
        region: RegionId,
        offset: usize,
        expected: u64,
        swap: u64,
    ) -> u64 {
        assert_eq!(offset % 8, 0, "CAS targets must be word-aligned");
        let r = &self.regions[node.index()][region.index()];
        match r.words[offset / 8].compare_exchange(
            expected,
            swap,
            Ordering::AcqRel,
            Ordering::Acquire,
        ) {
            Ok(prior) | Err(prior) => prior,
        }
    }

    /// Grant or revoke `source`'s write permission on `(node, region)`.
    pub(crate) fn set_perm(&self, node: NodeId, region: RegionId, source: NodeId, allowed: bool) {
        self.regions[node.index()][region.index()].perms[source.index()]
            .store(allowed, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mem() -> (SharedMem, RegionId) {
        let mut m = SharedMem::new(2);
        let r = m.add_region_all(64);
        (m, r)
    }

    #[test]
    fn unaligned_spans_roundtrip() {
        let (m, r) = mem();
        let data: Vec<u8> = (0..23).collect();
        m.write(NodeId(0), r, 5, &data);
        let mut out = Vec::new();
        m.read_into(NodeId(0), r, 5, 23, &mut out);
        assert_eq!(out, data);
        // Neighbouring bytes stay zero (boundary-word merge).
        m.read_into(NodeId(0), r, 0, 64, &mut out);
        assert_eq!(&out[0..5], &[0; 5]);
        assert_eq!(&out[28..], &[0; 36]);
    }

    #[test]
    fn cas_swaps_only_on_match() {
        let (m, r) = mem();
        m.write(NodeId(1), r, 8, &7u64.to_le_bytes());
        assert_eq!(m.cas(NodeId(1), r, 8, 6, 9), 7, "mismatch returns prior");
        assert_eq!(m.cas(NodeId(1), r, 8, 7, 9), 7, "match swaps");
        let mut out = Vec::new();
        m.read_into(NodeId(1), r, 8, 8, &mut out);
        assert_eq!(u64::from_le_bytes(out.try_into().unwrap()), 9);
    }

    #[test]
    fn checks_mirror_simulator_semantics() {
        let (m, r) = mem();
        assert_eq!(m.check(NodeId(0), NodeId(1), r, 60, 8, false), CompletionStatus::OutOfBounds);
        assert_eq!(
            m.check(NodeId(0), NodeId(1), RegionId(9), 0, 1, false),
            CompletionStatus::OutOfBounds
        );
        m.set_perm(NodeId(1), r, NodeId(0), false);
        assert_eq!(m.check(NodeId(0), NodeId(1), r, 0, 8, true), CompletionStatus::AccessDenied);
        assert_eq!(
            m.check(NodeId(0), NodeId(1), r, 0, 8, false),
            CompletionStatus::Success,
            "reads ignore write permission"
        );
        assert_eq!(
            m.check(NodeId(1), NodeId(1), r, 0, 8, true),
            CompletionStatus::Success,
            "the owner's own writes ignore it too"
        );
    }
}
