//! One OS thread per replica: spawn, drive, converge, join.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver};
use std::sync::Arc;
use std::time::{Duration, Instant};

use hamband_core::coord::{CoordSpec, GroupMapper};
use hamband_core::ids::Pid;
use hamband_core::object::WorkloadSupport;
use hamband_core::wire::Wire;
use rdma_sim::{Event, NodeId, SimDuration, SimTime, Stats};

use super::ctx::ThreadedCtx;
use super::shared::SharedMem;
use crate::config::RuntimeConfig;
use crate::driver::WorkloadSpec;
use crate::layout::Layout;
use crate::replica::HambandNode;
use crate::transport::Transport;

/// How many cross-thread messages one event-loop iteration handles
/// before re-checking timers — bounds iteration length so heartbeats
/// and yields stay regular under message bursts.
const MSG_BUDGET: usize = 64;

/// Consecutive stable observations (all nodes done, applied counts
/// equal) the convergence poller requires before initiating shutdown.
const STABLE_POLLS: usize = 3;

/// A whole Hamband cluster, one OS thread per replica, over
/// process-shared atomic memory and real wall-clock timers.
pub struct ThreadedCluster<O: WorkloadSupport> {
    n: usize,
    nodes: Vec<HambandNode<O>>,
    ctxs: Vec<ThreadedCtx>,
    receivers: Vec<Receiver<Event>>,
    epoch: Instant,
    started: bool,
    completed_at: SimTime,
}

impl<O> ThreadedCluster<O>
where
    O: WorkloadSupport + Clone + Send,
    O::Update: Wire + Send,
    O::State: PartialEq + Send,
{
    /// Build an `n`-node cluster: allocate the standard region
    /// [`Layout`] in shared memory and construct each replica with the
    /// coordination spec's default leaders.
    ///
    /// Failure-detection timers are stretched to wall-clock scale
    /// (heartbeat 2 ms, detector read 5 ms, suspicion after 200
    /// unchanged reads ≈ 1 s of silence): the simulator's
    /// microsecond-scale defaults would let ordinary OS scheduling
    /// jitter — a preempted replica thread on a loaded box — trip the
    /// detector and trigger spurious elections. The threaded backend
    /// injects no faults, so nothing is lost by suspecting slowly.
    pub fn new(
        n: usize,
        spec: &O,
        coord: &CoordSpec,
        cfg: RuntimeConfig,
        workload: WorkloadSpec,
    ) -> ThreadedCluster<O> {
        let mut cfg = cfg;
        cfg.heartbeat_interval = SimDuration::millis(2);
        cfg.fd_interval = SimDuration::millis(5);
        cfg.fd_suspect_after = 200;
        let mut mem = SharedMem::new(n);
        // No restart faults on the threaded backend either: the
        // durable flag is accepted and ignored.
        let layout = Layout::plan(n, coord, &cfg, |size, _durable| mem.add_region_all(size));
        let mem = Arc::new(mem);
        let leaders: Vec<Pid> = GroupMapper::new(coord, cfg.sync_shards).default_leaders(n);
        let (senders, receivers): (Vec<_>, Vec<_>) = (0..n).map(|_| channel()).unzip();
        let epoch = Instant::now();
        let ctxs = (0..n)
            .map(|i| ThreadedCtx::new(NodeId(i), n, Arc::clone(&mem), senders.clone(), epoch))
            .collect();
        let nodes = (0..n)
            .map(|i| {
                HambandNode::new(
                    spec.clone(),
                    coord.clone(),
                    cfg.clone(),
                    layout.clone(),
                    NodeId(i),
                    n,
                    &leaders,
                    workload.clone(),
                )
            })
            .collect();
        ThreadedCluster {
            n,
            nodes,
            ctxs,
            receivers,
            epoch,
            started: false,
            completed_at: SimTime::ZERO,
        }
    }

    /// Spawn one thread per replica and run until every replica
    /// reports [`workload_done`](HambandNode::workload_done) and all
    /// applied counts agree (observed stable across several polls), or
    /// until `limit` of wall time passes. Threads are joined before
    /// returning; the result is the *post-join* authoritative check —
    /// all done, identical applied maps, identical state snapshots.
    pub fn run_to_convergence(&mut self, limit: Duration) -> bool {
        let first = !self.started;
        self.started = true;
        let n = self.n;
        let shutdown = AtomicBool::new(false);
        let done: Vec<AtomicBool> = (0..n).map(|_| AtomicBool::new(false)).collect();
        let applied: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
        let start = Instant::now();
        std::thread::scope(|s| {
            for (i, ((node, ctx), rx)) in self
                .nodes
                .iter_mut()
                .zip(self.ctxs.iter_mut())
                .zip(self.receivers.iter_mut())
                .enumerate()
            {
                let (shutdown, done, applied) = (&shutdown, &done[i], &applied[i]);
                s.spawn(move || replica_thread(node, ctx, rx, first, shutdown, done, applied));
            }
            // Convergence poller (runs on the caller's thread).
            let mut stable = 0usize;
            while stable < STABLE_POLLS {
                std::thread::sleep(Duration::from_millis(1));
                if start.elapsed() >= limit {
                    break;
                }
                let all_done = done.iter().all(|d| d.load(Ordering::Acquire));
                let a0 = applied[0].load(Ordering::Acquire);
                let agree = applied.iter().all(|a| a.load(Ordering::Acquire) == a0);
                stable = if all_done && agree { stable + 1 } else { 0 };
            }
            self.completed_at = SimTime(self.epoch.elapsed().as_nanos() as u64);
            shutdown.store(true, Ordering::Release);
        });
        self.converged()
    }

    fn converged(&self) -> bool {
        let done = self.nodes.iter().all(|n| n.workload_done());
        let s0 = self.nodes[0].state_snapshot();
        let m0 = self.nodes[0].applied_map();
        done && self
            .nodes
            .iter()
            .all(|n| n.state_snapshot() == s0 && n.applied_map() == m0)
    }

    /// The replica that ran on thread `i` (post-run assertions).
    pub fn node(&self, i: usize) -> &HambandNode<O> {
        &self.nodes[i]
    }

    /// Wall-clock time (ns since the cluster epoch) at which the
    /// convergence poller initiated shutdown.
    pub fn completed_at(&self) -> SimTime {
        self.completed_at
    }

    /// Fabric traffic counters, merged across the replica threads.
    pub fn stats(&self) -> Stats {
        let mut s = Stats::new(self.n);
        for (i, ctx) in self.ctxs.iter().enumerate() {
            let c = &ctx.counters;
            s.writes += c.writes;
            s.reads += c.reads;
            s.cas += c.cas;
            s.messages += c.messages;
            s.one_sided_bytes += c.one_sided_bytes;
            s.message_bytes += c.message_bytes;
            s.ring_writes += c.ring_writes;
            s.ring_slots += c.ring_slots;
            s.per_node_ops[i] = c.writes + c.reads + c.cas + c.messages;
        }
        s
    }

    /// Number of replicas.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Always false: a cluster has at least one replica.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }
}

/// The per-replica event loop. Each iteration drains synchronous verb
/// completions, a bounded batch of cross-thread messages, and every
/// due timer, then publishes progress and yields the core — the yield
/// is what keeps an n-thread cluster live on fewer-than-n cores.
fn replica_thread<O>(
    node: &mut HambandNode<O>,
    ctx: &mut ThreadedCtx,
    rx: &mut Receiver<Event>,
    first: bool,
    shutdown: &AtomicBool,
    done: &AtomicBool,
    applied: &AtomicU64,
) where
    O: WorkloadSupport,
    O::Update: Wire,
{
    if first {
        node.start(ctx);
    }
    loop {
        while let Some(ev) = ctx.local_q.pop_front() {
            node.handle_event(ctx, ev);
        }
        for _ in 0..MSG_BUDGET {
            let Ok(ev) = rx.try_recv() else { break };
            node.handle_event(ctx, ev);
            while let Some(ev) = ctx.local_q.pop_front() {
                node.handle_event(ctx, ev);
            }
        }
        // Timers armed while firing land strictly later than `now`,
        // so this inner loop terminates.
        let now = ctx.now();
        while let Some(ev) = ctx.pop_due_timer(now) {
            node.handle_event(ctx, ev);
            while let Some(ev) = ctx.local_q.pop_front() {
                node.handle_event(ctx, ev);
            }
        }
        done.store(node.workload_done(), Ordering::Release);
        applied.store(node.applied_updates(), Ordering::Release);
        if shutdown.load(Ordering::Acquire) {
            return;
        }
        std::thread::yield_now();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hamband_types::Counter;

    /// The tentpole smoke test: a 3-node Counter cluster converges on
    /// real OS threads over shared atomic memory.
    #[test]
    fn three_node_counter_converges_on_threads() {
        let spec = Counter::default();
        let coord = spec.coord_spec();
        let workload = WorkloadSpec::ops(300).with_update_ratio(1.0).with_seed(7);
        let mut cluster =
            ThreadedCluster::new(3, &spec, &coord, RuntimeConfig::default(), workload);
        assert!(
            cluster.run_to_convergence(Duration::from_secs(30)),
            "threaded cluster failed to converge: {}",
            (0..3).map(|i| cluster.node(i).status().to_string()).collect::<Vec<_>>().join(" | "),
        );
        let total = cluster.node(0).applied_updates();
        assert!(total > 0, "no updates applied");
        for i in 1..3 {
            assert_eq!(cluster.node(i).applied_updates(), total);
        }
        let stats = cluster.stats();
        // A fast run can converge before the first failure-detector
        // READ fires (5 ms wall-clock), so only WRITE traffic — which
        // every update necessarily generates — is asserted.
        assert!(stats.writes > 0, "no fabric traffic recorded");
    }
}
