//! Runtime tuning parameters.

use rdma_sim::SimDuration;

use crate::persist::DurabilityMode;

/// Tuning for a Hamband cluster (buffer geometry, protocol timers,
//  workload pacing).
#[derive(Debug, Clone)]
pub struct RuntimeConfig {
    /// Maximum encoded size of a call + its dependency array, bytes.
    pub payload_cap: usize,
    /// Maximum encoded size of a summarized call, bytes. Summaries of
    /// grow-only types (e.g. GSet's `add_all`) grow with the number of
    /// calls folded in, so this is sized to the workload (the harness
    /// scales it automatically).
    pub summary_payload_cap: usize,
    /// Capacity (entries) of each conflict-free ring buffer `F`.
    pub free_ring_cap: usize,
    /// Capacity (entries) of each conflicting ring buffer `L`.
    pub conf_ring_cap: usize,
    /// Number of backup slots for the reliable-broadcast ring.
    pub backup_slots: usize,
    /// How often each node traverses its buffers (§4: "two threads
    /// traverse and process the calls of F and L buffers").
    pub poll_interval: SimDuration,
    /// CPU cost of one traversal pass that finds nothing.
    pub poll_cost: SimDuration,
    /// Heartbeat increment period.
    pub heartbeat_interval: SimDuration,
    /// Failure-detector read period.
    pub fd_interval: SimDuration,
    /// Consecutive unchanged reads before suspecting a peer.
    pub fd_suspect_after: u32,
    /// Max update calls a node keeps outstanding (client pipelining).
    pub window: usize,
    /// Doorbell-batching knob: maximum number of contiguous ring slots
    /// a single one-sided WRITE may span. `1` posts one WRITE per
    /// entry (the unbatched protocol); larger values let a
    /// [`RingWriter`](crate::rings::RingWriter) coalesce adjacent
    /// pending entries into one WRITE, splitting only at ring
    /// wraparound and flow-control limits.
    pub max_batch: usize,
    /// Key shards per synchronization group. Each sync group of the
    /// coordination spec is split into this many independent
    /// [`GroupEngine`](crate::conf::GroupEngine) instances; a
    /// [`GroupMapper`](hamband_core::GroupMapper) hashes each call's
    /// shard key onto one of them, so same-key conflicting calls still
    /// serialize (Lemma 1 per shard) while cross-key calls proceed in
    /// parallel. `1` reproduces the paper's one-log-per-group layout.
    pub sync_shards: usize,
    /// Whether replicas keep durable hard state for crash-restart
    /// (see [`crate::persist`]). `Off` is byte-identical to the
    /// crash-stop runtime; `Fenced` allocates a persist log per node
    /// and fences hard state at the seam points.
    pub durability: DurabilityMode,
    /// Size in bytes of each node's persist log region (only allocated
    /// under [`DurabilityMode::Fenced`]).
    pub persist_log_bytes: usize,
}

/// Default `max_batch`, overridable via the `HAMBAND_MAX_BATCH`
/// environment variable (used by `scripts/check.sh` to run the full
/// suite in both the batched and the unbatched configuration).
fn default_max_batch() -> usize {
    match std::env::var("HAMBAND_MAX_BATCH") {
        Ok(v) => v.parse::<usize>().ok().filter(|&b| b >= 1).unwrap_or(16),
        Err(_) => 16,
    }
}

/// Default `sync_shards`, overridable via the `HAMBAND_SYNC_SHARDS`
/// environment variable (used by `scripts/check.sh` and CI to run the
/// chaos campaigns in the sharded configuration).
fn default_sync_shards() -> usize {
    match std::env::var("HAMBAND_SYNC_SHARDS") {
        Ok(v) => v.parse::<usize>().ok().filter(|&s| s >= 1).unwrap_or(1),
        Err(_) => 1,
    }
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig {
            payload_cap: 256,
            summary_payload_cap: 4096,
            free_ring_cap: 256,
            conf_ring_cap: 512,
            backup_slots: 64,
            poll_interval: SimDuration::nanos(800),
            poll_cost: SimDuration::nanos(40),
            heartbeat_interval: SimDuration::micros(5),
            fd_interval: SimDuration::micros(8),
            fd_suspect_after: 3,
            window: 8,
            max_batch: default_max_batch(),
            sync_shards: default_sync_shards(),
            durability: DurabilityMode::from_env(),
            persist_log_bytes: 1 << 20,
        }
    }
}

impl RuntimeConfig {
    /// Use this client pipelining window (must be positive, and small
    /// enough that the rings can absorb it).
    pub fn with_window(mut self, window: usize) -> Self {
        assert!(window >= 1, "window must be at least 1");
        assert!(
            self.free_ring_cap > window * 2,
            "free ring ({} entries) cannot absorb a window of {window}",
            self.free_ring_cap
        );
        self.window = window;
        self
    }

    /// Traverse the buffers this often.
    pub fn with_poll_interval(mut self, interval: SimDuration) -> Self {
        assert!(interval > SimDuration::ZERO, "poll interval must be positive");
        self.poll_interval = interval;
        self
    }

    /// Allow summarized payloads up to this many bytes.
    pub fn with_summary_payload_cap(mut self, cap: usize) -> Self {
        assert!(cap >= 16, "summary payload cap must hold at least one call");
        self.summary_payload_cap = cap;
        self
    }

    /// Coalesce up to this many contiguous ring entries per WRITE
    /// (`1` = one WRITE per entry).
    pub fn with_max_batch(mut self, max_batch: usize) -> Self {
        assert!(max_batch >= 1, "max_batch must be at least 1");
        self.max_batch = max_batch;
        self
    }

    /// Split each synchronization group into this many key shards
    /// (`1` = the paper's one-log-per-group layout).
    pub fn with_sync_shards(mut self, shards: usize) -> Self {
        assert!(shards >= 1, "sync_shards must be at least 1");
        self.sync_shards = shards;
        self
    }

    /// Keep durable hard state (or not) for crash-restart.
    pub fn with_durability(mut self, mode: DurabilityMode) -> Self {
        self.durability = mode;
        self
    }

    /// Use a persist log of this many bytes per node.
    pub fn with_persist_log_bytes(mut self, bytes: usize) -> Self {
        assert!(bytes > crate::persist::HEADER_BYTES, "persist log must hold its header");
        self.persist_log_bytes = bytes;
        self
    }

    /// Use rings of these capacities (entries).
    pub fn with_ring_caps(mut self, free: usize, conf: usize) -> Self {
        assert!(free > self.window * 2, "free ring must absorb the window");
        assert!(conf >= 2, "conf ring needs at least two entries");
        self.free_ring_cap = free;
        self.conf_ring_cap = conf;
        self
    }

    /// Size in bytes of one ring entry slot, rounded up to a multiple
    /// of 8 so slot strides stay word-aligned (the threaded backend
    /// stores regions as atomic 64-bit words; word alignment keeps each
    /// slot's words single-writer).
    pub fn entry_size(&self) -> usize {
        // seq (8) + len (2) + payload + canary trailer (8: the seq
        // echoed, so a reused slot's stale trailer cannot validate the
        // next epoch's half-landed entry)
        round_up_8(8 + 2 + self.payload_cap + 8)
    }

    /// Size in bytes of one summary slot for a group of `group_len`
    /// methods, rounded up to a multiple of 8 (same word-alignment
    /// requirement as [`entry_size`](Self::entry_size)).
    pub fn summary_slot_size(&self, group_len: usize) -> usize {
        // ver (8) + per-method applied counts + len (2) + payload + ver2 (8)
        round_up_8(8 + 8 * group_len + 2 + self.summary_payload_cap + 8)
    }
}

/// Round `n` up to the next multiple of 8.
pub(crate) fn round_up_8(n: usize) -> usize {
    n.div_ceil(8) * 8
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_are_consistent() {
        let c = RuntimeConfig::default();
        assert_eq!(c.entry_size(), round_up_8(8 + 2 + c.payload_cap + 8));
        assert_eq!(
            c.summary_slot_size(2),
            round_up_8(8 + 16 + 2 + c.summary_payload_cap + 8)
        );
        // Word alignment: slot strides are multiples of 8.
        assert_eq!(c.entry_size() % 8, 0);
        assert_eq!(c.summary_slot_size(5) % 8, 0);
        assert!(c.free_ring_cap > c.window * 2, "ring must absorb the window");
    }

    #[test]
    fn round_up_8_is_exact_on_multiples() {
        assert_eq!(round_up_8(0), 0);
        assert_eq!(round_up_8(1), 8);
        assert_eq!(round_up_8(8), 8);
        assert_eq!(round_up_8(9), 16);
        assert_eq!(round_up_8(267), 272);
    }

    #[test]
    fn builders_validate_and_compose() {
        let c = RuntimeConfig::default()
            .with_window(16)
            .with_poll_interval(SimDuration::nanos(500))
            .with_summary_payload_cap(8192)
            .with_ring_caps(128, 64)
            .with_max_batch(4);
        assert_eq!(c.window, 16);
        assert_eq!(c.poll_interval, SimDuration::nanos(500));
        assert_eq!(c.summary_payload_cap, 8192);
        assert_eq!((c.free_ring_cap, c.conf_ring_cap), (128, 64));
        assert_eq!(c.max_batch, 4);
    }

    #[test]
    #[should_panic(expected = "max_batch")]
    fn zero_max_batch_is_rejected() {
        let _ = RuntimeConfig::default().with_max_batch(0);
    }

    #[test]
    fn sync_shards_builder_and_default() {
        // Tests may run with HAMBAND_SYNC_SHARDS set (check.sh chaos
        // pass), so only assert the builder and the ≥1 floor here.
        assert!(RuntimeConfig::default().sync_shards >= 1);
        assert_eq!(RuntimeConfig::default().with_sync_shards(8).sync_shards, 8);
    }

    #[test]
    #[should_panic(expected = "sync_shards")]
    fn zero_sync_shards_is_rejected() {
        let _ = RuntimeConfig::default().with_sync_shards(0);
    }

    #[test]
    #[should_panic(expected = "absorb")]
    fn oversized_window_is_rejected() {
        let _ = RuntimeConfig::default().with_ring_caps(64, 64).with_window(40);
    }
}
