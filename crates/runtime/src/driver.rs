//! Workload generation and client pacing.
//!
//! The evaluation setup of §5: "We randomly generate method calls and
//! uniformly distribute update calls between updated methods. The calls
//! on conflicting methods are automatically redirected to the
//! corresponding leader node(s). All the other calls including
//! conflict-free and query calls are divided equally between the
//! nodes."
//!
//! Each node runs a [`Driver`]: a closed-loop client that keeps up to
//! `window` update calls outstanding. Conflict-free (and query) quotas
//! are per node; conflicting quotas are *global per synchronization
//! group* and are consumed by whichever node currently leads the group
//! (the redirection above — and, under leader failure, the natural
//! hand-off of the remaining conflicting workload to the new leader).

use hamband_core::coord::{CoordSpec, MethodCategory};
use hamband_core::ids::MethodId;
use hamband_core::object::WorkloadSupport;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Workload parameters for one run.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Total calls (updates + queries) across the whole cluster.
    pub total_ops: u64,
    /// Fraction of calls that are updates (e.g. `0.25`).
    pub update_ratio: f64,
    /// Client pipelining: max outstanding updates per node.
    pub window: usize,
    /// RNG seed (per-node streams are derived from it).
    pub seed: u64,
}

impl Workload {
    /// A workload of `total_ops` calls with the given update ratio.
    pub fn new(total_ops: u64, update_ratio: f64) -> Self {
        assert!((0.0..=1.0).contains(&update_ratio));
        Workload { total_ops, update_ratio, window: 8, seed: 0xda7a }
    }

    /// Builder-style seed override.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder-style window override.
    pub fn with_window(mut self, window: usize) -> Self {
        self.window = window;
        self
    }
}

/// What the driver wants to do next.
#[derive(Debug, Clone, PartialEq)]
pub enum Planned<U, Q> {
    /// Issue this update call (occupies a window slot until acked).
    Update(U),
    /// Execute this query locally.
    Query(Q),
}

/// Per-node closed-loop client.
#[derive(Debug)]
pub struct Driver {
    rng: StdRng,
    node: usize,
    /// Remaining local query quota.
    queries_left: u64,
    /// The query quota this node started with.
    initial_queries: u64,
    /// Remaining local update quota per conflict-free method.
    free_left: Vec<u64>,
    /// The quota each conflict-free method started with (used to
    /// compute how much of a failed peer's plan remains to adopt).
    initial_free: Vec<u64>,
    /// Global conflicting quota per sync group (consumed by leaders;
    /// progress is measured against the group ring's appended count).
    conf_target: Vec<u64>,
    /// Currently outstanding updates.
    outstanding: usize,
    window: usize,
    /// Sequence for fresh identifiers handed to generators.
    next_seq: u64,
    /// Consecutive fully-idle planning attempts that produced nothing.
    dry_streak: u64,
    /// Halted by failure injection: stop issuing.
    halted: bool,
}

/// After this many consecutive idle planning attempts with pending but
/// ungeneratable quota, the driver forfeits the remainder (e.g. a
/// remove-only tail on an empty set). At one attempt per poll this is
/// on the order of a millisecond of virtual time.
const FORFEIT_AFTER: u64 = 2_000;

impl Driver {
    /// Build the driver for `node` of `n`, splitting the workload as §5
    /// prescribes.
    pub fn new(workload: &Workload, coord: &CoordSpec, node: usize, n: usize) -> Self {
        let updates_total = (workload.total_ops as f64 * workload.update_ratio).round() as u64;
        let queries_total = workload.total_ops - updates_total;
        let methods = coord.method_count() as u64;
        let per_method = updates_total / methods;

        let mut free_left = vec![0u64; coord.method_count()];
        let mut conf_target = vec![0u64; coord.sync_groups().len()];
        for (m, left) in free_left.iter_mut().enumerate() {
            match coord.category(MethodId(m)) {
                MethodCategory::Conflicting { sync_group } => {
                    conf_target[sync_group.index()] += per_method;
                }
                _ => {
                    // Split evenly; spread the remainder over low nodes.
                    let base = per_method / n as u64;
                    let extra = u64::from((node as u64) < per_method % n as u64);
                    *left = base + extra;
                }
            }
        }
        let q_base = queries_total / n as u64;
        let q_extra = u64::from((node as u64) < queries_total % n as u64);

        Driver {
            rng: StdRng::seed_from_u64(workload.seed ^ (node as u64).wrapping_mul(0x9e3779b97f4a7c15)),
            node,
            queries_left: q_base + q_extra,
            initial_queries: q_base + q_extra,
            initial_free: free_left.clone(),
            free_left,
            conf_target,
            outstanding: 0,
            window: workload.window,
            next_seq: 0,
            dry_streak: 0,
            halted: false,
        }
    }

    /// Remaining global conflicting quota of group `g`, given how many
    /// entries its ring already carries.
    pub fn conf_remaining(&self, g: usize, ring_appended: u64) -> u64 {
        self.conf_target[g].saturating_sub(ring_appended)
    }

    /// The conflict-free quota method `m` started with at this node.
    pub fn initial_free_quota(&self, m: usize) -> u64 {
        self.initial_free[m]
    }

    /// Stop issuing (the node was "failed" by the fault plan).
    pub fn halt(&mut self) {
        self.halted = true;
    }

    /// Whether the driver was halted.
    pub fn is_halted(&self) -> bool {
        self.halted
    }

    /// Adopt part of a failed peer's conflict-free quota ("after a
    /// failure, all the requests of the failed node are redirected to
    /// the next available node"). The adopter also takes over the
    /// failed client's pipelining window — it now serves two client
    /// streams.
    pub fn adopt_free_quota(&mut self, per_method: &[u64], queries: u64) {
        for (m, extra) in per_method.iter().enumerate() {
            self.free_left[m] += extra;
        }
        self.queries_left += queries;
        self.window *= 2;
        self.dry_streak = 0;
    }

    /// The query quota this node started with.
    pub fn initial_queries(&self) -> u64 {
        // queries_left only decreases (plus adoption, which callers
        // account separately), so reconstruct from the workload split.
        self.initial_queries
    }

    /// An update was acknowledged: free a window slot.
    pub fn on_ack(&mut self) {
        self.outstanding = self.outstanding.saturating_sub(1);
    }

    /// An outstanding update failed permanently (e.g. deposed leader):
    /// free its slot without restoring quota.
    pub fn on_abort(&mut self) {
        self.outstanding = self.outstanding.saturating_sub(1);
    }

    /// Whether every local quota is spent and nothing is outstanding.
    /// (Conflicting quotas are global; the harness checks them against
    /// the rings.)
    pub fn local_done(&self) -> bool {
        self.halted
            || (self.queries_left == 0
                && self.free_left.iter().all(|&x| x == 0)
                && self.outstanding == 0)
    }

    /// Updates currently outstanding.
    pub fn outstanding(&self) -> usize {
        self.outstanding
    }

    /// Plan the next call, if the window has room and quota remains.
    ///
    /// `is_leader_of[g]` and `ring_appended[g]` gate the conflicting
    /// quota; `state` lets generators produce context-sensitive calls.
    /// Returns `None` when nothing can be issued right now.
    pub fn next<O: WorkloadSupport>(
        &mut self,
        spec: &O,
        state: &O::State,
        coord: &CoordSpec,
        is_leader_of: &[bool],
        ring_appended: &[u64],
    ) -> Option<Planned<O::Update, O::Query>> {
        if self.halted {
            return None;
        }
        // Candidate update methods with remaining quota.
        let mut candidates: Vec<(MethodId, u64)> = Vec::new();
        let mut updates_left = 0u64;
        for m in 0..coord.method_count() {
            let left = match coord.category(MethodId(m)) {
                MethodCategory::Conflicting { sync_group } => {
                    let g = sync_group.index();
                    if is_leader_of[g] {
                        self.conf_remaining(g, ring_appended[g])
                    } else {
                        0
                    }
                }
                _ => self.free_left[m],
            };
            if left > 0 {
                candidates.push((MethodId(m), left));
                updates_left += left;
            }
        }
        let can_update = updates_left > 0 && self.outstanding < self.window;
        let can_query = self.queries_left > 0;
        if !can_update && !can_query {
            return None;
        }
        
        // Choose update vs query proportional to remaining quotas so
        // the mix stays uniform over the run.
        let pick_update = match (can_update, can_query) {
            (true, false) => true,
            (false, true) => false,
            _ => {
                let total = updates_left + self.queries_left;
                self.rng.gen_range(0..total) < updates_left
            }
            // (false,false) handled above
        };
        if !pick_update {
            self.queries_left -= 1;
            self.dry_streak = 0;
            return Some(Planned::Query(spec.sample_query(&mut self.rng)));
        }
        // Weighted method choice by remaining quota; fall back to other
        // methods when the generator has no valid call in this state.
        let mut tries = candidates.clone();
        while !tries.is_empty() {
            let total: u64 = tries.iter().map(|&(_, w)| w).sum();
            let mut pick = self.rng.gen_range(0..total);
            let idx = tries
                .iter()
                .position(|&(_, w)| {
                    if pick < w {
                        true
                    } else {
                        pick -= w;
                        false
                    }
                })
                .expect("weighted pick in range");
            let (method, _) = tries.swap_remove(idx);
            let seq = self.next_seq;
            if let Some(u) = spec.gen_update(state, self.node, seq, method, &mut self.rng) {
                self.next_seq += 1;
                self.charge(coord, method);
                self.outstanding += 1;
                self.dry_streak = 0;
                return Some(Planned::Update(u));
            }
        }
        // No method has a valid call in this state; try again later —
        // but give up on quota that stays ungeneratable for a long
        // time, so impossible workload tails terminate the run.
        if self.outstanding == 0 {
            self.dry_streak += 1;
            if self.dry_streak >= FORFEIT_AFTER {
                self.free_left.fill(0);
                for (g, target) in self.conf_target.iter_mut().enumerate() {
                    if is_leader_of.get(g).copied().unwrap_or(false) {
                        *target = (*target).min(ring_appended[g]);
                    }
                }
            }
        }
        None
    }

    fn charge(&mut self, coord: &CoordSpec, method: MethodId) {
        match coord.category(method) {
            MethodCategory::Conflicting { .. } => {
                // Global quota is measured against the ring; nothing to
                // decrement locally.
            }
            _ => {
                self.free_left[method.index()] -= 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hamband_core::demo::Account;

    fn account_coord() -> CoordSpec {
        Account::default().coord_spec()
    }

    #[test]
    fn quota_split_covers_total() {
        let coord = account_coord();
        let w = Workload::new(1_000, 0.5);
        let n = 3;
        let mut queries = 0;
        let mut deposits = 0;
        for node in 0..n {
            let d = Driver::new(&w, &coord, node, n);
            queries += d.queries_left;
            deposits += d.free_left[0];
        }
        let d0 = Driver::new(&w, &coord, 0, n);
        // 500 updates over 2 methods = 250 each; withdraw quota global.
        assert_eq!(deposits, 250);
        assert_eq!(d0.conf_target[0], 250);
        assert_eq!(queries, 500);
    }

    #[test]
    fn window_limits_outstanding() {
        let acc = Account::new(10);
        let coord = account_coord();
        let w = Workload::new(10_000, 1.0).with_window(4);
        let mut d = Driver::new(&w, &coord, 0, 1);
        let state = 1_000i128;
        let mut issued = 0;
        while let Some(p) = d.next(&acc, &state, &coord, &[true], &[issued]) {
            match p {
                Planned::Update(_) => issued += 1,
                Planned::Query(_) => {}
            }
            if d.outstanding() == 4 {
                break;
            }
        }
        assert_eq!(d.outstanding(), 4);
        assert!(d.next(&acc, &state, &coord, &[true], &[issued]).is_none());
        d.on_ack();
        assert!(d.next(&acc, &state, &coord, &[true], &[issued]).is_some());
    }

    #[test]
    fn non_leader_cannot_issue_conflicting() {
        let acc = Account::new(10);
        let coord = account_coord();
        // Updates only on withdraw: make deposits unavailable by using
        // ratio 1.0 then draining deposit quota.
        let w = Workload::new(100, 1.0).with_window(64);
        let mut d = Driver::new(&w, &coord, 0, 1);
        let state = 1_000i128;
        let mut saw_withdraw = false;
        let mut appended = 0u64;
        while let Some(p) = d.next(&acc, &state, &coord, &[false], &[appended]) {
            if let Planned::Update(u) = p {
                assert!(matches!(u, hamband_core::demo::AccountUpdate::Deposit(_)));
                let _ = &u;
                appended += 0; // no conflicting ring activity
                saw_withdraw |= matches!(u, hamband_core::demo::AccountUpdate::Withdraw(_));
                d.on_ack();
            }
        }
        assert!(!saw_withdraw);
    }

    #[test]
    fn halt_stops_issuing() {
        let acc = Account::new(10);
        let coord = account_coord();
        let w = Workload::new(100, 0.5);
        let mut d = Driver::new(&w, &coord, 0, 1);
        d.halt();
        assert!(d.local_done());
        assert!(d.next(&acc, &0i128, &coord, &[true], &[0]).is_none());
    }

    #[test]
    fn adoption_extends_quota() {
        let coord = account_coord();
        let w = Workload::new(400, 1.0);
        let mut d = Driver::new(&w, &coord, 0, 2);
        let before = d.free_left[0];
        d.adopt_free_quota(&[10, 0], 5);
        assert_eq!(d.free_left[0], before + 10);
    }

    #[test]
    fn generator_dry_state_returns_none_without_burning_quota() {
        let acc = Account::new(10);
        let coord = account_coord();
        // Pure withdraw workload at zero balance: generator yields None.
        let w = Workload::new(10, 1.0);
        let mut d = Driver::new(&w, &coord, 0, 1);
        d.free_left[0] = 0; // no deposits
        let state = 0i128;
        assert_eq!(d.next(&acc, &state, &coord, &[true], &[0]), None);
        assert_eq!(d.outstanding(), 0);
    }
}
