//! Workload specification and the per-node quota split.
//!
//! The evaluation setup of §5: "We randomly generate method calls and
//! uniformly distribute update calls between updated methods. The calls
//! on conflicting methods are automatically redirected to the
//! corresponding leader node(s). All the other calls including
//! conflict-free and query calls are divided equally between the
//! nodes."
//!
//! [`WorkloadSpec`] is the composable description of one run's client
//! load: total call count, update/query mix, key-popularity skew,
//! per-session closed-loop windows, and how many independent client
//! sessions each node serves. The issuing machinery itself lives in
//! [`crate::ingress`]: every node runs an
//! [`Ingress`](crate::ingress::Ingress) whose pump flat-combines the
//! sessions' operations into the replica's batched protocol paths.
//! [`QuotaSplit`] is the pure §5 arithmetic both the ingress and
//! failure [`recovery`](crate::recovery) (quota adoption) share.

use hamband_core::coord::{CoordSpec, MethodCategory};
use hamband_core::ids::MethodId;
use hamband_core::object::KeySkew;

/// Workload parameters for one run, builder-style.
///
/// ```
/// use hamband_runtime::{KeySkew, WorkloadSpec};
///
/// let spec = WorkloadSpec::ops(10_000)
///     .with_update_ratio(0.25)
///     .with_sessions(1_000)
///     .with_window(4)
///     .with_skew(KeySkew::Zipfian { theta: 0.9 })
///     .with_seed(42);
/// assert_eq!(spec.sessions, 1_000);
/// ```
#[derive(Debug, Clone)]
pub struct WorkloadSpec {
    /// Total calls (updates + queries) across the whole cluster.
    pub total_ops: u64,
    /// Fraction of calls that are updates (e.g. `0.25`).
    pub update_ratio: f64,
    /// Independent client sessions per node. Each session is its own
    /// seeded op stream with its own closed-loop window; the replica's
    /// pump flat-combines them into batched appends.
    pub sessions: usize,
    /// Client pipelining: max outstanding updates *per session*.
    pub window: usize,
    /// RNG seed (per-node, per-session streams are derived from it).
    pub seed: u64,
    /// Key-popularity skew applied by state-aware generators.
    pub skew: KeySkew,
    /// Open-loop offered load, cluster-wide operations per second.
    ///
    /// `None` (the default) keeps the classic closed loop: sessions
    /// re-issue the moment a window slot frees, so the cluster runs at
    /// its own capacity. `Some(rate)` switches the ingress to an
    /// open-loop arrival process — clients arrive at Poisson times at
    /// `rate` ops/s split evenly across nodes, *independent of
    /// completions* — and response time is measured from the arrival,
    /// so queueing delay under overload shows up in the latency
    /// distribution instead of silently throttling the offered load
    /// (the coordinated-omission error a closed loop makes).
    pub offered_load: Option<f64>,
}

impl WorkloadSpec {
    /// Builder entry point: a workload of `total_ops` calls with an
    /// even update/query mix, one session per node, window 8, uniform
    /// keys. Chain `with_*` calls to customize.
    pub fn ops(total_ops: u64) -> Self {
        WorkloadSpec {
            total_ops,
            update_ratio: 0.5,
            sessions: 1,
            window: 8,
            seed: 0xda7a,
            skew: KeySkew::Uniform,
            offered_load: default_offered_load(),
        }
    }

    /// Builder-style update-ratio override (`0.0 ..= 1.0`).
    pub fn with_update_ratio(mut self, update_ratio: f64) -> Self {
        assert!((0.0..=1.0).contains(&update_ratio));
        self.update_ratio = update_ratio;
        self
    }

    /// Builder-style session-count override (per node, ≥ 1).
    pub fn with_sessions(mut self, sessions: usize) -> Self {
        assert!(sessions >= 1, "a node needs at least one client session");
        self.sessions = sessions;
        self
    }

    /// Builder-style seed override.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder-style per-session window override (≥ 1).
    pub fn with_window(mut self, window: usize) -> Self {
        assert!(window >= 1, "window must be at least 1");
        self.window = window;
        self
    }

    /// Builder-style key-skew override.
    pub fn with_skew(mut self, skew: KeySkew) -> Self {
        self.skew = skew;
        self
    }

    /// Run open-loop at this offered load (cluster-wide ops/s, > 0).
    pub fn with_offered_load(mut self, ops_per_sec: f64) -> Self {
        assert!(
            ops_per_sec.is_finite() && ops_per_sec > 0.0,
            "offered load must be a positive rate, got {ops_per_sec}"
        );
        self.offered_load = Some(ops_per_sec);
        self
    }

    /// Back to the closed loop (clears any offered load).
    pub fn closed_loop(mut self) -> Self {
        self.offered_load = None;
        self
    }
}

/// Default `offered_load`, overridable via the `HAMBAND_OFFERED_LOAD`
/// environment variable (cluster-wide ops/s; unset, empty, or `0`
/// means closed-loop). Lets `scripts/check.sh` and CI flip an entire
/// bench invocation to open-loop without plumbing a flag everywhere.
fn default_offered_load() -> Option<f64> {
    match std::env::var("HAMBAND_OFFERED_LOAD") {
        Ok(v) => v.trim().parse::<f64>().ok().filter(|r| r.is_finite() && *r > 0.0),
        Err(_) => None,
    }
}

/// What a client session wants to do next.
#[derive(Debug, Clone, PartialEq)]
pub enum Planned<U, Q> {
    /// Issue this update call (occupies a window slot until acked).
    Update(U),
    /// Execute this query locally.
    Query(Q),
}

/// The §5 workload split for one node of an `n`-node cluster: local
/// query quota, local conflict-free quota per method, and the *global*
/// conflicting quota per synchronization group (consumed by whichever
/// node leads the group).
///
/// Pure arithmetic over the spec — cheap to recompute for any node,
/// which is exactly what failure recovery does to size the quota a
/// surviving node adopts from a suspect.
#[derive(Debug, Clone)]
pub struct QuotaSplit {
    /// Local query quota.
    pub queries: u64,
    /// Local conflict-free update quota per method (0 for conflicting
    /// methods).
    pub free: Vec<u64>,
    /// Global conflicting quota per synchronization group.
    pub conf_target: Vec<u64>,
}

impl QuotaSplit {
    /// Split `spec` for `node` of `n` as §5 prescribes: conflict-free
    /// and query quotas divided evenly (remainders spread over low
    /// nodes), conflicting quotas pooled globally per group.
    pub fn for_node(spec: &WorkloadSpec, coord: &CoordSpec, node: usize, n: usize) -> Self {
        let updates_total = (spec.total_ops as f64 * spec.update_ratio).round() as u64;
        let queries_total = spec.total_ops - updates_total;
        let methods = coord.method_count() as u64;
        let per_method = updates_total / methods;

        let mut free = vec![0u64; coord.method_count()];
        let mut conf_target = vec![0u64; coord.sync_groups().len()];
        for (m, left) in free.iter_mut().enumerate() {
            match coord.category(MethodId(m)) {
                MethodCategory::Conflicting { sync_group } => {
                    conf_target[sync_group.index()] += per_method;
                }
                _ => {
                    // Split evenly; spread the remainder over low nodes.
                    let base = per_method / n as u64;
                    let extra = u64::from((node as u64) < per_method % n as u64);
                    *left = base + extra;
                }
            }
        }
        let q_base = queries_total / n as u64;
        let q_extra = u64::from((node as u64) < queries_total % n as u64);
        QuotaSplit { queries: q_base + q_extra, free, conf_target }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hamband_core::demo::Account;

    #[test]
    fn quota_split_covers_total() {
        let coord = Account::default().coord_spec();
        let w = WorkloadSpec::ops(1_000);
        let n = 3;
        let mut queries = 0;
        let mut deposits = 0;
        for node in 0..n {
            let s = QuotaSplit::for_node(&w, &coord, node, n);
            queries += s.queries;
            deposits += s.free[0];
        }
        let s0 = QuotaSplit::for_node(&w, &coord, 0, n);
        // 500 updates over 2 methods = 250 each; withdraw quota global.
        assert_eq!(deposits, 250);
        assert_eq!(s0.conf_target[0], 250);
        assert_eq!(queries, 500);
    }

    #[test]
    fn builders_compose() {
        let w = WorkloadSpec::ops(500)
            .with_update_ratio(1.0)
            .with_sessions(64)
            .with_window(2)
            .with_seed(9)
            .with_skew(KeySkew::Zipfian { theta: 0.5 });
        assert_eq!(w.total_ops, 500);
        assert_eq!(w.update_ratio, 1.0);
        assert_eq!(w.sessions, 64);
        assert_eq!(w.window, 2);
        assert_eq!(w.seed, 9);
        assert_eq!(w.skew, KeySkew::Zipfian { theta: 0.5 });
    }

    #[test]
    #[should_panic(expected = "at least one client session")]
    fn zero_sessions_rejected() {
        let _ = WorkloadSpec::ops(10).with_sessions(0);
    }

    #[test]
    fn offered_load_builder_round_trips() {
        let w = WorkloadSpec::ops(100).with_offered_load(250_000.0);
        assert_eq!(w.offered_load, Some(250_000.0));
        assert_eq!(w.closed_loop().offered_load, None);
    }

    #[test]
    #[should_panic(expected = "positive rate")]
    fn zero_offered_load_rejected() {
        let _ = WorkloadSpec::ops(10).with_offered_load(0.0);
    }
}
