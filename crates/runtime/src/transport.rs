//! The transport seam: everything the protocol layers need from the
//! fabric, as a trait.
//!
//! [`HambandNode`](crate::replica::HambandNode), the ring endpoints in
//! [`rings`](crate::rings), the failure detector in
//! [`heartbeat`](crate::heartbeat), and the per-group engines in
//! [`conf`](crate::conf) are all generic over [`Transport`] instead of
//! calling [`rdma_sim::Ctx`] directly. The trait captures exactly the
//! surface the runtime consumes:
//!
//! * **one-sided verbs** — [`post_write`](Transport::post_write),
//!   [`post_read`](Transport::post_read),
//!   [`post_cas`](Transport::post_cas): asynchronous, completing later
//!   through [`Event::Completion`](rdma_sim::Event);
//! * **messaging** — [`send`](Transport::send), the two-sided slow path
//!   (elections, announcements, retirement);
//! * **timers** — [`set_timer`](Transport::set_timer) and the
//!   dedicated-thread variant
//!   [`set_timer_isolated`](Transport::set_timer_isolated);
//! * **local memory** — [`local`](Transport::local) /
//!   [`local_write`](Transport::local_write) over registered regions;
//! * **permissions** — [`set_write_permission`](Transport::set_write_permission),
//!   the QP-permission mechanism Mu-style consensus uses for leader
//!   exclusion;
//! * **trace & accounting hooks** — [`emit`](Transport::emit),
//!   [`consume`](Transport::consume), [`note_ring_write`](Transport::note_ring_write).
//!
//! Three implementations exist: [`rdma_sim::Ctx`] (the discrete-event
//! simulator with latency and fault modelling), the in-process
//! [`loopback`](crate::loopback) backend (direct memory + FIFO event
//! queues, no simulator), and the [`threaded`](crate::threaded)
//! backend (one OS thread per replica over process-shared atomic
//! memory, real wall-clock timers). A real-ibverbs backend would be a
//! fourth implementor; nothing in the protocol modules names the
//! simulator.
//!
//! The *vocabulary* types ([`NodeId`], [`RegionId`], [`WrId`],
//! [`Event`](rdma_sim::Event), [`TraceEvent`], [`SimTime`]) are shared
//! across backends — the trait abstracts the operations, not the
//! wire-level identifiers.

use bytes::Bytes;
use rdma_sim::{Ctx, LatencyModel, NodeId, RegionId, SimDuration, SimTime, TimerId, TraceEvent, WrId};

/// The operations a Hamband replica requires from its fabric.
///
/// All verb methods are asynchronous: they return a [`WrId`]
/// immediately and complete later through an
/// [`Event::Completion`](rdma_sim::Event) delivered to the node. Writes
/// from one node to one target land in posting order (RC FIFO), and a
/// successful WRITE completion means the data is placed in the remote
/// region without remote CPU involvement — implementations must
/// preserve both properties, the protocol depends on them.
pub trait Transport {
    /// The node this transport handle belongs to.
    fn node(&self) -> NodeId;

    /// Current (virtual) time.
    fn now(&self) -> SimTime;

    /// Cluster size.
    fn cluster_size(&self) -> usize;

    /// Charge `cost` of local CPU work (e.g. executing a method body).
    fn consume(&mut self, cost: SimDuration);

    /// The latency model in effect (read-only; used for CPU-cost
    /// constants such as `apply_cost`).
    fn latency(&self) -> &LatencyModel;

    /// Emit a protocol-level trace event to the run's sink, if any.
    /// The closure must only run when a sink is installed, so hot
    /// paths pay a single branch when tracing is off.
    fn emit(&mut self, make: impl FnOnce() -> TraceEvent);

    /// Record that the WRITE just posted carried `slots` ring entries
    /// (doorbell-batching accounting).
    fn note_ring_write(&mut self, slots: u64);

    /// Post a one-sided RDMA WRITE of `data` into
    /// `(target, region, offset)`.
    fn post_write(&mut self, target: NodeId, region: RegionId, offset: usize, data: &[u8])
        -> WrId;

    /// Post a one-sided RDMA READ of `len` bytes from
    /// `(target, region, offset)`; the completion carries the bytes.
    fn post_read(&mut self, target: NodeId, region: RegionId, offset: usize, len: usize) -> WrId;

    /// Post a one-sided compare-and-swap on the 8-byte little-endian
    /// word at `(target, region, offset)`; the completion carries the
    /// *prior* value (the swap happened iff it equals `expected`).
    fn post_cas(
        &mut self,
        target: NodeId,
        region: RegionId,
        offset: usize,
        expected: u64,
        swap: u64,
    ) -> WrId;

    /// Send a two-sided message (SEND/RECV; costs receiver CPU).
    fn send(&mut self, target: NodeId, payload: Bytes);

    /// Arm a timer that fires after `delay` with the given tag.
    fn set_timer(&mut self, delay: SimDuration, tag: u64) -> TimerId;

    /// Arm a timer that fires even while the node's CPU is busy — the
    /// moral equivalent of a dedicated thread (§4's heartbeat thread).
    fn set_timer_isolated(&mut self, delay: SimDuration, tag: u64) -> TimerId;

    /// Read this node's own region memory (free: local access).
    ///
    /// Takes `&mut self` so backends whose regions live in shared
    /// memory (the threaded backend) can snapshot the atomically
    /// published words into an owned scratch buffer and return a view
    /// of it; in-process backends just return the region bytes.
    fn local(&mut self, region: RegionId, offset: usize, len: usize) -> &[u8];

    /// Write this node's own region memory (free: local access).
    fn local_write(&mut self, region: RegionId, offset: usize, data: &[u8]);

    /// Grant or revoke write permission on a local region for a source
    /// node (the QP permission mechanism of Mu; local, instantaneous).
    fn set_write_permission(&mut self, region: RegionId, source: NodeId, allowed: bool);

    /// Make this node's *local* stores to a durable region survive a
    /// crash-restart (see [`crate::persist`]). Remote one-sided WRITEs
    /// are durable as they land; local CPU stores are not until fenced.
    /// Backends without a durability model (loopback, threaded — they
    /// never see restart faults) inherit the no-op default.
    fn fence_region(&mut self, _region: RegionId) {}
}

/// The simulator backend: [`rdma_sim::Ctx`] already exposes exactly
/// this surface, so the impl is a direct pass-through.
impl Transport for Ctx<'_> {
    fn node(&self) -> NodeId {
        Ctx::node(self)
    }
    fn now(&self) -> SimTime {
        Ctx::now(self)
    }
    fn cluster_size(&self) -> usize {
        Ctx::cluster_size(self)
    }
    fn consume(&mut self, cost: SimDuration) {
        Ctx::consume(self, cost)
    }
    fn latency(&self) -> &LatencyModel {
        Ctx::latency(self)
    }
    fn emit(&mut self, make: impl FnOnce() -> TraceEvent) {
        Ctx::emit(self, make)
    }
    fn note_ring_write(&mut self, slots: u64) {
        Ctx::note_ring_write(self, slots)
    }
    fn post_write(
        &mut self,
        target: NodeId,
        region: RegionId,
        offset: usize,
        data: &[u8],
    ) -> WrId {
        Ctx::post_write(self, target, region, offset, data)
    }
    fn post_read(&mut self, target: NodeId, region: RegionId, offset: usize, len: usize) -> WrId {
        Ctx::post_read(self, target, region, offset, len)
    }
    fn post_cas(
        &mut self,
        target: NodeId,
        region: RegionId,
        offset: usize,
        expected: u64,
        swap: u64,
    ) -> WrId {
        Ctx::post_cas(self, target, region, offset, expected, swap)
    }
    fn send(&mut self, target: NodeId, payload: Bytes) {
        Ctx::send(self, target, payload)
    }
    fn set_timer(&mut self, delay: SimDuration, tag: u64) -> TimerId {
        Ctx::set_timer(self, delay, tag)
    }
    fn set_timer_isolated(&mut self, delay: SimDuration, tag: u64) -> TimerId {
        Ctx::set_timer_isolated(self, delay, tag)
    }
    fn local(&mut self, region: RegionId, offset: usize, len: usize) -> &[u8] {
        Ctx::local(self, region, offset, len)
    }
    fn local_write(&mut self, region: RegionId, offset: usize, data: &[u8]) {
        Ctx::local_write(self, region, offset, data)
    }
    fn set_write_permission(&mut self, region: RegionId, source: NodeId, allowed: bool) {
        Ctx::set_write_permission(self, region, source, allowed)
    }
    fn fence_region(&mut self, region: RegionId) {
        Ctx::fence_region(self, region)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdma_sim::{App, Event, LatencyModel, SimDuration, Simulator};

    /// A tiny app written purely against the trait: node 0 writes a
    /// marker into node 1's region through `Transport`, proving the
    /// sim `Ctx` satisfies the seam.
    struct Seam {
        region: RegionId,
        wrote: bool,
        completed: bool,
    }

    fn kick<T: Transport>(t: &mut T, region: RegionId) {
        if t.node() == NodeId(0) {
            t.post_write(NodeId(1), region, 0, b"hamband!");
        }
    }

    impl App for Seam {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            kick(ctx, self.region);
            self.wrote = ctx.node() == NodeId(0);
        }
        fn on_event(&mut self, _ctx: &mut Ctx<'_>, event: Event) {
            if matches!(event, Event::Completion { status, .. } if status.is_success()) {
                self.completed = true;
            }
        }
    }

    #[test]
    fn sim_ctx_satisfies_the_seam() {
        let mut sim = Simulator::new(2, LatencyModel::deterministic(), 1);
        let region = sim.add_region_all(8);
        sim.set_apps(|_| Seam { region, wrote: false, completed: false });
        sim.run_for(SimDuration::millis(1));
        assert!(sim.app(NodeId(0)).wrote);
        assert!(sim.app(NodeId(0)).completed);
        assert_eq!(sim.region_bytes(NodeId(1), region), b"hamband!");
    }
}
