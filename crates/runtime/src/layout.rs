//! Registered-memory layout of a Hamband replica.
//!
//! Every node registers the same regions in the same order, so a peer
//! can compute remote addresses without any metadata exchange beyond
//! what connection setup provides (§4 "Meta-data"):
//!
//! | Region | Contents | Written by |
//! |--------|----------|------------|
//! | `heartbeat` | 8-byte liveness counter | owner (read remotely) |
//! | `summaries` | one summary slot per (summarization group, source) | the source process |
//! | `free_rings` | one ring of conflict-free calls per source | the source process |
//! | `heads` | head counters of every ring (F per source, then L per group) | owner (read remotely by writers) |
//! | `backup` | reliable-broadcast backup slots | owner (read remotely on suspicion) |
//! | `conf(g)` | commit cell + the `L` ring of sync group `g` | the group leader (write-permission-controlled) |
//! | `persist_log` | the node's durable write-ahead record (see [`crate::persist`]) | owner (local, fenced) |
//!
//! Each region also declares its **durability** (the second argument of
//! the [`Layout::plan`] allocator): ring slots, summary slots, the
//! conflicting commit cells, and the persist log are *hard* state a
//! restarted node reads back; heartbeat counters, head counters, and
//! the backup slots are *soft* — reconstructible (heads are republished
//! from the replayed persist log; backups only protect in-flight calls
//! a restarted node no longer owns). Under
//! [`DurabilityMode::Off`](crate::persist::DurabilityMode) everything
//! is allocated volatile and no persist log exists, which keeps the
//! crash-stop runtime byte-identical.

use hamband_core::coord::CoordSpec;
use rdma_sim::{App, NodeId, RegionId, Simulator};

use crate::config::RuntimeConfig;
use crate::persist::DurabilityMode;

/// Computed region ids and offsets, identical on every node.
#[derive(Debug, Clone)]
pub struct Layout {
    /// Cluster size.
    pub nodes: usize,
    /// Heartbeat counter region (8 bytes).
    pub heartbeat: RegionId,
    /// Summary slots region.
    pub summaries: RegionId,
    /// Conflict-free rings region.
    pub free_rings: RegionId,
    /// Ring-head counters region.
    pub heads: RegionId,
    /// Reliable-broadcast backup region.
    pub backup: RegionId,
    /// Conflicting ring region per *mapped* group (each synchronization
    /// group contributes [`RuntimeConfig::sync_shards`] entries).
    pub conf: Vec<RegionId>,
    /// The node's persist log (present only under
    /// [`DurabilityMode::Fenced`]).
    pub persist_log: Option<RegionId>,
    /// Byte offset of each summarization group's slot block within
    /// `summaries` (the block holds one slot per source node).
    sum_group_base: Vec<usize>,
    /// Slot size per summarization group.
    sum_slot_size: Vec<usize>,
    /// Entry slot size (rings).
    entry_size: usize,
    /// Free-ring capacity.
    free_cap: usize,
    /// Conf-ring capacity.
    conf_cap: usize,
    /// Backup slot size.
    backup_slot_size: usize,
    /// Backup slot count.
    backup_slots: usize,
}

impl Layout {
    /// Register all regions on a fresh simulator and return the layout.
    pub fn install<A: App>(
        sim: &mut Simulator<A>,
        coord: &CoordSpec,
        cfg: &RuntimeConfig,
    ) -> Layout {
        Self::plan(sim.len(), coord, cfg, |size, durable| {
            if durable {
                sim.add_region_all_durable(size)
            } else {
                sim.add_region_all(size)
            }
        })
    }

    /// Compute the layout for an `n`-node cluster, allocating each
    /// region through `alloc` (called once per region, in a fixed
    /// order, with the region's byte size and whether it holds hard —
    /// restart-surviving — state). [`Layout::install`] passes the
    /// simulator's registrar; the loopback backend passes its own
    /// in-process allocator (and may ignore the durability flag — it
    /// never sees restart faults). Every backend must allocate the same
    /// regions in the same order so remote offsets agree.
    pub fn plan(
        n: usize,
        coord: &CoordSpec,
        cfg: &RuntimeConfig,
        mut alloc: impl FnMut(usize, bool) -> RegionId,
    ) -> Layout {
        // Durable-region shadowing costs memory and fence bookkeeping;
        // under `Off` (crash-stop, the default) everything stays
        // volatile and behavior is identical to the pre-seam runtime.
        let hard = cfg.durability == DurabilityMode::Fenced;
        let heartbeat = alloc(8, false);

        let mut sum_group_base = Vec::new();
        let mut sum_slot_size = Vec::new();
        let mut off = 0usize;
        for g in coord.sum_groups() {
            let slot = cfg.summary_slot_size(g.len());
            sum_group_base.push(off);
            sum_slot_size.push(slot);
            off += slot * n;
        }
        let summaries = alloc(off.max(8), hard);

        let entry_size = cfg.entry_size();
        let free_rings = alloc(n * cfg.free_ring_cap * entry_size, hard);
        // One conf ring (and head slot) per *mapped* group: each sync
        // group contributes `sync_shards` independent logs.
        let mapped = coord.sync_groups().len() * cfg.sync_shards.max(1);
        let heads = alloc((n + mapped).max(1) * 8, false);
        let backup_slot_size = Self::backup_slot_size_for(cfg);
        let backup = alloc(cfg.backup_slots * backup_slot_size, false);
        let conf: Vec<RegionId> =
            (0..mapped).map(|_| alloc(8 + cfg.conf_ring_cap * entry_size, hard)).collect();
        // The persist log goes last so its presence never shifts the
        // region ids the crash-stop layout assigns.
        let persist_log = hard.then(|| alloc(cfg.persist_log_bytes, true));

        Layout {
            nodes: n,
            heartbeat,
            summaries,
            free_rings,
            heads,
            backup,
            conf,
            persist_log,
            sum_group_base,
            sum_slot_size,
            entry_size,
            free_cap: cfg.free_ring_cap,
            conf_cap: cfg.conf_ring_cap,
            backup_slot_size,
            backup_slots: cfg.backup_slots,
        }
    }

    fn backup_slot_size_for(cfg: &RuntimeConfig) -> usize {
        // kind (1) + group (1) + seq (8) + len (2) + a full ring or
        // summary slot, whichever is larger; rounded to a multiple of
        // 8 so backup-slot strides stay word-aligned for the threaded
        // backend's atomic word storage.
        let inner = cfg.entry_size().max(cfg.summary_slot_size(8));
        crate::config::round_up_8(12 + inner)
    }

    /// Offset of the summary slot for `(sum_group, source)`.
    pub fn summary_offset(&self, group: usize, source: NodeId) -> usize {
        self.sum_group_base[group] + self.sum_slot_size[group] * source.index()
    }

    /// Slot size of a summarization group.
    pub fn summary_size(&self, group: usize) -> usize {
        self.sum_slot_size[group]
    }

    /// Base offset of the conflict-free ring fed by `source`.
    pub fn free_ring_base(&self, source: NodeId) -> usize {
        source.index() * self.free_cap * self.entry_size
    }

    /// Ring entry slot size.
    pub fn entry_size(&self) -> usize {
        self.entry_size
    }

    /// Free-ring capacity in entries.
    pub fn free_cap(&self) -> usize {
        self.free_cap
    }

    /// Conf-ring capacity in entries.
    pub fn conf_cap(&self) -> usize {
        self.conf_cap
    }

    /// Offset of the head counter for the free ring fed by `source`.
    pub fn free_head_offset(&self, source: NodeId) -> usize {
        source.index() * 8
    }

    /// Offset of the head counter for sync group `g`'s ring.
    pub fn conf_head_offset(&self, g: usize) -> usize {
        (self.nodes + g) * 8
    }

    /// Offset of the commit cell within region `conf[g]`.
    pub fn conf_commit_offset(&self) -> usize {
        0
    }

    /// Base offset of the ring within region `conf[g]`.
    pub fn conf_ring_base(&self) -> usize {
        8
    }

    /// Offset and size of backup slot `i`.
    pub fn backup_slot(&self, i: usize) -> (usize, usize) {
        (i % self.backup_slots * self.backup_slot_size, self.backup_slot_size)
    }

    /// Number of backup slots.
    pub fn backup_slots(&self) -> usize {
        self.backup_slots
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hamband_core::coord::CoordSpec;
    use rdma_sim::{Ctx, Event, LatencyModel};

    struct Noop;
    impl App for Noop {
        fn on_start(&mut self, _ctx: &mut Ctx<'_>) {}
        fn on_event(&mut self, _ctx: &mut Ctx<'_>, _event: Event) {}
    }

    fn account_layout(n: usize) -> Layout {
        // account-like: 2 methods, sum group [0], one sync group.
        let coord = CoordSpec::builder(2)
            .conflict(1, 1)
            .depends(1, 0)
            .summarization_group([0])
            .build();
        let cfg = RuntimeConfig::default().with_sync_shards(1);
        let mut sim: Simulator<Noop> = Simulator::new(n, LatencyModel::deterministic(), 0);
        let l = Layout::install(&mut sim, &coord, &cfg);
        sim.set_apps(|_| Noop);
        l
    }

    #[test]
    fn regions_are_distinct() {
        let l = account_layout(3);
        let mut ids = vec![l.heartbeat, l.summaries, l.free_rings, l.heads, l.backup];
        ids.extend(l.conf.iter().copied());
        let unique: std::collections::BTreeSet<_> = ids.iter().collect();
        assert_eq!(unique.len(), ids.len());
        assert_eq!(l.conf.len(), 1);
    }

    #[test]
    fn offsets_do_not_overlap() {
        let l = account_layout(4);
        // Summary slots of distinct sources are disjoint.
        let s0 = l.summary_offset(0, NodeId(0));
        let s1 = l.summary_offset(0, NodeId(1));
        assert_eq!(s1 - s0, l.summary_size(0));
        // Free rings of distinct sources are disjoint.
        let f0 = l.free_ring_base(NodeId(0));
        let f1 = l.free_ring_base(NodeId(1));
        assert_eq!(f1 - f0, l.free_cap() * l.entry_size());
        // Heads: free heads then conf heads.
        assert_eq!(l.free_head_offset(NodeId(3)), 24);
        assert_eq!(l.conf_head_offset(0), 32);
    }

    #[test]
    fn sharded_layout_gets_one_conf_region_per_mapped_group() {
        let coord = CoordSpec::builder(2).conflict(1, 1).depends(1, 0).build();
        let cfg = RuntimeConfig::default().with_sync_shards(4);
        let mut sim: Simulator<Noop> = Simulator::new(3, LatencyModel::deterministic(), 0);
        let l = Layout::install(&mut sim, &coord, &cfg);
        sim.set_apps(|_| Noop);
        assert_eq!(l.conf.len(), 4);
        // Head slots: 3 free heads, then 4 conf heads, all disjoint.
        assert_eq!(l.conf_head_offset(0), 24);
        assert_eq!(l.conf_head_offset(3), 48);
    }

    #[test]
    fn backup_slots_wrap() {
        let l = account_layout(2);
        let (o0, sz) = l.backup_slot(0);
        let (o1, _) = l.backup_slot(1);
        let (owrap, _) = l.backup_slot(l.backup_slots());
        assert_eq!(o0, 0);
        assert_eq!(o1, sz);
        assert_eq!(owrap, 0);
    }
}
