//! Threaded backend: one OS thread per replica over process-shared
//! atomic memory, with real wall-clock timers.
//!
//! This is the third [`Transport`](crate::transport::Transport)
//! implementor, and the first where replicas race for real. The
//! simulator serializes everything behind a virtual clock; the
//! [`loopback`](crate::loopback) backend interleaves replicas
//! cooperatively on one thread; here each replica runs its own event
//! loop on its own thread, "RDMA" is plain stores into another
//! thread's registered memory, and latency is whatever the machine
//! gives you — which is exactly what a wall-clock latency-under-load
//! benchmark needs, and the closest in-process rehearsal of an
//! ibverbs backend the codebase can have.
//!
//! Structure:
//!
//! * [`shared`] — region memory as `AtomicU64` words behind one `Arc`,
//!   with the ascending-`Release`-write / descending-`Acquire`-read
//!   discipline that makes the canary-trailer and summary-seqlock
//!   validation sound word-by-word (the module header has the
//!   argument; `DESIGN.md` the full model);
//! * [`ctx`](self) — the per-thread [`Transport`] handle: synchronous
//!   one-sided verbs with FIFO local completions, `mpsc` messaging,
//!   a private timer heap, and `SimTime` read off a shared monotonic
//!   epoch;
//! * [`ThreadedCluster`] — spawn/drive/join, with a convergence
//!   poller on the calling thread and stretched failure-detection
//!   timers so OS scheduling jitter does not masquerade as a crash.
//!
//! What this backend deliberately does **not** do: fault injection
//! (no virtual fabric to tear writes or silence heartbeats with),
//! trace collection (a cross-thread sink would serialize the race
//! being measured), and latency modelling (reality supplies it).
//! Deterministic parity lives with the simulator; this backend is for
//! conformance under genuine concurrency and for throughput/latency
//! measurement.
//!
//! [`Transport`]: crate::transport::Transport

mod cluster;
mod ctx;
mod shared;

pub use cluster::ThreadedCluster;
