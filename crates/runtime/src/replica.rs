//! The Hamband replica node: the full runtime of §4 as a simulator
//! application.
//!
//! Per update-method category:
//!
//! * **reducible** — the call is folded into this node's summary for
//!   its summarization group and the new summary slot (which carries
//!   the per-method applied counts) is written locally and then
//!   remotely to every peer; the client is acknowledged when all remote
//!   writes complete (reliable broadcast: a backup slot holds the
//!   in-flight slot bytes until then).
//! * **irreducible conflict-free** — the call is applied locally,
//!   paired with its dependency projection, and appended to the `F`
//!   ring this node feeds at every peer (same broadcast discipline).
//! * **conflicting** — only the current leader of the method's
//!   synchronization group issues it: the entry is appended to every
//!   peer's `L` ring; once a majority of the cluster holds it, the
//!   leader advances the group's commit index (written to a commit cell
//!   at each peer, Mu-style) and acknowledges the client. *All*
//!   replicas — the leader included — apply `L` entries in ring order,
//!   gated by the commit index and by the entry's dependency map; the
//!   leader checks permissibility against a speculative view that
//!   includes its own uncommitted entries.
//!
//! Applying at commit rather than at issue is a deliberate deviation
//! from the paper's Fig. 7 (whose CONF rule applies at the leader
//! immediately): it is exactly Mu's execution discipline, and it makes
//! a deposed leader's unacknowledged calls vanish without state
//! rollback, so even a suspended leader converges with the rest of the
//! cluster. See DESIGN.md.

use std::collections::{BTreeMap, HashMap, VecDeque};

use hamband_core::coord::{CoordSpec, MethodCategory};
use hamband_core::counts::CountMap;
use hamband_core::ids::{MethodId, Pid, Rid};
use hamband_core::object::{ObjectSpec, WorkloadSupport};
use hamband_core::wire::Wire;
use rdma_sim::{
    App, AppFault, CompletionStatus, Ctx, Event, NodeId, Phase, RingKind, SimTime, TraceEvent,
    WrId,
};

use crate::codec::{
    compose_backup_slot, parse_backup_slot, slot_ready, summary_version, Entry, SummarySlot,
    BACKUP_FREE, BACKUP_SUMMARY,
};
use crate::config::RuntimeConfig;
use crate::driver::{Driver, Planned, Workload};
use crate::heartbeat::{FailureDetector, FdEvent, Heartbeat};
use crate::layout::Layout;
use crate::messages::ControlMsg;
use crate::metrics::NodeMetrics;
use crate::rings::{RingReader, RingWriter};

const TAG_POLL: u64 = 0;
const TAG_HEARTBEAT: u64 = 1;
const TAG_FD: u64 = 2;
const TAG_RETRY: u64 = 3;


#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Route {
    SummaryWrite { group: usize, target: NodeId, version: u64 },
    CommitWrite { group: usize },
    RecoveryRead { suspect: NodeId },
    CatchupRead { group: usize, from_seq: u64, count: u64, max_tail: u64 },
}

#[derive(Debug)]
struct Outstanding {
    issued_at: SimTime,
    method: MethodId,
    /// Protocol path this call travels (REDUCE/FREE/CONF).
    phase: Phase,
    /// For conflicting calls: (synchronization group, L-ring seq).
    conf: Option<(usize, u64)>,
    /// Remote completions still needed before the client is acked.
    ack_remaining: usize,
    /// Remote completions still outstanding in total (backup clear).
    total_remaining: usize,
    backup_slot: Option<usize>,
}

#[derive(Debug, Clone)]
struct CachedSummary<U> {
    version: u64,
    counts: Vec<u64>,
    summary: Option<U>,
}

#[derive(Debug)]
struct Election {
    epoch: u64,
    acks: usize,
    max_tail: u64,
    max_tail_holder: NodeId,
    max_commit: u64,
}

/// Per-synchronization-group leadership state.
#[derive(Debug)]
struct GroupState {
    leader_view: Pid,
    epoch: u64,
    promised: u64,
    /// Leader only: per-target ring writers.
    writers: Option<Vec<Option<RingWriter>>>,
    /// Leader only: entries appended so far (global ordinal).
    appended: u64,
    /// Leader only: remote-ack counts per sequence number.
    pending_acks: BTreeMap<u64, usize>,
    /// Leader only: commit index.
    commit: u64,
    /// Leader only: last commit value pushed to followers.
    commit_written: u64,
    /// Leader only: outstanding commit-cell writes.
    commit_writes_inflight: usize,
    /// Leader only: seq → client call id awaiting commit.
    client_by_seq: HashMap<u64, u64>,
    /// This node was deposed (a newer leader took the ring over).
    deposed: bool,
    /// Candidate state during an election.
    election: Option<Election>,
    /// Leader only: still reconciling the ring after takeover.
    catching_up: bool,
    /// Leader only: do not issue new conflicting calls until our own
    /// reader has applied the ring through this sequence number. A new
    /// leader adopts the old tail before it has applied every entry
    /// below it; issuing against that incomplete view would approve
    /// calls the full history forbids (Lemma 1 needs the check view to
    /// contain every earlier ring entry).
    issue_floor: u64,
    /// Own uncommitted entries (suffix of the ring), oldest first.
    uncommitted: Vec<(u64, MethodId)>,
}

/// The Hamband replica application. One per simulated node.
pub struct HambandNode<O: ObjectSpec> {
    spec: O,
    coord: CoordSpec,
    cfg: RuntimeConfig,
    layout: Layout,
    me: NodeId,
    n: usize,

    /// Stored state σ (buffered calls only).
    sigma: O::State,
    /// Materialized committed view: σ with all summaries applied.
    mat: O::State,
    mat_dirty: bool,
    /// Speculative view including own uncommitted conflicting calls
    /// (`None` while there are none — then the view equals `mat`).
    spec_mat: Option<O::State>,
    /// Applied-calls map `A`, including summary-carried counts.
    applied: CountMap,
    /// Summary caches per (summarization group, source).
    sum_cache: Vec<Vec<CachedSummary<O::Update>>>,
    /// Write-combining: version of the summary WRITE in flight per
    /// (summarization group, peer); `None` = the channel is idle. At
    /// most one summary WRITE per (group, peer) is ever in flight —
    /// further reduces only fold locally, and completion reposts the
    /// latest slot if it moved past what landed (slots are
    /// last-writer-wins, so this is the paper's own amortization).
    sum_inflight: Vec<Vec<Option<u64>>>,
    /// Per (summarization group, peer): calls whose summary version has
    /// not yet landed at that peer, oldest first (`(version, call_id)`).
    /// A completed write carrying version `v` covers every waiter with
    /// version `<= v`.
    sum_waiters: Vec<Vec<VecDeque<(u64, u64)>>>,
    /// Per summarization group: reusable encode buffer holding the
    /// latest own summary slot (the used prefix — exactly the bytes a
    /// repost must write).
    sum_slot_buf: Vec<Vec<u8>>,

    free_writers: Vec<Option<RingWriter>>,
    free_readers: Vec<Option<RingReader>>,
    conf_readers: Vec<RingReader>,
    groups: Vec<GroupState>,

    hb: Heartbeat,
    fd: FailureDetector,
    /// Peers whose conflict-free quota we already adopted.
    adopted: Vec<bool>,

    driver: Driver,
    workload: Workload,
    /// Exposed measurements.
    pub metrics: NodeMetrics,

    /// Payloads of own uncommitted conflicting calls, oldest first
    /// (mirrors the groups' `uncommitted` queues; kept to rebuild the
    /// speculative view after non-monotone summary refreshes).
    speculative_store: Vec<O::Update>,
    next_call_id: u64,
    next_rid_seq: u64,
    outstanding: HashMap<u64, Outstanding>,
    /// (free ring seq) → call id.
    free_call_by_seq: HashMap<u64, u64>,
    wr_routes: HashMap<WrId, Route>,
    /// Denied conflicting-ring writes awaiting retry: (group, target,
    /// seq). A denial means the target has not (yet) granted this
    /// leader write permission; retried until it does or until a higher
    /// epoch deposes us.
    conf_retries: Vec<(usize, NodeId, u64)>,
    retry_timer_armed: bool,
    halted: bool,
}

impl<O> HambandNode<O>
where
    O: WorkloadSupport,
    O::Update: Wire,
{
    /// Build the replica for node `me` of an `n`-node cluster.
    ///
    /// `layout` must come from [`Layout::install`] on the same
    /// simulator, and `leaders` assigns the initial leader per
    /// synchronization group.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        spec: O,
        coord: CoordSpec,
        cfg: RuntimeConfig,
        layout: Layout,
        me: NodeId,
        n: usize,
        leaders: &[Pid],
        workload: Workload,
    ) -> Self {
        assert_eq!(leaders.len(), coord.sync_groups().len());
        assert!(cfg.window <= cfg.backup_slots, "backup ring must cover the window");
        let sigma = spec.initial();
        let driver = Driver::new(&workload, &coord, me.index(), n);
        let sum_cache = coord
            .sum_groups()
            .iter()
            .map(|g| {
                (0..n)
                    .map(|_| CachedSummary { version: 0, counts: vec![0; g.len()], summary: None })
                    .collect()
            })
            .collect();
        let groups = leaders
            .iter()
            .map(|&l| GroupState {
                leader_view: l,
                epoch: 1,
                promised: 1,
                writers: None,
                appended: 0,
                pending_acks: BTreeMap::new(),
                commit: 0,
                commit_written: 0,
                commit_writes_inflight: 0,
                client_by_seq: HashMap::new(),
                deposed: false,
                election: None,
                catching_up: false,
                issue_floor: 0,
                uncommitted: Vec::new(),
            })
            .collect();
        let sum_group_count = coord.sum_groups().len();
        HambandNode {
            mat: sigma.clone(),
            sigma,
            mat_dirty: false,
            spec_mat: None,
            applied: CountMap::new(n, coord.method_count()),
            sum_cache,
            sum_inflight: (0..sum_group_count).map(|_| vec![None; n]).collect(),
            sum_waiters: (0..sum_group_count).map(|_| vec![VecDeque::new(); n]).collect(),
            sum_slot_buf: vec![Vec::new(); sum_group_count],
            free_writers: Vec::new(),
            free_readers: Vec::new(),
            conf_readers: Vec::new(),
            groups,
            hb: Heartbeat::new(layout.heartbeat),
            fd: FailureDetector::new(me, n, layout.heartbeat, cfg.fd_suspect_after)
                .with_min_sample_gap(cfg.heartbeat_interval),
            adopted: vec![false; n],
            driver,
            workload,
            metrics: NodeMetrics::default(),
            speculative_store: Vec::new(),
            next_call_id: 0,
            next_rid_seq: 0,
            outstanding: HashMap::new(),
            free_call_by_seq: HashMap::new(),
            wr_routes: HashMap::new(),
            conf_retries: Vec::new(),
            retry_timer_armed: false,
            halted: false,
            spec,
            coord,
            cfg,
            layout,
            me,
            n,
        }
    }

    // ------------------------------------------------------------------
    // Introspection for harnesses and tests
    // ------------------------------------------------------------------

    /// The node's current (committed) object state.
    pub fn state_snapshot(&self) -> O::State {
        let mut s = self.sigma.clone();
        for group in &self.sum_cache {
            for cache in group {
                if let Some(sum) = &cache.summary {
                    self.spec.apply_mut(&mut s, sum);
                }
            }
        }
        s
    }

    /// The applied-calls map `A`.
    pub fn applied_map(&self) -> &CountMap {
        &self.applied
    }

    /// Whether the local workload is fully issued and acknowledged.
    ///
    /// Conflicting quota is gated only at the node that currently
    /// leads each group (the quota is global and follows leadership);
    /// the harness separately requires equal applied maps across
    /// replicas, which covers follower catch-up. A group whose leader
    /// is suspected, or with an election in flight, keeps everyone
    /// not-done until a new leader resumes the quota.
    pub fn workload_done(&self) -> bool {
        if self.halted {
            return self.outstanding.is_empty();
        }
        let me = self.me.index();
        let conf_done = (0..self.groups.len()).all(|g| {
            let gs = &self.groups[g];
            if gs.election.is_some() || gs.catching_up {
                return false;
            }
            let lv = gs.leader_view;
            if self.fd.is_suspected(NodeId(lv.index())) {
                return false; // leaderless: quota will move
            }
            if lv.index() == me && !gs.deposed {
                self.driver.conf_remaining(g, gs.appended) == 0
            } else {
                // Followers watch the global quota through their own
                // ring: committed entries they have applied.
                self.driver.conf_remaining(g, self.conf_readers.get(g).map_or(0, |r| r.applied()))
                    == 0
            }
        });
        self.driver.local_done() && self.outstanding.is_empty() && conf_done
    }

    /// The leader this node currently recognizes for group `g`.
    pub fn leader_view(&self, g: usize) -> Pid {
        self.groups[g].leader_view
    }

    /// Whether this node halted (its heartbeat was suspended).
    pub fn is_halted(&self) -> bool {
        self.halted
    }

    /// Total update calls applied locally (own and remote).
    pub fn applied_updates(&self) -> u64 {
        self.applied.total()
    }

    /// One-line diagnostic snapshot (for harness debugging).
    pub fn debug_status(&self) -> String {
        let groups: Vec<String> = self
            .groups
            .iter()
            .enumerate()
            .map(|(g, gs)| {
                format!(
                    "g{g}[ldr={} app={} com={} rd={} dep={} cu={} el={} unc={}]",
                    gs.leader_view,
                    gs.appended,
                    gs.commit,
                    self.conf_readers.get(g).map_or(0, |r| r.applied()),
                    gs.deposed,
                    gs.catching_up,
                    gs.election.is_some(),
                    gs.uncommitted.len(),
                )
            })
            .collect();
        format!(
            "n{} done={} drv_done={} out={} halt={} applied={} {}",
            self.me.index(),
            self.workload_done(),
            self.driver.local_done(),
            self.outstanding.len(),
            self.halted,
            self.applied.total(),
            groups.join(" ")
        )
    }

    fn majority_remote(&self) -> usize {
        self.n / 2
    }

    // ------------------------------------------------------------------
    // Views
    // ------------------------------------------------------------------

    fn refresh_mat(&mut self) {
        if !self.mat_dirty {
            return;
        }
        self.mat = self.state_snapshot();
        self.mat_dirty = false;
    }

    /// The view used for permissibility checks and call generation.
    fn check_view(&self) -> &O::State {
        self.spec_mat.as_ref().unwrap_or(&self.mat)
    }

    /// Apply a call to the committed views (σ stays per caller choice).
    fn apply_to_views(&mut self, call: &O::Update) {
        if !self.mat_dirty {
            self.spec.apply_mut(&mut self.mat, call);
        }
        if let Some(sm) = self.spec_mat.as_mut() {
            self.spec.apply_mut(sm, call);
        }
    }

    // ------------------------------------------------------------------
    // Startup
    // ------------------------------------------------------------------

    fn setup(&mut self, ctx: &mut Ctx<'_>) {
        let n = self.n;
        // Ring endpoints.
        for src in 0..n {
            let node = NodeId(src);
            if node == self.me {
                self.free_writers.push(None);
                self.free_readers.push(None);
                continue;
            }
            self.free_writers.push(Some(
                RingWriter::new(
                    RingKind::Free,
                    node,
                    self.layout.free_rings,
                    self.layout.free_ring_base(self.me),
                    self.layout.free_cap(),
                    self.layout.entry_size(),
                    self.layout.heads,
                    self.layout.free_head_offset(self.me),
                )
                .with_max_batch(self.cfg.max_batch),
            ));
            self.free_readers.push(Some(RingReader::new(
                RingKind::Free,
                self.layout.free_rings,
                self.layout.free_ring_base(node),
                self.layout.free_cap(),
                self.layout.entry_size(),
                self.layout.heads,
                self.layout.free_head_offset(node),
            )));
        }
        for g in 0..self.groups.len() {
            self.conf_readers.push(RingReader::new(
                RingKind::Conf,
                self.layout.conf[g],
                self.layout.conf_ring_base(),
                self.layout.conf_cap(),
                self.layout.entry_size(),
                self.layout.heads,
                self.layout.conf_head_offset(g),
            ));
            // Only the leader may write this group's ring and commit
            // cell (the Mu permission discipline).
            let leader = self.groups[g].leader_view;
            for q in 0..n {
                ctx.set_write_permission(
                    self.layout.conf[g],
                    NodeId(q),
                    Pid(q) == leader,
                );
            }
            if leader.index() == self.me.index() {
                self.become_writer(g, 0);
            }
        }
        ctx.set_timer(self.cfg.poll_interval, TAG_POLL);
        // Heartbeat and failure detection run as dedicated threads
        // (§4), so a busy application CPU cannot silence liveness.
        ctx.set_timer_isolated(self.cfg.heartbeat_interval, TAG_HEARTBEAT);
        ctx.set_timer_isolated(self.cfg.fd_interval, TAG_FD);
        self.hb.beat(ctx);
        self.pump(ctx);
    }

    fn become_writer(&mut self, g: usize, tail: u64) {
        let mut writers = Vec::with_capacity(self.n);
        for q in 0..self.n {
            if q == self.me.index() {
                writers.push(None);
            } else {
                let mut w = RingWriter::new(
                    RingKind::Conf,
                    NodeId(q),
                    self.layout.conf[g],
                    self.layout.conf_ring_base(),
                    self.layout.conf_cap(),
                    self.layout.entry_size(),
                    self.layout.heads,
                    self.layout.conf_head_offset(g),
                )
                .with_max_batch(self.cfg.max_batch);
                w.adopt_tail(tail);
                writers.push(Some(w));
            }
        }
        let gs = &mut self.groups[g];
        gs.writers = Some(writers);
        gs.appended = tail;
    }

    // ------------------------------------------------------------------
    // Client pump
    // ------------------------------------------------------------------

    fn pump(&mut self, ctx: &mut Ctx<'_>) {
        if self.halted {
            return;
        }
        self.refresh_mat();
        let mut reject_streak = 0u32;
        loop {
            let is_leader: Vec<bool> = (0..self.groups.len())
                .map(|g| {
                    let gs = &self.groups[g];
                    gs.leader_view.index() == self.me.index()
                        && !gs.deposed
                        && !gs.catching_up
                        && gs.writers.is_some()
                        && self.conf_readers[g].next_seq() > gs.issue_floor
                })
                .collect();
            let appended: Vec<u64> = self.groups.iter().map(|g| g.appended).collect();
            let planned = {
                let view = self.spec_mat.as_ref().unwrap_or(&self.mat);
                self.driver.next(&self.spec, view, &self.coord, &is_leader, &appended)
            };
            match planned {
                None => break,
                Some(Planned::Query(q)) => {
                    let reply = self.spec.query(self.check_view(), &q);
                    let _ = reply;
                    ctx.consume(ctx.latency().apply_cost);
                    let cost = ctx.latency().apply_cost;
                    self.metrics.ack_query(cost);
                }
                Some(Planned::Update(u)) => {
                    let rejected_before = self.metrics.rejected;
                    self.issue(ctx, u);
                    if self.metrics.rejected > rejected_before {
                        // A rejected call consumes no ring quota, so the
                        // driver will happily regenerate it. Bound the
                        // streak per pump so a view in which nothing is
                        // permissible yields back to the event loop
                        // instead of spinning (later entries or a leader
                        // change may unwedge it).
                        reject_streak += 1;
                        if reject_streak >= 64 {
                            break;
                        }
                    } else {
                        reject_streak = 0;
                    }
                }
            }
        }
        // The whole burst of appends is queued by now: post it as
        // coalesced ring WRITEs (deferring to here is free in virtual
        // time — same instant, fewer doorbells).
        self.flush_writers(ctx);
    }

    /// Post everything the pump queued: coalesced WRITEs for the free
    /// rings and for any leader-fed conflicting rings. Idle writers
    /// cost one empty check each.
    fn flush_writers(&mut self, ctx: &mut Ctx<'_>) {
        for w in self.free_writers.iter_mut().flatten() {
            w.flush(ctx);
        }
        for gs in self.groups.iter_mut() {
            if let Some(writers) = gs.writers.as_mut() {
                for w in writers.iter_mut().flatten() {
                    w.flush(ctx);
                }
            }
        }
    }

    fn issue(&mut self, ctx: &mut Ctx<'_>, update: O::Update) {
        let method = self.spec.method_of(&update);
        match self.coord.category(method) {
            MethodCategory::Reducible { sum_group } => {
                self.issue_reduce(ctx, update, method, sum_group.index())
            }
            MethodCategory::IrreducibleFree => self.issue_free(ctx, update, method),
            MethodCategory::Conflicting { sync_group } => {
                self.issue_conf(ctx, update, method, sync_group.index())
            }
        }
    }

    fn permissible_now(&mut self, update: &O::Update) -> bool {
        self.refresh_mat();
        let post = self.spec.apply(self.check_view(), update);
        self.spec.invariant(&post)
    }

    fn reject(&mut self, method: MethodId) {
        let _ = method;
        self.metrics.rejected += 1;
        self.driver.on_abort();
    }

    fn mint_call(&mut self, method: MethodId, ctx: &Ctx<'_>) -> (u64, Rid) {
        let call_id = self.next_call_id;
        self.next_call_id += 1;
        let rid = Rid::new(Pid(self.me.index()), self.next_rid_seq);
        self.next_rid_seq += 1;
        let _ = (method, ctx);
        (call_id, rid)
    }

    /// REDUCE: fold into the summary, broadcast the slot.
    fn issue_reduce(&mut self, ctx: &mut Ctx<'_>, update: O::Update, method: MethodId, g: usize) {
        if !self.permissible_now(&update) {
            self.reject(method);
            return;
        }
        ctx.consume(ctx.latency().apply_cost);
        let me = self.me.index();
        let group_methods: Vec<MethodId> = self.coord.sum_groups()[g].clone();
        let midx = group_methods.iter().position(|&m| m == method).expect("method in group");
        // Summarize with the current own summary.
        let new_summary = match &self.sum_cache[g][me].summary {
            None => update.clone(),
            Some(prev) => self
                .spec
                .summarize(prev, &update)
                .expect("summarization group closed under summarize"),
        };
        let cache = &mut self.sum_cache[g][me];
        cache.version += 1;
        cache.counts[midx] += 1;
        cache.summary = Some(new_summary);
        let version = cache.version;
        // Encode the latest slot once into the group's reusable buffer
        // (used prefix only) straight from the cache — no clones.
        let mut slot = std::mem::take(&mut self.sum_slot_buf[g]);
        {
            let cache = &self.sum_cache[g][me];
            SummarySlot::encode_parts_into(
                version,
                &cache.counts,
                cache.summary.as_ref(),
                self.layout.summary_size(g),
                &mut slot,
            );
        }
        self.applied.set(Pid(me), method, self.sum_cache[g][me].counts[midx]);
        // Local effects: the call itself lands in the views.
        self.apply_to_views(&update);
        self.metrics.last_apply = ctx.now();

        let (call_id, _rid) = self.mint_call(method, ctx);
        // Reliable broadcast: backup first, then the remote writes.
        let backup_slot = self.write_backup(ctx, call_id, BACKUP_SUMMARY, g as u8, version, &slot);
        let offset = self.layout.summary_offset(g, self.me);
        ctx.local_write(self.layout.summaries, offset, &slot);
        // Write-combining: post only where the (group, peer) channel is
        // idle; otherwise the call waits for a later write to carry its
        // (or a newer) version — the slot is last-writer-wins, so a
        // landed version v acknowledges every call folded in up to v.
        let mut remotes = 0;
        for q in 0..self.n {
            if q == me {
                continue;
            }
            remotes += 1;
            self.sum_waiters[g][q].push_back((version, call_id));
            if self.sum_inflight[g][q].is_none() {
                self.post_summary(ctx, g, NodeId(q), version, &slot, method.index());
            }
        }
        self.sum_slot_buf[g] = slot;
        self.outstanding.insert(
            call_id,
            Outstanding {
                issued_at: ctx.now(),
                method,
                phase: Phase::Reduce,
                conf: None,
                ack_remaining: remotes,
                total_remaining: remotes,
                backup_slot: Some(backup_slot),
            },
        );
        if remotes == 0 {
            self.finish_call(ctx, call_id);
        }
    }

    /// Post one summary WRITE of `slot` (carrying `version`) to
    /// `target` and mark the (group, peer) channel busy. `method` only
    /// labels the trace event (a combined write carries the whole
    /// group's summary).
    fn post_summary(
        &mut self,
        ctx: &mut Ctx<'_>,
        g: usize,
        target: NodeId,
        version: u64,
        slot: &[u8],
        method: usize,
    ) {
        debug_assert!(self.sum_inflight[g][target.index()].is_none(), "one in flight per peer");
        let offset = self.layout.summary_offset(g, self.me);
        let wr = ctx.post_write(target, self.layout.summaries, offset, slot);
        let issuer = self.me;
        ctx.emit(|| TraceEvent::SummaryWrite { issuer, target, method, version });
        self.sum_inflight[g][target.index()] = Some(version);
        self.wr_routes.insert(wr, Route::SummaryWrite { group: g, target, version });
    }

    /// FREE: apply locally, append to every peer's `F` ring.
    fn issue_free(&mut self, ctx: &mut Ctx<'_>, update: O::Update, method: MethodId) {
        if !self.permissible_now(&update) {
            self.reject(method);
            return;
        }
        ctx.consume(ctx.latency().apply_cost);
        let deps = self.applied.project(self.coord.dependencies(method));
        let (call_id, rid) = self.mint_call(method, ctx);
        self.spec.apply_mut(&mut self.sigma, &update);
        self.apply_to_views(&update);
        self.applied.increment(Pid(self.me.index()), method);
        self.metrics.last_apply = ctx.now();

        let entry = Entry { rid, update, deps };
        let mut seq_assigned = None;
        let mut remotes = 0;
        for q in 0..self.n {
            if q == self.me.index() {
                continue;
            }
            let w = self.free_writers[q].as_mut().expect("writer for peer");
            let seq = w.append(ctx, &entry);
            match seq_assigned {
                None => seq_assigned = Some(seq),
                Some(s) => assert_eq!(s, seq, "free rings advance in lockstep"),
            }
            remotes += 1;
        }
        let backup_slot = seq_assigned.map(|seq| {
            let slot = entry.to_slot(seq, self.layout.entry_size());
            self.write_backup(ctx, call_id, BACKUP_FREE, 0xff, seq, &slot)
        });
        if let Some(seq) = seq_assigned {
            self.free_call_by_seq.insert(seq, call_id);
        }
        self.outstanding.insert(
            call_id,
            Outstanding {
                issued_at: ctx.now(),
                method,
                phase: Phase::Free,
                conf: None,
                ack_remaining: remotes,
                total_remaining: remotes,
                backup_slot,
            },
        );
        if remotes == 0 {
            self.finish_call(ctx, call_id);
        }
    }

    /// CONF: append to the group's `L` rings; apply at commit.
    fn issue_conf(&mut self, ctx: &mut Ctx<'_>, update: O::Update, method: MethodId, g: usize) {
        if !self.permissible_now(&update) {
            self.reject(method);
            return;
        }
        ctx.consume(ctx.latency().apply_cost);
        let deps = self.applied.project(self.coord.dependencies(method));
        let (call_id, rid) = self.mint_call(method, ctx);
        // Speculative view gains the call; σ/mat only at commit.
        if self.spec_mat.is_none() {
            self.refresh_mat();
            self.spec_mat = Some(self.mat.clone());
        }
        if let Some(sm) = self.spec_mat.as_mut() {
            self.spec.apply_mut(sm, &update);
        }

        self.speculative_store.push(update.clone());
        let entry = Entry { rid, update, deps };
        let seq = self.groups[g].appended + 1;
        self.groups[g].appended = seq;
        self.groups[g].uncommitted.push((seq, method));
        let slot = entry.to_slot(seq, self.layout.entry_size());
        // Local ring copy (leader's log for catch-up by successors).
        let ring_off = self.layout.conf_ring_base()
            + ((seq - 1) as usize % self.layout.conf_cap()) * self.layout.entry_size();
        ctx.local_write(self.layout.conf[g], ring_off, &slot);
        if let Some(writers) = self.groups[g].writers.as_mut() {
            for w in writers.iter_mut().flatten() {
                let s = w.append(ctx, &entry);
                debug_assert_eq!(s, seq, "conf rings advance with the group ordinal");
            }
        }
        self.groups[g].pending_acks.insert(seq, 0);
        self.groups[g].client_by_seq.insert(seq, call_id);
        self.outstanding.insert(
            call_id,
            Outstanding {
                issued_at: ctx.now(),
                method,
                phase: Phase::Conf,
                conf: Some((g, seq)),
                // Acked when the commit index passes this seq.
                ack_remaining: usize::MAX,
                total_remaining: 0,
                backup_slot: None,
            },
        );
        if self.majority_remote() == 0 {
            // Single-node cluster: commit immediately.
            self.advance_commit(ctx, g);
        }
    }

    fn write_backup(
        &mut self,
        ctx: &mut Ctx<'_>,
        call_id: u64,
        kind: u8,
        group: u8,
        seq: u64,
        slot: &[u8],
    ) -> usize {
        let idx = (call_id % self.layout.backup_slots() as u64) as usize;
        let (off, size) = self.layout.backup_slot(idx);
        let buf = compose_backup_slot(kind, group, seq, slot, size);
        ctx.local_write(self.layout.backup, off, &buf);
        idx
    }

    fn clear_backup(&mut self, ctx: &mut Ctx<'_>, idx: usize) {
        let (off, _) = self.layout.backup_slot(idx);
        ctx.local_write(self.layout.backup, off, &[0]);
    }

    fn finish_call(&mut self, ctx: &mut Ctx<'_>, call_id: u64) {
        if let Some(o) = self.outstanding.get_mut(&call_id) {
            if o.ack_remaining != 0 {
                return;
            }
            let method = o.method;
            let issued_at = o.issued_at;
            let phase = o.phase;
            let conf = o.conf;
            self.metrics.ack_update(method.index(), phase, issued_at, ctx.now());
            let node = self.me;
            ctx.emit(|| TraceEvent::Ack {
                node,
                method: method.index(),
                phase,
                group: conf.map(|(g, _)| g),
                seq: conf.map(|(_, s)| s),
            });
            self.driver.on_ack();
            let done = o.total_remaining == 0;
            if done {
                let slot = o.backup_slot;
                self.outstanding.remove(&call_id);
                if let Some(idx) = slot {
                    self.clear_backup(ctx, idx);
                }
            } else {
                // Acked but writes still in flight: keep for backup GC.
                o.ack_remaining = 0;
            }
        }
        self.pump(ctx);
    }

    /// One peer now durably holds this reducible call's summary: the
    /// per-call remote bookkeeping (ack countdown, backup GC) that a
    /// dedicated completion used to drive before write-combining.
    fn credit_summary_peer(&mut self, ctx: &mut Ctx<'_>, call_id: u64) {
        let mut finished = false;
        let mut cleanup = None;
        if let Some(o) = self.outstanding.get_mut(&call_id) {
            o.total_remaining = o.total_remaining.saturating_sub(1);
            if o.ack_remaining > 0 && o.ack_remaining != usize::MAX {
                o.ack_remaining -= 1;
                finished = o.ack_remaining == 0;
            }
            if o.total_remaining == 0 && !finished {
                cleanup = Some(call_id);
            }
        }
        if let Some(cid) = cleanup {
            if let Some(o) = self.outstanding.remove(&cid) {
                if let Some(idx) = o.backup_slot {
                    self.clear_backup(ctx, idx);
                }
            }
        } else if finished {
            self.finish_call(ctx, call_id);
        }
    }

    // ------------------------------------------------------------------
    // Polling: summaries, F rings, L rings
    // ------------------------------------------------------------------

    fn poll(&mut self, ctx: &mut Ctx<'_>) {
        ctx.consume(self.cfg.poll_cost);
        self.poll_summaries(ctx);
        self.poll_free(ctx);
        self.poll_conf(ctx);
        for g in 0..self.groups.len() {
            self.flush_commit(ctx, g);
        }
        self.pump(ctx);
    }

    fn poll_summaries(&mut self, ctx: &mut Ctx<'_>) {
        let monotone = self.spec.summaries_monotone();
        for g in 0..self.sum_cache.len() {
            let group_methods: Vec<MethodId> = self.coord.sum_groups()[g].clone();
            for src in 0..self.n {
                if src == self.me.index() {
                    continue;
                }
                let off = self.layout.summary_offset(g, NodeId(src));
                let size = self.layout.summary_size(g);
                let parsed = {
                    let bytes = ctx.local(self.layout.summaries, off, size);
                    // Fast path: peek the leading version word before
                    // paying for a full seqlock parse — an unchanged
                    // slot is the common case in the poll loop.
                    if summary_version(bytes) <= self.sum_cache[g][src].version {
                        continue;
                    }
                    SummarySlot::<O::Update>::from_slot(bytes, group_methods.len())
                };
                let Some(slot) = parsed else { continue };
                if slot.version <= self.sum_cache[g][src].version {
                    continue;
                }
                ctx.consume(ctx.latency().apply_cost);
                for (i, &m) in group_methods.iter().enumerate() {
                    let old = self.applied.get(Pid(src), m);
                    self.applied.set(Pid(src), m, old.max(slot.counts[i]));
                }
                if monotone {
                    if let Some(sum) = &slot.summary {
                        if !self.mat_dirty {
                            self.spec.apply_mut(&mut self.mat, sum);
                        }
                        if let Some(sm) = self.spec_mat.as_mut() {
                            self.spec.apply_mut(sm, sum);
                        }
                    }
                } else {
                    self.mat_dirty = true;
                    // A stale speculative view would corrupt checks:
                    // rebuild it from scratch below if present.
                    if self.spec_mat.is_some() {
                        self.rebuild_spec_mat();
                    }
                }
                self.metrics.remote_applied += 1;
                self.metrics.last_apply = ctx.now();
                self.sum_cache[g][src] =
                    CachedSummary { version: slot.version, counts: slot.counts, summary: slot.summary };
            }
        }
    }

    /// Rebuild the speculative view after a non-monotone summary
    /// change: committed snapshot + replay of uncommitted own entries.
    /// Uncommitted conflicting entries are kept by each group, but the
    /// update payloads are no longer at hand; since non-monotone
    /// summaries and uncommitted entries can only coexist for objects
    /// whose conflicting methods commute with summaries (summaries are
    /// conflict-free by construction), replaying is legal — we keep the
    /// payloads for exactly this purpose.
    fn rebuild_spec_mat(&mut self) {
        self.refresh_mat();
        // Replay: collect pending own entries from the replay store.
        let mut view = self.mat.clone();
        for u in &self.pending_speculative_updates() {
            self.spec.apply_mut(&mut view, u);
        }
        self.spec_mat = Some(view);
    }

    fn pending_speculative_updates(&self) -> Vec<O::Update> {
        self.speculative_store.clone()
    }

    fn speculative_pop(&mut self) {
        if !self.speculative_store.is_empty() {
            self.speculative_store.remove(0);
        }
    }

    fn speculative_clear(&mut self) {
        self.speculative_store.clear();
    }

    fn poll_free(&mut self, ctx: &mut Ctx<'_>) {
        for src in 0..self.n {
            if src == self.me.index() {
                continue;
            }
            loop {
                let entry = {
                    let reader = self.free_readers[src].as_ref().expect("reader for peer");
                    reader.peek::<O::Update>(ctx)
                };
                let Some(entry) = entry else { break };
                if !self.applied.satisfies(&entry.deps) {
                    break; // blocked on a dependency; retry next poll
                }
                ctx.consume(ctx.latency().apply_cost);
                let method = self.spec.method_of(&entry.update);
                self.spec.apply_mut(&mut self.sigma, &entry.update);
                self.apply_to_views(&entry.update);
                self.applied.increment(entry.rid.issuer, method);
                self.metrics.remote_applied += 1;
                self.metrics.last_apply = ctx.now();
                self.free_readers[src].as_mut().expect("reader").advance(ctx, NodeId(src));
            }
        }
    }

    fn poll_conf(&mut self, ctx: &mut Ctx<'_>) {
        for g in 0..self.groups.len() {
            // Followers learn the commit index from the commit cell;
            // the leader knows it directly.
            let commit = if self.groups[g].writers.is_some() && !self.groups[g].deposed {
                self.groups[g].commit
            } else {
                let cell = ctx.local(self.layout.conf[g], self.layout.conf_commit_offset(), 8);
                u64::from_le_bytes(cell.try_into().expect("8 bytes"))
            };
            loop {
                let next = self.conf_readers[g].next_seq();
                if next > commit {
                    break;
                }
                let entry = self.conf_readers[g].peek::<O::Update>(ctx);
                let Some(entry) = entry else { break };
                if !self.applied.satisfies(&entry.deps) {
                    break;
                }
                ctx.consume(ctx.latency().apply_cost);
                let method = self.spec.method_of(&entry.update);
                self.spec.apply_mut(&mut self.sigma, &entry.update);
                // Own uncommitted entry reaching commit: it is already
                // in the speculative view; only σ/mat advance.
                let own_head = self.groups[g]
                    .uncommitted
                    .first()
                    .is_some_and(|&(s, _)| s == next);
                if own_head {
                    self.groups[g].uncommitted.remove(0);
                    self.speculative_pop();
                    if !self.mat_dirty {
                        self.spec.apply_mut(&mut self.mat, &entry.update);
                    }
                    if self.no_uncommitted() {
                        self.spec_mat = None;
                    }
                } else {
                    self.apply_to_views(&entry.update);
                }
                self.applied.increment(entry.rid.issuer, method);
                if entry.rid.issuer.index() != self.me.index() {
                    self.metrics.remote_applied += 1;
                }
                self.metrics.last_apply = ctx.now();
                // The entry's issuer is the leader that appended it.
                self.conf_readers[g].advance(ctx, NodeId(entry.rid.issuer.index()));
            }
        }
    }

    fn no_uncommitted(&self) -> bool {
        self.groups.iter().all(|g| g.uncommitted.is_empty())
    }

    // ------------------------------------------------------------------
    // Commit handling (leader)
    // ------------------------------------------------------------------

    fn advance_commit(&mut self, ctx: &mut Ctx<'_>, g: usize) {
        let need = self.majority_remote();
        let before = self.groups[g].commit;
        loop {
            let gs = &mut self.groups[g];
            let next = gs.commit + 1;
            match gs.pending_acks.get(&next) {
                Some(&count) if count >= need => {
                    gs.pending_acks.remove(&next);
                    gs.commit = next;
                }
                _ => break,
            }
        }
        let commit = self.groups[g].commit;
        if commit > before {
            // Recorded before the client acks below, so a collected
            // trace always shows CommitAdvance ahead of the Acks it
            // enables.
            let node = self.me;
            ctx.emit(|| TraceEvent::CommitAdvance { node, group: g, commit });
        }
        // Acknowledge committed client calls.
        let acked: Vec<u64> = self.groups[g]
            .client_by_seq
            .iter()
            .filter(|&(&seq, _)| seq <= commit)
            .map(|(_, &cid)| cid)
            .collect();
        let seqs: Vec<u64> = self.groups[g]
            .client_by_seq
            .keys()
            .copied()
            .filter(|&s| s <= commit)
            .collect();
        for s in seqs {
            self.groups[g].client_by_seq.remove(&s);
        }
        for cid in acked {
            if let Some(o) = self.outstanding.get_mut(&cid) {
                o.ack_remaining = 0;
            }
            self.finish_call(ctx, cid);
        }
        // Push the commit index to followers (coalesced).
        self.flush_commit(ctx, g);
        // The leader's own commit cell (read by poll_conf fallback and
        // by successors).
        ctx.local_write(self.layout.conf[g], self.layout.conf_commit_offset(), &commit.to_le_bytes());
    }

    fn flush_commit(&mut self, ctx: &mut Ctx<'_>, g: usize) {
        let gs = &self.groups[g];
        if gs.writers.is_none() || gs.deposed {
            return;
        }
        if gs.commit > gs.commit_written && gs.commit_writes_inflight == 0 {
            let commit = gs.commit;
            let mut inflight = 0;
            for q in 0..self.n {
                if q == self.me.index() {
                    continue;
                }
                let wr = ctx.post_write(
                    NodeId(q),
                    self.layout.conf[g],
                    self.layout.conf_commit_offset(),
                    &commit.to_le_bytes(),
                );
                self.wr_routes.insert(wr, Route::CommitWrite { group: g });
                inflight += 1;
            }
            let gs = &mut self.groups[g];
            gs.commit_written = commit;
            gs.commit_writes_inflight = inflight;
        }
    }

    // ------------------------------------------------------------------
    // Completions
    // ------------------------------------------------------------------

    fn on_completion(
        &mut self,
        ctx: &mut Ctx<'_>,
        wr: WrId,
        status: CompletionStatus,
        data: Option<&[u8]>,
    ) {
        // Failure detector reads.
        match self.fd.on_completion(ctx.now(), wr, data) {
            Some(FdEvent::Suspected(peer)) => {
                self.on_suspect(ctx, peer);
                return;
            }
            Some(FdEvent::Recovered(peer)) => {
                // The peer's heartbeat moved again after suspicion.
                // Consequences that already fired (quota adoption,
                // takeover) stay — crash-stop at the protocol level —
                // but the peer is no longer excluded from future
                // delegate and election choices.
                let node = self.me;
                ctx.emit(|| TraceEvent::FdRecover { node, peer });
                return;
            }
            None => {}
        }
        // Explicitly routed work requests.
        if let Some(route) = self.wr_routes.remove(&wr) {
            self.on_routed(ctx, route, status, data);
            return;
        }
        // Free-ring appends.
        let mut free_done = None;
        for q in 0..self.n {
            if let Some(w) = self.free_writers.get_mut(q).and_then(|w| w.as_mut()) {
                if let Some(done) = w.on_completion(ctx, wr, status, data) {
                    free_done = Some(done);
                    break;
                }
            }
        }
        if let Some(done) = free_done {
            // A coalesced WRITE completes every entry it spans.
            for seq in done.seqs() {
                if let Some(&cid) = self.free_call_by_seq.get(&seq) {
                    self.on_free_write_done(ctx, cid, seq, done.status);
                }
            }
            return;
        }
        // Conf-ring appends.
        for g in 0..self.groups.len() {
            let mut result = None;
            if let Some(writers) = self.groups[g].writers.as_mut() {
                for w in writers.iter_mut().flatten() {
                    if let Some(done) = w.on_completion(ctx, wr, status, data) {
                        result = Some((done, w.target()));
                        break;
                    }
                }
            }
            if let Some((done, target)) = result {
                for seq in done.seqs() {
                    self.on_conf_write_done(ctx, g, target, seq, done.status);
                }
                return;
            }
        }
    }

    fn on_free_write_done(
        &mut self,
        ctx: &mut Ctx<'_>,
        call_id: u64,
        seq: u64,
        status: CompletionStatus,
    ) {
        debug_assert!(status.is_success(), "free rings are never permission-revoked");
        let mut finished = false;
        let mut fully_done = false;
        if let Some(o) = self.outstanding.get_mut(&call_id) {
            o.total_remaining = o.total_remaining.saturating_sub(1);
            if o.ack_remaining > 0 && o.ack_remaining != usize::MAX {
                o.ack_remaining -= 1;
                if o.ack_remaining == 0 {
                    finished = true;
                }
            }
            fully_done = o.total_remaining == 0;
        }
        if fully_done {
            self.free_call_by_seq.remove(&seq);
            if !finished {
                // Already acked earlier; clean up now.
                if let Some(o) = self.outstanding.remove(&call_id) {
                    if let Some(idx) = o.backup_slot {
                        self.clear_backup(ctx, idx);
                    }
                }
                return;
            }
        }
        if finished {
            self.finish_call(ctx, call_id);
        }
    }

    fn on_conf_write_done(
        &mut self,
        ctx: &mut Ctx<'_>,
        g: usize,
        target: NodeId,
        seq: u64,
        status: CompletionStatus,
    ) {
        if !status.is_success() {
            // The target has not granted us write permission (it may
            // simply not have processed our election yet, or a newer
            // leader exists — the latter reaches us as a higher-epoch
            // message and deposes us there). Retry until either happens;
            // the entry can still commit through the other followers.
            // Suspected peers are retried too: a suspended-but-alive
            // node still grants permission once it sees the election.
            if !self.groups[g].deposed {
                self.conf_retries.push((g, target, seq));
                if !self.retry_timer_armed {
                    self.retry_timer_armed = true;
                    ctx.set_timer(rdma_sim::SimDuration::micros(5), TAG_RETRY);
                }
            }
            return;
        }
        if let Some(count) = self.groups[g].pending_acks.get_mut(&seq) {
            *count += 1;
        }
        self.advance_commit(ctx, g);
    }

    fn run_retries(&mut self, ctx: &mut Ctx<'_>) {
        self.retry_timer_armed = false;
        let retries = std::mem::take(&mut self.conf_retries);
        for (g, target, seq) in retries {
            if self.groups[g].deposed || self.groups[g].writers.is_none() {
                continue;
            }
            let off = self.layout.conf_ring_base()
                + ((seq - 1) as usize % self.layout.conf_cap()) * self.layout.entry_size();
            let slot = ctx.local(self.layout.conf[g], off, self.layout.entry_size()).to_vec();
            if let Some(writers) = self.groups[g].writers.as_mut() {
                if let Some(w) = writers[target.index()].as_mut() {
                    w.rewrite(ctx, seq, slot);
                }
            }
        }
    }

    fn depose(&mut self, ctx: &mut Ctx<'_>, g: usize) {
        let gs = &mut self.groups[g];
        if gs.deposed {
            return;
        }
        let (node, epoch) = (self.me, gs.promised);
        ctx.emit(|| TraceEvent::Deposed { group: g, node, epoch });
        let gs = &mut self.groups[g];
        gs.deposed = true;
        gs.writers = None;
        // Abort unacknowledged conflicting calls: their entries may or
        // may not survive into the new leader's log; the speculative
        // view simply vanishes (σ and mat were never touched).
        let orphans: Vec<u64> = gs.client_by_seq.values().copied().collect();
        gs.client_by_seq.clear();
        gs.pending_acks.clear();
        gs.uncommitted.clear();
        self.conf_retries.retain(|&(rg, _, _)| rg != g);
        self.speculative_clear();
        self.spec_mat = None;
        for cid in orphans {
            if self.outstanding.remove(&cid).is_some() {
                self.metrics.rejected += 1;
                self.driver.on_abort();
            }
        }
    }

    // ------------------------------------------------------------------
    // Failure handling
    // ------------------------------------------------------------------

    fn on_suspect(&mut self, ctx: &mut Ctx<'_>, suspect: NodeId) {
        let node = self.me;
        ctx.emit(|| TraceEvent::FdSuspect { node, suspect });
        // 1. Reliable-broadcast recovery: the lowest alive node reads
        //    the suspect's backup slots and re-executes pending writes.
        if self.fd.lowest_alive(Some(suspect)) == self.me {
            let size = self.layout.backup_slots() * self.layout.backup_slot(0).1;
            let wr = ctx.post_read(suspect, self.layout.backup, 0, size);
            self.wr_routes.insert(wr, Route::RecoveryRead { suspect });
        }
        // 2. Workload adoption: the next alive node picks up the
        //    suspect's remaining conflict-free quota.
        let adopter = self.next_alive_after(suspect);
        if adopter == self.me && !self.adopted[suspect.index()] {
            self.adopted[suspect.index()] = true;
            let their = Driver::new(&self.workload, &self.coord, suspect.index(), self.n);
            let remaining: Vec<u64> = (0..self.coord.method_count())
                .map(|m| {
                    if matches!(
                        self.coord.category(MethodId(m)),
                        MethodCategory::Conflicting { .. }
                    ) {
                        return 0;
                    }
                    let planned = their.initial_free_quota(m);
                    let seen = self.applied.get(Pid(suspect.index()), MethodId(m));
                    planned.saturating_sub(seen)
                })
                .collect();
            // Query progress at the suspect is unobservable directly;
            // estimate it from its observable update progress (the
            // driver interleaves both uniformly) and adopt the rest.
            let planned_updates: u64 =
                (0..self.coord.method_count()).map(|m| their.initial_free_quota(m)).sum();
            let seen_updates: u64 = (0..self.coord.method_count())
                .map(|m| self.applied.get(Pid(suspect.index()), MethodId(m)))
                .sum::<u64>()
                .min(planned_updates);
            let remaining_queries = (their.initial_queries()
                * (planned_updates - seen_updates))
                .checked_div(planned_updates)
                .unwrap_or_else(|| their.initial_queries());
            self.driver.adopt_free_quota(&remaining, remaining_queries);
        }
        // 3. Leader change for groups whose current leader is down —
        //    the new suspect, or an earlier suspect whose designated
        //    election starter only now emerges (e.g. the previous
        //    starter itself just got suspected). A halted node never
        //    runs for leadership: it could win but would never issue
        //    the group's remaining quota.
        for g in 0..self.groups.len() {
            let lv = NodeId(self.groups[g].leader_view.index());
            if (lv == suspect || self.fd.is_suspected(lv))
                && !self.halted
                && self.groups[g].election.is_none()
                && self.fd.lowest_alive(Some(lv)) == self.me
            {
                self.start_election(ctx, g);
            }
        }
        self.pump(ctx);
    }

    fn next_alive_after(&self, suspect: NodeId) -> NodeId {
        for d in 1..=self.n {
            let q = NodeId((suspect.index() + d) % self.n);
            if q != suspect && !self.fd.is_suspected(q) {
                return q;
            }
        }
        self.me
    }

    fn start_election(&mut self, ctx: &mut Ctx<'_>, g: usize) {
        let epoch = self.groups[g].promised + 1;
        self.groups[g].promised = epoch;
        self.groups[g].epoch = epoch;
        // Vote for ourselves: grant our own permission and record tail.
        for q in 0..self.n {
            ctx.set_write_permission(self.layout.conf[g], NodeId(q), q == self.me.index());
        }
        let own_tail = self.landed_tail(ctx, g);
        let own_commit = self.known_commit(ctx, g);
        self.groups[g].election = Some(Election {
            epoch,
            acks: 1,
            max_tail: own_tail,
            max_tail_holder: self.me,
            max_commit: own_commit,
        });
        let msg = ControlMsg::LeaderRequest { group: g as u32, epoch };
        for q in 0..self.n {
            if q != self.me.index() && !self.fd.is_suspected(NodeId(q)) {
                ctx.send(NodeId(q), msg.to_bytes().into());
            }
        }
        self.maybe_win(ctx, g);
    }

    /// Highest fully landed entry sequence in our copy of group `g`'s
    /// ring.
    fn landed_tail(&self, ctx: &Ctx<'_>, g: usize) -> u64 {
        let reader = &self.conf_readers[g];
        let mut tail = reader.applied();
        for _ in 0..self.layout.conf_cap() {
            let probe = tail + 1;
            let off = self.layout.conf_ring_base()
                + ((probe - 1) as usize % self.layout.conf_cap()) * self.layout.entry_size();
            let slot = ctx.local(self.layout.conf[g], off, self.layout.entry_size());
            // The seq+canary prefix check is the landing test; no need
            // to decode the payload just to probe the tail.
            if slot_ready(slot, probe) {
                tail = probe;
            } else {
                break;
            }
        }
        tail.max(self.groups[g].appended)
    }

    fn known_commit(&self, ctx: &Ctx<'_>, g: usize) -> u64 {
        let cell = ctx.local(self.layout.conf[g], self.layout.conf_commit_offset(), 8);
        u64::from_le_bytes(cell.try_into().expect("8 bytes")).max(self.groups[g].commit)
    }

    fn on_control(&mut self, ctx: &mut Ctx<'_>, from: NodeId, msg: ControlMsg) {
        match msg {
            ControlMsg::LeaderRequest { group, epoch } => {
                let g = group as usize;
                if epoch > self.groups[g].promised {
                    self.groups[g].promised = epoch;
                    // Revoke the old leader, grant the candidate.
                    for q in 0..self.n {
                        ctx.set_write_permission(self.layout.conf[g], NodeId(q), q == from.index());
                    }
                    self.groups[g].leader_view = Pid(from.index());
                    if self.groups[g].writers.is_some() {
                        // We were the old leader and just got replaced.
                        self.depose(ctx, g);
                    }
                    let tail = self.landed_tail(ctx, g);
                    let commit = self.known_commit(ctx, g);
                    let ack =
                        ControlMsg::LeaderAck { group, epoch, tail, commit };
                    ctx.send(from, ack.to_bytes().into());
                }
            }
            ControlMsg::LeaderAck { group, epoch, tail, commit } => {
                let g = group as usize;
                let me = self.me;
                if let Some(e) = self.groups[g].election.as_mut() {
                    if e.epoch == epoch {
                        e.acks += 1;
                        if tail > e.max_tail {
                            e.max_tail = tail;
                            e.max_tail_holder = from;
                        }
                        e.max_commit = e.max_commit.max(commit);
                        let _ = me;
                    }
                }
                self.maybe_win(ctx, g);
            }
            ControlMsg::Retired => {
                // Workload-level crash-stop announcement: from now on
                // treat the sender exactly like a detected crash, and
                // keep the suspicion sticky even though its heartbeat
                // counter still moves.
                if self.fd.mark_workload_dead(from) {
                    self.on_suspect(ctx, from);
                }
            }
            ControlMsg::LeaderAnnounce { group, epoch, leader } => {
                let g = group as usize;
                if epoch >= self.groups[g].promised {
                    self.groups[g].promised = epoch;
                    self.groups[g].leader_view = Pid(leader as usize);
                    if leader as usize != self.me.index() {
                        for q in 0..self.n {
                            ctx.set_write_permission(
                                self.layout.conf[g],
                                NodeId(q),
                                q == leader as usize,
                            );
                        }
                        if self.groups[g].writers.is_some() {
                            self.depose(ctx, g);
                        }
                    }
                }
            }
        }
    }

    fn maybe_win(&mut self, ctx: &mut Ctx<'_>, g: usize) {
        let majority = self.n / 2 + 1;
        let Some(e) = self.groups[g].election.as_ref() else { return };
        if e.acks < majority {
            return;
        }
        let (max_tail, holder, max_commit, epoch) =
            (e.max_tail, e.max_tail_holder, e.max_commit, e.epoch);
        self.groups[g].election = None;
        self.groups[g].deposed = false;
        self.groups[g].leader_view = Pid(self.me.index());
        self.groups[g].epoch = epoch;
        self.groups[g].commit = max_commit.max(self.groups[g].commit);
        self.groups[g].commit_written = 0;
        let own_tail = self.landed_tail(ctx, g);
        if own_tail < max_tail && holder != self.me {
            // Catch up: read the missing suffix from the best follower.
            let from_seq = own_tail + 1;
            let count = max_tail - own_tail;
            self.groups[g].catching_up = true;
            // Ring is positional: read slot-by-slot range; wrap handled
            // by issuing one read per slot (the suffix is short).
            for s in from_seq..=max_tail {
                let off = self.layout.conf_ring_base()
                    + ((s - 1) as usize % self.layout.conf_cap()) * self.layout.entry_size();
                let wr = ctx.post_read(holder, self.layout.conf[g], off, self.layout.entry_size());
                self.wr_routes.insert(
                    wr,
                    Route::CatchupRead { group: g, from_seq: s, count, max_tail },
                );
            }
        } else {
            self.finish_takeover(ctx, g, max_tail);
        }
    }

    fn finish_takeover(&mut self, ctx: &mut Ctx<'_>, g: usize, max_tail: u64) {
        let (leader, epoch) = (self.me, self.groups[g].epoch);
        ctx.emit(|| TraceEvent::LeaderChange { group: g, leader, epoch });
        self.groups[g].catching_up = false;
        self.groups[g].issue_floor = max_tail;
        self.become_writer(g, max_tail);
        // Rebroadcast the window between the adopted commit and the
        // tail so every follower's ring converges, then re-count acks.
        let commit = self.groups[g].commit;
        for s in (commit + 1)..=max_tail {
            self.groups[g].pending_acks.insert(s, 0);
            let off = self.layout.conf_ring_base()
                + ((s - 1) as usize % self.layout.conf_cap()) * self.layout.entry_size();
            let slot = ctx.local(self.layout.conf[g], off, self.layout.entry_size()).to_vec();
            let writers = self.groups[g].writers.as_mut().expect("just created");
            for w in writers.iter_mut().flatten() {
                w.rewrite(ctx, s, slot.clone());
            }
        }
        // Announce.
        let msg = ControlMsg::LeaderAnnounce {
            group: g as u32,
            epoch: self.groups[g].epoch,
            leader: self.me.index() as u32,
        };
        for q in 0..self.n {
            if q != self.me.index() {
                ctx.send(NodeId(q), msg.to_bytes().into());
            }
        }
        self.advance_commit(ctx, g);
        self.pump(ctx);
    }

    fn on_routed(
        &mut self,
        ctx: &mut Ctx<'_>,
        route: Route,
        status: CompletionStatus,
        data: Option<&[u8]>,
    ) {
        match route {
            Route::SummaryWrite { group: g, target, version } => {
                // Summary regions never revoke write permission, so the
                // status needs no inspection (same as before combining).
                let q = target.index();
                debug_assert_eq!(self.sum_inflight[g][q], Some(version), "routed write matches");
                self.sum_inflight[g][q] = None;
                // The slot is last-writer-wins: landing version v makes
                // every folded-in call up to v durable at this peer.
                let mut credited = Vec::new();
                while let Some(&(v, cid)) = self.sum_waiters[g][q].front() {
                    if v > version {
                        break;
                    }
                    self.sum_waiters[g][q].pop_front();
                    credited.push(cid);
                }
                // Dirty channel: the local summary moved past what
                // landed — repost the latest slot (it is already
                // encoded in the group's reuse buffer). This must
                // happen BEFORE crediting: crediting re-enters the
                // pump, and a fresh reduce issued there must find the
                // channel busy again, not post a second in-flight
                // write on it.
                let latest = self.sum_cache[g][self.me.index()].version;
                if latest > version {
                    debug_assert!(
                        !self.sum_waiters[g][q].is_empty(),
                        "a newer local version implies someone still waits"
                    );
                    let slot = std::mem::take(&mut self.sum_slot_buf[g]);
                    let method = self.coord.sum_groups()[g][0].index();
                    self.post_summary(ctx, g, target, latest, &slot, method);
                    self.sum_slot_buf[g] = slot;
                }
                for cid in credited {
                    self.credit_summary_peer(ctx, cid);
                }
            }
            Route::CommitWrite { group } => {
                let gs = &mut self.groups[group];
                gs.commit_writes_inflight = gs.commit_writes_inflight.saturating_sub(1);
                if !status.is_success() {
                    // Straggler has not granted us yet; force a re-push
                    // of the commit index on the next flush.
                    gs.commit_written = 0;
                }
                self.flush_commit(ctx, group);
            }
            Route::RecoveryRead { suspect } => {
                if let Some(bytes) = data {
                    self.recover_backups(ctx, suspect, bytes);
                }
            }
            Route::CatchupRead { group, from_seq, max_tail, .. } => {
                if let Some(bytes) = data {
                    let off = self.layout.conf_ring_base()
                        + ((from_seq - 1) as usize % self.layout.conf_cap())
                            * self.layout.entry_size();
                    ctx.local_write(self.layout.conf[group], off, bytes);
                }
                // Are we fully caught up now?
                if self.groups[group].catching_up && self.landed_tail(ctx, group) >= max_tail {
                    self.finish_takeover(ctx, group, max_tail);
                }
            }
        }
    }

    /// Re-execute a suspected source's pending broadcasts from its
    /// backup slots (the agreement half of reliable broadcast).
    fn recover_backups(&mut self, ctx: &mut Ctx<'_>, suspect: NodeId, bytes: &[u8]) {
        let (_, slot_size) = self.layout.backup_slot(0);
        for i in 0..self.layout.backup_slots() {
            let b = &bytes[i * slot_size..(i + 1) * slot_size];
            let Some((kind, group, seq, slot)) = parse_backup_slot(b) else {
                continue;
            };
            match kind {
                BACKUP_FREE => {
                    let ring_off = self.layout.free_ring_base(suspect)
                        + ((seq - 1) as usize % self.layout.free_cap()) * self.layout.entry_size();
                    for q in 0..self.n {
                        if NodeId(q) == suspect {
                            continue;
                        }
                        if q == self.me.index() {
                            ctx.local_write(self.layout.free_rings, ring_off, slot);
                        } else {
                            ctx.post_write(NodeId(q), self.layout.free_rings, ring_off, slot);
                        }
                    }
                }
                _ => {
                    let off = self.layout.summary_offset(group as usize, suspect);
                    for q in 0..self.n {
                        if NodeId(q) == suspect {
                            continue;
                        }
                        if q == self.me.index() {
                            ctx.local_write(self.layout.summaries, off, slot);
                        } else {
                            ctx.post_write(NodeId(q), self.layout.summaries, off, slot);
                        }
                    }
                }
            }
        }
    }
}

impl<O> App for HambandNode<O>
where
    O: WorkloadSupport,
    O::Update: Wire,
{
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        self.setup(ctx);
    }

    fn on_event(&mut self, ctx: &mut Ctx<'_>, event: Event) {
        match event {
            Event::Timer { tag: TAG_POLL, .. } => {
                self.poll(ctx);
                ctx.set_timer(self.cfg.poll_interval, TAG_POLL);
            }
            Event::Timer { tag: TAG_HEARTBEAT, .. } => {
                self.hb.beat(ctx);
                ctx.set_timer_isolated(self.cfg.heartbeat_interval, TAG_HEARTBEAT);
            }
            Event::Timer { tag: TAG_FD, .. } => {
                self.fd.tick(ctx);
                ctx.set_timer_isolated(self.cfg.fd_interval, TAG_FD);
            }
            Event::Timer { tag: TAG_RETRY, .. } => {
                self.run_retries(ctx);
            }
            Event::Timer { .. } => {}
            Event::Completion { wr, status, data, .. } => {
                self.on_completion(ctx, wr, status, data.as_deref());
            }
            Event::Message { from, payload } => {
                if let Ok(msg) = ControlMsg::from_bytes(&payload) {
                    self.on_control(ctx, from, msg);
                }
            }
            Event::Fault { kind: AppFault::SuspendHeartbeat } => {
                self.hb.suspended = true;
                self.halted = true;
                self.driver.halt();
            }
            Event::Fault { kind: AppFault::ResumeHeartbeat } => {
                self.hb.suspended = false;
                // Peers will clear their suspicion once they observe
                // the counter moving again, but this node's driver was
                // halted by the suspension and stays halted: workload-
                // level exclusion is crash-stop even though detector-
                // level suspicion is not.
                let node = self.me;
                ctx.emit(|| TraceEvent::ResumedButExcluded { node });
                // Announce the retirement. Without it the resumed
                // heartbeat makes this node look healthy, so peers
                // would neither adopt its remaining quota nor elect a
                // replacement for any group it still leads — a zombie
                // leader wedges the whole workload.
                if self.halted {
                    let msg = ControlMsg::Retired;
                    for q in 0..self.n {
                        if q != self.me.index() {
                            ctx.send(NodeId(q), msg.to_bytes().into());
                        }
                    }
                }
            }
        }
    }
}
