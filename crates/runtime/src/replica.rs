//! The Hamband replica node: a thin orchestrator over the protocol
//! modules.
//!
//! The actual protocol lives in one module per path (Fig. 7):
//!
//! * [`reduce`](crate::reduce) — reducible calls folded into summary
//!   slots and broadcast write-combined;
//! * [`free`](crate::free) — irreducible conflict-free calls appended
//!   to per-source `F` rings;
//! * [`conf`](crate::conf) — conflicting calls serialized by one
//!   [`GroupEngine`] per synchronization
//!   group, with [`commit`](crate::commit) advancement,
//!   [`election`](crate::election)/takeover, and
//!   [`recovery`](crate::recovery) around failures;
//! * [`calls`](crate::calls) — per-call lifecycle shared by all paths;
//! * [`views`](crate::views) — the σ/mat/spec_mat view discipline.
//!
//! This module owns the [`HambandNode`] struct itself, startup, the
//! client pump, the completion/message dispatchers, and the
//! [`App`] event-loop glue. Everything runs over a generic
//! [`Transport`], so the same replica drives the discrete-event
//! simulator and the in-process [`loopback`](crate::loopback) backend.
//!
//! Applying conflicting entries at commit rather than at issue is a
//! deliberate deviation from the paper's Fig. 7 (whose CONF rule
//! applies at the leader immediately): it is exactly Mu's execution
//! discipline, and it makes a deposed leader's unacknowledged calls
//! vanish without state rollback, so even a suspended leader converges
//! with the rest of the cluster. See DESIGN.md.

use std::collections::{HashMap, VecDeque};

use hamband_core::coord::{CoordSpec, GroupMapper};
use hamband_core::counts::CountMap;
use hamband_core::ids::Pid;
use hamband_core::object::{ObjectSpec, WorkloadSupport};
use hamband_core::wire::Wire;
use rdma_sim::{
    App, AppFault, CompletionStatus, Ctx, Event, NodeId, RingKind, SimTime, TraceEvent, WrId,
};

use crate::calls::{Outstanding, Route};
use crate::conf::GroupEngine;
use crate::config::RuntimeConfig;
use crate::driver::WorkloadSpec;
use crate::heartbeat::{FailureDetector, FdEvent, Heartbeat};
use crate::ingress::Ingress;
use crate::layout::Layout;
use crate::messages::ControlMsg;
use crate::metrics::NodeMetrics;
use crate::persist::NodeLog;
use crate::reduce::CachedSummary;
use crate::rings::{RingReader, RingWriter};
use crate::transport::Transport;

pub(crate) const TAG_POLL: u64 = 0;
pub(crate) const TAG_HEARTBEAT: u64 = 1;
pub(crate) const TAG_FD: u64 = 2;
pub(crate) const TAG_RETRY: u64 = 3;

/// The Hamband replica application. One per simulated node.
pub struct HambandNode<O: ObjectSpec> {
    pub(crate) spec: O,
    pub(crate) coord: CoordSpec,
    pub(crate) cfg: RuntimeConfig,
    pub(crate) layout: Layout,
    pub(crate) me: NodeId,
    pub(crate) n: usize,

    /// Stored state σ (buffered calls only).
    pub(crate) sigma: O::State,
    /// Materialized committed view: σ with all summaries applied.
    pub(crate) mat: O::State,
    pub(crate) mat_dirty: bool,
    /// Speculative view including own uncommitted conflicting calls
    /// (`None` while there are none — then the view equals `mat`).
    pub(crate) spec_mat: Option<O::State>,
    /// Applied-calls map `A`, including summary-carried counts.
    pub(crate) applied: CountMap,
    /// Summary caches per (summarization group, source).
    pub(crate) sum_cache: Vec<Vec<CachedSummary<O::Update>>>,
    /// Write-combining: version of the summary WRITE in flight per
    /// (summarization group, peer); `None` = the channel is idle. At
    /// most one summary WRITE per (group, peer) is ever in flight —
    /// further reduces only fold locally, and completion reposts the
    /// latest slot if it moved past what landed (slots are
    /// last-writer-wins, so this is the paper's own amortization).
    pub(crate) sum_inflight: Vec<Vec<Option<u64>>>,
    /// Per (summarization group, peer): calls whose summary version has
    /// not yet landed at that peer, oldest first (`(version, call_id)`).
    /// A completed write carrying version `v` covers every waiter with
    /// version `<= v`.
    pub(crate) sum_waiters: Vec<Vec<VecDeque<(u64, u64)>>>,
    /// Per summarization group: reusable encode buffer holding the
    /// latest own summary slot (the used prefix — exactly the bytes a
    /// repost must write).
    pub(crate) sum_slot_buf: Vec<Vec<u8>>,

    pub(crate) free_writers: Vec<Option<RingWriter>>,
    pub(crate) free_readers: Vec<Option<RingReader>>,
    /// One consensus engine per *mapped* group: each synchronization
    /// group contributes [`RuntimeConfig::sync_shards`] independent
    /// engines, with quotas, elections, and commit per shard.
    pub(crate) engines: Vec<GroupEngine>,

    pub(crate) hb: Heartbeat,
    pub(crate) fd: FailureDetector,
    /// Peers whose conflict-free quota we already adopted.
    pub(crate) adopted: Vec<bool>,

    /// Flat-combining client ingress: the node's session slots and
    /// quota state; the pump is the combiner.
    pub(crate) ingress: Ingress,
    pub(crate) workload: WorkloadSpec,
    /// Exposed measurements.
    pub metrics: NodeMetrics,

    /// Payloads of own uncommitted conflicting calls, oldest first
    /// (mirrors the engines' `uncommitted` queues; kept to rebuild the
    /// speculative view after non-monotone summary refreshes).
    pub(crate) speculative_store: Vec<O::Update>,
    pub(crate) next_call_id: u64,
    pub(crate) next_rid_seq: u64,
    pub(crate) outstanding: HashMap<u64, Outstanding>,
    /// (free ring seq) → call id.
    pub(crate) free_call_by_seq: HashMap<u64, u64>,
    pub(crate) wr_routes: HashMap<WrId, Route>,
    /// Denied conflicting-ring writes awaiting retry: (group, target,
    /// seq). A denial means the target has not (yet) granted this
    /// leader write permission; retried until it does or until a higher
    /// epoch deposes us.
    pub(crate) conf_retries: Vec<(usize, NodeId, u64)>,
    pub(crate) retry_timer_armed: bool,
    pub(crate) halted: bool,
    /// The node's persist log (durability seam; `None` under
    /// [`DurabilityMode::Off`](crate::persist::DurabilityMode)).
    pub(crate) log: Option<NodeLog>,
    /// The initial per-mapped-group leader assignment, kept so a
    /// restart can rebuild the engines from scratch before replaying
    /// hard state over them.
    pub(crate) initial_leaders: Vec<Pid>,
    /// Set by crash-restart rejoin: the node participates fully in the
    /// protocol (polling, voting, delegate duties) but never issues
    /// workload again and never runs for leadership — its pre-crash
    /// client sessions are gone and peers already treat it as
    /// `Retired` for quota purposes.
    pub(crate) workload_retired: bool,
    /// Per mapped group: the highest epoch this node has adopted a
    /// leader at through the rejoin handshake (`JoinAck`) or a regular
    /// promise/announcement. A `JoinAck` is accepted only at this epoch
    /// or above, so a stale late ack can never flip permission grants
    /// away from a fresher leader — while the initial zero still lets
    /// the first ack in even when the replayed promise exceeds the
    /// current winning epoch (a dead pre-crash candidacy).
    pub(crate) join_epoch: Vec<u64>,
    /// Open-loop arrival timestamp of the call being issued right now:
    /// set by the pump before dispatching a planned update, taken by
    /// the issue path as the call's `issued_at` so response time
    /// includes arrival-queue wait. `None` under closed-loop load.
    pub(crate) pending_arrival: Option<SimTime>,
}

impl<O> HambandNode<O>
where
    O: WorkloadSupport,
    O::Update: Wire,
{
    /// Build the replica for node `me` of an `n`-node cluster.
    ///
    /// `layout` must come from [`Layout::install`] on the same
    /// simulator (with the same `cfg.sync_shards`), and `leaders`
    /// assigns the initial leader per *mapped* group (sync group ×
    /// shard, [`GroupMapper::group_count`] entries).
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        spec: O,
        coord: CoordSpec,
        cfg: RuntimeConfig,
        layout: Layout,
        me: NodeId,
        n: usize,
        leaders: &[Pid],
        workload: WorkloadSpec,
    ) -> Self {
        let mapper = GroupMapper::new(&coord, cfg.sync_shards);
        assert_eq!(leaders.len(), mapper.group_count(), "one leader per mapped group");
        assert_eq!(layout.conf.len(), mapper.group_count(), "layout planned for these shards");
        assert!(cfg.window <= cfg.backup_slots, "backup ring must cover the window");
        let sigma = spec.initial();
        // Backup slots are addressed `call_id % backup_slots`, so the
        // ingress caps node-wide in-flight calls at the slot count no
        // matter how many sessions the spec asks for.
        let ingress = Ingress::new(&workload, &coord, mapper, me.index(), n, cfg.backup_slots);
        let sum_cache = coord
            .sum_groups()
            .iter()
            .map(|g| {
                (0..n)
                    .map(|_| CachedSummary { version: 0, counts: vec![0; g.len()], summary: None })
                    .collect()
            })
            .collect();
        let engines = leaders
            .iter()
            .enumerate()
            .map(|(g, &l)| {
                GroupEngine::new(
                    l,
                    RingReader::new(
                        RingKind::Conf,
                        layout.conf[g],
                        layout.conf_ring_base(),
                        layout.conf_cap(),
                        layout.entry_size(),
                        layout.heads,
                        layout.conf_head_offset(g),
                    ),
                )
            })
            .collect();
        let sum_group_count = coord.sum_groups().len();
        HambandNode {
            mat: sigma.clone(),
            sigma,
            mat_dirty: false,
            spec_mat: None,
            applied: CountMap::new(n, coord.method_count()),
            sum_cache,
            sum_inflight: (0..sum_group_count).map(|_| vec![None; n]).collect(),
            sum_waiters: (0..sum_group_count).map(|_| vec![VecDeque::new(); n]).collect(),
            sum_slot_buf: vec![Vec::new(); sum_group_count],
            free_writers: Vec::new(),
            free_readers: Vec::new(),
            engines,
            hb: Heartbeat::new(layout.heartbeat),
            fd: FailureDetector::new(me, n, layout.heartbeat, cfg.fd_suspect_after)
                .with_min_sample_gap(cfg.heartbeat_interval),
            adopted: vec![false; n],
            ingress,
            workload,
            metrics: NodeMetrics::default(),
            speculative_store: Vec::new(),
            next_call_id: 0,
            next_rid_seq: 0,
            outstanding: HashMap::new(),
            free_call_by_seq: HashMap::new(),
            wr_routes: HashMap::new(),
            conf_retries: Vec::new(),
            retry_timer_armed: false,
            halted: false,
            log: layout.persist_log.map(|r| NodeLog::new(r, cfg.persist_log_bytes)),
            initial_leaders: leaders.to_vec(),
            workload_retired: false,
            join_epoch: vec![0; leaders.len()],
            pending_arrival: None,
            spec,
            coord,
            cfg,
            layout,
            me,
            n,
        }
    }

    /// Remote copies needed for a majority (the leader's own counts).
    pub(crate) fn majority_remote(&self) -> usize {
        self.n / 2
    }

    // ------------------------------------------------------------------
    // Startup
    // ------------------------------------------------------------------

    /// Bring the replica up on `ctx`: build the ring endpoints
    /// (`free.rs` / `conf.rs`), install the initial permission grants,
    /// arm the timers, and start pumping. Called once by the event
    /// loop's start hook.
    pub fn start<T: Transport>(&mut self, ctx: &mut T) {
        if let Some(log) = self.log.as_mut() {
            log.init(ctx);
        }
        self.setup_free_endpoints();
        self.setup_conf_groups(ctx);
        ctx.set_timer(self.cfg.poll_interval, TAG_POLL);
        // Heartbeat and failure detection run as dedicated threads
        // (§4), so a busy application CPU cannot silence liveness.
        ctx.set_timer_isolated(self.cfg.heartbeat_interval, TAG_HEARTBEAT);
        ctx.set_timer_isolated(self.cfg.fd_interval, TAG_FD);
        self.hb.beat(ctx);
        self.pump(ctx);
    }

    // ------------------------------------------------------------------
    // Dispatch: polling, completions, control messages
    // ------------------------------------------------------------------

    fn poll<T: Transport>(&mut self, ctx: &mut T) {
        ctx.consume(self.cfg.poll_cost);
        self.poll_summaries(ctx);
        self.poll_free(ctx);
        self.poll_conf(ctx);
        for g in 0..self.engines.len() {
            self.flush_commit(ctx, g);
        }
        self.pump(ctx);
    }

    fn on_completion<T: Transport>(
        &mut self,
        ctx: &mut T,
        wr: WrId,
        status: CompletionStatus,
        data: Option<&[u8]>,
    ) {
        // Failure detector reads.
        match self.fd.on_completion(ctx.now(), wr, data) {
            Some(FdEvent::Suspected(peer)) => {
                self.on_suspect(ctx, peer);
                return;
            }
            Some(FdEvent::Recovered(peer)) => {
                // The peer's heartbeat moved again after suspicion.
                // Consequences that already fired (quota adoption,
                // takeover) stay — crash-stop at the protocol level —
                // but the peer is no longer excluded from future
                // delegate and election choices.
                let node = self.me;
                ctx.emit(|| TraceEvent::FdRecover { node, peer });
                return;
            }
            None => {}
        }
        // Explicitly routed work requests.
        if let Some(route) = self.wr_routes.remove(&wr) {
            self.on_routed(ctx, route, status, data);
            return;
        }
        // Ring appends: free rings first, then each group's conf rings.
        if self.on_free_completion(ctx, wr, status, data) {
            return;
        }
        self.on_conf_completion(ctx, wr, status, data);
    }

    fn on_routed<T: Transport>(
        &mut self,
        ctx: &mut T,
        route: Route,
        status: CompletionStatus,
        data: Option<&[u8]>,
    ) {
        match route {
            Route::SummaryWrite { group, target, version } => {
                self.on_summary_write_done(ctx, group, target, version);
            }
            Route::CommitWrite { group } => {
                self.on_commit_write_done(ctx, group, status);
            }
            Route::RecoveryRead { suspect } => {
                if let Some(bytes) = data {
                    self.recover_backups(ctx, suspect, bytes);
                }
            }
            Route::CatchupRead { group, from_seq, max_tail, .. } => {
                self.on_catchup_read(ctx, group, from_seq, max_tail, data);
            }
        }
    }

    /// Feed one event-loop event to the replica. Public so non-`App`
    /// event loops (the loopback backend) can drive the same state
    /// machine the simulator does.
    pub fn handle_event<T: Transport>(&mut self, ctx: &mut T, event: Event) {
        match event {
            Event::Timer { tag: TAG_POLL, .. } => {
                self.poll(ctx);
                ctx.set_timer(self.cfg.poll_interval, TAG_POLL);
            }
            Event::Timer { tag: TAG_HEARTBEAT, .. } => {
                self.hb.beat(ctx);
                ctx.set_timer_isolated(self.cfg.heartbeat_interval, TAG_HEARTBEAT);
            }
            Event::Timer { tag: TAG_FD, .. } => {
                self.fd.tick(ctx);
                ctx.set_timer_isolated(self.cfg.fd_interval, TAG_FD);
            }
            Event::Timer { tag: TAG_RETRY, .. } => {
                self.run_retries(ctx);
            }
            Event::Timer { .. } => {}
            Event::Completion { wr, status, data, .. } => {
                self.on_completion(ctx, wr, status, data.as_deref());
            }
            Event::Message { from, payload } => {
                if let Ok(msg) = ControlMsg::from_bytes(&payload) {
                    self.on_control(ctx, from, msg);
                }
            }
            Event::Fault { kind: AppFault::SuspendHeartbeat } => {
                self.hb.suspended = true;
                self.halted = true;
                self.ingress.halt();
            }
            Event::Fault { kind: AppFault::ResumeHeartbeat } => {
                self.hb.suspended = false;
                // Peers will clear their suspicion once they observe
                // the counter moving again, but this node's driver was
                // halted by the suspension and stays halted: workload-
                // level exclusion is crash-stop even though detector-
                // level suspicion is not.
                let node = self.me;
                ctx.emit(|| TraceEvent::ResumedButExcluded { node });
                // Announce the retirement. Without it the resumed
                // heartbeat makes this node look healthy, so peers
                // would neither adopt its remaining quota nor elect a
                // replacement for any group it still leads — a zombie
                // leader wedges the whole workload.
                if self.halted {
                    let msg = ControlMsg::Retired;
                    for q in 0..self.n {
                        if q != self.me.index() {
                            ctx.send(NodeId(q), msg.to_bytes().into());
                        }
                    }
                }
            }
        }
    }
}

impl<O> App for HambandNode<O>
where
    O: WorkloadSupport,
    O::Update: Wire,
{
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        self.start(ctx);
    }

    fn on_event(&mut self, ctx: &mut Ctx<'_>, event: Event) {
        self.handle_event(ctx, event);
    }

    fn on_restart(&mut self, ctx: &mut Ctx<'_>) {
        self.restart_recover(ctx);
    }
}
