//! Flat-combining client ingress: many sessions, one combiner.
//!
//! A replica that drives a single closed-loop client loop is bounded by
//! one issuing stream per node — nowhere near "thousands of users per
//! replica". Flat combining (node-replication style) fixes this without
//! concurrency inside the replica: each node owns an [`Ingress`]
//! holding a slot array of [`ClientSession`]s, and the replica's pump
//! acts as the *combiner* — each iteration it drains whichever sessions
//! can act, routes their operations through the normal protocol paths
//! (REDUCE/FREE/CONF), and the whole burst lands in the write-combined
//! [`RingWriter`](crate::rings::RingWriter) appends that already
//! amortize doorbells. Completions fan back per session
//! ([`Ingress::on_ack`]), so per-user latency and throughput stay
//! observable even though the fabric only ever sees combined batches.
//!
//! Determinism: on the simulator every session is a seeded RNG stream
//! (a splitmix64 chain over the workload seed, the node, and the
//! session index — see [`session_seed`]) and the combiner visits
//! sessions in deterministic round-robin order, so whole-run traces
//! are reproducible byte-for-byte. The parity tests pin whole runs
//! against golden trace fingerprints.
//!
//! Quotas stay *node-level* (the §5 split of
//! [`QuotaSplit`]): sessions share the
//! node's update/query budget and differ only in pacing, so adding
//! sessions changes concurrency, not the workload. The node also caps
//! total in-flight calls at the backup ring size — backup slots are
//! indexed `call_id % backup_slots`, and the cap keeps two live calls
//! from ever sharing a slot no matter how many sessions pile in.

use hamband_core::coord::{mix64, CoordSpec, GroupMapper, MethodCategory};
use hamband_core::ids::{GroupId, MethodId};
use hamband_core::object::{KeySkew, ObjectSpec, WorkloadSupport};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rdma_sim::{SimDuration, SimTime};

use crate::driver::{Planned, QuotaSplit, WorkloadSpec};

/// What one combining step yields: the session that acted and its
/// planned call.
pub type SessionPlan<O> = (u32, Planned<<O as ObjectSpec>::Update, <O as ObjectSpec>::Query>);

/// After this many consecutive idle planning attempts with pending but
/// ungeneratable quota, the ingress forfeits the remainder (e.g. a
/// remove-only tail on an empty set). At one attempt per poll this is
/// on the order of a millisecond of virtual time.
const FORFEIT_AFTER: u64 = 2_000;

/// How many times a conflicting-call generation is redrawn when its
/// shard key routes to a mapped group this node does not lead (clients
/// route to their shard's leader). With a random key the acceptance
/// chance per draw is ≥ 1/n, so 32 tries fail with probability < 1e-4
/// even on large clusters; exhaustion is treated as a dry generator.
/// At `sync_shards = 1` a candidate method's only shard is locally led,
/// so the first draw always routes and no extra RNG is consumed.
const ROUTE_TRIES: usize = 32;

/// RNG seed of session `s` on `node`: a splitmix64 chain over
/// `(seed, node, session)`.
///
/// The previous scheme —
/// `seed ^ node·0x9e3779b97f4a7c15 ^ s·0xff51afd7ed558ccd` — was a xor
/// of per-coordinate *linear* terms, so distinct `(node, session)`
/// pairs whose terms xor to the same value fed identical RNG streams
/// (e.g. any pair of nodes whose constant-multiples differ by the same
/// xor as a pair of session-multiples). Chaining through the
/// [`mix64`] finalizer avalanches each coordinate before the next is
/// folded in, which removes the structural collisions.
fn session_seed(seed: u64, node: usize, session: u64) -> u64 {
    let mut h = mix64(seed);
    h = mix64(h ^ node as u64);
    mix64(h ^ session)
}

/// Open-loop client arrivals: a Poisson process at the node's share of
/// the configured offered load, generated lazily and *independent of
/// completions*.
///
/// The combiner releases due arrivals each pump
/// ([`Ingress::release_arrivals`]); [`Ingress::next`] only plans a
/// call while a released arrival is waiting, and the pump takes the
/// arrival timestamp ([`Ingress::take_arrival`]) to stamp the call's
/// `issued_at` — so a call that waited in the arrival queue (windows
/// full, replica busy) is charged its queueing delay. Generation stops
/// after the node's op budget, so the backlog is bounded by the
/// workload size even when the offered load exceeds capacity.
#[derive(Debug)]
struct OpenLoop {
    rng: StdRng,
    /// Mean inter-arrival gap at this node, nanoseconds.
    mean_gap_ns: f64,
    /// The next (not yet due) arrival time.
    next_at: SimTime,
    /// Released arrivals waiting to be issued, in arrival order.
    pending: std::collections::VecDeque<SimTime>,
    /// Arrivals still to generate (the node's op budget).
    remaining: u64,
}

impl OpenLoop {
    /// Sample one exponential inter-arrival gap (≥ 1 ns so time always
    /// advances).
    fn gap(&mut self) -> SimDuration {
        let u: f64 = self.rng.gen_range(0.0..1.0);
        SimDuration((-self.mean_gap_ns * (1.0 - u).ln()).max(1.0) as u64)
    }
}

/// Per-session completion accounting, maintained by the combiner's
/// fan-back. Cheap by design (counters, no histograms): it must scale
/// to tens of thousands of sessions per node.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SessionStats {
    /// Update calls this session issued.
    pub issued: u64,
    /// Update calls acknowledged back to this session.
    pub acked: u64,
    /// Update calls aborted (rejected or orphaned by a deposed leader).
    pub aborted: u64,
    /// Queries this session executed.
    pub queries: u64,
    /// Sum of acked-update response times, nanoseconds.
    pub sum_rt_ns: u64,
    /// Largest acked-update response time, nanoseconds.
    pub max_rt_ns: u64,
}

impl SessionStats {
    /// Operations completed by this session (acked updates + queries).
    pub fn completed(&self) -> u64 {
        self.acked + self.queries
    }

    /// Mean acked-update response time, microseconds (0 if none).
    pub fn mean_rt_us(&self) -> f64 {
        if self.acked == 0 {
            0.0
        } else {
            self.sum_rt_ns as f64 / self.acked as f64 / 1_000.0
        }
    }
}

/// One client session slot: a seeded op stream with its own closed-loop
/// window and completion stats. Owned by the [`Ingress`]; the combiner
/// (the replica pump) is the only code that touches it.
#[derive(Debug)]
pub struct ClientSession {
    rng: StdRng,
    /// Updates this session has in flight.
    outstanding: usize,
    /// Max outstanding updates for this session.
    window: usize,
    stats: SessionStats,
}

impl ClientSession {
    /// This session's completion stats.
    pub fn stats(&self) -> &SessionStats {
        &self.stats
    }

    /// Updates this session currently has in flight.
    pub fn outstanding(&self) -> usize {
        self.outstanding
    }
}

/// The per-node flat-combining ingress: session slots plus the node's
/// quota state. The replica pump calls [`Ingress::next`] in a loop each
/// iteration (the combining drain) and fans completions back through
/// [`Ingress::on_ack`] / [`Ingress::on_abort`].
#[derive(Debug)]
pub struct Ingress {
    node: usize,
    /// Key-shard routing: sync group × shard key → mapped engine group.
    mapper: GroupMapper,
    sessions: Vec<ClientSession>,
    /// Round-robin combining order (session indices; front is next).
    rotation: std::collections::VecDeque<u32>,
    /// Remaining local query quota (node-level, shared by sessions).
    queries_left: u64,
    initial_queries: u64,
    /// Remaining local update quota per conflict-free method.
    free_left: Vec<u64>,
    initial_free: Vec<u64>,
    /// Global conflicting quota per sync group (consumed by leaders;
    /// progress is measured against the group ring's appended count).
    conf_target: Vec<u64>,
    /// Updates in flight across all sessions.
    inflight: usize,
    /// Node-level in-flight cap: min(Σ session windows, backup slots).
    inflight_cap: usize,
    /// Hard ceiling from the backup ring (survives window adoption).
    max_inflight: usize,
    /// Key-popularity skew handed to state-aware generators.
    skew: KeySkew,
    /// Sequence for fresh identifiers handed to generators
    /// (node-level, so e.g. OR-set tags stay collision-free across
    /// sessions).
    next_seq: u64,
    /// Consecutive fully-idle planning attempts that produced nothing.
    dry_streak: u64,
    /// Halted by failure injection: stop issuing.
    halted: bool,
    /// Open-loop arrival process (`None` = classic closed loop).
    open_loop: Option<OpenLoop>,
}

impl Ingress {
    /// Build the ingress for `node` of `n`: the §5 quota split plus one
    /// seeded [`ClientSession`] per `spec.sessions`. `max_inflight`
    /// bounds total in-flight calls (pass the backup-ring slot count;
    /// backends without backup slots pass `usize::MAX`).
    pub fn new(
        spec: &WorkloadSpec,
        coord: &CoordSpec,
        mapper: GroupMapper,
        node: usize,
        n: usize,
        max_inflight: usize,
    ) -> Self {
        assert!(max_inflight >= 1, "need room for at least one in-flight call");
        let split = QuotaSplit::for_node(spec, coord, node, n);
        let sessions: Vec<ClientSession> = (0..spec.sessions)
            .map(|s| ClientSession {
                rng: StdRng::seed_from_u64(session_seed(spec.seed, node, s as u64)),
                outstanding: 0,
                window: spec.window,
                stats: SessionStats::default(),
            })
            .collect();
        let total_window: usize = sessions.iter().map(|s| s.window).sum();
        let open_loop = spec.offered_load.map(|rate| {
            // The cluster-wide rate splits evenly across nodes; the
            // budget caps generation at the node's §5 op share (global
            // conflicting quota included — over-releasing merely
            // leaves arrivals unconsumed once quotas are spent).
            let budget = split.queries
                + split.free.iter().sum::<u64>()
                + split.conf_target.iter().sum::<u64>();
            let mut ol = OpenLoop {
                rng: StdRng::seed_from_u64(session_seed(spec.seed, node, u64::MAX)),
                mean_gap_ns: 1e9 * n as f64 / rate,
                next_at: SimTime::ZERO,
                pending: std::collections::VecDeque::new(),
                remaining: budget,
            };
            ol.next_at = SimTime::ZERO + ol.gap();
            ol
        });
        Ingress {
            node,
            mapper,
            rotation: (0..sessions.len() as u32).collect(),
            sessions,
            queries_left: split.queries,
            initial_queries: split.queries,
            initial_free: split.free.clone(),
            free_left: split.free,
            conf_target: split.conf_target,
            inflight: 0,
            inflight_cap: total_window.min(max_inflight),
            max_inflight,
            skew: spec.skew,
            next_seq: 0,
            dry_streak: 0,
            halted: false,
            open_loop,
        }
    }

    /// Release every open-loop arrival due at `now` (no-op for closed
    /// loops). The combiner calls this at the top of each pump.
    pub fn release_arrivals(&mut self, now: SimTime) {
        let Some(ol) = self.open_loop.as_mut() else { return };
        while ol.remaining > 0 && ol.next_at <= now {
            ol.pending.push_back(ol.next_at);
            ol.remaining -= 1;
            let gap = ol.gap();
            ol.next_at += gap;
        }
    }

    /// Take the oldest released arrival's timestamp (the pump calls
    /// this once per planned call to stamp `issued_at`). `None` for
    /// closed loops.
    pub fn take_arrival(&mut self) -> Option<SimTime> {
        self.open_loop.as_mut().and_then(|ol| ol.pending.pop_front())
    }

    /// Released arrivals currently waiting to be issued.
    pub fn arrival_backlog(&self) -> usize {
        self.open_loop.as_ref().map_or(0, |ol| ol.pending.len())
    }

    /// Number of session slots.
    pub fn session_count(&self) -> usize {
        self.sessions.len()
    }

    /// The session slots (stats, windows) for harness accounting.
    pub fn sessions(&self) -> &[ClientSession] {
        &self.sessions
    }

    /// Snapshot of every session's completion stats.
    pub fn session_stats(&self) -> Vec<SessionStats> {
        self.sessions.iter().map(|s| s.stats).collect()
    }

    /// Remaining global conflicting quota of *sync group* `g`, given
    /// how many entries its rings already carry (summed over the
    /// group's shards when `sync_shards > 1`).
    pub fn conf_remaining(&self, g: usize, ring_appended: u64) -> u64 {
        self.conf_target[g].saturating_sub(ring_appended)
    }

    /// The shard mapper this ingress routes conflicting calls through.
    pub fn mapper(&self) -> GroupMapper {
        self.mapper
    }

    /// The conflict-free quota method `m` started with at this node.
    pub fn initial_free_quota(&self, m: usize) -> u64 {
        self.initial_free[m]
    }

    /// The query quota this node started with.
    pub fn initial_queries(&self) -> u64 {
        self.initial_queries
    }

    /// Stop issuing (the node was "failed" by the fault plan).
    pub fn halt(&mut self) {
        self.halted = true;
    }

    /// Whether the ingress was halted.
    pub fn is_halted(&self) -> bool {
        self.halted
    }

    /// Adopt part of a failed peer's conflict-free quota ("after a
    /// failure, all the requests of the failed node are redirected to
    /// the next available node"). The adopter also takes over the
    /// failed clients' pipelining: every session's window doubles — the
    /// node now serves two client populations.
    pub fn adopt_free_quota(&mut self, per_method: &[u64], queries: u64) {
        for (m, extra) in per_method.iter().enumerate() {
            self.free_left[m] += extra;
        }
        self.queries_left += queries;
        for s in &mut self.sessions {
            s.window *= 2;
        }
        let total_window: usize = self.sessions.iter().map(|s| s.window).sum();
        self.inflight_cap = total_window.min(self.max_inflight);
        self.dry_streak = 0;
    }

    /// An update of `session` was acknowledged after `rt_ns`
    /// nanoseconds: free its window slot and record the latency.
    pub fn on_ack(&mut self, session: u32, rt_ns: u64) {
        self.inflight = self.inflight.saturating_sub(1);
        let s = &mut self.sessions[session as usize];
        s.outstanding = s.outstanding.saturating_sub(1);
        s.stats.acked += 1;
        s.stats.sum_rt_ns = s.stats.sum_rt_ns.saturating_add(rt_ns);
        s.stats.max_rt_ns = s.stats.max_rt_ns.max(rt_ns);
    }

    /// An outstanding update of `session` failed permanently (rejected
    /// or orphaned by a deposed leader): free its slot without
    /// restoring quota.
    pub fn on_abort(&mut self, session: u32) {
        self.inflight = self.inflight.saturating_sub(1);
        let s = &mut self.sessions[session as usize];
        s.outstanding = s.outstanding.saturating_sub(1);
        s.stats.aborted += 1;
    }

    /// Whether every local quota is spent and nothing is in flight.
    /// (Conflicting quotas are global; the harness checks them against
    /// the rings.)
    pub fn local_done(&self) -> bool {
        self.halted
            || (self.queries_left == 0
                && self.free_left.iter().all(|&x| x == 0)
                && self.inflight == 0)
    }

    /// Updates currently in flight across all sessions.
    pub fn outstanding(&self) -> usize {
        self.inflight
    }

    /// Combine one step: pick the next session that can act (round
    /// robin) and plan its call. Returns the session index with the
    /// plan, or `None` when no session can issue right now (windows
    /// full, quotas spent, or the generators have nothing valid in this
    /// state).
    ///
    /// `is_leader_of[g]` and `ring_appended[g]` are indexed by *mapped*
    /// group (sync group × shard) and gate the conflicting quota;
    /// `state` lets generators produce context-sensitive calls.
    pub fn next<O: WorkloadSupport>(
        &mut self,
        spec: &O,
        state: &O::State,
        coord: &CoordSpec,
        is_leader_of: &[bool],
        ring_appended: &[u64],
    ) -> Option<SessionPlan<O>> {
        if self.halted {
            return None;
        }
        // Open loop: only plan while a released arrival is waiting —
        // the client population, not the window state, decides when
        // work exists.
        if self.open_loop.as_ref().is_some_and(|ol| ol.pending.is_empty()) {
            return None;
        }
        // Candidate update methods with remaining quota (node-level).
        let mut candidates: Vec<(MethodId, u64)> = Vec::new();
        let mut updates_left = 0u64;
        for m in 0..coord.method_count() {
            let left = match coord.category(MethodId(m)) {
                MethodCategory::Conflicting { sync_group } => {
                    // A node that leads any shard of the group may
                    // issue; quota is measured against the sum of the
                    // group's shard rings.
                    let shards = self.mapper.shard_range(sync_group);
                    if shards.clone().any(|g| is_leader_of[g]) {
                        let appended: u64 = shards.map(|g| ring_appended[g]).sum();
                        self.conf_remaining(sync_group.index(), appended)
                    } else {
                        0
                    }
                }
                _ => self.free_left[m],
            };
            if left > 0 {
                candidates.push((MethodId(m), left));
                updates_left += left;
            }
        }
        let node_can_update = updates_left > 0 && self.inflight < self.inflight_cap;
        let can_query = self.queries_left > 0;
        if !node_can_update && !can_query {
            // O(1) early-out: no session scan when the node can't act.
            return None;
        }
        // Round-robin over the slot array: the first session with a
        // free window slot (or a query budget) acts; window-full
        // sessions are skipped without consuming their RNG stream.
        for _ in 0..self.rotation.len() {
            let sid = *self.rotation.front().expect("rotation non-empty");
            let s = sid as usize;
            let can_update = node_can_update && self.sessions[s].outstanding < self.sessions[s].window;
            if !can_update && !can_query {
                self.rotation.rotate_left(1);
                continue;
            }
            // Choose update vs query proportional to remaining quotas
            // so the mix stays uniform over the run.
            let pick_update = match (can_update, can_query) {
                (true, false) => true,
                (false, true) => false,
                _ => {
                    let total = updates_left + self.queries_left;
                    self.sessions[s].rng.gen_range(0..total) < updates_left
                }
            };
            if !pick_update {
                self.queries_left -= 1;
                self.dry_streak = 0;
                let sess = &mut self.sessions[s];
                sess.stats.queries += 1;
                let q = spec.sample_query(&mut sess.rng);
                self.rotation.rotate_left(1);
                return Some((sid, Planned::Query(q)));
            }
            // Weighted method choice by remaining quota; fall back to
            // other methods when the generator has no valid call in
            // this state.
            let mut tries = candidates.clone();
            while !tries.is_empty() {
                let total: u64 = tries.iter().map(|&(_, w)| w).sum();
                let mut pick = self.sessions[s].rng.gen_range(0..total);
                let idx = tries
                    .iter()
                    .position(|&(_, w)| {
                        if pick < w {
                            true
                        } else {
                            pick -= w;
                            false
                        }
                    })
                    .expect("weighted pick in range");
                let (method, _) = tries.swap_remove(idx);
                let seq = self.next_seq;
                let node = self.node;
                let skew = self.skew;
                // A conflicting call must land on a shard this node
                // leads: redraw the generation (a fresh key) until it
                // routes. Non-conflicting methods accept the first
                // draw, as does sync_shards = 1 (the method was only a
                // candidate because its sole shard is locally led).
                let route_group = match coord.category(method) {
                    MethodCategory::Conflicting { sync_group } => Some(sync_group),
                    _ => None,
                };
                let mut generated = None;
                for _ in 0..ROUTE_TRIES {
                    let sess = &mut self.sessions[s];
                    let Some(u) =
                        spec.gen_update_skewed(state, node, seq, method, &mut sess.rng, skew)
                    else {
                        break;
                    };
                    let routes = match route_group {
                        Some(sg) => is_leader_of[self.mapper.group_of(sg, spec.shard_key(&u))],
                        None => true,
                    };
                    if routes {
                        generated = Some(u);
                        break;
                    }
                }
                if let Some(u) = generated {
                    self.next_seq += 1;
                    self.charge(coord, method);
                    self.inflight += 1;
                    let sess = &mut self.sessions[s];
                    sess.outstanding += 1;
                    sess.stats.issued += 1;
                    self.dry_streak = 0;
                    self.rotation.rotate_left(1);
                    return Some((sid, Planned::Update(u)));
                }
            }
            // No method has a valid call in this state. The state is
            // shared, so every other session would come up dry too: end
            // the combining round. Give up on quota that stays
            // ungeneratable for a long time, so impossible workload
            // tails terminate the run.
            if self.inflight == 0 {
                self.dry_streak += 1;
                if self.dry_streak >= FORFEIT_AFTER {
                    self.free_left.fill(0);
                    let mapper = self.mapper;
                    for (sg, target) in self.conf_target.iter_mut().enumerate() {
                        let shards = mapper.shard_range(GroupId(sg));
                        let leads =
                            shards.clone().any(|g| is_leader_of.get(g).copied().unwrap_or(false));
                        if leads {
                            let appended: u64 =
                                shards.filter_map(|g| ring_appended.get(g).copied()).sum();
                            *target = (*target).min(appended);
                        }
                    }
                }
            }
            return None;
        }
        // Every session's window is full and there are no queries left.
        None
    }

    fn charge(&mut self, coord: &CoordSpec, method: MethodId) {
        match coord.category(method) {
            MethodCategory::Conflicting { .. } => {
                // Global quota is measured against the ring; nothing to
                // decrement locally.
            }
            _ => {
                self.free_left[method.index()] -= 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hamband_core::demo::Account;

    fn account_coord() -> CoordSpec {
        Account::default().coord_spec()
    }

    #[test]
    fn window_limits_outstanding_per_session() {
        let acc = Account::new(10);
        let coord = account_coord();
        let w = WorkloadSpec::ops(10_000).with_update_ratio(1.0).with_window(4);
        let mut ing = Ingress::new(&w, &coord, GroupMapper::identity(&coord), 0, 1, 64);
        let state = 1_000i128;
        let mut issued = 0;
        while let Some((_, p)) = ing.next(&acc, &state, &coord, &[true], &[issued]) {
            match p {
                Planned::Update(_) => issued += 1,
                Planned::Query(_) => {}
            }
            if ing.outstanding() == 4 {
                break;
            }
        }
        assert_eq!(ing.outstanding(), 4);
        assert!(ing.next(&acc, &state, &coord, &[true], &[issued]).is_none());
        ing.on_ack(0, 1_000);
        assert!(ing.next(&acc, &state, &coord, &[true], &[issued]).is_some());
    }

    #[test]
    fn sessions_multiply_inflight_up_to_backup_cap() {
        let acc = Account::new(10);
        let coord = account_coord();
        let state = 1_000i128;
        // 8 sessions × window 4 = 32 in flight; cap at 64 is slack.
        let w = WorkloadSpec::ops(10_000).with_update_ratio(1.0).with_sessions(8).with_window(4);
        let mut ing = Ingress::new(&w, &coord, GroupMapper::identity(&coord), 0, 1, 64);
        let mut issued = 0;
        while let Some((_, p)) = ing.next(&acc, &state, &coord, &[true], &[issued]) {
            if let Planned::Update(_) = p {
                issued += 1;
            }
        }
        assert_eq!(ing.outstanding(), 32);
        // 1000 sessions × window 4 would be 4000: the backup ring caps
        // the node at 64 so backup slots never collide.
        let w = WorkloadSpec::ops(100_000)
            .with_update_ratio(1.0)
            .with_sessions(1_000)
            .with_window(4);
        let mut ing = Ingress::new(&w, &coord, GroupMapper::identity(&coord), 0, 1, 64);
        let mut issued = 0;
        while let Some((_, p)) = ing.next(&acc, &state, &coord, &[true], &[issued]) {
            if let Planned::Update(_) = p {
                issued += 1;
            }
        }
        assert_eq!(ing.outstanding(), 64);
    }

    #[test]
    fn combining_order_is_round_robin_and_deterministic() {
        let acc = Account::new(10);
        let coord = account_coord();
        let w = WorkloadSpec::ops(10_000).with_update_ratio(1.0).with_sessions(3).with_window(2);
        let order = |seed: u64| {
            let mut ing = Ingress::new(&w.clone().with_seed(seed), &coord, GroupMapper::identity(&coord), 0, 1, 64);
            let mut order = Vec::new();
            let state = 1_000i128;
            while let Some((sid, _)) = ing.next(&acc, &state, &coord, &[true], &[0]) {
                order.push(sid);
                if order.len() == 6 {
                    break;
                }
            }
            order
        };
        // Sessions act strictly round-robin while all have window room.
        assert_eq!(order(1), vec![0, 1, 2, 0, 1, 2]);
        assert_eq!(order(1), order(1), "same seed, same combining order");
    }

    #[test]
    fn window_full_session_is_skipped_not_stalled() {
        let acc = Account::new(10);
        let coord = account_coord();
        let w = WorkloadSpec::ops(10_000).with_update_ratio(1.0).with_sessions(2).with_window(1);
        let mut ing = Ingress::new(&w, &coord, GroupMapper::identity(&coord), 0, 1, 64);
        let state = 1_000i128;
        let (s1, _) = ing.next(&acc, &state, &coord, &[true], &[0]).expect("first");
        let (s2, _) = ing.next(&acc, &state, &coord, &[true], &[0]).expect("second");
        assert_ne!(s1, s2);
        assert!(ing.next(&acc, &state, &coord, &[true], &[0]).is_none(), "both windows full");
        ing.on_ack(s2, 500);
        let (s3, _) = ing.next(&acc, &state, &coord, &[true], &[0]).expect("slot freed");
        assert_eq!(s3, s2, "only the acked session has room");
    }

    #[test]
    fn non_leader_cannot_issue_conflicting() {
        let acc = Account::new(10);
        let coord = account_coord();
        let w = WorkloadSpec::ops(100).with_update_ratio(1.0).with_window(64);
        let mut ing = Ingress::new(&w, &coord, GroupMapper::identity(&coord), 0, 1, 64);
        let state = 1_000i128;
        let mut saw_withdraw = false;
        while let Some((s, p)) = ing.next(&acc, &state, &coord, &[false], &[0]) {
            if let Planned::Update(u) = p {
                assert!(matches!(u, hamband_core::demo::AccountUpdate::Deposit(_)));
                saw_withdraw |= matches!(u, hamband_core::demo::AccountUpdate::Withdraw(_));
                ing.on_ack(s, 100);
            }
        }
        assert!(!saw_withdraw);
    }

    #[test]
    fn halt_stops_issuing() {
        let acc = Account::new(10);
        let coord = account_coord();
        let w = WorkloadSpec::ops(100);
        let mut ing = Ingress::new(&w, &coord, GroupMapper::identity(&coord), 0, 1, 64);
        ing.halt();
        assert!(ing.local_done());
        assert!(ing.next(&acc, &0i128, &coord, &[true], &[0]).is_none());
    }

    #[test]
    fn adoption_extends_quota_and_windows() {
        let coord = account_coord();
        let w = WorkloadSpec::ops(400).with_update_ratio(1.0).with_sessions(2);
        let mut ing = Ingress::new(&w, &coord, GroupMapper::identity(&coord), 0, 2, 64);
        let before = ing.free_left[0];
        ing.adopt_free_quota(&[10, 0], 5);
        assert_eq!(ing.free_left[0], before + 10);
        assert!(ing.sessions().iter().all(|s| s.window == 16), "windows doubled");
        assert_eq!(ing.inflight_cap, 32);
    }

    #[test]
    fn generator_dry_state_returns_none_without_burning_quota() {
        let acc = Account::new(10);
        let coord = account_coord();
        // Pure withdraw workload at zero balance: generator yields None.
        let w = WorkloadSpec::ops(10).with_update_ratio(1.0);
        let mut ing = Ingress::new(&w, &coord, GroupMapper::identity(&coord), 0, 1, 64);
        ing.free_left[0] = 0; // no deposits
        let state = 0i128;
        assert_eq!(ing.next(&acc, &state, &coord, &[true], &[0]), None);
        assert_eq!(ing.outstanding(), 0);
    }

    #[test]
    fn session_seeds_never_collide_across_nodes_and_sessions() {
        // Regression for the xor-of-linear-terms seeding: distinct
        // (node, session) pairs could feed identical RNG streams. The
        // splitmix64 chain must give every pair its own seed across a
        // realistically large grid, for several base seeds.
        let mut seen = std::collections::HashSet::new();
        for base in [0u64, 1, 0x5eed, u64::MAX] {
            for node in 0..16usize {
                for session in 0..256u64 {
                    assert!(
                        seen.insert(session_seed(base, node, session)),
                        "seed collision at base={base:#x} node={node} session={session}"
                    );
                }
            }
            seen.clear();
        }
    }

    #[test]
    fn sharded_routing_only_issues_locally_led_keys() {
        use hamband_types::bank::{Bank, BankUpdate, WITHDRAW};
        let bank = Bank::new(64, 50);
        let coord = bank.coord_spec();
        let mapper = GroupMapper::new(&coord, 4);
        // Withdraw-only workload; this node leads only shard 2.
        let w = WorkloadSpec::ops(2_000).with_update_ratio(1.0).with_window(64);
        let mut ing = Ingress::new(&w, &coord, mapper, 0, 1, 64);
        ing.free_left.fill(0);
        let mut state = bank.initial();
        for a in 0..64 {
            bank.apply_mut(&mut state, &BankUpdate::OpenAccounts(vec![a]));
            bank.apply_mut(&mut state, &BankUpdate::Deposit(a, 40));
        }
        let mut leads = vec![false; mapper.group_count()];
        leads[2] = true;
        let appended = vec![0u64; mapper.group_count()];
        let mut issued = 0;
        while let Some((s, p)) = ing.next(&bank, &state, &coord, &leads, &appended) {
            if let Planned::Update(u) = p {
                let key = bank.shard_key(&u).expect("withdraw has a key");
                assert_eq!(
                    mapper.group_of(coord.sync_group(WITHDRAW).unwrap(), Some(key)),
                    2,
                    "issued {u:?} routed off the led shard"
                );
                issued += 1;
                ing.on_ack(s, 100);
            }
            if issued >= 50 {
                break;
            }
        }
        assert!(issued >= 50, "leader of one shard keeps issuing routable keys");
    }

    #[test]
    fn keyless_conflicting_calls_pin_to_shard_zero() {
        let acc = Account::new(10);
        let coord = account_coord();
        let mapper = GroupMapper::new(&coord, 4);
        let w = WorkloadSpec::ops(200).with_update_ratio(1.0).with_window(8);
        let mut ing = Ingress::new(&w, &coord, mapper, 0, 1, 64);
        ing.free_left.fill(0); // withdraw-only
        let state = 1_000i128;
        // Leading only a non-zero shard: keyless withdraws (shard 0)
        // can never route here, so nothing is issued.
        let mut leads = vec![false; 4];
        leads[3] = true;
        assert!(ing.next(&acc, &state, &coord, &leads, &[0, 0, 0, 0]).is_none());
        // Leading shard 0 issues them.
        let mut leads0 = vec![false; 4];
        leads0[0] = true;
        assert!(ing.next(&acc, &state, &coord, &leads0, &[0, 0, 0, 0]).is_some());
    }

    #[test]
    fn per_session_stats_track_acks_and_latency() {
        let acc = Account::new(10);
        let coord = account_coord();
        let w = WorkloadSpec::ops(1_000).with_update_ratio(1.0).with_sessions(2).with_window(1);
        let mut ing = Ingress::new(&w, &coord, GroupMapper::identity(&coord), 0, 1, 64);
        let state = 1_000i128;
        let (a, _) = ing.next(&acc, &state, &coord, &[true], &[0]).expect("a");
        let (b, _) = ing.next(&acc, &state, &coord, &[true], &[0]).expect("b");
        ing.on_ack(a, 2_000);
        ing.on_ack(b, 4_000);
        let stats = ing.session_stats();
        assert_eq!(stats.len(), 2);
        assert!(stats.iter().all(|s| s.issued == 1 && s.acked == 1));
        let rts: Vec<u64> = stats.iter().map(|s| s.sum_rt_ns).collect();
        assert_eq!(rts.iter().sum::<u64>(), 6_000);
        assert!((stats[a as usize].mean_rt_us() - 2.0).abs() < 1e-9);
        assert_eq!(stats[a as usize].completed(), 1);
    }

    #[test]
    fn open_loop_gates_issue_on_released_arrivals() {
        let acc = Account::new(10);
        let coord = account_coord();
        let w = WorkloadSpec::ops(100).with_update_ratio(1.0).with_offered_load(1_000_000.0);
        let mut ing = Ingress::new(&w, &coord, GroupMapper::identity(&coord), 0, 1, 64);
        let state = 1_000i128;
        // No arrival has been released yet: the pump gets nothing even
        // though quota and window are wide open.
        assert!(ing.next(&acc, &state, &coord, &[true], &[0]).is_none());
        assert_eq!(ing.arrival_backlog(), 0);
        // Release everything due in the first 10ms (~10 at 1M ops/s/1 node).
        ing.release_arrivals(SimTime(10_000_000));
        let backlog = ing.arrival_backlog();
        assert!(backlog > 0, "10ms at 1M ops/s released no arrivals");
        let (_, p) = ing.next(&acc, &state, &coord, &[true], &[0]).expect("arrival pending");
        assert!(matches!(p, Planned::Update(_)));
        let at = ing.take_arrival().expect("arrival stamp");
        assert!(at <= SimTime(10_000_000), "arrival stamped in the future");
        assert_eq!(ing.arrival_backlog(), backlog - 1);
    }

    #[test]
    fn open_loop_arrivals_are_deterministic_and_budget_capped() {
        let coord = account_coord();
        let w = WorkloadSpec::ops(40).with_update_ratio(1.0).with_offered_load(2_000_000.0);
        let drain = || {
            let mut ing = Ingress::new(&w, &coord, GroupMapper::identity(&coord), 0, 1, 64);
            // Far future: every budgeted arrival is due.
            ing.release_arrivals(SimTime(u64::MAX));
            let mut ts = Vec::new();
            while let Some(t) = ing.take_arrival() {
                ts.push(t);
            }
            ts
        };
        let a = drain();
        // Generation stops at the node's op budget — offered load far
        // beyond capacity cannot grow the backlog without bound.
        assert_eq!(a.len(), 40);
        assert!(a.windows(2).all(|w| w[0] <= w[1]), "arrivals out of order");
        assert_eq!(a, drain(), "same seed, same Poisson arrival times");
    }
}
