//! Failure handling: what a replica does when its detector suspects a
//! peer.
//!
//! Three deterministic reactions, each keyed off the same
//! [`Membership`](crate::membership::Membership) snapshot so every
//! correct observer picks the same nodes:
//!
//! 1. **Reliable-broadcast recovery** — the lowest alive node reads the
//!    suspect's backup region and re-executes its pending broadcasts
//!    (`Route::RecoveryRead`, the agreement half of reliable
//!    broadcast).
//! 2. **Workload adoption** — the next alive node after the suspect (in
//!    ring order) adopts its remaining conflict-free quota, estimated
//!    from the suspect's observable progress.
//! 3. **Leader change** — for every group whose recognized leader is
//!    down, the lowest alive node starts an election (`election.rs`
//!    takes it from there).

use hamband_core::coord::MethodCategory;
use hamband_core::ids::{MethodId, Pid};
use hamband_core::object::WorkloadSupport;
use hamband_core::wire::Wire;
use rdma_sim::{NodeId, TraceEvent};

use crate::calls::Route;
use crate::codec::{parse_backup_slot, BACKUP_FREE};
use crate::driver::QuotaSplit;
use crate::replica::HambandNode;
use crate::transport::Transport;

impl<O> HambandNode<O>
where
    O: WorkloadSupport,
    O::Update: Wire,
{
    /// React to the failure detector (or a `Retired` announcement)
    /// suspecting `suspect`.
    pub(crate) fn on_suspect<T: Transport>(&mut self, ctx: &mut T, suspect: NodeId) {
        let node = self.me;
        ctx.emit(|| TraceEvent::FdSuspect { node, suspect });
        let members = self.fd.membership();
        // 1. Reliable-broadcast recovery: the lowest alive node reads
        //    the suspect's backup slots and re-executes pending writes.
        if members.lowest_alive(Some(suspect)) == self.me {
            self.post_recovery_read(ctx, suspect);
        }
        // 1b. Cascaded recovery: if the new suspect was itself the
        //     designated recoverer of an earlier suspect, that earlier
        //     recovery may have died with it — a committed conflicting
        //     call can then wait forever on a free call nobody
        //     re-broadcasts. Whoever inherits the duty re-reads the
        //     earlier suspect's backups; re-execution is idempotent
        //     (the same ring slots get the same bytes).
        for s in self.fd.suspected() {
            if s == suspect {
                continue;
            }
            // The recoverer of `s` before this suspicion: the lowest
            // node then alive, i.e. currently alive or `suspect`.
            let prev = (0..self.n)
                .map(NodeId)
                .find(|&q| q != s && (q == suspect || !self.fd.is_suspected(q)))
                .unwrap_or(self.me);
            if prev == suspect && members.lowest_alive(Some(s)) == self.me {
                self.post_recovery_read(ctx, s);
            }
        }
        // 2. Workload adoption: the next alive node picks up the
        //    suspect's remaining conflict-free quota.
        let adopter = members.next_alive_after(suspect);
        if adopter == self.me && !self.adopted[suspect.index()] && !self.workload_retired {
            self.adopted[suspect.index()] = true;
            let their = QuotaSplit::for_node(&self.workload, &self.coord, suspect.index(), self.n);
            let remaining: Vec<u64> = (0..self.coord.method_count())
                .map(|m| {
                    if matches!(
                        self.coord.category(MethodId(m)),
                        MethodCategory::Conflicting { .. }
                    ) {
                        return 0;
                    }
                    let planned = their.free[m];
                    let seen = self.applied.get(Pid(suspect.index()), MethodId(m));
                    planned.saturating_sub(seen)
                })
                .collect();
            // Query progress at the suspect is unobservable directly;
            // estimate it from its observable update progress (the
            // ingress interleaves both uniformly) and adopt the rest.
            let planned_updates: u64 =
                (0..self.coord.method_count()).map(|m| their.free[m]).sum();
            let seen_updates: u64 = (0..self.coord.method_count())
                .map(|m| self.applied.get(Pid(suspect.index()), MethodId(m)))
                .sum::<u64>()
                .min(planned_updates);
            let remaining_queries = (their.queries * (planned_updates - seen_updates))
                .checked_div(planned_updates)
                .unwrap_or(their.queries);
            self.ingress.adopt_free_quota(&remaining, remaining_queries);
        }
        // 3. Leader change for groups whose current leader is down —
        //    the new suspect, or an earlier suspect whose designated
        //    election starter only now emerges (e.g. the previous
        //    starter itself just got suspected). A halted node never
        //    runs for leadership: it could win but would never issue
        //    the group's remaining quota.
        for g in 0..self.engines.len() {
            let lv = NodeId(self.engines[g].leader_view.index());
            if (lv == suspect || self.fd.is_suspected(lv))
                && !self.halted
                && !self.workload_retired
                && !matches!(self.engines[g].role, crate::conf::Role::Candidate { .. })
                && members.lowest_alive(Some(lv)) == self.me
            {
                self.start_election(ctx, g);
            }
        }
        self.pump(ctx);
    }

    /// Post the RDMA read of `suspect`'s whole backup region (its
    /// memory stays readable after a CPU crash); the completion lands
    /// in [`Self::recover_backups`].
    fn post_recovery_read<T: Transport>(&mut self, ctx: &mut T, suspect: NodeId) {
        let size = self.layout.backup_slots() * self.layout.backup_slot(0).1;
        let wr = ctx.post_read(suspect, self.layout.backup, 0, size);
        self.wr_routes.insert(wr, Route::RecoveryRead { suspect });
    }

    /// Re-execute a suspected source's pending broadcasts from its
    /// backup slots (the agreement half of reliable broadcast).
    pub(crate) fn recover_backups<T: Transport>(
        &mut self,
        ctx: &mut T,
        suspect: NodeId,
        bytes: &[u8],
    ) {
        let (_, slot_size) = self.layout.backup_slot(0);
        for i in 0..self.layout.backup_slots() {
            let b = &bytes[i * slot_size..(i + 1) * slot_size];
            let Some((kind, group, seq, slot)) = parse_backup_slot(b) else {
                continue;
            };
            match kind {
                BACKUP_FREE => {
                    let ring_off = self.layout.free_ring_base(suspect)
                        + ((seq - 1) as usize % self.layout.free_cap()) * self.layout.entry_size();
                    for q in 0..self.n {
                        if NodeId(q) == suspect {
                            continue;
                        }
                        if q == self.me.index() {
                            ctx.local_write(self.layout.free_rings, ring_off, slot);
                        } else {
                            ctx.post_write(NodeId(q), self.layout.free_rings, ring_off, slot);
                        }
                    }
                }
                _ => {
                    let off = self.layout.summary_offset(group as usize, suspect);
                    for q in 0..self.n {
                        if NodeId(q) == suspect {
                            continue;
                        }
                        if q == self.me.index() {
                            ctx.local_write(self.layout.summaries, off, slot);
                        } else {
                            ctx.post_write(NodeId(q), self.layout.summaries, off, slot);
                        }
                    }
                }
            }
        }
        // The recovered slots were placed in our own copies with local
        // writes; fence them so a subsequent restart of *this* node does
        // not lose the re-executed broadcasts.
        ctx.fence_region(self.layout.free_rings);
        ctx.fence_region(self.layout.summaries);
    }
}
