//! CONF path: per-synchronization-group consensus engines.
//!
//! §3.3/§4: conflicting methods of one synchronization group are
//! serialized by a dedicated Mu-style consensus instance — one
//! [`GroupEngine`] per group, fully independent of every other group's.
//! The engine owns the group's `L`-ring reader, the node's view of the
//! group's leadership (epoch, promise, commit index), and a typed
//! [`Role`] state machine that makes illegal role/field combinations
//! unrepresentable: only a [`Leader`](Role::Leader) has ring writers, a
//! tail, pending acks, or an issue floor; only a
//! [`Candidate`](Role::Candidate) has an election tally.
//!
//! Role transitions (see `election.rs` for the message protocol):
//!
//! ```text
//!            suspicion of the leader, lowest-alive starter
//!  Follower ────────────────────────────────────────────▶ Candidate
//!      ▲                                                      │
//!      │ higher-epoch LeaderRequest / LeaderAnnounce          │ majority acks
//!      │ (depose)                                             ▼
//!   Leader ◀──────────── install (become_writer) ───── TakingOver
//!                          after ring catch-up
//! ```
//!
//! A `Candidate` that wins with the longest ring locally skips
//! `TakingOver` and installs directly. The engine methods that move
//! between roles are pure state-machine steps (no transport), so the
//! machine is unit-testable in isolation — see the tests at the bottom.
//!
//! The rest of this module is the node-side CONF path over a generic
//! [`Transport`]: issuing conflicting calls (leader only, gated by the
//! issue floor), applying committed ring entries, and retrying
//! permission-denied ring writes.

use std::collections::{BTreeMap, HashMap};

use hamband_core::ids::{MethodId, Pid};
use hamband_core::object::WorkloadSupport;
use hamband_core::wire::Wire;
use rdma_sim::{CompletionStatus, NodeId, RingKind, SimDuration, TraceEvent, WrId};

use crate::calls::Outstanding;
use crate::codec::Entry;
use crate::election::Election;
use crate::replica::{HambandNode, TAG_RETRY};
use crate::rings::{RingReader, RingWriter};
use crate::transport::Transport;

/// Leadership role of one node for one synchronization group.
#[derive(Debug)]
pub enum Role {
    /// Not leading: applies committed ring entries, learns the commit
    /// index from the group's commit cell.
    Follower,
    /// Running an election (this node is tallying `LeaderAck`s).
    Candidate {
        /// The in-flight tally.
        election: Election,
    },
    /// Won the election but still reading the ring suffix from the
    /// longest follower; not yet issuing or acking.
    TakingOver {
        /// The tail adopted from the election (catch-up target).
        max_tail: u64,
    },
    /// Leading the group: owns the ring writers and the commit index.
    Leader(LeaderState),
}

/// State that exists only while leading a group. Dropped wholesale on
/// deposition, so no stale leader field can leak into follower life.
#[derive(Debug)]
pub struct LeaderState {
    /// Per-target ring writers (`None` at our own slot).
    pub(crate) writers: Vec<Option<RingWriter>>,
    /// Entries appended so far (the group's global ordinal).
    pub(crate) tail: u64,
    /// No new conflicting calls are issued until our own reader has
    /// applied the ring through this sequence number. A fresh leader
    /// adopts the old tail before it has applied every entry below it;
    /// issuing against that incomplete view would approve calls the
    /// full history forbids (Lemma 1 needs the check view to contain
    /// every earlier ring entry).
    pub(crate) issue_floor: u64,
    /// Remote-ack counts per sequence number awaiting majority.
    pub(crate) pending_acks: BTreeMap<u64, usize>,
    /// seq → client call id awaiting commit.
    pub(crate) client_by_seq: HashMap<u64, u64>,
    /// Own uncommitted entries (suffix of the ring), oldest first.
    pub(crate) uncommitted: Vec<(u64, MethodId)>,
}

impl LeaderState {
    fn new(writers: Vec<Option<RingWriter>>, tail: u64, issue_floor: u64) -> Self {
        LeaderState {
            writers,
            tail,
            issue_floor,
            pending_acks: BTreeMap::new(),
            client_by_seq: HashMap::new(),
            uncommitted: Vec::new(),
        }
    }
}

/// One synchronization group's consensus state at one node.
///
/// Everything outside the `role` field is meaningful in
/// every role: the recognized leader, the epoch/promise pair, the
/// commit index (a deposed leader keeps its last known commit — its
/// successor adopts the max over a majority), and the group's ring
/// reader.
#[derive(Debug)]
pub struct GroupEngine {
    /// This node's reader over its local copy of the group's `L` ring.
    pub(crate) reader: RingReader,
    /// The leader this node currently recognizes.
    pub(crate) leader_view: Pid,
    /// Epoch of the leadership this node last participated in.
    pub(crate) epoch: u64,
    /// Highest epoch promised to any candidate (Paxos-style promise).
    pub(crate) promised: u64,
    /// Commit index as this node last knew it directly (followers
    /// additionally learn it from the commit cell).
    pub(crate) commit: u64,
    /// Last commit value pushed to followers (leader bookkeeping that
    /// deliberately survives deposition: a re-elected leader must wait
    /// out stale in-flight commit writes before pushing again).
    pub(crate) commit_written: u64,
    /// Outstanding commit-cell writes (same lifetime note as above).
    pub(crate) commit_writes_inflight: usize,
    /// Highest tail this node ever appended as a leader. Survives
    /// deposition: the local ring probe alone can under-report the
    /// tail when the ring has wrapped past the reader, so elections
    /// take the max with this.
    pub(crate) tail_hint: u64,
    /// The role state machine.
    pub(crate) role: Role,
}

impl GroupEngine {
    /// A fresh engine recognizing `leader`, reading the group's ring
    /// through `reader`. Starts as a [`Role::Follower`]; the initial
    /// leader installs itself via
    /// [`install_leader`](Self::install_leader) during setup.
    pub fn new(leader: Pid, reader: RingReader) -> Self {
        GroupEngine {
            reader,
            leader_view: leader,
            epoch: 1,
            promised: 1,
            commit: 0,
            commit_written: 0,
            commit_writes_inflight: 0,
            tail_hint: 0,
            role: Role::Follower,
        }
    }

    /// Whether this node currently leads the group.
    pub fn is_leader(&self) -> bool {
        matches!(self.role, Role::Leader(_))
    }

    /// Leader state, if leading.
    pub fn leader(&self) -> Option<&LeaderState> {
        match &self.role {
            Role::Leader(l) => Some(l),
            _ => None,
        }
    }

    pub(crate) fn leader_mut(&mut self) -> Option<&mut LeaderState> {
        match &mut self.role {
            Role::Leader(l) => Some(l),
            _ => None,
        }
    }

    /// Whether the leader may issue new conflicting calls: leading,
    /// and our own reader has caught up past the issue floor.
    pub fn accepting_issues(&self) -> bool {
        match &self.role {
            Role::Leader(l) => self.reader.next_seq() > l.issue_floor,
            _ => false,
        }
    }

    /// Become the group's leader with the given writers and adopted
    /// `tail`; new conflicting calls stay gated until the reader passes
    /// `issue_floor`.
    pub fn install_leader(
        &mut self,
        writers: Vec<Option<RingWriter>>,
        tail: u64,
        issue_floor: u64,
    ) {
        self.role = Role::Leader(LeaderState::new(writers, tail, issue_floor));
        self.tail_hint = tail;
    }

    /// Start an election: bump the promise, tally our own vote.
    /// `own_tail`/`own_commit` seed the maxima. Returns the epoch the
    /// candidacy runs under.
    pub fn begin_election(&mut self, me: NodeId, own_tail: u64, own_commit: u64) -> u64 {
        let epoch = self.promised + 1;
        self.promised = epoch;
        self.epoch = epoch;
        self.role = Role::Candidate {
            election: Election {
                epoch,
                acks: 1,
                max_tail: own_tail,
                max_tail_holder: me,
                max_commit: own_commit,
            },
        };
        epoch
    }

    /// Tally a `LeaderAck` (ignored unless we are a candidate in the
    /// matching epoch).
    pub fn on_leader_ack(&mut self, from: NodeId, epoch: u64, tail: u64, commit: u64) {
        if let Role::Candidate { election } = &mut self.role {
            if election.epoch == epoch {
                election.acks += 1;
                if tail > election.max_tail {
                    election.max_tail = tail;
                    election.max_tail_holder = from;
                }
                election.max_commit = election.max_commit.max(commit);
            }
        }
    }

    /// If the candidacy has a majority, win it: adopt the election's
    /// commit maximum, recognize ourselves, and return the final tally
    /// (the caller decides between direct install and ring catch-up).
    /// The role is parked at `Follower` until the caller installs or
    /// begins the takeover.
    pub fn try_win(&mut self, majority: usize, me: Pid) -> Option<Election> {
        let Role::Candidate { election } = &self.role else { return None };
        if election.acks < majority {
            return None;
        }
        let Role::Candidate { election } =
            std::mem::replace(&mut self.role, Role::Follower)
        else {
            unreachable!("matched above");
        };
        self.leader_view = me;
        self.epoch = election.epoch;
        self.commit = election.max_commit.max(self.commit);
        self.commit_written = 0;
        Some(election)
    }

    /// Enter ring catch-up toward `max_tail` (between winning and
    /// installing).
    pub fn begin_takeover(&mut self, max_tail: u64) {
        self.role = Role::TakingOver { max_tail };
    }

    /// Step down: drop the leader state (writers, acks, clients) and
    /// return it so the node can abort the orphaned client calls.
    /// No-op in any other role.
    pub fn depose_leader(&mut self) -> Option<LeaderState> {
        if self.is_leader() {
            match std::mem::replace(&mut self.role, Role::Follower) {
                Role::Leader(l) => Some(l),
                _ => unreachable!("checked above"),
            }
        } else {
            None
        }
    }

    /// Promise `epoch` to `candidate` (a `LeaderRequest` we accept):
    /// records the promise and recognizes the candidate. The caller
    /// deposes separately if we were the leader.
    pub fn promise(&mut self, epoch: u64, candidate: Pid) {
        self.promised = epoch;
        self.leader_view = candidate;
    }

    /// Advance the commit index over every next-in-line sequence that
    /// reached `need` remote acks. Leader only; returns the new commit
    /// index (unchanged for other roles).
    pub fn advance_commit_index(&mut self, need: usize) -> u64 {
        if let Role::Leader(l) = &mut self.role {
            loop {
                let next = self.commit + 1;
                match l.pending_acks.get(&next) {
                    Some(&count) if count >= need => {
                        l.pending_acks.remove(&next);
                        self.commit = next;
                    }
                    _ => break,
                }
            }
        }
        self.commit
    }

    /// The group tail as this node best knows it (leader: the real
    /// tail; otherwise the highest tail it ever appended).
    pub fn known_tail(&self) -> u64 {
        match &self.role {
            Role::Leader(l) => l.tail,
            _ => self.tail_hint,
        }
    }
}

// ---------------------------------------------------------------------
// Node-side CONF path (issue, apply, write completions, retries)
// ---------------------------------------------------------------------

impl<O> HambandNode<O>
where
    O: WorkloadSupport,
    O::Update: Wire,
{
    /// Install the startup permission grants for every group (only the
    /// initial leader may write a group's ring and commit cell — the Mu
    /// permission discipline) and become the writer of any group we
    /// lead from the start.
    pub(crate) fn setup_conf_groups<T: Transport>(&mut self, ctx: &mut T) {
        for g in 0..self.engines.len() {
            let leader = self.engines[g].leader_view;
            for q in 0..self.n {
                ctx.set_write_permission(self.layout.conf[g], NodeId(q), Pid(q) == leader);
            }
            if leader.index() == self.me.index() {
                self.become_writer(g, 0, 0);
            }
        }
    }

    /// Install ourselves as `g`'s leader: build one ring writer per
    /// peer, all adopting `tail`.
    pub(crate) fn become_writer(&mut self, g: usize, tail: u64, issue_floor: u64) {
        let mut writers = Vec::with_capacity(self.n);
        for q in 0..self.n {
            if q == self.me.index() {
                writers.push(None);
            } else {
                let mut w = RingWriter::new(
                    RingKind::Conf,
                    NodeId(q),
                    self.layout.conf[g],
                    self.layout.conf_ring_base(),
                    self.layout.conf_cap(),
                    self.layout.entry_size(),
                    self.layout.heads,
                    self.layout.conf_head_offset(g),
                )
                .with_max_batch(self.cfg.max_batch);
                w.adopt_tail(tail);
                writers.push(Some(w));
            }
        }
        self.engines[g].install_leader(writers, tail, issue_floor);
    }

    /// CONF: append to the group's `L` rings; apply at commit.
    pub(crate) fn issue_conf<T: Transport>(
        &mut self,
        ctx: &mut T,
        update: O::Update,
        method: MethodId,
        g: usize,
        session: u32,
    ) {
        if !self.permissible_now(&update) {
            self.reject(method, session);
            return;
        }
        ctx.consume(ctx.latency().apply_cost);
        let deps = self.applied.project(self.coord.dependencies(method));
        let (call_id, rid) = self.mint_call(method);
        // Speculative view gains the call; σ/mat only at commit.
        if self.spec_mat.is_none() {
            self.refresh_mat();
            self.spec_mat = Some(self.mat.clone());
        }
        if let Some(sm) = self.spec_mat.as_mut() {
            self.spec.apply_mut(sm, &update);
        }

        self.speculative_store.push(update.clone());
        let entry = Entry { rid, update, deps };
        let engine = &mut self.engines[g];
        let leader = engine.leader_mut().expect("issue_conf only runs at the leader");
        let seq = leader.tail + 1;
        leader.tail = seq;
        leader.uncommitted.push((seq, method));
        engine.tail_hint = seq;
        let slot = entry.to_slot(seq, self.layout.entry_size());
        // Local ring copy (leader's log for catch-up by successors).
        let ring_off = self.layout.conf_ring_base()
            + ((seq - 1) as usize % self.layout.conf_cap()) * self.layout.entry_size();
        ctx.local_write(self.layout.conf[g], ring_off, &slot);
        // Persist-before-propose: the leader's log copy is the catch-up
        // source for successors, so the slot must survive a restart
        // before any follower can hold it.
        ctx.fence_region(self.layout.conf[g]);
        let leader = self.engines[g].leader_mut().expect("still leading");
        for w in leader.writers.iter_mut().flatten() {
            let s = w.append(ctx, &entry);
            debug_assert_eq!(s, seq, "conf rings advance with the group ordinal");
        }
        leader.pending_acks.insert(seq, 0);
        leader.client_by_seq.insert(seq, call_id);
        self.outstanding.insert(
            call_id,
            Outstanding {
                issued_at: self.pending_arrival.take().unwrap_or_else(|| ctx.now()),
                method,
                session,
                phase: rdma_sim::Phase::Conf,
                conf: Some((g, seq)),
                // Acked when the commit index passes this seq.
                ack_remaining: usize::MAX,
                total_remaining: 0,
                backup_slot: None,
            },
        );
        if self.majority_remote() == 0 {
            // Single-node cluster: commit immediately.
            self.advance_commit(ctx, g);
        }
    }

    /// Apply committed `L`-ring entries, gated by the commit index and
    /// by each entry's dependency map.
    pub(crate) fn poll_conf<T: Transport>(&mut self, ctx: &mut T) {
        for g in 0..self.engines.len() {
            // Followers learn the commit index from the commit cell;
            // the leader knows it directly.
            let commit = if self.engines[g].is_leader() {
                self.engines[g].commit
            } else {
                let cell = ctx.local(self.layout.conf[g], self.layout.conf_commit_offset(), 8);
                u64::from_le_bytes(cell.try_into().expect("8 bytes"))
            };
            loop {
                let next = self.engines[g].reader.next_seq();
                if next > commit {
                    break;
                }
                let entry = self.engines[g].reader.peek::<O::Update>(ctx);
                let Some(entry) = entry else { break };
                if !self.applied.satisfies(&entry.deps) {
                    break;
                }
                ctx.consume(ctx.latency().apply_cost);
                let method = self.spec.method_of(&entry.update);
                self.spec.apply_mut(&mut self.sigma, &entry.update);
                // Own uncommitted entry reaching commit: it is already
                // in the speculative view; only σ/mat advance.
                let own_head = self.engines[g]
                    .leader()
                    .and_then(|l| l.uncommitted.first())
                    .is_some_and(|&(s, _)| s == next);
                if own_head {
                    let leader = self.engines[g].leader_mut().expect("own_head implies leader");
                    leader.uncommitted.remove(0);
                    self.speculative_pop();
                    if !self.mat_dirty {
                        self.spec.apply_mut(&mut self.mat, &entry.update);
                    }
                    if self.no_uncommitted() {
                        self.spec_mat = None;
                    }
                } else {
                    self.apply_to_views(&entry.update);
                }
                self.applied.increment(entry.rid.issuer, method);
                if entry.rid.issuer.index() != self.me.index() {
                    self.metrics.remote_applied += 1;
                }
                self.metrics.last_apply = ctx.now();
                // Durability seam: log+fence the applied entry before
                // the head publication (same discipline as the free
                // path).
                if self.log.is_some() {
                    let slot = self.engines[g].reader.raw_slot(ctx, next).to_vec();
                    self.log_and_fence(
                        ctx,
                        &crate::persist::LogRecord::ConfSlot { group: g as u32, slot },
                    );
                }
                // The entry's issuer is the leader that appended it.
                self.engines[g].reader.advance(ctx, NodeId(entry.rid.issuer.index()));
            }
        }
    }

    /// Feed an `L`-ring append completion to whichever group's writer
    /// posted it; returns `true` if one claimed it.
    pub(crate) fn on_conf_completion<T: Transport>(
        &mut self,
        ctx: &mut T,
        wr: WrId,
        status: CompletionStatus,
        data: Option<&[u8]>,
    ) -> bool {
        for g in 0..self.engines.len() {
            let mut result = None;
            if let Some(leader) = self.engines[g].leader_mut() {
                for w in leader.writers.iter_mut().flatten() {
                    if let Some(done) = w.on_completion(ctx, wr, status, data) {
                        result = Some((done, w.target()));
                        break;
                    }
                }
            }
            if let Some((done, target)) = result {
                for seq in done.seqs() {
                    self.on_conf_write_done(ctx, g, target, seq, done.status);
                }
                return true;
            }
        }
        false
    }

    pub(crate) fn on_conf_write_done<T: Transport>(
        &mut self,
        ctx: &mut T,
        g: usize,
        target: NodeId,
        seq: u64,
        status: CompletionStatus,
    ) {
        if !status.is_success() {
            // The target has not granted us write permission (it may
            // simply not have processed our election yet, or a newer
            // leader exists — the latter reaches us as a higher-epoch
            // message and deposes us there). Retry until either happens;
            // the entry can still commit through the other followers.
            // Suspected peers are retried too: a suspended-but-alive
            // node still grants permission once it sees the election.
            if matches!(self.engines[g].role, Role::Leader(_) | Role::TakingOver { .. }) {
                self.conf_retries.push((g, target, seq));
                if !self.retry_timer_armed {
                    self.retry_timer_armed = true;
                    ctx.set_timer(SimDuration::micros(5), TAG_RETRY);
                }
            }
            return;
        }
        if let Some(leader) = self.engines[g].leader_mut() {
            if let Some(count) = leader.pending_acks.get_mut(&seq) {
                *count += 1;
            }
        }
        self.advance_commit(ctx, g);
    }

    /// Re-post permission-denied ring writes (rewrites of the leader's
    /// local ring copy). Entries of groups we no longer lead are
    /// dropped — the new leader's rebroadcast covers them.
    pub(crate) fn run_retries<T: Transport>(&mut self, ctx: &mut T) {
        self.retry_timer_armed = false;
        let retries = std::mem::take(&mut self.conf_retries);
        for (g, target, seq) in retries {
            if !self.engines[g].is_leader() {
                continue;
            }
            let off = self.layout.conf_ring_base()
                + ((seq - 1) as usize % self.layout.conf_cap()) * self.layout.entry_size();
            let slot = ctx.local(self.layout.conf[g], off, self.layout.entry_size()).to_vec();
            if let Some(leader) = self.engines[g].leader_mut() {
                if let Some(w) = leader.writers[target.index()].as_mut() {
                    w.rewrite(ctx, seq, slot);
                }
            }
        }
    }

    /// Step down from leading `g` after a higher-epoch leader emerged.
    pub(crate) fn depose<T: Transport>(&mut self, ctx: &mut T, g: usize) {
        let Some(dropped) = self.engines[g].depose_leader() else { return };
        let (node, epoch) = (self.me, self.engines[g].promised);
        ctx.emit(|| TraceEvent::Deposed { group: g, node, epoch });
        // Abort unacknowledged conflicting calls: their entries may or
        // may not survive into the new leader's log; the speculative
        // view simply vanishes (σ and mat were never touched).
        let orphans: Vec<u64> = dropped.client_by_seq.values().copied().collect();
        self.conf_retries.retain(|&(rg, _, _)| rg != g);
        self.speculative_clear();
        self.spec_mat = None;
        for cid in orphans {
            if let Some(o) = self.outstanding.remove(&cid) {
                self.metrics.rejected += 1;
                self.ingress.on_abort(o.session);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdma_sim::RegionId;

    fn engine() -> GroupEngine {
        let reader =
            RingReader::new(RingKind::Conf, RegionId(0), 8, 64, 64, RegionId(1), 0);
        GroupEngine::new(Pid(0), reader)
    }

    fn writers(n: usize, me: usize) -> Vec<Option<RingWriter>> {
        (0..n)
            .map(|q| {
                (q != me).then(|| {
                    RingWriter::new(
                        RingKind::Conf,
                        NodeId(q),
                        RegionId(0),
                        8,
                        64,
                        64,
                        RegionId(1),
                        0,
                    )
                })
            })
            .collect()
    }

    #[test]
    fn follower_to_candidate_to_leader_on_suspicion() {
        let mut e = engine();
        assert!(matches!(e.role, Role::Follower));
        assert!(!e.accepting_issues());

        // The leader is suspected; we start an election.
        let epoch = e.begin_election(NodeId(1), 5, 3);
        assert_eq!(epoch, 2);
        assert!(matches!(e.role, Role::Candidate { .. }));
        assert!(!e.is_leader());

        // One ack short of a 3-node majority (need 2, have our own 1).
        assert!(e.try_win(2, Pid(1)).is_none());
        e.on_leader_ack(NodeId(2), epoch, 7, 4);
        let won = e.try_win(2, Pid(1)).expect("majority reached");
        assert_eq!(won.max_tail, 7, "the longer follower log wins");
        assert_eq!(won.max_tail_holder, NodeId(2));
        assert_eq!(e.commit, 4, "commit adopted from the tally max");
        assert_eq!(e.leader_view, Pid(1));
        assert_eq!(e.epoch, epoch);

        // Our log was shorter: catch up, then install.
        e.begin_takeover(won.max_tail);
        assert!(matches!(e.role, Role::TakingOver { max_tail: 7 }));
        assert!(!e.accepting_issues());
        e.install_leader(writers(3, 1), won.max_tail, won.max_tail);
        assert!(e.is_leader());
    }

    #[test]
    fn stale_epoch_acks_are_ignored() {
        let mut e = engine();
        let epoch = e.begin_election(NodeId(0), 0, 0);
        e.on_leader_ack(NodeId(1), epoch - 1, 99, 99);
        assert!(e.try_win(2, Pid(0)).is_none(), "stale ack must not count");
        let Role::Candidate { election } = &e.role else { panic!("still a candidate") };
        assert_eq!(election.acks, 1);
        assert_eq!(election.max_tail, 0, "stale tail must not poison the tally");
    }

    #[test]
    fn depose_on_higher_epoch_drops_leader_state_wholesale() {
        let mut e = engine();
        e.install_leader(writers(3, 0), 4, 0);
        let l = e.leader_mut().unwrap();
        l.pending_acks.insert(5, 1);
        l.client_by_seq.insert(5, 42);
        l.uncommitted.push((5, MethodId(0)));

        // A higher-epoch LeaderRequest arrives: promise and depose.
        e.promise(7, Pid(2));
        let dropped = e.depose_leader().expect("was leading");
        assert!(matches!(e.role, Role::Follower));
        assert_eq!(e.promised, 7);
        assert_eq!(e.leader_view, Pid(2));
        assert_eq!(dropped.client_by_seq.get(&5), Some(&42), "orphans surface");
        assert!(e.leader().is_none(), "no leader field survives deposition");
        assert_eq!(e.tail_hint, 4, "tail hint survives for future elections");
        assert!(e.depose_leader().is_none(), "deposing a follower is a no-op");
    }

    #[test]
    fn issue_floor_gates_until_reader_catches_up() {
        let mut e = engine();
        // Takeover adopted tail 6: reader is at seq 1, floor at 6.
        e.install_leader(writers(3, 0), 6, 6);
        assert!(e.is_leader());
        assert!(
            !e.accepting_issues(),
            "a fresh takeover must not issue against an incomplete view"
        );
        // Simulate the reader applying through the floor.
        e.reader.skip_to_for_test(6);
        assert!(e.accepting_issues(), "floor passed: issuing resumes");
        // An original leader starts with floor 0 and issues at once.
        let mut e2 = engine();
        e2.install_leader(writers(3, 0), 0, 0);
        assert!(e2.accepting_issues());
    }

    #[test]
    fn advance_commit_requires_contiguous_majorities() {
        let mut e = engine();
        e.install_leader(writers(3, 0), 0, 0);
        let l = e.leader_mut().unwrap();
        l.pending_acks.insert(1, 1);
        l.pending_acks.insert(2, 0);
        l.pending_acks.insert(3, 1);
        assert_eq!(e.advance_commit_index(1), 1, "seq 2 lacks acks: stop there");
        let l = e.leader_mut().unwrap();
        *l.pending_acks.get_mut(&2).unwrap() = 1;
        assert_eq!(e.advance_commit_index(1), 3, "gap filled: advance through 3");
        assert_eq!(e.advance_commit_index(1), 3, "idempotent with no new acks");
    }
}
