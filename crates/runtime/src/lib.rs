//! # hamband-runtime — the Hamband system of §4, over simulated RDMA
//!
//! This crate implements the runtime the paper describes, against the
//! one-sided verbs of [`rdma_sim`]:
//!
//! * [`codec`] — call serialization, ring-entry slots with canary
//!   bytes, and seqlock-versioned summary slots;
//! * [`rings`] — single-writer single-reader ring buffers with
//!   one-sided flow control (remote reads of the reader's head);
//! * [`heartbeat`] — heartbeat counters and the pull failure detector;
//! * [`layout`] — the registered-memory map every replica shares;
//! * [`replica`] — [`replica::HambandNode`], the full per-node runtime:
//!   REDUCE/FREE/CONF issue paths, dependency-gated buffer application,
//!   reliable broadcast with backup-slot recovery, and a Mu-style
//!   consensus per synchronization group (permission-based leader
//!   exclusion, majority commit, leader change with ring catch-up);
//! * [`baseline_msg`] — the message-passing op-based CRDT baseline;
//! * [`driver`] / [`metrics`] / [`harness`] — workload generation and
//!   the measurement harness producing the paper's throughput and
//!   response-time numbers (the Mu-SMR baseline is the same runtime
//!   with a complete conflict relation, per §3.2's observation that
//!   linearizable types are WRDTs with a complete conflict relation).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline_msg;
pub mod codec;
pub mod config;
pub mod driver;
pub mod harness;
pub mod heartbeat;
pub mod layout;
pub mod messages;
pub mod metrics;
pub mod replica;
pub mod rings;

/// Global switch for the runtime's diagnostic trace lines.
///
/// Off by default; flip it programmatically from a harness or test:
///
/// ```
/// hamband_runtime::set_trace(true);
/// hamband_runtime::set_trace(false);
/// ```
///
/// (A deliberate design choice over an environment variable: per-event
/// environment reads take a process-wide lock on the hot path.)
pub static TRACE: std::sync::atomic::AtomicBool = std::sync::atomic::AtomicBool::new(false);

/// Enable or disable runtime diagnostic tracing (see [`TRACE`]).
pub fn set_trace(on: bool) {
    TRACE.store(on, std::sync::atomic::Ordering::Relaxed);
}

pub(crate) fn trace_enabled() -> bool {
    TRACE.load(std::sync::atomic::Ordering::Relaxed)
}

pub use baseline_msg::MsgCrdtNode;
pub use config::RuntimeConfig;
pub use driver::Workload;
pub use harness::{run_hamband, run_msg, smr_coord, RunConfig, System};
pub use layout::Layout;
pub use metrics::{NodeMetrics, RunReport};
pub use replica::HambandNode;
