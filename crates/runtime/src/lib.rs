//! # hamband-runtime — the Hamband system of §4, over simulated RDMA
//!
//! This crate implements the runtime the paper describes, against the
//! one-sided verbs of [`rdma_sim`]:
//!
//! * [`codec`] — call serialization, ring-entry slots with canary
//!   bytes, and seqlock-versioned summary slots;
//! * [`rings`] — single-writer single-reader ring buffers with
//!   one-sided flow control (remote reads of the reader's head);
//! * [`heartbeat`] — heartbeat counters and the pull failure detector
//!   (alive-set arithmetic lives in [`membership`]);
//! * [`layout`] — the registered-memory map every replica shares;
//! * [`transport`] — the [`Transport`] trait the whole runtime is
//!   generic over: one-sided verbs, messaging, timers, permissions and
//!   trace hooks, implemented by the simulator's `Ctx`, by the
//!   in-process [`loopback`] backend, and by the [`threaded`] backend
//!   (one OS thread per replica over process-shared atomic memory,
//!   real wall-clock timers);
//! * [`replica`] — [`replica::HambandNode`], the per-node orchestrator
//!   over the protocol modules: [`reduce`] / [`free`] / [`conf`] issue
//!   paths (with [`commit`] advancement, [`election`] and takeover,
//!   failure [`recovery`]), the shared call lifecycle in [`calls`], the
//!   view discipline in [`views`], and typed [`status`] snapshots —
//!   reliable broadcast with backup-slot recovery and one Mu-style
//!   [`conf::GroupEngine`] per synchronization group (permission-based
//!   leader exclusion, majority commit, leader change with ring
//!   catch-up);
//! * [`persist`] — the durability seam: which state is *hard* (survives
//!   a crash-restart: ring slots, summary slots, consensus epoch/vote/
//!   commit) vs *soft*, the versioned persist-log format with explicit
//!   fence points, and — in [`rejoin`] — the idempotent recovery pass a
//!   restarted node runs before rejoining the cluster;
//! * [`baseline_msg`] — the message-passing op-based CRDT baseline;
//! * [`chaos`] — deterministic chaos campaigns: randomized fault
//!   schedules checked for convergence, integrity, and trace
//!   invariants, with ddmin-style shrinking of failing schedules;
//! * [`driver`] / [`ingress`] / [`metrics`] / [`harness`] — the
//!   [`WorkloadSpec`] client-load description, the flat-combining
//!   session ingress, and the measurement harness producing the
//!   paper's throughput, response-time, and per-session fairness
//!   numbers (the Mu-SMR baseline is the same runtime with a complete
//!   conflict relation, per §3.2's observation that linearizable types
//!   are WRDTs with a complete conflict relation).
//!
//! ## Running an experiment
//!
//! The harness entry point is [`Runner`]: pick a [`System`], build a
//! [`RunConfig`] with the `with_*` builders, and run it against an
//! object spec and its coordination spec:
//!
//! ```
//! use hamband_runtime::{RunConfig, Runner, System, TraceMode, WorkloadSpec};
//! use hamband_types::Counter;
//!
//! let c = Counter::default();
//! let config = RunConfig::for_nodes(3)
//!     .with_workload(WorkloadSpec::ops(300).with_update_ratio(0.5))
//!     .with_seed(7)
//!     .with_trace(TraceMode::Collect);
//! let outcome = Runner::new(System::Hamband, config).run(&c, &c.coord_spec());
//!
//! assert!(outcome.report.converged);
//! // Structured protocol events, in order (TraceMode::Collect):
//! assert!(!outcome.events.is_empty());
//! // Machine-readable report with per-phase p50/p90/p99 latencies:
//! let json = outcome.report.to_json();
//! assert!(json.contains("\"phases\""));
//! ```
//!
//! ## Serving many clients per replica
//!
//! Each node's client load is described by a [`WorkloadSpec`]: op
//! count, update/query mix, key skew, and — via
//! [`WorkloadSpec::with_sessions`] — how many independent client
//! sessions the node serves. Sessions are flat-combined by the
//! replica's pump (see [`ingress`]), so a node can serve thousands of
//! users while the fabric still sees one combined, write-coalesced
//! stream:
//!
//! ```
//! use hamband_runtime::{RunConfig, Runner, System, WorkloadSpec};
//! use hamband_types::Counter;
//!
//! let c = Counter::default();
//! let spec = WorkloadSpec::ops(2_000).with_sessions(250).with_window(2);
//! let outcome =
//!     Runner::new(System::Hamband, RunConfig::new(3, spec)).run(&c, &c.coord_spec());
//! let fairness = outcome.report.fairness.as_ref().expect("multi-session run");
//! assert_eq!(fairness.sessions, 750); // 250 per node × 3 nodes
//! assert!(outcome.report.converged);
//! ```
//!
//! The JSON report has a stable key order, e.g.:
//!
//! ```json
//! {"system": "hamband", "nodes": 3, "total_calls": 300, ...,
//!  "phases": {"free": {"count": 50, "p50_us": 4.0, "p90_us": 6.0,
//!             "p99_us": 8.0, ...}, "query": {...}}}
//! ```
//!
//! ## Observability
//!
//! Protocol-level observability is structured: the simulator delivers
//! typed [`TraceEvent`]s (ring appends/applies, summary writes, acks,
//! commit advances, leader changes, failure suspicions) to a pluggable
//! per-run [`rdma_sim::TraceSink`], selected per run via
//! [`RunConfig::with_trace`]. Latencies are recorded in log-scale
//! [`LatencyHistogram`]s per method and per protocol phase
//! ([`rdma_sim::Phase`]), summarized as p50/p90/p99/max in
//! [`RunReport`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backends;
pub mod baseline_msg;
pub mod calls;
pub mod chaos;
pub mod codec;
pub mod commit;
pub mod conf;
pub mod config;
pub mod driver;
pub mod election;
pub mod free;
pub mod harness;
pub mod heartbeat;
pub mod ingress;
pub mod layout;
pub mod loopback;
pub mod membership;
pub mod messages;
pub mod metrics;
pub mod persist;
pub mod recovery;
pub mod reduce;
pub mod rejoin;
pub mod replica;
pub mod rings;
pub mod status;
pub mod threaded;
pub mod transport;
pub mod views;

pub use baseline_msg::MsgCrdtNode;
pub use chaos::{run_case, run_seed, shrink, shrink_case, CaseReport, ChaosOptions, Violation};
pub use conf::{GroupEngine, LeaderState, Role};
pub use config::RuntimeConfig;
pub use driver::{Planned, QuotaSplit, WorkloadSpec};
pub use harness::{Backend, NodeEndState, RunConfig, RunOutcome, Runner, System, TraceMode};
pub use ingress::{ClientSession, Ingress, SessionStats};
pub use layout::Layout;
pub use loopback::{LoopbackCluster, LoopbackCtx};
pub use membership::Membership;
pub use metrics::{
    FairnessSummary, LatencyHistogram, LatencySummary, NodeMetrics, RunReport,
};
pub use persist::{DurabilityMode, LogRecord, NodeLog};
pub use replica::HambandNode;
pub use status::{GroupStatus, NodeStatus, RoleKind};
pub use threaded::ThreadedCluster;
pub use transport::Transport;

// Trace vocabulary, re-exported so harness consumers need not depend on
// `rdma_sim` directly.
pub use rdma_sim::{Phase, RingKind, TraceEvent, TraceRecord, TraceSink};

// Workload vocabulary from the core crate, re-exported so experiment
// code can configure key skew without depending on `hamband_core`.
pub use hamband_core::object::KeySkew;
