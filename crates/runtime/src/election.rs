//! Leader change for the CONF path: elections, promises, ring
//! catch-up, and takeover.
//!
//! When a group's recognized leader is suspected, the lowest alive node
//! starts an election (`recovery` decides *who*; this module runs it):
//! it bumps the group's epoch, revokes everyone's write permission but
//! its own, and asks every unsuspected peer for a `LeaderAck` carrying
//! the peer's landed ring tail and commit index. With a majority of
//! acks the candidate adopts the maximum commit, reads any missing ring
//! suffix from the follower with the longest log
//! (`Route::CatchupRead`), rebroadcasts the uncommitted window so all
//! ring copies converge, and announces itself. Losers and late peers
//! depose themselves on the higher-epoch `LeaderRequest` or
//! `LeaderAnnounce`.
//!
//! The tally lives in [`Election`], owned by the engine's
//! [`Candidate`](crate::conf::Role::Candidate) role. The pure
//! state-machine steps (tallying, winning, takeover transitions) are on
//! [`GroupEngine`](crate::conf::GroupEngine); this module drives them
//! over the [`Transport`].

use hamband_core::ids::Pid;
use hamband_core::object::WorkloadSupport;
use hamband_core::wire::Wire;
use rdma_sim::{NodeId, TraceEvent};

use crate::calls::Route;
use crate::codec::slot_ready;
use crate::conf::Role;
use crate::messages::ControlMsg;
use crate::replica::HambandNode;
use crate::transport::Transport;

/// An in-flight candidacy: the running tally of `LeaderAck`s for one
/// epoch, tracking the longest follower log and highest commit seen.
#[derive(Debug)]
pub struct Election {
    pub(crate) epoch: u64,
    pub(crate) acks: usize,
    pub(crate) max_tail: u64,
    pub(crate) max_tail_holder: NodeId,
    pub(crate) max_commit: u64,
}

impl<O> HambandNode<O>
where
    O: WorkloadSupport,
    O::Update: Wire,
{
    /// Start an election for group `g`: vote for ourselves (grant our
    /// own permission, tally our own tail/commit) and solicit acks from
    /// every unsuspected peer.
    pub(crate) fn start_election<T: Transport>(&mut self, ctx: &mut T, g: usize) {
        // Vote for ourselves: grant our own permission and record tail.
        for q in 0..self.n {
            ctx.set_write_permission(self.layout.conf[g], NodeId(q), q == self.me.index());
        }
        let own_tail = self.landed_tail(ctx, g);
        let own_commit = self.known_commit(ctx, g);
        let epoch = self.engines[g].begin_election(self.me, own_tail, own_commit);
        // The candidacy's epoch is hard state: persist it before any
        // peer can act on the request.
        self.log_group_hard(ctx, g);
        let msg = ControlMsg::LeaderRequest { group: g as u32, epoch };
        for q in 0..self.n {
            if q != self.me.index() && !self.fd.is_suspected(NodeId(q)) {
                ctx.send(NodeId(q), msg.to_bytes().into());
            }
        }
        self.maybe_win(ctx, g);
    }

    /// Highest fully landed entry sequence in our copy of group `g`'s
    /// ring.
    pub(crate) fn landed_tail<T: Transport>(&self, ctx: &mut T, g: usize) -> u64 {
        let engine = &self.engines[g];
        let mut tail = engine.reader.applied();
        for _ in 0..self.layout.conf_cap() {
            let probe = tail + 1;
            let off = self.layout.conf_ring_base()
                + ((probe - 1) as usize % self.layout.conf_cap()) * self.layout.entry_size();
            let slot = ctx.local(self.layout.conf[g], off, self.layout.entry_size());
            // The seq+canary prefix check is the landing test; no need
            // to decode the payload just to probe the tail.
            if slot_ready(slot, probe) {
                tail = probe;
            } else {
                break;
            }
        }
        // The local probe under-reports once the ring has wrapped past
        // the reader; an ex-leader additionally knows what it appended.
        tail.max(engine.tail_hint)
    }

    pub(crate) fn known_commit<T: Transport>(&self, ctx: &mut T, g: usize) -> u64 {
        let cell = ctx.local(self.layout.conf[g], self.layout.conf_commit_offset(), 8);
        u64::from_le_bytes(cell.try_into().expect("8 bytes")).max(self.engines[g].commit)
    }

    /// Dispatch a two-sided control message (the protocol's slow path).
    pub(crate) fn on_control<T: Transport>(&mut self, ctx: &mut T, from: NodeId, msg: ControlMsg) {
        match msg {
            ControlMsg::LeaderRequest { group, epoch } => {
                let g = group as usize;
                if epoch > self.engines[g].promised {
                    // Revoke the old leader, grant the candidate.
                    for q in 0..self.n {
                        ctx.set_write_permission(self.layout.conf[g], NodeId(q), q == from.index());
                    }
                    self.engines[g].promise(epoch, Pid(from.index()));
                    self.join_epoch[g] = self.join_epoch[g].max(epoch);
                    // The promise is a vote: persist it before the ack
                    // leaves this node, so a restart cannot un-promise.
                    self.log_group_hard(ctx, g);
                    if self.engines[g].is_leader() {
                        // We were the old leader and just got replaced.
                        self.depose(ctx, g);
                    }
                    let tail = self.landed_tail(ctx, g);
                    let commit = self.known_commit(ctx, g);
                    let ack = ControlMsg::LeaderAck { group, epoch, tail, commit };
                    ctx.send(from, ack.to_bytes().into());
                }
            }
            ControlMsg::LeaderAck { group, epoch, tail, commit } => {
                let g = group as usize;
                self.engines[g].on_leader_ack(from, epoch, tail, commit);
                self.maybe_win(ctx, g);
            }
            ControlMsg::Retired => {
                // Workload-level crash-stop announcement: from now on
                // treat the sender exactly like a detected crash, and
                // keep the suspicion sticky even though its heartbeat
                // counter still moves.
                if self.fd.mark_workload_dead(from) {
                    self.on_suspect(ctx, from);
                }
            }
            ControlMsg::JoinRequest => {
                // A restarted peer asks for the current leadership map:
                // reply with our promise and leader view per group. The
                // joiner's `join_epoch` gate keeps stale acks harmless,
                // so no consistency coordination is needed here.
                for g in 0..self.engines.len() {
                    let ack = ControlMsg::JoinAck {
                        group: g as u32,
                        epoch: self.engines[g].promised,
                        leader: self.engines[g].leader_view.index() as u32,
                    };
                    ctx.send(from, ack.to_bytes().into());
                }
            }
            ControlMsg::JoinAck { group, epoch, leader } => {
                let g = group as usize;
                if g < self.engines.len() && epoch >= self.join_epoch[g] {
                    self.join_epoch[g] = epoch;
                    let leader = leader as usize;
                    // Adopt the freshest view seen so far. The promise
                    // only ever rises: a replayed pre-crash promise may
                    // exceed the current winning epoch (a candidacy that
                    // died with the crash) and must not be lowered.
                    self.engines[g].promised = self.engines[g].promised.max(epoch);
                    self.engines[g].epoch = self.engines[g].epoch.max(epoch);
                    self.engines[g].leader_view = Pid(leader);
                    self.log_group_hard(ctx, g);
                    if leader != self.me.index() {
                        for q in 0..self.n {
                            ctx.set_write_permission(
                                self.layout.conf[g],
                                NodeId(q),
                                q == leader,
                            );
                        }
                    }
                }
            }
            ControlMsg::LeaderAnnounce { group, epoch, leader } => {
                let g = group as usize;
                if epoch >= self.engines[g].promised {
                    self.engines[g].promised = epoch;
                    self.engines[g].leader_view = Pid(leader as usize);
                    self.join_epoch[g] = self.join_epoch[g].max(epoch);
                    self.log_group_hard(ctx, g);
                    if leader as usize != self.me.index() {
                        for q in 0..self.n {
                            ctx.set_write_permission(
                                self.layout.conf[g],
                                NodeId(q),
                                q == leader as usize,
                            );
                        }
                        if self.engines[g].is_leader() {
                            self.depose(ctx, g);
                        }
                    }
                }
            }
        }
    }

    /// If our candidacy for `g` reached a majority, win it: adopt the
    /// tally, and either install directly (our log is the longest) or
    /// read the missing ring suffix from the holder first.
    pub(crate) fn maybe_win<T: Transport>(&mut self, ctx: &mut T, g: usize) {
        let majority = self.n / 2 + 1;
        let Some(won) = self.engines[g].try_win(majority, Pid(self.me.index())) else {
            return;
        };
        // Winning adopts the tally's commit and makes the epoch ours:
        // persist before taking over.
        self.log_group_hard(ctx, g);
        let own_tail = self.landed_tail(ctx, g);
        if own_tail < won.max_tail && won.max_tail_holder != self.me {
            // Catch up: read the missing suffix from the best follower.
            let from_seq = own_tail + 1;
            let count = won.max_tail - own_tail;
            self.engines[g].begin_takeover(won.max_tail);
            // Ring is positional: read slot-by-slot range; wrap handled
            // by issuing one read per slot (the suffix is short).
            for s in from_seq..=won.max_tail {
                let off = self.layout.conf_ring_base()
                    + ((s - 1) as usize % self.layout.conf_cap()) * self.layout.entry_size();
                let wr = ctx.post_read(
                    won.max_tail_holder,
                    self.layout.conf[g],
                    off,
                    self.layout.entry_size(),
                );
                self.wr_routes.insert(
                    wr,
                    Route::CatchupRead { group: g, from_seq: s, count, max_tail: won.max_tail },
                );
            }
        } else {
            self.finish_takeover(ctx, g, won.max_tail);
        }
    }

    /// Complete the takeover of `g`: install the writers at the adopted
    /// tail, rebroadcast the uncommitted window so every ring copy
    /// converges, announce, and resume the group's quota.
    pub(crate) fn finish_takeover<T: Transport>(&mut self, ctx: &mut T, g: usize, max_tail: u64) {
        let (leader, epoch) = (self.me, self.engines[g].epoch);
        ctx.emit(|| TraceEvent::LeaderChange { group: g, leader, epoch });
        // New conflicting calls stay gated until our reader has applied
        // the adopted history (issue floor = the adopted tail).
        self.become_writer(g, max_tail, max_tail);
        // Rebroadcast the window between the adopted commit and the
        // tail so every follower's ring converges, then re-count acks.
        let commit = self.engines[g].commit;
        for s in (commit + 1)..=max_tail {
            self.engines[g]
                .leader_mut()
                .expect("just installed")
                .pending_acks
                .insert(s, 0);
            let off = self.layout.conf_ring_base()
                + ((s - 1) as usize % self.layout.conf_cap()) * self.layout.entry_size();
            let slot = ctx.local(self.layout.conf[g], off, self.layout.entry_size()).to_vec();
            let writers =
                &mut self.engines[g].leader_mut().expect("just installed").writers;
            for w in writers.iter_mut().flatten() {
                w.rewrite(ctx, s, slot.clone());
            }
        }
        // Announce.
        let msg = ControlMsg::LeaderAnnounce {
            group: g as u32,
            epoch: self.engines[g].epoch,
            leader: self.me.index() as u32,
        };
        for q in 0..self.n {
            if q != self.me.index() {
                ctx.send(NodeId(q), msg.to_bytes().into());
            }
        }
        self.advance_commit(ctx, g);
        self.pump(ctx);
    }

    /// A catch-up slot READ completed: install the slot bytes into our
    /// ring copy and finish the takeover once the whole suffix landed.
    pub(crate) fn on_catchup_read<T: Transport>(
        &mut self,
        ctx: &mut T,
        g: usize,
        from_seq: u64,
        max_tail: u64,
        data: Option<&[u8]>,
    ) {
        if let Some(bytes) = data {
            let off = self.layout.conf_ring_base()
                + ((from_seq - 1) as usize % self.layout.conf_cap()) * self.layout.entry_size();
            ctx.local_write(self.layout.conf[g], off, bytes);
            // The caught-up slot is part of the group's hard log copy.
            ctx.fence_region(self.layout.conf[g]);
        }
        // Are we fully caught up now?
        if matches!(self.engines[g].role, Role::TakingOver { .. })
            && self.landed_tail(ctx, g) >= max_tail
        {
            self.finish_takeover(ctx, g, max_tail);
        }
    }
}
