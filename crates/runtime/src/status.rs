//! Structured replica status for harness diagnostics.
//!
//! Replaces the old stringly `debug_status()`: a [`NodeStatus`] is a
//! typed snapshot of the replica's observable progress, and its
//! [`Display`](std::fmt::Display) renders the familiar one-line form
//! used by harness debug output and chaos failure reports. Structured
//! fields mean a failing chaos case can be inspected programmatically
//! (e.g. "which group still has uncommitted entries?") instead of by
//! string-grepping.

use std::fmt;

use hamband_core::ids::{GroupId, Pid};
use hamband_core::object::WorkloadSupport;
use hamband_core::wire::Wire;

use crate::conf::Role;
use crate::replica::HambandNode;

/// Which role a node holds for one synchronization group (the
/// discriminant of [`Role`], without the role's payload).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RoleKind {
    /// Applying committed entries, following the recognized leader.
    Follower,
    /// Tallying `LeaderAck`s for an in-flight candidacy.
    Candidate,
    /// Won an election, still catching up the ring suffix.
    TakingOver,
    /// Leading the group.
    Leader,
}

impl fmt::Display for RoleKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            RoleKind::Follower => "follower",
            RoleKind::Candidate => "candidate",
            RoleKind::TakingOver => "takeover",
            RoleKind::Leader => "leader",
        };
        f.write_str(s)
    }
}

impl From<&Role> for RoleKind {
    fn from(role: &Role) -> Self {
        match role {
            Role::Follower => RoleKind::Follower,
            Role::Candidate { .. } => RoleKind::Candidate,
            Role::TakingOver { .. } => RoleKind::TakingOver,
            Role::Leader(_) => RoleKind::Leader,
        }
    }
}

/// One synchronization group's consensus progress as seen by one node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GroupStatus {
    /// Group ordinal.
    pub group: usize,
    /// The leader this node currently recognizes.
    pub leader_view: Pid,
    /// This node's role in the group.
    pub role: RoleKind,
    /// Highest epoch this node promised.
    pub promised: u64,
    /// The group tail as this node best knows it.
    pub tail: u64,
    /// Commit index as this node last knew it directly.
    pub commit: u64,
    /// Ring entries this node's reader has applied.
    pub applied: u64,
    /// Own uncommitted entries (leader only; 0 otherwise).
    pub uncommitted: usize,
}

impl fmt::Display for GroupStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "g{}[ldr={} role={} ep={} tail={} com={} rd={} unc={}]",
            self.group,
            self.leader_view,
            self.role,
            self.promised,
            self.tail,
            self.commit,
            self.applied,
            self.uncommitted,
        )
    }
}

/// A typed snapshot of one replica's observable progress.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeStatus {
    /// Node index.
    pub node: usize,
    /// Whether the local workload is fully issued and acknowledged.
    pub done: bool,
    /// Whether the client ingress has planned out its whole quota.
    pub driver_done: bool,
    /// Client calls still awaiting acknowledgement.
    pub outstanding: usize,
    /// Whether the node halted (heartbeat suspended).
    pub halted: bool,
    /// Total update calls applied locally (own and remote).
    pub applied: u64,
    /// Peers this node's failure detector currently suspects.
    pub suspected: Vec<usize>,
    /// Per-synchronization-group progress.
    pub groups: Vec<GroupStatus>,
}

impl fmt::Display for NodeStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n{} done={} drv_done={} out={} halt={} applied={} susp={:?}",
            self.node,
            self.done,
            self.driver_done,
            self.outstanding,
            self.halted,
            self.applied,
            self.suspected,
        )?;
        for g in &self.groups {
            write!(f, " {g}")?;
        }
        Ok(())
    }
}

impl<O> HambandNode<O>
where
    O: WorkloadSupport,
    O::Update: Wire,
{
    /// The applied-calls map `A`.
    pub fn applied_map(&self) -> &hamband_core::counts::CountMap {
        &self.applied
    }

    /// Whether the local workload is fully issued and acknowledged.
    ///
    /// Conflicting quota is gated only at the node that currently
    /// leads each group (the quota is global and follows leadership);
    /// the harness separately requires equal applied maps across
    /// replicas, which covers follower catch-up. A group whose leader
    /// is suspected, or with an election or takeover in flight, keeps
    /// everyone not-done until a new leader resumes the quota.
    pub fn workload_done(&self) -> bool {
        if self.halted {
            return self.outstanding.is_empty();
        }
        let me = self.me.index();
        let mapper = self.ingress.mapper();
        let conf_done = (0..self.coord.sync_groups().len()).all(|sg| {
            // Quota is per sync group; progress is the sum over the
            // group's shard engines.
            let mut appended = 0u64;
            for g in mapper.shard_range(GroupId(sg)) {
                let e = &self.engines[g];
                if matches!(e.role, Role::Candidate { .. } | Role::TakingOver { .. }) {
                    return false;
                }
                let lv = e.leader_view;
                if self.fd.is_suspected(rdma_sim::NodeId(lv.index())) {
                    return false; // leaderless: quota will move
                }
                appended += if lv.index() == me && e.is_leader() {
                    e.known_tail()
                } else {
                    // Followers watch the global quota through their
                    // own ring: committed entries they have applied.
                    e.reader.applied()
                };
            }
            self.ingress.conf_remaining(sg, appended) == 0
        });
        self.ingress.local_done() && self.outstanding.is_empty() && conf_done
    }

    /// The leader this node currently recognizes for group `g`.
    pub fn leader_view(&self, g: usize) -> Pid {
        self.engines[g].leader_view
    }

    /// Whether this node halted (its heartbeat was suspended).
    pub fn is_halted(&self) -> bool {
        self.halted
    }

    /// Total update calls applied locally (own and remote).
    pub fn applied_updates(&self) -> u64 {
        self.applied.total()
    }

    /// Per-session completion stats from the client ingress (for
    /// harness fairness accounting).
    pub fn session_stats(&self) -> Vec<crate::ingress::SessionStats> {
        self.ingress.session_stats()
    }

    /// A structured diagnostic snapshot (replaces `debug_status()`;
    /// render with `Display` for the one-line form).
    pub fn status(&self) -> NodeStatus {
        NodeStatus {
            node: self.me.index(),
            done: self.workload_done(),
            driver_done: self.ingress.local_done(),
            outstanding: self.outstanding.len(),
            halted: self.halted,
            applied: self.applied.total(),
            suspected: self.fd.suspected().iter().map(|p| p.index()).collect(),
            groups: self
                .engines
                .iter()
                .enumerate()
                .map(|(g, e)| GroupStatus {
                    group: g,
                    leader_view: e.leader_view,
                    role: RoleKind::from(&e.role),
                    promised: e.promised,
                    tail: e.known_tail(),
                    commit: e.commit,
                    applied: e.reader.applied(),
                    uncommitted: e.leader().map_or(0, |l| l.uncommitted.len()),
                })
                .collect(),
        }
    }
}
