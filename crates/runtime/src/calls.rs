//! Client-call lifecycle: the pump that plans calls, ids,
//! outstanding-call bookkeeping, backup slots, acknowledgement.
//!
//! Every update call a replica issues gets a local call id and an
//! `Outstanding` record tracking how many remote completions are
//! still needed before the client is acknowledged
//! (`HambandNode::finish_call`) and before the call's
//! reliable-broadcast backup slot can be garbage-collected. One-sided
//! work requests that are not ring appends carry a `Route` so their
//! completions find their handler. The `pump`
//! drains the driver's plan into the per-category issue paths
//! (`reduce.rs` / `free.rs` / `conf.rs`).

use hamband_core::coord::MethodCategory;
use hamband_core::ids::{MethodId, Pid, Rid};
use hamband_core::object::WorkloadSupport;
use hamband_core::wire::Wire;
use rdma_sim::{NodeId, Phase, SimDuration, SimTime, TraceEvent};

use crate::codec::compose_backup_slot;
use crate::driver::Planned;
use crate::replica::HambandNode;
use crate::transport::Transport;

/// Why a non-ring work request was posted; stored per [`rdma_sim::WrId`]
/// so the completion is dispatched to the right protocol module.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Route {
    /// A (possibly write-combined) summary-slot WRITE (`reduce`).
    SummaryWrite {
        group: usize,
        target: NodeId,
        version: u64,
    },
    /// A commit-cell WRITE pushing the group's commit index (`commit`).
    CommitWrite { group: usize },
    /// A READ of a suspect's backup region (`recovery`).
    RecoveryRead { suspect: NodeId },
    /// A READ of one ring slot from the longest follower (`election`).
    CatchupRead {
        group: usize,
        from_seq: u64,
        #[allow(dead_code)]
        count: u64,
        max_tail: u64,
    },
}

/// Remote-completion bookkeeping for one issued update call.
#[derive(Debug)]
pub(crate) struct Outstanding {
    pub(crate) issued_at: SimTime,
    pub(crate) method: MethodId,
    /// Client session (ingress slot) the ack fans back to.
    pub(crate) session: u32,
    /// Protocol path this call travels (REDUCE/FREE/CONF).
    pub(crate) phase: Phase,
    /// For conflicting calls: (synchronization group, L-ring seq).
    pub(crate) conf: Option<(usize, u64)>,
    /// Remote completions still needed before the client is acked.
    pub(crate) ack_remaining: usize,
    /// Remote completions still outstanding in total (backup clear).
    pub(crate) total_remaining: usize,
    pub(crate) backup_slot: Option<usize>,
}

impl<O> HambandNode<O>
where
    O: WorkloadSupport,
    O::Update: Wire,
{
    /// The flat-combining drain: act as the combiner for the node's
    /// client sessions, planning and issuing their calls round-robin
    /// until the ingress yields (or an impermissible streak suggests
    /// waiting for the views to move), then flush the whole combined
    /// burst as coalesced ring appends.
    pub(crate) fn pump<T: Transport>(&mut self, ctx: &mut T) {
        if self.halted {
            return;
        }
        self.refresh_mat();
        // Open loop: move every arrival whose Poisson timestamp has
        // passed into the ingress's releasable pool. Closed loop: no-op.
        self.ingress.release_arrivals(ctx.now());
        let mut reject_streak = 0u32;
        loop {
            let is_leader: Vec<bool> =
                self.engines.iter().map(|e| e.accepting_issues()).collect();
            // Group-wide quota accounting: our own tail for shards we
            // lead, the replicated applied count for shards led
            // elsewhere (a follower's `tail_hint` is only refreshed by
            // elections, so it would hide sibling shards' progress and
            // let every shard leader consume the whole group quota).
            let appended: Vec<u64> = self
                .engines
                .iter()
                .map(|e| if e.is_leader() { e.known_tail() } else { e.reader.applied() })
                .collect();
            let planned = {
                let view = self.spec_mat.as_ref().unwrap_or(&self.mat);
                self.ingress.next(&self.spec, view, &self.coord, &is_leader, &appended)
            };
            match planned {
                None => break,
                Some((_, Planned::Query(q))) => {
                    // Under open-loop load a query's response time is
                    // measured from its arrival, not from when the pump
                    // got around to executing it.
                    let waited = self
                        .ingress
                        .take_arrival()
                        .map(|a| ctx.now().since(a))
                        .unwrap_or(SimDuration(0));
                    let reply = self.spec.query(self.check_view(), &q);
                    let _ = reply;
                    ctx.consume(ctx.latency().apply_cost);
                    let cost = ctx.latency().apply_cost;
                    self.metrics.ack_query(cost + waited);
                }
                Some((session, Planned::Update(u))) => {
                    // Stamp the call with its open-loop arrival time (if
                    // any): the issue paths use it as `issued_at`, so
                    // queueing delay counts toward response time.
                    self.pending_arrival = self.ingress.take_arrival();
                    let rejected_before = self.metrics.rejected;
                    self.issue(ctx, u, session);
                    if self.metrics.rejected > rejected_before {
                        // A rejected call consumes no ring quota, so the
                        // driver will happily regenerate it. Bound the
                        // streak per pump so a view in which nothing is
                        // permissible yields back to the event loop
                        // instead of spinning (later entries or a leader
                        // change may unwedge it).
                        reject_streak += 1;
                        if reject_streak >= 64 {
                            break;
                        }
                    } else {
                        reject_streak = 0;
                    }
                }
            }
        }
        // The whole burst of appends is queued by now: post it as
        // coalesced ring WRITEs (deferring to here is free in virtual
        // time — same instant, fewer doorbells).
        self.flush_writers(ctx);
    }

    /// Post everything the pump queued: coalesced WRITEs for the free
    /// rings and for any leader-fed conflicting rings. Idle writers
    /// cost one empty check each.
    fn flush_writers<T: Transport>(&mut self, ctx: &mut T) {
        for w in self.free_writers.iter_mut().flatten() {
            w.flush(ctx);
        }
        for e in self.engines.iter_mut() {
            if let Some(l) = e.leader_mut() {
                for w in l.writers.iter_mut().flatten() {
                    w.flush(ctx);
                }
            }
        }
    }

    fn issue<T: Transport>(&mut self, ctx: &mut T, update: O::Update, session: u32) {
        let method = self.spec.method_of(&update);
        match self.coord.category(method) {
            MethodCategory::Reducible { sum_group } => {
                self.issue_reduce(ctx, update, method, sum_group.index(), session)
            }
            MethodCategory::IrreducibleFree => self.issue_free(ctx, update, method, session),
            MethodCategory::Conflicting { sync_group } => {
                // Key-sharded routing: hash the call's shard key onto
                // one of the group's engines. The ingress only emits
                // calls whose mapped group this node leads, so the
                // engine index is always a locally-accepting one.
                let mapped =
                    self.ingress.mapper().group_of(sync_group, self.spec.shard_key(&update));
                self.issue_conf(ctx, update, method, mapped, session)
            }
        }
    }

    /// Mint a fresh (call id, replica-unique request id) pair.
    pub(crate) fn mint_call(&mut self, method: MethodId) -> (u64, Rid) {
        let call_id = self.next_call_id;
        self.next_call_id += 1;
        let rid = Rid::new(Pid(self.me.index()), self.next_rid_seq);
        self.next_rid_seq += 1;
        let _ = method;
        (call_id, rid)
    }

    /// Reject an impermissible call: count it, free the session's
    /// window slot, and let the ingress plan a replacement.
    pub(crate) fn reject(&mut self, method: MethodId, session: u32) {
        let _ = method;
        // A rejected call never became outstanding; drop its arrival
        // stamp so the replacement call doesn't inherit it twice.
        self.pending_arrival = None;
        self.metrics.rejected += 1;
        self.ingress.on_abort(session);
    }

    /// Stash the encoded slot in this node's backup region before the
    /// remote writes go out (the validity half of reliable broadcast:
    /// a delegate can re-execute the writes if we crash mid-broadcast).
    pub(crate) fn write_backup<T: Transport>(
        &mut self,
        ctx: &mut T,
        call_id: u64,
        kind: u8,
        group: u8,
        seq: u64,
        slot: &[u8],
    ) -> usize {
        let idx = (call_id % self.layout.backup_slots() as u64) as usize;
        let (off, size) = self.layout.backup_slot(idx);
        let buf = compose_backup_slot(kind, group, seq, slot, size);
        ctx.local_write(self.layout.backup, off, &buf);
        idx
    }

    pub(crate) fn clear_backup<T: Transport>(&mut self, ctx: &mut T, idx: usize) {
        let (off, _) = self.layout.backup_slot(idx);
        ctx.local_write(self.layout.backup, off, &[0]);
    }

    /// Acknowledge a call whose ack countdown reached zero: record the
    /// latency, emit the trace event, fan the completion back to the
    /// issuing session, and GC the backup slot once no write is in
    /// flight. Re-enters the pump — an ack frees window budget for the
    /// next planned call.
    pub(crate) fn finish_call<T: Transport>(&mut self, ctx: &mut T, call_id: u64) {
        if let Some(o) = self.outstanding.get_mut(&call_id) {
            if o.ack_remaining != 0 {
                return;
            }
            let method = o.method;
            let issued_at = o.issued_at;
            let phase = o.phase;
            let conf = o.conf;
            let session = o.session;
            self.metrics.ack_update(method.index(), phase, issued_at, ctx.now());
            let node = self.me;
            ctx.emit(|| TraceEvent::Ack {
                node,
                method: method.index(),
                phase,
                group: conf.map(|(g, _)| g),
                seq: conf.map(|(_, s)| s),
            });
            let rt_ns = ctx.now().since(issued_at).as_nanos();
            self.ingress.on_ack(session, rt_ns);
            let done = o.total_remaining == 0;
            if done {
                let slot = o.backup_slot;
                self.outstanding.remove(&call_id);
                if let Some(idx) = slot {
                    self.clear_backup(ctx, idx);
                }
            } else {
                // Acked but writes still in flight: keep for backup GC.
                o.ack_remaining = 0;
            }
        }
        self.pump(ctx);
    }

    /// One peer now durably holds this reducible call's summary: the
    /// per-call remote bookkeeping (ack countdown, backup GC) that a
    /// dedicated completion used to drive before write-combining.
    pub(crate) fn credit_summary_peer<T: Transport>(&mut self, ctx: &mut T, call_id: u64) {
        let mut finished = false;
        let mut cleanup = None;
        if let Some(o) = self.outstanding.get_mut(&call_id) {
            o.total_remaining = o.total_remaining.saturating_sub(1);
            if o.ack_remaining > 0 && o.ack_remaining != usize::MAX {
                o.ack_remaining -= 1;
                finished = o.ack_remaining == 0;
            }
            if o.total_remaining == 0 && !finished {
                cleanup = Some(call_id);
            }
        }
        if let Some(cid) = cleanup {
            if let Some(o) = self.outstanding.remove(&cid) {
                if let Some(idx) = o.backup_slot {
                    self.clear_backup(ctx, idx);
                }
            }
        } else if finished {
            self.finish_call(ctx, call_id);
        }
    }
}
