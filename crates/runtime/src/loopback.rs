//! In-process loopback backend: a [`Transport`] over plain memory and
//! FIFO event queues, with no simulator behind it.
//!
//! The simulator ([`rdma_sim`]) models latency, CPU contention, and
//! faults; this backend models *none* of that. Every node's registered
//! regions are byte vectors owned by a [`LoopbackNet`]; a one-sided
//! WRITE copies into the target's vector at post time and the success
//! completion is queued on the issuer's FIFO, so RC ordering (writes
//! from one issuer to one target land in posting order) holds
//! trivially. Virtual time advances only when every FIFO is drained
//! and the earliest armed timer fires.
//!
//! The point of the backend is the seam itself: the same
//! [`HambandNode`] byte-for-byte state machine runs here through
//! [`HambandNode::start`] / [`HambandNode::handle_event`] without any
//! `rdma_sim::Ctx` in sight, which is exactly the property a real
//! ibverbs backend would need. It doubles as the fastest way to smoke
//! test protocol logic when the latency model is irrelevant.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

use bytes::Bytes;
use hamband_core::coord::{CoordSpec, GroupMapper};
use hamband_core::ids::Pid;
use hamband_core::object::WorkloadSupport;
use hamband_core::wire::Wire;
use rdma_sim::{
    AppFault, CompletionStatus, Event, LatencyModel, NodeId, RegionId, SimDuration, SimTime,
    TimerId, TraceEvent, VerbKind, WrId,
};

use crate::config::RuntimeConfig;
use crate::driver::WorkloadSpec;
use crate::layout::Layout;
use crate::replica::HambandNode;
use crate::transport::Transport;

/// One node's registered memory: the region byte vectors plus the
/// per-source write-permission bits (the owner is always allowed).
#[derive(Debug)]
struct NodeMem {
    regions: Vec<Vec<u8>>,
    /// `write_allowed[region][source]`.
    write_allowed: Vec<Vec<bool>>,
}

/// An armed timer: fires at `at`, delivering `tag` to `node`. The
/// `seq` breaks deadline ties in arming order, keeping runs
/// deterministic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct TimerEntry {
    at: SimTime,
    seq: u64,
    node: usize,
    id: TimerId,
    tag: u64,
}

/// The shared fabric state of a loopback cluster: per-node memory,
/// per-node FIFO event queues, and one global timer heap.
#[derive(Debug)]
pub struct LoopbackNet {
    n: usize,
    clock: SimTime,
    latency: LatencyModel,
    mem: Vec<NodeMem>,
    inboxes: Vec<VecDeque<Event>>,
    timers: BinaryHeap<Reverse<TimerEntry>>,
    next_wr: u64,
    next_timer: u64,
}

impl LoopbackNet {
    fn new(n: usize) -> LoopbackNet {
        LoopbackNet {
            n,
            clock: SimTime::ZERO,
            latency: LatencyModel::deterministic(),
            mem: (0..n)
                .map(|_| NodeMem { regions: Vec::new(), write_allowed: Vec::new() })
                .collect(),
            inboxes: (0..n).map(|_| VecDeque::new()).collect(),
            timers: BinaryHeap::new(),
            next_wr: 0,
            next_timer: 0,
        }
    }

    /// Register a region of `size` bytes on every node (the loopback
    /// analogue of `Simulator::add_region_all`).
    fn add_region_all(&mut self, size: usize) -> RegionId {
        let id = RegionId(self.mem[0].regions.len());
        for m in &mut self.mem {
            m.regions.push(vec![0; size]);
            m.write_allowed.push(vec![true; self.n]);
        }
        id
    }

    fn mint_wr(&mut self) -> WrId {
        self.next_wr += 1;
        WrId(self.next_wr)
    }

    /// Access check mirroring the simulator's: reads ignore write
    /// permission, the owner's own writes ignore it too.
    fn check(
        &self,
        issuer: NodeId,
        target: NodeId,
        region: RegionId,
        offset: usize,
        len: usize,
        is_write: bool,
    ) -> CompletionStatus {
        let m = &self.mem[target.index()];
        let Some(bytes) = m.regions.get(region.index()) else {
            return CompletionStatus::OutOfBounds;
        };
        if offset + len > bytes.len() {
            return CompletionStatus::OutOfBounds;
        }
        if is_write && issuer != target && !m.write_allowed[region.index()][issuer.index()] {
            return CompletionStatus::AccessDenied;
        }
        CompletionStatus::Success
    }

    fn complete(
        &mut self,
        issuer: NodeId,
        wr: WrId,
        kind: VerbKind,
        status: CompletionStatus,
        data: Option<Bytes>,
    ) {
        let completed_at = self.clock;
        self.inboxes[issuer.index()].push_back(Event::Completion {
            wr,
            kind,
            status,
            data,
            completed_at,
        });
    }
}

/// A [`Transport`] handle binding one node to the shared
/// [`LoopbackNet`]; what [`rdma_sim::Ctx`] is to the simulator.
#[derive(Debug)]
pub struct LoopbackCtx<'a> {
    net: &'a mut LoopbackNet,
    node: NodeId,
}

impl Transport for LoopbackCtx<'_> {
    fn node(&self) -> NodeId {
        self.node
    }

    fn now(&self) -> SimTime {
        self.net.clock
    }

    fn cluster_size(&self) -> usize {
        self.net.n
    }

    /// No CPU model: consuming time is a no-op. Ordering in loopback
    /// comes solely from FIFO delivery and timer deadlines.
    fn consume(&mut self, _cost: SimDuration) {}

    fn latency(&self) -> &LatencyModel {
        &self.net.latency
    }

    /// No trace sink is ever installed on the loopback net, so the
    /// closure is never run.
    fn emit(&mut self, _make: impl FnOnce() -> TraceEvent) {}

    fn note_ring_write(&mut self, _slots: u64) {}

    fn post_write(
        &mut self,
        target: NodeId,
        region: RegionId,
        offset: usize,
        data: &[u8],
    ) -> WrId {
        let wr = self.net.mint_wr();
        let status = self.net.check(self.node, target, region, offset, data.len(), true);
        if status.is_success() {
            self.net.mem[target.index()].regions[region.index()][offset..offset + data.len()]
                .copy_from_slice(data);
        }
        self.net.complete(self.node, wr, VerbKind::Write, status, None);
        wr
    }

    fn post_read(&mut self, target: NodeId, region: RegionId, offset: usize, len: usize) -> WrId {
        let wr = self.net.mint_wr();
        let status = self.net.check(self.node, target, region, offset, len, false);
        let data = status.is_success().then(|| {
            Bytes::copy_from_slice(
                &self.net.mem[target.index()].regions[region.index()][offset..offset + len],
            )
        });
        self.net.complete(self.node, wr, VerbKind::Read, status, data);
        wr
    }

    fn post_cas(
        &mut self,
        target: NodeId,
        region: RegionId,
        offset: usize,
        expected: u64,
        swap: u64,
    ) -> WrId {
        let wr = self.net.mint_wr();
        let status = self.net.check(self.node, target, region, offset, 8, true);
        let data = status.is_success().then(|| {
            let cell = &mut self.net.mem[target.index()].regions[region.index()]
                [offset..offset + 8];
            let prior = u64::from_le_bytes(cell.try_into().expect("8-byte cell"));
            if prior == expected {
                cell.copy_from_slice(&swap.to_le_bytes());
            }
            Bytes::copy_from_slice(&prior.to_le_bytes())
        });
        self.net.complete(self.node, wr, VerbKind::CompareAndSwap, status, data);
        wr
    }

    fn send(&mut self, target: NodeId, payload: Bytes) {
        let from = self.node;
        self.net.inboxes[target.index()].push_back(Event::Message { from, payload });
    }

    fn set_timer(&mut self, delay: SimDuration, tag: u64) -> TimerId {
        self.arm(delay, tag)
    }

    /// Loopback has no busy CPU for a timer to dodge, so the isolated
    /// variant is the plain one.
    fn set_timer_isolated(&mut self, delay: SimDuration, tag: u64) -> TimerId {
        self.arm(delay, tag)
    }

    fn local(&mut self, region: RegionId, offset: usize, len: usize) -> &[u8] {
        &self.net.mem[self.node.index()].regions[region.index()][offset..offset + len]
    }

    fn local_write(&mut self, region: RegionId, offset: usize, data: &[u8]) {
        self.net.mem[self.node.index()].regions[region.index()][offset..offset + data.len()]
            .copy_from_slice(data);
    }

    fn set_write_permission(&mut self, region: RegionId, source: NodeId, allowed: bool) {
        self.net.mem[self.node.index()].write_allowed[region.index()][source.index()] = allowed;
    }
}

impl LoopbackCtx<'_> {
    fn arm(&mut self, delay: SimDuration, tag: u64) -> TimerId {
        self.net.next_timer += 1;
        let id = TimerId(self.net.next_timer);
        self.net.timers.push(Reverse(TimerEntry {
            at: self.net.clock + delay,
            seq: self.net.next_timer,
            node: self.node.index(),
            id,
            tag,
        }));
        id
    }
}

/// A whole Hamband cluster running in-process over a [`LoopbackNet`].
pub struct LoopbackCluster<O: WorkloadSupport> {
    net: LoopbackNet,
    nodes: Vec<HambandNode<O>>,
    started: bool,
}

impl<O> LoopbackCluster<O>
where
    O: WorkloadSupport + Clone,
    O::Update: Wire,
{
    /// Build an `n`-node cluster: allocate the standard region
    /// [`Layout`] on the loopback net and construct each replica with
    /// the coordination spec's default leaders.
    pub fn new(
        n: usize,
        spec: &O,
        coord: &CoordSpec,
        cfg: RuntimeConfig,
        workload: WorkloadSpec,
    ) -> LoopbackCluster<O> {
        let mut net = LoopbackNet::new(n);
        // The loopback backend has no restart faults, so the durable
        // flag carries no meaning here: every region is plain memory.
        let layout = Layout::plan(n, coord, &cfg, |size, _durable| net.add_region_all(size));
        let leaders: Vec<Pid> =
            GroupMapper::new(coord, cfg.sync_shards).default_leaders(n);
        let nodes = (0..n)
            .map(|i| {
                HambandNode::new(
                    spec.clone(),
                    coord.clone(),
                    cfg.clone(),
                    layout.clone(),
                    NodeId(i),
                    n,
                    &leaders,
                    workload.clone(),
                )
            })
            .collect();
        LoopbackCluster { net, nodes, started: false }
    }

    /// Run the cluster's event loop until every replica reports
    /// [`workload_done`](HambandNode::workload_done) and all state
    /// snapshots agree, or until virtual time passes `limit`. Returns
    /// whether the cluster converged.
    pub fn run_to_convergence(&mut self, limit: SimDuration) -> bool
    where
        O::State: PartialEq,
    {
        let deadline = SimTime::ZERO + limit;
        self.ensure_started();
        loop {
            self.drain_events();
            if self.converged() {
                return true;
            }
            // Quiescent: advance the clock to the earliest timer.
            let Some(Reverse(t)) = self.net.timers.pop() else {
                return false; // no timers left — the cluster is wedged
            };
            if t.at > deadline {
                return false;
            }
            self.net.clock = t.at;
            self.net.inboxes[t.node].push_back(Event::Timer { id: t.id, tag: t.tag });
        }
    }

    fn ensure_started(&mut self) {
        if !self.started {
            self.started = true;
            for i in 0..self.net.n {
                let mut ctx = LoopbackCtx { net: &mut self.net, node: NodeId(i) };
                self.nodes[i].start(&mut ctx);
            }
        }
    }

    /// Deliver an application-level fault straight into node `i`'s
    /// event queue — the loopback analogue of the simulator's fault
    /// plan for the faults that need no fabric (heartbeat suspension,
    /// the paper's §5 failure-injection method). Fabric faults (torn
    /// writes, partitions, crashes) remain simulator-only.
    pub fn inject_fault(&mut self, node: usize, kind: AppFault) {
        self.net.inboxes[node].push_back(Event::Fault { kind });
    }

    /// Drive events and timers until virtual time reaches `until` (or
    /// no timer remains armed). Unlike
    /// [`run_to_convergence`](LoopbackCluster::run_to_convergence)
    /// this makes no claim about workload completion — it is the
    /// stepping primitive for fault/election scenarios that need to
    /// observe the cluster mid-flight.
    pub fn step_until(&mut self, until: SimTime) {
        self.ensure_started();
        loop {
            self.drain_events();
            let Some(Reverse(t)) = self.net.timers.pop() else { return };
            if t.at > until {
                self.net.timers.push(Reverse(t));
                return;
            }
            self.net.clock = t.at;
            self.net.inboxes[t.node].push_back(Event::Timer { id: t.id, tag: t.tag });
        }
    }

    /// Deliver queued events round-robin, one per node per sweep, until
    /// every FIFO is empty (handling an event may enqueue more).
    fn drain_events(&mut self) {
        loop {
            let mut delivered = false;
            for i in 0..self.net.n {
                let Some(ev) = self.net.inboxes[i].pop_front() else { continue };
                let mut ctx = LoopbackCtx { net: &mut self.net, node: NodeId(i) };
                self.nodes[i].handle_event(&mut ctx, ev);
                delivered = true;
            }
            if !delivered {
                return;
            }
        }
    }

    fn converged(&self) -> bool
    where
        O::State: PartialEq,
    {
        let done = self.nodes.iter().all(|n| n.workload_done());
        let s0 = self.nodes[0].state_snapshot();
        done && self.nodes.iter().all(|n| n.state_snapshot() == s0)
    }

    /// Current virtual time of the loopback clock.
    pub fn now(&self) -> SimTime {
        self.net.clock
    }

    /// The replica running on node `i` (for test assertions).
    pub fn node(&self, i: usize) -> &HambandNode<O> {
        &self.nodes[i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hamband_types::Counter;

    /// Satellite smoke test: a 3-node Counter cluster converges over
    /// the loopback transport — no simulator involved.
    #[test]
    fn three_node_counter_converges_over_loopback() {
        let spec = Counter::default();
        let coord = spec.coord_spec();
        let workload = WorkloadSpec::ops(120).with_update_ratio(1.0).with_seed(42);
        let mut cluster =
            LoopbackCluster::new(3, &spec, &coord, RuntimeConfig::default(), workload);
        assert!(
            cluster.run_to_convergence(SimDuration::millis(50)),
            "loopback cluster failed to converge: {}",
            (0..3).map(|i| cluster.node(i).status().to_string()).collect::<Vec<_>>().join(" | "),
        );
        // Every replica applied the full workload from all three nodes.
        let total = cluster.node(0).applied_updates();
        assert!(total > 0, "no updates applied");
        for i in 1..3 {
            assert_eq!(cluster.node(i).applied_updates(), total);
            assert_eq!(cluster.node(i).applied_map(), cluster.node(0).applied_map());
        }
    }

    /// Permission revocation over loopback: a peer's write to a
    /// revoked region completes with `AccessDenied` and leaves the
    /// bytes untouched, matching the simulator's semantics.
    #[test]
    fn loopback_respects_write_permissions() {
        let mut net = LoopbackNet::new(2);
        let region = net.add_region_all(8);
        {
            let mut owner = LoopbackCtx { net: &mut net, node: NodeId(1) };
            owner.set_write_permission(region, NodeId(0), false);
        }
        let mut writer = LoopbackCtx { net: &mut net, node: NodeId(0) };
        writer.post_write(NodeId(1), region, 0, b"denied!!");
        let ev = net.inboxes[0].pop_front().expect("completion queued");
        match ev {
            Event::Completion { status, .. } => {
                assert_eq!(status, CompletionStatus::AccessDenied)
            }
            other => panic!("unexpected event {other:?}"),
        }
        assert_eq!(&net.mem[1].regions[region.index()], &vec![0u8; 8]);
    }
}
