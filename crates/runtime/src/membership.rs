//! Alive-set arithmetic over the failure detector's suspicion state.
//!
//! Three protocol decisions pick nodes out of the currently-unsuspected
//! set: the reliable-broadcast recovery delegate and the election
//! starter (both "lowest alive"), and workload-quota adoption ("next
//! alive after the suspect", wrapping around the ring of node ids).
//! They used to duplicate the iteration in three places; [`Membership`]
//! is the single shared snapshot they all consult.
//!
//! A snapshot is cheap (one `Vec<bool>`) and deliberately *not* live:
//! the caller captures the suspicion set once per decision, so one
//! decision never observes two different alive sets mid-computation.

use rdma_sim::NodeId;

/// A point-in-time view of which cluster members are considered alive
/// (not suspected by the local failure detector).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Membership {
    me: NodeId,
    alive: Vec<bool>,
}

impl Membership {
    /// A membership snapshot for a cluster of `alive.len()` nodes seen
    /// from `me`. `alive[i]` is `false` for suspected nodes.
    pub fn new(me: NodeId, alive: Vec<bool>) -> Self {
        assert!(me.index() < alive.len(), "me must be a member");
        Membership { me, alive }
    }

    /// Build a snapshot from a suspicion predicate over `n` nodes.
    pub fn from_suspected(me: NodeId, n: usize, is_suspected: impl Fn(NodeId) -> bool) -> Self {
        Membership::new(me, (0..n).map(|i| !is_suspected(NodeId(i))).collect())
    }

    /// Cluster size.
    pub fn len(&self) -> usize {
        self.alive.len()
    }

    /// Whether the snapshot is empty (never true for a real cluster).
    pub fn is_empty(&self) -> bool {
        self.alive.is_empty()
    }

    /// Whether `node` was alive in this snapshot.
    pub fn is_alive(&self, node: NodeId) -> bool {
        self.alive[node.index()]
    }

    /// The lowest-numbered alive node, skipping `skip` if given; falls
    /// back to `me` when everyone (else) is suspected. Used to pick the
    /// recovery delegate and the election starter deterministically:
    /// every correct observer with the same suspicion set picks the
    /// same node.
    pub fn lowest_alive(&self, skip: Option<NodeId>) -> NodeId {
        (0..self.alive.len())
            .map(NodeId)
            .find(|&p| self.alive[p.index()] && Some(p) != skip)
            .unwrap_or(self.me)
    }

    /// The first alive node after `suspect` in ring order (wrapping at
    /// the cluster size); falls back to `me` when everyone else is
    /// suspected. Used to pick who adopts a failed node's remaining
    /// conflict-free quota.
    pub fn next_alive_after(&self, suspect: NodeId) -> NodeId {
        let n = self.alive.len();
        for d in 1..=n {
            let q = NodeId((suspect.index() + d) % n);
            if q != suspect && self.alive[q.index()] {
                return q;
            }
        }
        self.me
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(me: usize, alive: &[bool]) -> Membership {
        Membership::new(NodeId(me), alive.to_vec())
    }

    #[test]
    fn lowest_alive_picks_first_unsuspected() {
        let mb = m(2, &[false, true, true, true]);
        assert_eq!(mb.lowest_alive(None), NodeId(1));
        assert_eq!(mb.lowest_alive(Some(NodeId(1))), NodeId(2));
    }

    #[test]
    fn lowest_alive_falls_back_to_me_when_all_suspected() {
        let mb = m(3, &[false, false, false, false]);
        assert_eq!(mb.lowest_alive(None), NodeId(3));
        assert_eq!(mb.lowest_alive(Some(NodeId(3))), NodeId(3));
    }

    #[test]
    fn next_alive_after_wraps_around() {
        // Suspect is the last node: the scan must wrap to node 0.
        let mb = m(1, &[true, true, true, false]);
        assert_eq!(mb.next_alive_after(NodeId(3)), NodeId(0));
        // A dead node right after the suspect is skipped, wrapping on.
        let mb = m(0, &[true, false, true, false]);
        assert_eq!(mb.next_alive_after(NodeId(3)), NodeId(0));
        assert_eq!(mb.next_alive_after(NodeId(0)), NodeId(2));
    }

    #[test]
    fn next_alive_after_never_returns_the_suspect() {
        // The suspect may still be marked alive (adoption can race the
        // detector); it must not adopt from itself.
        let mb = m(0, &[true, true, true]);
        assert_eq!(mb.next_alive_after(NodeId(1)), NodeId(2));
        // Only the suspect itself is marked alive: the scan wraps the
        // whole ring without ever yielding the suspect, then falls
        // back to me.
        let mb = m(2, &[false, true, false]);
        assert_eq!(mb.next_alive_after(NodeId(1)), NodeId(2));
    }

    #[test]
    fn all_suspected_falls_back_to_me() {
        let mb = m(1, &[false, false, false]);
        assert_eq!(mb.next_alive_after(NodeId(0)), NodeId(1));
        assert_eq!(mb.next_alive_after(NodeId(1)), NodeId(1));
    }

    #[test]
    fn from_suspected_inverts_the_predicate() {
        let mb = Membership::from_suspected(NodeId(0), 3, |p| p == NodeId(2));
        assert!(mb.is_alive(NodeId(0)));
        assert!(mb.is_alive(NodeId(1)));
        assert!(!mb.is_alive(NodeId(2)));
        assert_eq!(mb.len(), 3);
        assert!(!mb.is_empty());
    }
}
