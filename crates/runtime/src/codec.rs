//! On-wire formats of ring entries and summary slots.
//!
//! §4: "Before propagation, a call is assigned a unique id, paired with
//! its dependency arrays and is serialized into a byte stream. ... Each
//! call in the buffer contains a canary bit as the last bit."
//!
//! Ring entry slot (fixed size, [`RuntimeConfig::entry_size`]):
//!
//! ```text
//! [0..8)       entry sequence number (1-based; 0 = never written)
//! [8..10)      payload length (u16 LE)
//! [10..)       payload: issuer, rid seq, dependency array, encoded call
//! [size-8..)   canary trailer: the sequence number again (u64 LE),
//!              written last on torn fabrics
//! ```
//!
//! The canary trailer is the paper's canary *bit* grown into a
//! sequence echo. A constant marker only proves "some complete entry
//! once landed here"; on a ring that property survives slot reuse, so
//! a reader observing the slot word-by-word (the threaded backend's
//! shared-memory reality) could pair the *new* entry's sequence word
//! with the *old* entry's still-valid marker around a half-rewritten
//! payload. Echoing the sequence makes the trailer epoch-distinguishing:
//! the trailer only matches once the rewrite for exactly that sequence
//! has finished, and slot writers store words in ascending address
//! order, so a reader that checks the trailer first (descending reads)
//! accepts no torn slot.
//!
//! Summary slot (per summarization group × source process,
//! [`RuntimeConfig::summary_slot_size`]):
//!
//! ```text
//! [0..8)        version (number of calls folded in)
//! [8..8+8g)     applied-call count per method of the group
//! [..+2)        payload length (u16 LE)
//! [..]          payload: encoded summarized call
//! [..+8)        trailing version, directly after the payload (seqlock
//!               check; placed there so a write covers only the used
//!               prefix of the slot, not its worst-case capacity)
//! ```
//!
//! [`RuntimeConfig::entry_size`]: crate::config::RuntimeConfig::entry_size
//! [`RuntimeConfig::summary_slot_size`]: crate::config::RuntimeConfig::summary_slot_size

use hamband_core::counts::DepMap;
use hamband_core::ids::{MethodId, Pid, Rid};
use hamband_core::wire::{DecodeError, Reader, Wire, Writer};

/// Size of the canary trailer: the entry's sequence number echoed as
/// the slot's final 8 bytes.
pub const CANARY_TRAILER: usize = 8;

/// Whether a ring-entry slot completely holds entry `expect_seq`: the
/// leading sequence number matches and the trailing sequence echo has
/// landed. This is the poll fast path — a prefix-plus-trailer check
/// with no payload decode, so an empty or in-flight slot costs almost
/// nothing.
pub fn slot_ready(slot: &[u8], expect_seq: u64) -> bool {
    let seq = expect_seq.to_le_bytes();
    slot.len() >= 10 + CANARY_TRAILER
        && slot[slot.len() - CANARY_TRAILER..] == seq
        && slot[0..8] == seq
}

/// The leading version word of a summary slot (0 when never written or
/// too short). A reader compares it against the version it already
/// applied before paying for a full seqlock parse — stale re-reads of
/// an unchanged slot are the common case in the summary poll loop.
pub fn summary_version(slot: &[u8]) -> u64 {
    match slot.get(0..8) {
        Some(b) => u64::from_le_bytes(b.try_into().expect("8 bytes")),
        None => 0,
    }
}

/// A decoded ring entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Entry<U> {
    /// The call's unique request id.
    pub rid: Rid,
    /// The call.
    pub update: U,
    /// The dependency map shipped with the call.
    pub deps: DepMap,
}

impl<U: Wire> Entry<U> {
    fn write_payload(&self, w: &mut Writer) {
        w.varint(self.rid.issuer.index() as u64);
        w.varint(self.rid.seq);
        let deps: Vec<(Pid, MethodId, u64)> = self.deps.iter().collect();
        w.varint(deps.len() as u64);
        for (p, m, c) in deps {
            w.varint(p.index() as u64);
            w.varint(m.index() as u64);
            w.varint(c);
        }
        self.update.encode(w);
    }

    /// Encode the payload portion of a ring entry.
    pub fn encode_payload(&self) -> Vec<u8> {
        let mut w = Writer::new();
        self.write_payload(&mut w);
        w.into_vec()
    }

    /// Encode the payload portion into `out`, reusing its allocation.
    pub fn encode_payload_into(&self, out: &mut Vec<u8>) {
        let mut w = Writer::from_vec(std::mem::take(out));
        self.write_payload(&mut w);
        *out = w.into_vec();
    }

    /// Decode the payload portion of a ring entry.
    ///
    /// # Errors
    ///
    /// [`DecodeError`] on malformed bytes.
    pub fn decode_payload(bytes: &[u8]) -> Result<Self, DecodeError> {
        let mut r = Reader::new(bytes);
        let issuer = Pid(r.varint()? as usize);
        let seq = r.varint()?;
        let ndeps = r.varint()? as usize;
        if ndeps > bytes.len() {
            return Err(DecodeError);
        }
        let mut deps = Vec::with_capacity(ndeps);
        for _ in 0..ndeps {
            deps.push((Pid(r.varint()? as usize), MethodId(r.varint()? as usize), r.varint()?));
        }
        let update = U::decode(&mut r)?;
        Ok(Entry { rid: Rid::new(issuer, seq), update, deps: DepMap::from_entries(deps) })
    }

    /// Render a full ring-entry slot of `slot_size` bytes carrying
    /// sequence number `seq`.
    ///
    /// # Panics
    ///
    /// Panics if the payload exceeds the slot (raise
    /// `RuntimeConfig::payload_cap`).
    pub fn to_slot(&self, seq: u64, slot_size: usize) -> Vec<u8> {
        let mut slot = Vec::new();
        self.to_slot_into(seq, slot_size, &mut slot);
        slot
    }

    /// Render a full ring-entry slot into `out`, reusing its
    /// allocation: the header is laid down, the payload is encoded in
    /// place behind it (no intermediate payload `Vec`), and the slot is
    /// padded to `slot_size` with the canary trailer last.
    ///
    /// # Panics
    ///
    /// Panics if the payload exceeds the slot (raise
    /// `RuntimeConfig::payload_cap`).
    pub fn to_slot_into(&self, seq: u64, slot_size: usize, out: &mut Vec<u8>) {
        let mut w = Writer::from_vec(std::mem::take(out));
        w.bytes(&[0u8; 10]);
        self.write_payload(&mut w);
        let mut slot = w.into_vec();
        let payload_len = slot.len() - 10;
        // The length field is a u16: a longer payload would silently
        // truncate its recorded length and corrupt the decoded entry
        // even when the slot itself is large enough.
        assert!(
            payload_len <= u16::MAX as usize,
            "entry payload of {payload_len} bytes overflows the u16 length field"
        );
        let cap = slot_size.saturating_sub(10 + CANARY_TRAILER);
        assert!(
            payload_len <= cap,
            "payload of {payload_len} bytes exceeds slot capacity {cap}"
        );
        slot[0..8].copy_from_slice(&seq.to_le_bytes());
        slot[8..10].copy_from_slice(&(payload_len as u16).to_le_bytes());
        slot.resize(slot_size, 0);
        slot[slot_size - CANARY_TRAILER..].copy_from_slice(&seq.to_le_bytes());
        *out = slot;
    }

    /// Parse a ring-entry slot if it completely holds entry `expect_seq`
    /// (sequence matches and the canary trailer has landed; the cheap
    /// [`slot_ready`] prefix check runs before any payload decode).
    pub fn from_slot(slot: &[u8], expect_seq: u64) -> Option<Self> {
        if !slot_ready(slot, expect_seq) {
            return None;
        }
        let len = u16::from_le_bytes(slot[8..10].try_into().ok()?) as usize;
        if 10 + len > slot.len() - CANARY_TRAILER {
            return None;
        }
        Self::decode_payload(&slot[10..10 + len]).ok()
    }
}

/// A decoded summary slot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SummarySlot<U> {
    /// Version: how many calls were folded into this summary.
    pub version: u64,
    /// Applied-call counts for each method of the summarization group,
    /// in group order (advances `A(source, u)` at readers).
    pub counts: Vec<u64>,
    /// The summarized call (`None` only for the never-written slot).
    pub summary: Option<U>,
}

impl<U: Wire> SummarySlot<U> {
    /// Render the used prefix of a slot of capacity `slot_size`
    /// (`RuntimeConfig::summary_slot_size(counts.len())`): the returned
    /// bytes are exactly what a REDUCE remote-writes.
    ///
    /// # Panics
    ///
    /// Panics if the payload exceeds the slot capacity.
    pub fn to_slot(&self, slot_size: usize) -> Vec<u8> {
        let mut slot = Vec::new();
        self.to_slot_into(slot_size, &mut slot);
        slot
    }

    /// Render the used prefix into `out`, reusing its allocation (the
    /// summarized call is encoded in place, no intermediate `Vec`).
    ///
    /// # Panics
    ///
    /// Panics if the payload exceeds the slot capacity.
    pub fn to_slot_into(&self, slot_size: usize, out: &mut Vec<u8>) {
        Self::encode_parts_into(self.version, &self.counts, self.summary.as_ref(), slot_size, out)
    }

    /// [`to_slot_into`](Self::to_slot_into) from borrowed parts — the
    /// runtime encodes straight out of its summary cache without
    /// cloning the counts or the summarized call.
    pub fn encode_parts_into(
        version: u64,
        counts: &[u64],
        summary: Option<&U>,
        slot_size: usize,
        out: &mut Vec<u8>,
    ) {
        let g = counts.len();
        let head = 8 + 8 * g + 2;
        let mut w = Writer::from_vec(std::mem::take(out));
        w.bytes(&version.to_le_bytes());
        for c in counts {
            w.bytes(&c.to_le_bytes());
        }
        w.bytes(&[0u8; 2]);
        if let Some(u) = summary {
            u.encode(&mut w);
        }
        let mut slot = w.into_vec();
        let payload_len = slot.len() - head;
        // The summary slot capacity scales with the workload
        // (`RuntimeConfig::summary_payload_cap`), so unlike ring
        // entries it can legitimately exceed 64 KiB — the u16 length
        // field is the binding limit and must be checked explicitly or
        // `payload_len as u16` truncates silently.
        assert!(
            payload_len <= u16::MAX as usize,
            "summary payload of {payload_len} bytes overflows the u16 length field"
        );
        assert!(
            head + payload_len + 8 <= slot_size,
            "summary payload of {} bytes exceeds slot capacity {}",
            payload_len,
            slot_size - head - 8
        );
        slot[head - 2..head].copy_from_slice(&(payload_len as u16).to_le_bytes());
        slot.extend_from_slice(&version.to_le_bytes());
        *out = slot;
    }

    /// Parse a summary slot with `group_len` methods; `None` if the
    /// seqlock check fails (a write is in flight) or the slot is empty.
    pub fn from_slot(slot: &[u8], group_len: usize) -> Option<Self> {
        let version = u64::from_le_bytes(slot.get(0..8)?.try_into().ok()?);
        if version == 0 {
            return None;
        }
        let mut counts = Vec::with_capacity(group_len);
        for i in 0..group_len {
            counts.push(u64::from_le_bytes(slot.get(8 + 8 * i..16 + 8 * i)?.try_into().ok()?));
        }
        let head = 8 + 8 * group_len + 2;
        let len = u16::from_le_bytes(slot.get(head - 2..head)?.try_into().ok()?) as usize;
        let trailer = slot.get(head + len..head + len + 8)?;
        let trailing = u64::from_le_bytes(trailer.try_into().ok()?);
        if version != trailing {
            return None;
        }
        let summary = if len == 0 {
            None
        } else {
            Some(U::from_bytes(&slot[head..head + len]).ok()?)
        };
        Some(SummarySlot { version, counts, summary })
    }
}

/// Marker in backup slots: a conflict-free ring entry.
pub const BACKUP_FREE: u8 = 1;
/// Marker in backup slots: a summary slot.
pub const BACKUP_SUMMARY: u8 = 2;

/// Compose a backup-slot image of `slot_size` bytes:
///
/// ```text
/// [0]       kind (BACKUP_FREE / BACKUP_SUMMARY; 0 = cleared)
/// [1]       group (sync group for summaries, 0xff for free entries)
/// [2..10)   seq (ring seq for free entries, version for summaries)
/// [10..12)  inner length (u16 LE)
/// [12..)    inner slot image
/// ```
///
/// # Panics
///
/// Panics if the inner image exceeds the u16 length field or the slot.
pub fn compose_backup_slot(
    kind: u8,
    group: u8,
    seq: u64,
    inner: &[u8],
    slot_size: usize,
) -> Vec<u8> {
    assert!(
        inner.len() <= u16::MAX as usize,
        "backup inner image of {} bytes overflows the u16 length field",
        inner.len()
    );
    assert!(
        12 + inner.len() <= slot_size,
        "backup inner image of {} bytes exceeds slot capacity {}",
        inner.len(),
        slot_size - 12
    );
    let mut buf = vec![0u8; slot_size];
    buf[0] = kind;
    buf[1] = group;
    buf[2..10].copy_from_slice(&seq.to_le_bytes());
    buf[10..12].copy_from_slice(&(inner.len() as u16).to_le_bytes());
    buf[12..12 + inner.len()].copy_from_slice(inner);
    buf
}

/// Parse a backup-slot image composed by [`compose_backup_slot`].
/// Returns `(kind, group, seq, inner)` or `None` for a cleared slot,
/// an unknown kind, or a length past the slot end.
pub fn parse_backup_slot(slot: &[u8]) -> Option<(u8, u8, u64, &[u8])> {
    if slot.len() < 12 {
        return None;
    }
    let kind = slot[0];
    if kind != BACKUP_FREE && kind != BACKUP_SUMMARY {
        return None;
    }
    let group = slot[1];
    let seq = u64::from_le_bytes(slot[2..10].try_into().ok()?);
    let len = u16::from_le_bytes(slot[10..12].try_into().ok()?) as usize;
    let inner = slot.get(12..12 + len)?;
    Some((kind, group, seq, inner))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hamband_core::demo::{Account, AccountUpdate};
    use hamband_core::object::ObjectSpec;

    fn entry() -> Entry<AccountUpdate> {
        Entry {
            rid: Rid::new(Pid(2), 17),
            update: Account::withdraw(40),
            deps: DepMap::from_entries([(Pid(0), MethodId(0), 3), (Pid(1), MethodId(0), 5)]),
        }
    }

    #[test]
    fn payload_roundtrip() {
        let e = entry();
        let bytes = e.encode_payload();
        let back = Entry::<AccountUpdate>::decode_payload(&bytes).unwrap();
        assert_eq!(back, e);
    }

    #[test]
    fn slot_roundtrip() {
        let e = entry();
        let slot = e.to_slot(9, 107);
        assert_eq!(slot.len(), 107);
        let back = Entry::<AccountUpdate>::from_slot(&slot, 9).unwrap();
        assert_eq!(back, e);
    }

    #[test]
    fn to_slot_into_reuses_dirty_buffers_bit_for_bit() {
        let e = entry();
        let fresh = e.to_slot(9, 107);
        // A recycled buffer full of stale garbage must not leak into
        // the encoded slot (the padding bytes are remote-written).
        let mut recycled = vec![0xffu8; 300];
        e.to_slot_into(9, 107, &mut recycled);
        assert_eq!(recycled, fresh);
        let mut payload = vec![0xeeu8; 64];
        e.encode_payload_into(&mut payload);
        assert_eq!(payload, e.encode_payload());
    }

    #[test]
    fn slot_ready_matches_from_slot_visibility() {
        let e = entry();
        let slot = e.to_slot(9, 107);
        assert!(slot_ready(&slot, 9));
        assert!(!slot_ready(&slot, 10), "wrong seq");
        let mut torn = slot.clone();
        let tail = torn.len() - CANARY_TRAILER;
        torn[tail..].fill(0);
        assert!(!slot_ready(&torn, 9), "missing canary trailer");
        // A trailer echoing a *different* sequence (stale epoch after
        // ring wraparound) is just as invisible as a missing one.
        let mut stale = slot.clone();
        stale[tail..].copy_from_slice(&4u64.to_le_bytes());
        assert!(!slot_ready(&stale, 9), "stale-epoch trailer");
        assert!(!slot_ready(&[0u8; 107], 1), "never written");
        assert!(!slot_ready(&[], 1), "too short");
    }

    #[test]
    fn summary_version_peeks_without_parsing() {
        let s = SummarySlot { version: 7, counts: vec![7], summary: Some(Account::deposit(1)) };
        let slot = s.to_slot(4096);
        assert_eq!(summary_version(&slot), 7);
        assert_eq!(summary_version(&[0u8; 26]), 0, "never written");
        assert_eq!(summary_version(&[1, 2]), 0, "too short");
    }

    #[test]
    fn summary_to_slot_into_reuses_dirty_buffers_bit_for_bit() {
        let s = SummarySlot { version: 4, counts: vec![4], summary: Some(Account::deposit(12)) };
        let fresh = s.to_slot(4096);
        let mut recycled = vec![0xddu8; 512];
        s.to_slot_into(4096, &mut recycled);
        assert_eq!(recycled, fresh);
    }

    #[test]
    fn slot_with_wrong_seq_is_invisible() {
        let e = entry();
        let slot = e.to_slot(9, 107);
        assert!(Entry::<AccountUpdate>::from_slot(&slot, 10).is_none());
        assert!(Entry::<AccountUpdate>::from_slot(&slot, 8).is_none());
    }

    #[test]
    fn slot_without_canary_is_invisible() {
        let e = entry();
        let mut slot = e.to_slot(9, 107);
        let tail = slot.len() - CANARY_TRAILER;
        slot[tail..].fill(0);
        assert!(
            Entry::<AccountUpdate>::from_slot(&slot, 9).is_none(),
            "a torn write must not be readable"
        );
    }

    #[test]
    fn empty_slot_is_invisible() {
        let slot = vec![0u8; 107];
        assert!(Entry::<AccountUpdate>::from_slot(&slot, 1).is_none());
    }

    #[test]
    fn summary_roundtrip() {
        let acc = Account::default();
        let s = SummarySlot {
            version: 4,
            counts: vec![4],
            summary: Some(acc.apply(&0, &Account::deposit(0)))
                .map(|_| Account::deposit(12)),
        };
        let size = 8 + 8 + 2 + 96 + 8;
        let slot = s.to_slot(size);
        let back = SummarySlot::<AccountUpdate>::from_slot(&slot, 1).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn summary_seqlock_rejects_mismatch() {
        let s = SummarySlot { version: 4, counts: vec![4], summary: Some(Account::deposit(12)) };
        let size = 8 + 8 + 2 + 96 + 8;
        let mut slot = s.to_slot(size);
        // Simulate a torn overwrite: trailing version not yet landed.
        let end = slot.len();
        slot[end - 8..].copy_from_slice(&3u64.to_le_bytes());
        assert!(SummarySlot::<AccountUpdate>::from_slot(&slot, 1).is_none());
    }

    #[test]
    fn summary_write_covers_only_used_bytes() {
        let s = SummarySlot { version: 1, counts: vec![1], summary: Some(Account::deposit(3)) };
        let slot = s.to_slot(4096);
        assert!(slot.len() < 40, "write size tracks content, got {}", slot.len());
    }

    #[test]
    fn never_written_summary_is_none() {
        let size = 8 + 8 + 2 + 96 + 8;
        let slot = vec![0u8; size];
        assert!(SummarySlot::<AccountUpdate>::from_slot(&slot, 1).is_none());
    }

    #[test]
    #[should_panic(expected = "exceeds slot capacity")]
    fn oversized_payload_panics() {
        let e = Entry {
            rid: Rid::new(Pid(0), 0),
            update: Account::deposit(u64::MAX),
            deps: DepMap::empty(),
        };
        let _ = e.to_slot(1, 12);
    }

    /// Test-only update whose encoding is an arbitrary-length blob, to
    /// drive payloads past the u16 length field.
    #[derive(Debug, Clone, PartialEq, Eq)]
    struct Blob(Vec<u8>);

    impl Wire for Blob {
        fn encode(&self, w: &mut Writer) {
            w.lp_bytes(&self.0);
        }
        fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
            Ok(Blob(r.lp_bytes()?.to_vec()))
        }
    }

    #[test]
    #[should_panic(expected = "overflows the u16 length field")]
    fn entry_payload_past_u16_panics_instead_of_truncating() {
        // Regression: with a slot large enough to hold it, a >64 KiB
        // payload used to have its length silently truncated by
        // `as u16`, producing a decodable-but-corrupt entry.
        let e = Entry {
            rid: Rid::new(Pid(0), 1),
            update: Blob(vec![0x5a; (u16::MAX as usize) + 10]),
            deps: DepMap::empty(),
        };
        let _ = e.to_slot(1, 2 * 1024 * 1024);
    }

    #[test]
    #[should_panic(expected = "overflows the u16 length field")]
    fn summary_payload_past_u16_panics_instead_of_truncating() {
        // Regression: the summary payload cap scales with the workload
        // (`total_ops * 16`) and can legitimately exceed u16::MAX, at
        // which point `as u16` used to truncate the recorded length.
        let s = SummarySlot {
            version: 1,
            counts: vec![1],
            summary: Some(Blob(vec![0xa5; (u16::MAX as usize) + 1])),
        };
        let _ = s.to_slot(2 * 1024 * 1024);
    }

    #[test]
    fn biggest_legal_payload_roundtrips() {
        // The u16 boundary itself is fine in both directions.
        let e = Entry {
            rid: Rid::new(Pid(1), 2),
            // lp_bytes spends 3 varint bytes on the length, and the
            // rid/deps header a few more; stay just under the field max.
            update: Blob(vec![7u8; (u16::MAX as usize) - 8]),
            deps: DepMap::empty(),
        };
        let slot = e.to_slot(3, 128 * 1024);
        let back = Entry::<Blob>::from_slot(&slot, 3).unwrap();
        assert_eq!(back, e);
    }

    #[test]
    fn backup_slot_roundtrip() {
        let inner = entry().to_slot(17, 107);
        let slot = compose_backup_slot(BACKUP_FREE, 0xff, 17, &inner, 256);
        assert_eq!(slot.len(), 256);
        let (kind, group, seq, got) = parse_backup_slot(&slot).unwrap();
        assert_eq!(kind, BACKUP_FREE);
        assert_eq!(group, 0xff);
        assert_eq!(seq, 17);
        assert_eq!(got, &inner[..]);
        // The inner image parses back to the original entry.
        let back = Entry::<AccountUpdate>::from_slot(got, 17).unwrap();
        assert_eq!(back, entry());
    }

    #[test]
    fn backup_slot_rejects_cleared_and_garbage() {
        assert!(parse_backup_slot(&[0u8; 64]).is_none(), "cleared slot");
        assert!(parse_backup_slot(&[9u8; 64]).is_none(), "unknown kind");
        assert!(parse_backup_slot(&[1u8; 8]).is_none(), "too short");
        let mut slot = compose_backup_slot(BACKUP_SUMMARY, 2, 3, &[1, 2, 3], 64);
        // Corrupt the length so it points past the slot end.
        slot[10..12].copy_from_slice(&1000u16.to_le_bytes());
        assert!(parse_backup_slot(&slot).is_none());
    }

    #[test]
    #[should_panic(expected = "exceeds slot capacity")]
    fn backup_slot_overflow_panics() {
        let _ = compose_backup_slot(BACKUP_FREE, 0xff, 1, &[0u8; 64], 32);
    }
}
