//! FREE path: irreducible conflict-free calls broadcast through
//! per-source `F` rings.
//!
//! Fig. 7's FREE rule: the call is applied locally at issue, paired
//! with its dependency projection, and appended to the `F` ring this
//! node feeds at every peer. Peers apply entries in ring order once the
//! dependency map is satisfied. The client is acknowledged when every
//! remote append completes (reliable broadcast: a backup slot holds the
//! entry until then).

use hamband_core::ids::{MethodId, Pid};
use hamband_core::object::WorkloadSupport;
use hamband_core::wire::Wire;
use rdma_sim::{CompletionStatus, NodeId, Phase, RingKind, WrId};

use crate::calls::Outstanding;
use crate::codec::Entry;
use crate::replica::HambandNode;
use crate::rings::{RingReader, RingWriter};
use crate::transport::Transport;

impl<O> HambandNode<O>
where
    O: WorkloadSupport,
    O::Update: Wire,
{
    /// Build the `F`-ring endpoints: one writer feeding our ring at
    /// each peer, one reader over each peer's ring copy here.
    pub(crate) fn setup_free_endpoints(&mut self) {
        for src in 0..self.n {
            let node = NodeId(src);
            if node == self.me {
                self.free_writers.push(None);
                self.free_readers.push(None);
                continue;
            }
            self.free_writers.push(Some(
                RingWriter::new(
                    RingKind::Free,
                    node,
                    self.layout.free_rings,
                    self.layout.free_ring_base(self.me),
                    self.layout.free_cap(),
                    self.layout.entry_size(),
                    self.layout.heads,
                    self.layout.free_head_offset(self.me),
                )
                .with_max_batch(self.cfg.max_batch),
            ));
            self.free_readers.push(Some(RingReader::new(
                RingKind::Free,
                self.layout.free_rings,
                self.layout.free_ring_base(node),
                self.layout.free_cap(),
                self.layout.entry_size(),
                self.layout.heads,
                self.layout.free_head_offset(node),
            )));
        }
    }

    /// FREE: apply locally, append to every peer's `F` ring.
    pub(crate) fn issue_free<T: Transport>(
        &mut self,
        ctx: &mut T,
        update: O::Update,
        method: MethodId,
        session: u32,
    ) {
        if !self.permissible_now(&update) {
            self.reject(method, session);
            return;
        }
        ctx.consume(ctx.latency().apply_cost);
        let deps = self.applied.project(self.coord.dependencies(method));
        let (call_id, rid) = self.mint_call(method);
        self.spec.apply_mut(&mut self.sigma, &update);
        self.apply_to_views(&update);
        self.applied.increment(Pid(self.me.index()), method);
        self.metrics.last_apply = ctx.now();

        let entry = Entry { rid, update, deps };
        let mut seq_assigned = None;
        let mut remotes = 0;
        for q in 0..self.n {
            if q == self.me.index() {
                continue;
            }
            let w = self.free_writers[q].as_mut().expect("writer for peer");
            let seq = w.append(ctx, &entry);
            match seq_assigned {
                None => seq_assigned = Some(seq),
                Some(s) => assert_eq!(s, seq, "free rings advance in lockstep"),
            }
            remotes += 1;
        }
        let backup_slot = seq_assigned.map(|seq| {
            let slot = entry.to_slot(seq, self.layout.entry_size());
            self.write_backup(ctx, call_id, crate::codec::BACKUP_FREE, 0xff, seq, &slot)
        });
        // Durability seam: the issuer's own entry is hard state (it was
        // applied to σ above) — log and fence it before the appends can
        // reach any peer.
        if self.log.is_some() {
            if let Some(seq) = seq_assigned {
                let slot = entry.to_slot(seq, self.layout.entry_size());
                let src = self.me.index() as u32;
                self.log_and_fence(ctx, &crate::persist::LogRecord::FreeSlot { src, slot });
            }
        }
        if let Some(seq) = seq_assigned {
            self.free_call_by_seq.insert(seq, call_id);
        }
        self.outstanding.insert(
            call_id,
            Outstanding {
                issued_at: self.pending_arrival.take().unwrap_or_else(|| ctx.now()),
                method,
                session,
                phase: Phase::Free,
                conf: None,
                ack_remaining: remotes,
                total_remaining: remotes,
                backup_slot,
            },
        );
        if remotes == 0 {
            self.finish_call(ctx, call_id);
        }
    }

    /// Apply every deliverable entry from each peer's `F` ring (in ring
    /// order, gated by each entry's dependency map).
    pub(crate) fn poll_free<T: Transport>(&mut self, ctx: &mut T) {
        for src in 0..self.n {
            if src == self.me.index() {
                continue;
            }
            loop {
                let entry = {
                    let reader = self.free_readers[src].as_ref().expect("reader for peer");
                    reader.peek::<O::Update>(ctx)
                };
                let Some(entry) = entry else { break };
                if !self.applied.satisfies(&entry.deps) {
                    break; // blocked on a dependency; retry next poll
                }
                ctx.consume(ctx.latency().apply_cost);
                let method = self.spec.method_of(&entry.update);
                self.spec.apply_mut(&mut self.sigma, &entry.update);
                self.apply_to_views(&entry.update);
                self.applied.increment(entry.rid.issuer, method);
                self.metrics.remote_applied += 1;
                self.metrics.last_apply = ctx.now();
                // Durability seam: log+fence the applied entry *before*
                // publishing the head — the durable frontier must never
                // trail what the writer is told it may overwrite.
                if self.log.is_some() {
                    let slot = {
                        let reader = self.free_readers[src].as_ref().expect("reader");
                        let seq = reader.next_seq();
                        reader.raw_slot(ctx, seq).to_vec()
                    };
                    self.log_and_fence(
                        ctx,
                        &crate::persist::LogRecord::FreeSlot { src: src as u32, slot },
                    );
                }
                self.free_readers[src].as_mut().expect("reader").advance(ctx, NodeId(src));
            }
        }
    }

    /// Feed an `F`-ring append completion to whichever free writer
    /// posted it; returns `true` if one claimed it. A coalesced WRITE
    /// completes every entry it spans.
    pub(crate) fn on_free_completion<T: Transport>(
        &mut self,
        ctx: &mut T,
        wr: WrId,
        status: CompletionStatus,
        data: Option<&[u8]>,
    ) -> bool {
        let mut free_done = None;
        for q in 0..self.n {
            if let Some(w) = self.free_writers.get_mut(q).and_then(|w| w.as_mut()) {
                if let Some(done) = w.on_completion(ctx, wr, status, data) {
                    free_done = Some(done);
                    break;
                }
            }
        }
        let Some(done) = free_done else { return false };
        for seq in done.seqs() {
            if let Some(&cid) = self.free_call_by_seq.get(&seq) {
                self.on_free_write_done(ctx, cid, seq, done.status);
            }
        }
        true
    }

    fn on_free_write_done<T: Transport>(
        &mut self,
        ctx: &mut T,
        call_id: u64,
        seq: u64,
        status: CompletionStatus,
    ) {
        debug_assert!(status.is_success(), "free rings are never permission-revoked");
        let mut finished = false;
        let mut fully_done = false;
        if let Some(o) = self.outstanding.get_mut(&call_id) {
            o.total_remaining = o.total_remaining.saturating_sub(1);
            if o.ack_remaining > 0 && o.ack_remaining != usize::MAX {
                o.ack_remaining -= 1;
                if o.ack_remaining == 0 {
                    finished = true;
                }
            }
            fully_done = o.total_remaining == 0;
        }
        if fully_done {
            self.free_call_by_seq.remove(&seq);
            if !finished {
                // Already acked earlier; clean up now.
                if let Some(o) = self.outstanding.remove(&call_id) {
                    if let Some(idx) = o.backup_slot {
                        self.clear_backup(ctx, idx);
                    }
                }
                return;
            }
        }
        if finished {
            self.finish_call(ctx, call_id);
        }
    }
}
