//! The durability seam: what a replica must be able to read back after
//! a crash-restart, and in which format.
//!
//! The paper's failure model is crash-stop, but a production replica
//! restarts. The seam this module introduces separates every layer's
//! *hard* state (what must survive a power cycle) from its *soft* state
//! (reconstructible from hard state plus the fabric):
//!
//! * **Region durability** is declared at allocation time
//!   ([`Layout::plan`](crate::layout::Layout::plan) passes a `durable`
//!   flag per region): remote one-sided WRITEs become durable as they
//!   land (battery-backed NIC placement), while *local* CPU stores are
//!   volatile until an explicit [`Transport::fence_region`] — an RDMA
//!   WRITE completion does not imply remote durability, so fence points
//!   are explicit in the code, never implied by completions.
//! * **The per-node persist log** (this module) is the replica's own
//!   write-ahead record of applied state: every applied ring entry and
//!   every consensus hard-state transition (epoch, vote, committed
//!   prefix of a [`GroupEngine`](crate::conf::GroupEngine)) is appended
//!   as a [`LogRecord`] and fenced *before* the side effect it covers
//!   becomes observable (ring-reader head publication, leader ack).
//!
//! The on-disk(-simulated) format is versioned and self-delimiting:
//! an 8-byte header (magic + format version) followed by records of
//! `[len: u32 LE][body][canary: u8]`, where the canary is a fold over
//! the body. Replay stops cleanly at the first zero length or canary
//! mismatch — that is the torn frontier, everything past the last fence
//! is discarded — while a header from a *newer* format version fails
//! loudly instead of misreading ([`FormatError::NewerVersion`]).

use rdma_sim::RegionId;

use crate::transport::Transport;

/// Magic word leading every persist log ("HMBD" big-endian).
pub const MAGIC: u32 = 0x484D_4244;

/// The current persist-log format version. Decoders reject anything
/// newer; anything older would be migrated (no older versions exist
/// yet).
pub const FORMAT_VERSION: u16 = 1;

/// Bytes of the log header: magic (4) + version (2) + reserved (2).
pub const HEADER_BYTES: usize = 8;

/// Whether replicas maintain durable state for crash-restart.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DurabilityMode {
    /// Crash-stop only (the paper's model): no persist log, no fences,
    /// no durable-region shadowing. Byte-identical traces to the
    /// pre-seam runtime.
    Off,
    /// Maintain the persist log with explicit fence points; a node hit
    /// by [`Fault::Restart`](rdma_sim::Fault) replays it and rejoins.
    Fenced,
}

impl DurabilityMode {
    /// The env-derived default: `HAMBAND_DURABILITY=fenced` turns the
    /// seam on for every run in the process (used by chaos smokes).
    pub fn from_env() -> Self {
        match std::env::var("HAMBAND_DURABILITY") {
            Ok(v) if v.eq_ignore_ascii_case("fenced") || v == "1" => DurabilityMode::Fenced,
            _ => DurabilityMode::Off,
        }
    }
}

/// Why a persist log could not be decoded at all (per-record damage is
/// not an error: it marks the torn frontier and replay stops there).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FormatError {
    /// The header magic is wrong — this is not a persist log.
    BadMagic(u32),
    /// The log was written by a newer format version than this decoder
    /// understands. Reading it anyway could misparse hard state, so
    /// this fails loudly instead.
    NewerVersion(u16),
}

impl std::fmt::Display for FormatError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FormatError::BadMagic(m) => write!(f, "persist log magic {m:#010x} != {MAGIC:#010x}"),
            FormatError::NewerVersion(v) => write!(
                f,
                "persist log format v{v} is newer than this decoder (v{FORMAT_VERSION}); refusing to guess"
            ),
        }
    }
}

impl std::error::Error for FormatError {}

/// One durable record: a unit of hard state some layer declared against
/// the seam.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LogRecord {
    /// An applied conflict-free ring entry: the raw slot bytes of
    /// source `src`'s ring at the sequence the slot itself carries.
    /// Logged by the issuer at issue time and by every consumer before
    /// it publishes its reader head past the entry.
    FreeSlot {
        /// The ring's owning source node.
        src: u32,
        /// The raw encoded slot (seq prefix + entry + canary trailer).
        slot: Vec<u8>,
    },
    /// An applied conflicting ring entry of mapped group `group`
    /// (same raw-slot encoding as [`LogRecord::FreeSlot`]).
    ConfSlot {
        /// Mapped group index (sync group × shard).
        group: u32,
        /// The raw encoded slot.
        slot: Vec<u8>,
    },
    /// A [`GroupEngine`](crate::conf::GroupEngine) hard-state
    /// transition: the consensus state that must never roll back.
    GroupHard {
        /// Mapped group index.
        group: u32,
        /// Highest epoch this node has adopted a leader for.
        epoch: u64,
        /// Highest epoch this node has promised (voted for).
        promised: u64,
        /// Committed prefix of the group's `L` ring as last persisted.
        commit: u64,
    },
}

const REC_FREE: u8 = 1;
const REC_CONF: u8 = 2;
const REC_HARD: u8 = 3;

/// The canary closing each record: a multiplicative fold over the body,
/// with a computed value of zero remapped to `0xA5`. The remap makes
/// the *stored* canary never zero — and a torn record's canary position
/// reads back zero (the region tail was never written), so a record cut
/// anywhere before its canary byte can never validate, no matter what
/// the fold of its zero-filled body happens to be.
fn canary(body: &[u8]) -> u8 {
    let c = body.iter().fold(0x5Au8, |a, &b| a.wrapping_mul(31).wrapping_add(b));
    if c == 0 {
        0xA5
    } else {
        c
    }
}

/// Encode the log header (magic + current format version) into `out`.
pub fn encode_header(out: &mut Vec<u8>) {
    out.extend_from_slice(&MAGIC.to_le_bytes());
    out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    out.extend_from_slice(&[0u8; 2]);
}

/// Append the framed encoding of `rec` to `out`:
/// `[len u32 LE][body][canary u8]` with `len = body.len()`.
pub fn encode_record(rec: &LogRecord, out: &mut Vec<u8>) {
    let start = out.len();
    out.extend_from_slice(&[0u8; 4]); // len placeholder
    match rec {
        LogRecord::FreeSlot { src, slot } => {
            out.push(REC_FREE);
            out.extend_from_slice(&src.to_le_bytes());
            out.extend_from_slice(slot);
        }
        LogRecord::ConfSlot { group, slot } => {
            out.push(REC_CONF);
            out.extend_from_slice(&group.to_le_bytes());
            out.extend_from_slice(slot);
        }
        LogRecord::GroupHard { group, epoch, promised, commit } => {
            out.push(REC_HARD);
            out.extend_from_slice(&group.to_le_bytes());
            out.extend_from_slice(&epoch.to_le_bytes());
            out.extend_from_slice(&promised.to_le_bytes());
            out.extend_from_slice(&commit.to_le_bytes());
        }
    }
    let body_len = out.len() - start - 4;
    out[start..start + 4].copy_from_slice(&(body_len as u32).to_le_bytes());
    let c = canary(&out[start + 4..]);
    out.push(c);
}

fn decode_body(body: &[u8]) -> Option<LogRecord> {
    let (&tag, rest) = body.split_first()?;
    let u32_at = |b: &[u8], o: usize| Some(u32::from_le_bytes(b.get(o..o + 4)?.try_into().ok()?));
    let u64_at = |b: &[u8], o: usize| Some(u64::from_le_bytes(b.get(o..o + 8)?.try_into().ok()?));
    match tag {
        REC_FREE => Some(LogRecord::FreeSlot { src: u32_at(rest, 0)?, slot: rest.get(4..)?.to_vec() }),
        REC_CONF => Some(LogRecord::ConfSlot { group: u32_at(rest, 0)?, slot: rest.get(4..)?.to_vec() }),
        REC_HARD => {
            if rest.len() != 4 + 24 {
                return None;
            }
            Some(LogRecord::GroupHard {
                group: u32_at(rest, 0)?,
                epoch: u64_at(rest, 4)?,
                promised: u64_at(rest, 12)?,
                commit: u64_at(rest, 20)?,
            })
        }
        _ => None,
    }
}

/// Decode a whole persist log image. Returns the valid records and the
/// byte offset one past the last valid record (the append cursor for a
/// restarted writer).
///
/// Per-record damage — a zero length, a length overrunning the region,
/// a canary mismatch, an unknown record tag — is the *torn frontier*:
/// decoding stops cleanly there (everything before it was fenced and is
/// trusted; everything at or past it is discarded). Only a damaged or
/// too-new *header* is an error.
pub fn decode_log(bytes: &[u8]) -> Result<(Vec<LogRecord>, usize), FormatError> {
    assert!(bytes.len() >= HEADER_BYTES, "persist region smaller than its header");
    let magic = u32::from_le_bytes(bytes[0..4].try_into().expect("4 bytes"));
    if magic != MAGIC {
        return Err(FormatError::BadMagic(magic));
    }
    let version = u16::from_le_bytes(bytes[4..6].try_into().expect("2 bytes"));
    if version > FORMAT_VERSION {
        return Err(FormatError::NewerVersion(version));
    }
    let mut records = Vec::new();
    let mut at = HEADER_BYTES;
    while let Some(len_bytes) = bytes.get(at..at + 4) {
        let len = u32::from_le_bytes(len_bytes.try_into().expect("4 bytes")) as usize;
        if len == 0 {
            break;
        }
        let Some(body) = bytes.get(at + 4..at + 4 + len) else { break };
        let Some(&c) = bytes.get(at + 4 + len) else { break };
        if c != canary(body) {
            break;
        }
        let Some(rec) = decode_body(body) else { break };
        records.push(rec);
        at += 4 + len + 1;
    }
    Ok((records, at))
}

/// A replica's persist log over one durable region: framed appends at a
/// cursor, explicit fences, and whole-log replay after a restart.
///
/// Appends are local CPU stores ([`Transport::local_write`]) — volatile
/// until [`NodeLog::fence`]. The protocol modules append records and
/// fence at their own seam points (before a reader-head publication,
/// before a vote leaves the node); the log itself never decides when.
#[derive(Debug)]
pub struct NodeLog {
    region: RegionId,
    cap: usize,
    cursor: usize,
    buf: Vec<u8>,
}

impl NodeLog {
    /// A log over `region` of `cap` bytes. Call [`NodeLog::init`] once
    /// at node start (it writes and fences the header).
    pub fn new(region: RegionId, cap: usize) -> Self {
        assert!(cap > HEADER_BYTES, "persist region must hold at least its header");
        NodeLog { region, cap, cursor: HEADER_BYTES, buf: Vec::new() }
    }

    /// Write and fence the header. The log is unreplayable until this
    /// is durable, so it fences immediately.
    pub fn init<T: Transport>(&mut self, ctx: &mut T) {
        self.buf.clear();
        encode_header(&mut self.buf);
        let buf = std::mem::take(&mut self.buf);
        ctx.local_write(self.region, 0, &buf);
        ctx.fence_region(self.region);
        self.buf = buf;
    }

    /// Append one record at the cursor (volatile until the next
    /// [`NodeLog::fence`]). Panics if the region is full: the log is
    /// sized by [`RuntimeConfig::persist_log_bytes`](crate::config::RuntimeConfig::persist_log_bytes)
    /// and overflowing it silently would forfeit the durability claim.
    pub fn append<T: Transport>(&mut self, ctx: &mut T, rec: &LogRecord) {
        self.buf.clear();
        encode_record(rec, &mut self.buf);
        assert!(
            self.cursor + self.buf.len() <= self.cap,
            "persist log overflow at {} + {} > {} bytes",
            self.cursor,
            self.buf.len(),
            self.cap
        );
        let buf = std::mem::take(&mut self.buf);
        ctx.local_write(self.region, self.cursor, &buf);
        self.cursor += buf.len();
        self.buf = buf;
    }

    /// Fence the log region: everything appended so far survives a
    /// restart even when the restart loses unfenced writes.
    pub fn fence<T: Transport>(&mut self, ctx: &mut T) {
        ctx.fence_region(self.region);
    }

    /// Replay after a restart: decode the durable image, position the
    /// append cursor at the torn frontier, and return the trusted
    /// records in append order.
    pub fn replay<T: Transport>(&mut self, ctx: &mut T) -> Vec<LogRecord> {
        let image = ctx.local(self.region, 0, self.cap).to_vec();
        let (records, cursor) =
            decode_log(&image).expect("own persist log decodes (header is fenced at init)");
        self.cursor = cursor;
        records
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn sample_records() -> Vec<LogRecord> {
        vec![
            LogRecord::FreeSlot { src: 2, slot: vec![1, 0, 0, 0, 0, 0, 0, 0, 9, 9] },
            LogRecord::ConfSlot { group: 1, slot: vec![7; 24] },
            LogRecord::GroupHard { group: 3, epoch: 4, promised: 5, commit: 600 },
        ]
    }

    fn encode_all(recs: &[LogRecord]) -> Vec<u8> {
        let mut out = Vec::new();
        encode_header(&mut out);
        for r in recs {
            encode_record(r, &mut out);
        }
        out
    }

    /// Golden snapshot of the versioned encoding: any change to the
    /// framing, tags, field order, or canary is a format change and
    /// must bump `FORMAT_VERSION` (and update this test deliberately).
    #[test]
    fn golden_encoding_snapshot() {
        let image = encode_all(&sample_records());
        let expect: Vec<u8> = vec![
            // header: magic "HMBD" LE + version 1 + reserved
            0x44, 0x42, 0x4D, 0x48, 0x01, 0x00, 0x00, 0x00, //
            // FreeSlot src=2, 10-byte slot: len=15
            15, 0, 0, 0, 1, 2, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0, 9, 9, 0x24, //
            // ConfSlot group=1, 24 bytes of 7: len=29
            29, 0, 0, 0, 2, 1, 0, 0, 0, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7,
            7, 7, 7, 7, 7, 7, 0xC7, //
            // GroupHard group=3 epoch=4 promised=5 commit=600: len=29
            29, 0, 0, 0, 3, 3, 0, 0, 0, 4, 0, 0, 0, 0, 0, 0, 0, 5, 0, 0, 0, 0, 0, 0, 0, 0x58,
            0x02, 0, 0, 0, 0, 0, 0, 0x87,
        ];
        assert_eq!(image, expect, "persist format drifted without a FORMAT_VERSION bump");
    }

    #[test]
    fn roundtrip_decodes_to_cursor() {
        let recs = sample_records();
        let image = encode_all(&recs);
        let (got, cursor) = decode_log(&image).expect("decodes");
        assert_eq!(got, recs);
        assert_eq!(cursor, image.len());
    }

    /// Property test: random record sequences round-trip, and any
    /// truncation of the image decodes to a prefix of the records
    /// (replay never invents state past the torn frontier).
    #[test]
    fn random_roundtrip_and_truncation_prefix() {
        let mut rng = StdRng::seed_from_u64(0xD06_F00D);
        for _ in 0..200 {
            let recs: Vec<LogRecord> = (0..rng.gen_range(0..20))
                .map(|_| match rng.gen_range(0..3) {
                    0 => LogRecord::FreeSlot {
                        src: rng.gen_range(0..8),
                        slot: (0..rng.gen_range(1..64)).map(|_| rng.gen_range(0..=u8::MAX)).collect(),
                    },
                    1 => LogRecord::ConfSlot {
                        group: rng.gen_range(0..8),
                        slot: (0..rng.gen_range(1..64)).map(|_| rng.gen_range(0..=u8::MAX)).collect(),
                    },
                    _ => LogRecord::GroupHard {
                        group: rng.gen_range(0..8),
                        epoch: rng.gen_range(0..=u64::MAX),
                        promised: rng.gen_range(0..=u64::MAX),
                        commit: rng.gen_range(0..=u64::MAX),
                    },
                })
                .collect();
            let image = encode_all(&recs);
            let (got, cursor) = decode_log(&image).expect("well-formed image decodes");
            assert_eq!(got, recs);
            assert_eq!(cursor, image.len());
            // Truncate anywhere: the decode is a prefix, never garbage.
            let cut = rng.gen_range(HEADER_BYTES..=image.len());
            let mut torn = image[..cut].to_vec();
            torn.resize(image.len() + 64, 0); // zero tail, like a fresh region
            let (prefix, at) = decode_log(&torn).expect("torn image still decodes a prefix");
            assert!(prefix.len() <= recs.len());
            assert_eq!(prefix[..], recs[..prefix.len()], "prefix property violated");
            assert!(at <= cut.max(HEADER_BYTES));
        }
    }

    #[test]
    fn corrupt_canary_is_the_frontier() {
        let recs = sample_records();
        let mut image = encode_all(&recs);
        let last = image.len() - 1;
        image[last] ^= 0xFF; // smash the final record's canary
        image.resize(image.len() + 32, 0);
        let (got, _) = decode_log(&image).expect("header intact");
        assert_eq!(got.len(), recs.len() - 1, "damaged record discarded, prefix kept");
    }

    #[test]
    fn newer_format_version_fails_loudly() {
        let mut image = encode_all(&sample_records());
        let newer = FORMAT_VERSION + 1;
        image[4..6].copy_from_slice(&newer.to_le_bytes());
        let err = decode_log(&image).expect_err("newer version must not decode");
        assert_eq!(err, FormatError::NewerVersion(newer));
        assert!(err.to_string().contains("newer"), "error message names the cause");
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut image = encode_all(&[]);
        image[0] = 0;
        assert!(matches!(decode_log(&image), Err(FormatError::BadMagic(_))));
    }

    #[test]
    fn env_default_parses() {
        // Not exercised via set_var (tests share the process env);
        // just pin the Off default when the variable is absent-ish.
        let mode = DurabilityMode::from_env();
        assert!(matches!(mode, DurabilityMode::Off | DurabilityMode::Fenced));
    }
}
