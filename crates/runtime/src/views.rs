//! The replica's three object views and the rules for keeping them
//! consistent.
//!
//! * **σ** (`sigma`) — the stored state: buffered (ring-delivered and
//!   own conflict-free) calls only, never summaries;
//! * **mat** — the materialized committed view: σ with every cached
//!   summary applied, refreshed lazily via a dirty bit (non-monotone
//!   summaries invalidate it wholesale);
//! * **spec_mat** — the speculative view a group leader checks
//!   permissibility against: `mat` plus its own uncommitted conflicting
//!   calls (`None` while there are none, in which case the check view
//!   *is* `mat`).
//!
//! Lemma 1 (§3.3) needs permissibility checked against a view that
//! contains every earlier call of the same synchronization group —
//! that is exactly `spec_mat`'s contract; the uncommitted payloads are
//! retained in `speculative_store` so the view can be rebuilt after a
//! non-monotone summary refresh.

use hamband_core::object::WorkloadSupport;
use hamband_core::wire::Wire;

use crate::replica::HambandNode;

impl<O> HambandNode<O>
where
    O: WorkloadSupport,
    O::Update: Wire,
{
    /// The node's current (committed) object state.
    pub fn state_snapshot(&self) -> O::State {
        let mut s = self.sigma.clone();
        for group in &self.sum_cache {
            for cache in group {
                if let Some(sum) = &cache.summary {
                    self.spec.apply_mut(&mut s, sum);
                }
            }
        }
        s
    }

    pub(crate) fn refresh_mat(&mut self) {
        if !self.mat_dirty {
            return;
        }
        self.mat = self.state_snapshot();
        self.mat_dirty = false;
    }

    /// The view used for permissibility checks and call generation.
    pub(crate) fn check_view(&self) -> &O::State {
        self.spec_mat.as_ref().unwrap_or(&self.mat)
    }

    /// Apply a call to the committed views (σ stays per caller choice).
    pub(crate) fn apply_to_views(&mut self, call: &O::Update) {
        if !self.mat_dirty {
            self.spec.apply_mut(&mut self.mat, call);
        }
        if let Some(sm) = self.spec_mat.as_mut() {
            self.spec.apply_mut(sm, call);
        }
    }

    /// Whether `update` would keep the object invariant, judged against
    /// the current check view.
    pub(crate) fn permissible_now(&mut self, update: &O::Update) -> bool {
        self.refresh_mat();
        let post = self.spec.apply(self.check_view(), update);
        self.spec.invariant(&post)
    }

    /// Rebuild the speculative view after a non-monotone summary
    /// change: committed snapshot + replay of uncommitted own entries.
    /// Uncommitted conflicting entries are kept by each group, but the
    /// update payloads are no longer at hand; since non-monotone
    /// summaries and uncommitted entries can only coexist for objects
    /// whose conflicting methods commute with summaries (summaries are
    /// conflict-free by construction), replaying is legal — we keep the
    /// payloads for exactly this purpose.
    pub(crate) fn rebuild_spec_mat(&mut self) {
        self.refresh_mat();
        // Replay: collect pending own entries from the replay store.
        let mut view = self.mat.clone();
        for u in &self.pending_speculative_updates() {
            self.spec.apply_mut(&mut view, u);
        }
        self.spec_mat = Some(view);
    }

    fn pending_speculative_updates(&self) -> Vec<O::Update> {
        self.speculative_store.clone()
    }

    pub(crate) fn speculative_pop(&mut self) {
        if !self.speculative_store.is_empty() {
            self.speculative_store.remove(0);
        }
    }

    pub(crate) fn speculative_clear(&mut self) {
        self.speculative_store.clear();
    }

    /// Whether no synchronization group holds own uncommitted entries
    /// (then the speculative view collapses back into `mat`).
    pub(crate) fn no_uncommitted(&self) -> bool {
        self.engines.iter().all(|e| e.leader().is_none_or(|l| l.uncommitted.is_empty()))
    }
}
