//! Per-node and cluster-level measurement, matching the paper's
//! definitions (§5 "Platform and setup"): throughput is the total
//! number of calls divided by the time until all update calls are
//! replicated on all nodes; response time is the average over calls.

use std::collections::BTreeMap;

use rdma_sim::{SimDuration, SimTime};

/// Per-node measurement accumulator.
#[derive(Debug, Clone, Default)]
pub struct NodeMetrics {
    /// Update calls issued (acknowledged or still outstanding).
    pub updates_issued: u64,
    /// Update calls acknowledged to the client.
    pub updates_acked: u64,
    /// Query calls executed.
    pub queries: u64,
    /// Calls rejected as locally impermissible.
    pub rejected: u64,
    /// Sum of response times (ns) over acknowledged updates + queries.
    pub rt_sum_ns: u64,
    /// Response-time samples counted in `rt_sum_ns`.
    pub rt_count: u64,
    /// Response-time sums per method (updates only), keyed by method
    /// index.
    pub rt_per_method_ns: BTreeMap<usize, (u64, u64)>,
    /// Remote update calls applied locally (propagated from peers).
    pub remote_applied: u64,
    /// Virtual time of the most recent update application at this node
    /// (local issue or remote propagation) — the per-node component of
    /// the paper's "time for all update calls to be replicated".
    pub last_apply: SimTime,
}

impl NodeMetrics {
    /// Record an acknowledged update call.
    pub fn ack_update(&mut self, method: usize, issued_at: SimTime, now: SimTime) {
        let rt = now.since(issued_at).as_nanos();
        self.updates_acked += 1;
        self.rt_sum_ns += rt;
        self.rt_count += 1;
        let slot = self.rt_per_method_ns.entry(method).or_insert((0, 0));
        slot.0 += rt;
        slot.1 += 1;
    }

    /// Record a query (response time = its local execution cost).
    pub fn ack_query(&mut self, cost: SimDuration) {
        self.queries += 1;
        self.rt_sum_ns += cost.as_nanos();
        self.rt_count += 1;
    }

    /// Mean response time in microseconds over all recorded calls.
    pub fn mean_rt_us(&self) -> f64 {
        if self.rt_count == 0 {
            0.0
        } else {
            self.rt_sum_ns as f64 / self.rt_count as f64 / 1_000.0
        }
    }

    /// Mean response time of one method, microseconds.
    pub fn method_rt_us(&self, method: usize) -> Option<f64> {
        let &(sum, count) = self.rt_per_method_ns.get(&method)?;
        (count > 0).then(|| sum as f64 / count as f64 / 1_000.0)
    }
}

/// A cluster-level run summary produced by the harness.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// System label ("hamband", "mu-smr", "msg").
    pub system: String,
    /// Cluster size.
    pub nodes: usize,
    /// Total calls (updates + queries) across the cluster.
    pub total_calls: u64,
    /// Total acknowledged update calls.
    pub total_updates: u64,
    /// Virtual time at which every update was applied everywhere.
    pub completed_at: SimTime,
    /// Throughput in operations per microsecond of virtual time.
    pub throughput_ops_per_us: f64,
    /// Mean response time over all calls, microseconds.
    pub mean_rt_us: f64,
    /// Mean response time per method name.
    pub per_method_rt_us: BTreeMap<String, f64>,
    /// Whether all replicas converged to equal states at the end.
    pub converged: bool,
}

impl std::fmt::Display for RunReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:>8}  n={}  calls={}  tput={:.2} ops/us  rt={:.2} us  converged={}",
            self.system,
            self.nodes,
            self.total_calls,
            self.throughput_ops_per_us,
            self.mean_rt_us,
            self.converged
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rt_accounting() {
        let mut m = NodeMetrics::default();
        m.ack_update(0, SimTime(1_000), SimTime(3_000));
        m.ack_update(0, SimTime(0), SimTime(4_000));
        m.ack_update(1, SimTime(0), SimTime(1_000));
        m.ack_query(SimDuration::nanos(500));
        assert_eq!(m.updates_acked, 3);
        assert_eq!(m.queries, 1);
        assert_eq!(m.rt_count, 4);
        assert!((m.mean_rt_us() - (2.0 + 4.0 + 1.0 + 0.5) / 4.0).abs() < 1e-9);
        assert!((m.method_rt_us(0).unwrap() - 3.0).abs() < 1e-9);
        assert!((m.method_rt_us(1).unwrap() - 1.0).abs() < 1e-9);
        assert_eq!(m.method_rt_us(9), None);
    }

    #[test]
    fn empty_metrics_are_zero() {
        let m = NodeMetrics::default();
        assert_eq!(m.mean_rt_us(), 0.0);
    }

    #[test]
    fn report_display_mentions_system() {
        let r = RunReport {
            system: "hamband".into(),
            nodes: 4,
            total_calls: 100,
            total_updates: 25,
            completed_at: SimTime(1_000_000),
            throughput_ops_per_us: 12.5,
            mean_rt_us: 1.4,
            per_method_rt_us: BTreeMap::new(),
            converged: true,
        };
        let s = r.to_string();
        assert!(s.contains("hamband"));
        assert!(s.contains("12.50 ops/us"));
    }
}
