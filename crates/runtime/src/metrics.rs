//! Per-node and cluster-level measurement, matching the paper's
//! definitions (§5 "Platform and setup"): throughput is the total
//! number of calls divided by the time until all update calls are
//! replicated on all nodes; response time is the average over calls.
//!
//! Response times are recorded in log-scale [`LatencyHistogram`]s —
//! per call overall, per method, and per protocol phase
//! ([`Phase::Reduce`]/[`Phase::Free`]/[`Phase::Conf`]/[`Phase::Query`])
//! — so reports carry p50/p90/p99/max, not just means. [`RunReport`]
//! serializes to stable JSON with [`RunReport::to_json`] for
//! machine-readable benchmark output.

use std::collections::BTreeMap;

use rdma_sim::{Phase, SimDuration, SimTime};

/// Sub-buckets per octave: 8 (3 bits), giving ≤ 12.5% relative error.
const SUB_BUCKETS_BITS: u32 = 3;
/// Values below 16 ns get exact buckets; 61 octaves above cover u64.
const NUM_BUCKETS: usize = 8 + 8 * 61;

/// A log-scale latency histogram over nanosecond samples.
///
/// HDR-style bucketing: exact below 16 ns, then 8 linear sub-buckets
/// per power-of-two octave (≤ 12.5% relative error), covering the full
/// `u64` range in 496 fixed buckets. Tracks count, sum, and max, so
/// both means and quantiles come from the same accumulator.
#[derive(Clone)]
pub struct LatencyHistogram {
    buckets: Box<[u64; NUM_BUCKETS]>,
    count: u64,
    sum_ns: u64,
    max_ns: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            buckets: Box::new([0; NUM_BUCKETS]),
            count: 0,
            sum_ns: 0,
            max_ns: 0,
        }
    }
}

fn bucket_index(value_ns: u64) -> usize {
    if value_ns < 16 {
        value_ns as usize
    } else {
        let msb = 63 - value_ns.leading_zeros(); // >= 4
        let octave = (msb - SUB_BUCKETS_BITS) as usize;
        let sub = ((value_ns >> (msb - SUB_BUCKETS_BITS)) & 0x7) as usize;
        8 + 8 * octave + sub
    }
}

fn bucket_floor(index: usize) -> u64 {
    if index < 16 {
        index as u64
    } else {
        let octave = (index - 8) / 8;
        let sub = ((index - 8) % 8) as u64;
        (8 + sub) << octave
    }
}

impl LatencyHistogram {
    /// Record one sample of `ns` nanoseconds.
    pub fn record(&mut self, ns: u64) {
        self.buckets[bucket_index(ns)] += 1;
        self.count += 1;
        self.sum_ns = self.sum_ns.saturating_add(ns);
        self.max_ns = self.max_ns.max(ns);
    }

    /// Record one sample given as a duration.
    pub fn record_duration(&mut self, d: SimDuration) {
        self.record(d.as_nanos());
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Whether no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Sum of all samples, nanoseconds.
    pub fn sum_ns(&self) -> u64 {
        self.sum_ns
    }

    /// Largest sample, nanoseconds (exact, not bucketed).
    pub fn max_ns(&self) -> u64 {
        self.max_ns
    }

    /// Mean sample in microseconds (0 when empty).
    pub fn mean_us(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_ns as f64 / self.count as f64 / 1_000.0
        }
    }

    /// The `q`-quantile (`0.0 ..= 1.0`) in nanoseconds: the lower bound
    /// of the bucket holding the sample at that rank (0 when empty).
    pub fn quantile_ns(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        // Rank of the target sample, 1-based; ceil covers q = 0.
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                // The top bucket may under-report: max is exact.
                return bucket_floor(i).min(self.max_ns);
            }
        }
        self.max_ns
    }

    /// Fold another histogram into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
        self.count += other.count;
        self.sum_ns = self.sum_ns.saturating_add(other.sum_ns);
        self.max_ns = self.max_ns.max(other.max_ns);
    }

    /// Condense into a report-ready summary.
    pub fn summarize(&self) -> LatencySummary {
        LatencySummary {
            count: self.count,
            mean_us: self.mean_us(),
            p50_us: self.quantile_ns(0.50) as f64 / 1_000.0,
            p90_us: self.quantile_ns(0.90) as f64 / 1_000.0,
            p99_us: self.quantile_ns(0.99) as f64 / 1_000.0,
            max_us: self.max_ns as f64 / 1_000.0,
        }
    }
}

impl std::fmt::Debug for LatencyHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LatencyHistogram")
            .field("count", &self.count)
            .field("mean_us", &self.mean_us())
            .field("max_ns", &self.max_ns)
            .finish()
    }
}

/// Condensed latency distribution of one call population.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct LatencySummary {
    /// Samples in the population.
    pub count: u64,
    /// Mean, microseconds.
    pub mean_us: f64,
    /// Median, microseconds.
    pub p50_us: f64,
    /// 90th percentile, microseconds.
    pub p90_us: f64,
    /// 99th percentile, microseconds.
    pub p99_us: f64,
    /// Maximum (exact), microseconds.
    pub max_us: f64,
}

/// Per-node measurement accumulator.
#[derive(Debug, Clone, Default)]
pub struct NodeMetrics {
    /// Update calls issued (acknowledged or still outstanding).
    pub updates_issued: u64,
    /// Update calls acknowledged to the client.
    pub updates_acked: u64,
    /// Query calls executed.
    pub queries: u64,
    /// Calls rejected as locally impermissible.
    pub rejected: u64,
    /// Response times of all acknowledged updates + queries.
    pub rt: LatencyHistogram,
    /// Response times per method (updates only), keyed by method index.
    pub rt_per_method: BTreeMap<usize, LatencyHistogram>,
    /// Response times per protocol phase, indexed by [`Phase::index`].
    pub rt_per_phase: [LatencyHistogram; 4],
    /// Remote update calls applied locally (propagated from peers).
    pub remote_applied: u64,
    /// Virtual time of the most recent update application at this node
    /// (local issue or remote propagation) — the per-node component of
    /// the paper's "time for all update calls to be replicated".
    pub last_apply: SimTime,
}

impl NodeMetrics {
    /// Record an acknowledged update call that travelled `phase`.
    pub fn ack_update(&mut self, method: usize, phase: Phase, issued_at: SimTime, now: SimTime) {
        let rt = now.since(issued_at).as_nanos();
        self.updates_acked += 1;
        self.rt.record(rt);
        self.rt_per_method.entry(method).or_default().record(rt);
        self.rt_per_phase[phase.index()].record(rt);
    }

    /// Record a query (response time = its local execution cost).
    pub fn ack_query(&mut self, cost: SimDuration) {
        self.queries += 1;
        self.rt.record_duration(cost);
        self.rt_per_phase[Phase::Query.index()].record_duration(cost);
    }

    /// Mean response time in microseconds over all recorded calls.
    pub fn mean_rt_us(&self) -> f64 {
        self.rt.mean_us()
    }

    /// Mean response time of one method, microseconds.
    pub fn method_rt_us(&self, method: usize) -> Option<f64> {
        let h = self.rt_per_method.get(&method)?;
        (!h.is_empty()).then(|| h.mean_us())
    }
}

/// Cross-session fairness for a multi-session (flat-combined) run:
/// how evenly the combiner served the client sessions.
///
/// Throughputs are per-session *completed* operations (acked updates +
/// queries) over the run's virtual completion time. Jain's index is
/// `(Σx)² / (n·Σx²)` over the per-session completed-op counts: 1.0 is
/// perfectly even service, `1/n` is one session starving all others.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FairnessSummary {
    /// Client sessions across the whole cluster.
    pub sessions: usize,
    /// Mean per-session throughput, completed ops per second.
    pub ops_per_user_per_sec: f64,
    /// Slowest session's throughput, completed ops per second.
    pub min_session_ops_per_sec: f64,
    /// Fastest session's throughput, completed ops per second.
    pub max_session_ops_per_sec: f64,
    /// 99th percentile across sessions of per-session mean update
    /// response time, microseconds (0 when no session acked updates).
    pub p99_session_rt_us: f64,
    /// Jain's fairness index over per-session completed-op counts.
    pub jain_index: f64,
}

impl FairnessSummary {
    fn push_json(&self, out: &mut String) {
        out.push_str(&format!("{{\"sessions\":{},\"ops_per_user_per_sec\":", self.sessions));
        push_json_f64(out, self.ops_per_user_per_sec);
        out.push_str(",\"min_session_ops_per_sec\":");
        push_json_f64(out, self.min_session_ops_per_sec);
        out.push_str(",\"max_session_ops_per_sec\":");
        push_json_f64(out, self.max_session_ops_per_sec);
        out.push_str(",\"p99_session_rt_us\":");
        push_json_f64(out, self.p99_session_rt_us);
        out.push_str(",\"jain_index\":");
        push_json_f64(out, self.jain_index);
        out.push('}');
    }
}

/// A cluster-level run summary produced by the harness.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// System label ("hamband", "mu-smr", "msg").
    pub system: String,
    /// Cluster size.
    pub nodes: usize,
    /// Total calls (updates + queries) across the cluster.
    pub total_calls: u64,
    /// Total acknowledged update calls.
    pub total_updates: u64,
    /// Virtual time at which every update was applied everywhere.
    pub completed_at: SimTime,
    /// Throughput in operations per microsecond of virtual time.
    pub throughput_ops_per_us: f64,
    /// Mean response time over all calls, microseconds.
    pub mean_rt_us: f64,
    /// One-sided WRITE verbs posted during the run (fabric-wide).
    /// With doorbell batching a single WRITE may carry several ring
    /// entries, so this can drop well below the call count.
    pub writes_posted: u64,
    /// Bytes moved by one-sided verbs during the run (fabric-wide).
    pub bytes_written: u64,
    /// WRITEs posted per acknowledged update (`writes_posted /
    /// total_updates`; 0 when there were no updates). The paper's
    /// amortized-O(1)-communication claim shows up here: for a
    /// reducible-only workload this drops below 1.0 per peer once
    /// summary write-combining collapses k reduces into one WRITE.
    pub writes_per_op: f64,
    /// Mean response time per method name.
    pub per_method_rt_us: BTreeMap<String, f64>,
    /// Latency distribution per protocol phase, keyed by
    /// [`Phase::label`] ("reduce", "free", "conf", "query"). Phases
    /// with no samples are omitted.
    pub phases: BTreeMap<String, LatencySummary>,
    /// Whether all replicas converged to equal states at the end.
    pub converged: bool,
    /// Cross-session fairness (present when the backend exposes
    /// per-session stats; `None` for backends without an ingress).
    pub fairness: Option<FairnessSummary>,
}

/// Append `s` JSON-escaped (quotes, backslashes, control characters).
fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Append `v` as a JSON number (non-finite values become 0).
fn push_json_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        out.push_str(&format!("{v}"));
    } else {
        out.push('0');
    }
}

impl LatencySummary {
    fn push_json(&self, out: &mut String) {
        out.push_str(&format!("{{\"count\":{},\"mean_us\":", self.count));
        push_json_f64(out, self.mean_us);
        out.push_str(",\"p50_us\":");
        push_json_f64(out, self.p50_us);
        out.push_str(",\"p90_us\":");
        push_json_f64(out, self.p90_us);
        out.push_str(",\"p99_us\":");
        push_json_f64(out, self.p99_us);
        out.push_str(",\"max_us\":");
        push_json_f64(out, self.max_us);
        out.push('}');
    }
}

impl RunReport {
    /// Serialize to one stable JSON object (hand-encoded; no external
    /// dependencies). Keys are emitted in a fixed order so output is
    /// diffable across runs.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(512);
        out.push_str("{\"system\":");
        push_json_str(&mut out, &self.system);
        out.push_str(&format!(
            ",\"nodes\":{},\"total_calls\":{},\"total_updates\":{}",
            self.nodes, self.total_calls, self.total_updates
        ));
        out.push_str(",\"completed_at_us\":");
        push_json_f64(&mut out, self.completed_at.as_micros());
        out.push_str(",\"throughput_ops_per_us\":");
        push_json_f64(&mut out, self.throughput_ops_per_us);
        out.push_str(",\"mean_rt_us\":");
        push_json_f64(&mut out, self.mean_rt_us);
        out.push_str(&format!(
            ",\"writes_posted\":{},\"bytes_written\":{}",
            self.writes_posted, self.bytes_written
        ));
        out.push_str(",\"writes_per_op\":");
        push_json_f64(&mut out, self.writes_per_op);
        out.push_str(",\"converged\":");
        out.push_str(if self.converged { "true" } else { "false" });
        out.push_str(",\"per_method_rt_us\":{");
        for (i, (name, rt)) in self.per_method_rt_us.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_json_str(&mut out, name);
            out.push(':');
            push_json_f64(&mut out, *rt);
        }
        out.push_str("},\"phases\":{");
        for (i, (name, summary)) in self.phases.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_json_str(&mut out, name);
            out.push(':');
            summary.push_json(&mut out);
        }
        out.push('}');
        if let Some(fairness) = &self.fairness {
            out.push_str(",\"fairness\":");
            fairness.push_json(&mut out);
        }
        out.push('}');
        out
    }
}

impl std::fmt::Display for RunReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:>8}  n={}  calls={}  tput={:.2} ops/us  rt={:.2} us  w/op={:.2}  converged={}",
            self.system,
            self.nodes,
            self.total_calls,
            self.throughput_ops_per_us,
            self.mean_rt_us,
            self.writes_per_op,
            self.converged
        )?;
        for (name, s) in &self.phases {
            write!(
                f,
                "\n           {name:<7} n={:<6} p50={:.2}us p90={:.2}us p99={:.2}us max={:.2}us",
                s.count, s.p50_us, s.p90_us, s.p99_us, s.max_us
            )?;
        }
        if let Some(fair) = &self.fairness {
            write!(
                f,
                "\n           fairness sessions={} ops/user/s={:.0} min={:.0} max={:.0} jain={:.3}",
                fair.sessions,
                fair.ops_per_user_per_sec,
                fair.min_session_ops_per_sec,
                fair.max_session_ops_per_sec,
                fair.jain_index
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_monotonic_and_floor_consistent() {
        let mut probes: Vec<u64> = Vec::new();
        for shift in 0..64u32 {
            for off in [0u64, 1, 3] {
                probes.push((1u64 << shift).saturating_add(off << shift.saturating_sub(4)));
            }
        }
        probes.sort_unstable();
        probes.dedup();
        let mut last = 0usize;
        for v in probes {
            let idx = bucket_index(v);
            assert!(idx >= last, "index regressed at {v}");
            assert!(bucket_floor(idx) <= v, "floor above value at {v}");
            assert!(idx < NUM_BUCKETS);
            last = idx;
        }
        // Exact region.
        for v in 0..16u64 {
            assert_eq!(bucket_index(v), v as usize);
            assert_eq!(bucket_floor(v as usize), v);
        }
    }

    #[test]
    fn histogram_quantiles_bound_error() {
        let mut h = LatencyHistogram::default();
        for v in 1..=1_000u64 {
            h.record(v * 1_000); // 1..1000 us
        }
        assert_eq!(h.count(), 1_000);
        let p50 = h.quantile_ns(0.5);
        let p99 = h.quantile_ns(0.99);
        // ≤ 12.5% relative bucketing error, one-sided (floor).
        assert!((437_500..=500_000).contains(&p50), "p50 = {p50}");
        assert!((866_250..=990_000).contains(&p99), "p99 = {p99}");
        assert_eq!(h.max_ns(), 1_000_000);
        // Top sample's bucket floor: (8 + 7) << 16, clamped by the
        // exact max (which is larger here).
        assert_eq!(h.quantile_ns(1.0), 983_040, "top bucket floor");
    }

    #[test]
    fn histogram_merge_matches_combined() {
        let mut a = LatencyHistogram::default();
        let mut b = LatencyHistogram::default();
        let mut c = LatencyHistogram::default();
        for v in [5u64, 100, 10_000, 123_456] {
            a.record(v);
            c.record(v);
        }
        for v in [7u64, 3_000, 999_999] {
            b.record(v);
            c.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), c.count());
        assert_eq!(a.sum_ns(), c.sum_ns());
        assert_eq!(a.max_ns(), c.max_ns());
        for q in [0.1, 0.5, 0.9, 0.99] {
            assert_eq!(a.quantile_ns(q), c.quantile_ns(q));
        }
    }

    proptest::proptest! {
        #![proptest_config(proptest::ProptestConfig::with_cases(128))]

        /// Mergeability is the property the harness leans on when it
        /// folds per-node histograms into one cluster distribution:
        /// merging two histograms must be indistinguishable from
        /// having recorded both sample streams into one — same count,
        /// sum, exact max, and every quantile — for arbitrary samples
        /// across the full `u64` range (both bucket regimes).
        #[test]
        fn merge_equals_concatenated_recording(
            a in proptest::collection::vec(
                proptest::prop_oneof![0u64..64, 0u64..1 << 20, 0u64..u64::MAX], 0..64),
            b in proptest::collection::vec(
                proptest::prop_oneof![0u64..64, 0u64..1 << 20, 0u64..u64::MAX], 0..64),
        ) {
            let mut ha = LatencyHistogram::default();
            let mut hb = LatencyHistogram::default();
            let mut hc = LatencyHistogram::default();
            for &v in &a {
                ha.record(v);
                hc.record(v);
            }
            for &v in &b {
                hb.record(v);
                hc.record(v);
            }
            ha.merge(&hb);
            proptest::prop_assert_eq!(ha.count(), hc.count());
            proptest::prop_assert_eq!(ha.sum_ns(), hc.sum_ns());
            proptest::prop_assert_eq!(ha.max_ns(), hc.max_ns());
            for q in [0.0, 0.01, 0.1, 0.5, 0.9, 0.99, 0.999, 1.0] {
                proptest::prop_assert_eq!(ha.quantile_ns(q), hc.quantile_ns(q));
            }
            let s = ha.summarize();
            let t = hc.summarize();
            proptest::prop_assert_eq!(s, t);
        }
    }

    #[test]
    fn rt_accounting() {
        let mut m = NodeMetrics::default();
        m.ack_update(0, Phase::Reduce, SimTime(1_000), SimTime(3_000));
        m.ack_update(0, Phase::Reduce, SimTime(0), SimTime(4_000));
        m.ack_update(1, Phase::Conf, SimTime(0), SimTime(1_000));
        m.ack_query(SimDuration::nanos(500));
        assert_eq!(m.updates_acked, 3);
        assert_eq!(m.queries, 1);
        assert_eq!(m.rt.count(), 4);
        assert!((m.mean_rt_us() - (2.0 + 4.0 + 1.0 + 0.5) / 4.0).abs() < 1e-9);
        assert!((m.method_rt_us(0).unwrap() - 3.0).abs() < 1e-9);
        assert!((m.method_rt_us(1).unwrap() - 1.0).abs() < 1e-9);
        assert_eq!(m.method_rt_us(9), None);
        assert_eq!(m.rt_per_phase[Phase::Reduce.index()].count(), 2);
        assert_eq!(m.rt_per_phase[Phase::Conf.index()].count(), 1);
        assert_eq!(m.rt_per_phase[Phase::Query.index()].count(), 1);
        assert_eq!(m.rt_per_phase[Phase::Free.index()].count(), 0);
        // The property the harness reports on: histogram totals match
        // the ack counters exactly.
        assert_eq!(m.rt.count(), m.updates_acked + m.queries);
    }

    #[test]
    fn empty_metrics_are_zero() {
        let m = NodeMetrics::default();
        assert_eq!(m.mean_rt_us(), 0.0);
        assert_eq!(m.rt.quantile_ns(0.99), 0);
    }

    #[test]
    fn report_display_mentions_system_and_phases() {
        let mut phases = BTreeMap::new();
        phases.insert(
            "reduce".to_string(),
            LatencySummary { count: 10, mean_us: 1.5, p50_us: 1.0, p90_us: 2.0, p99_us: 3.0, max_us: 4.0 },
        );
        let r = RunReport {
            system: "hamband".into(),
            nodes: 4,
            total_calls: 100,
            total_updates: 25,
            completed_at: SimTime(1_000_000),
            throughput_ops_per_us: 12.5,
            mean_rt_us: 1.4,
            writes_posted: 60,
            bytes_written: 6_000,
            writes_per_op: 2.4,
            per_method_rt_us: BTreeMap::new(),
            phases,
            converged: true,
            fairness: Some(FairnessSummary {
                sessions: 4_000,
                ops_per_user_per_sec: 125.0,
                min_session_ops_per_sec: 100.0,
                max_session_ops_per_sec: 150.0,
                p99_session_rt_us: 9.5,
                jain_index: 0.987,
            }),
        };
        let s = r.to_string();
        assert!(s.contains("hamband"));
        assert!(s.contains("12.50 ops/us"));
        assert!(s.contains("w/op=2.40"));
        assert!(s.contains("reduce"));
        assert!(s.contains("p99=3.00us"));
        assert!(s.contains("sessions=4000"));
        assert!(s.contains("jain=0.987"));
    }

    #[test]
    fn json_is_stable_and_escaped() {
        let mut per_method = BTreeMap::new();
        per_method.insert("with \"quote\"".to_string(), 2.5);
        let mut phases = BTreeMap::new();
        phases.insert(
            "conf".to_string(),
            LatencySummary { count: 3, mean_us: 1.0, p50_us: 1.0, p90_us: 2.0, p99_us: 2.0, max_us: 2.25 },
        );
        let r = RunReport {
            system: "mu-smr".into(),
            nodes: 3,
            total_calls: 7,
            total_updates: 4,
            completed_at: SimTime(2_500),
            throughput_ops_per_us: f64::NAN,
            mean_rt_us: 1.25,
            writes_posted: 12,
            bytes_written: 3_400,
            writes_per_op: 3.0,
            per_method_rt_us: per_method,
            phases,
            converged: false,
            fairness: None,
        };
        let j = r.to_json();
        assert_eq!(
            j,
            "{\"system\":\"mu-smr\",\"nodes\":3,\"total_calls\":7,\"total_updates\":4,\
             \"completed_at_us\":2.5,\"throughput_ops_per_us\":0,\"mean_rt_us\":1.25,\
             \"writes_posted\":12,\"bytes_written\":3400,\"writes_per_op\":3,\
             \"converged\":false,\"per_method_rt_us\":{\"with \\\"quote\\\"\":2.5},\
             \"phases\":{\"conf\":{\"count\":3,\"mean_us\":1,\"p50_us\":1,\"p90_us\":2,\
             \"p99_us\":2,\"max_us\":2.25}}}"
        );
    }

    #[test]
    fn fairness_block_serializes_after_phases() {
        let r = RunReport {
            system: "hamband".into(),
            nodes: 2,
            total_calls: 10,
            total_updates: 5,
            completed_at: SimTime(1_000),
            throughput_ops_per_us: 1.0,
            mean_rt_us: 1.0,
            writes_posted: 5,
            bytes_written: 500,
            writes_per_op: 1.0,
            per_method_rt_us: BTreeMap::new(),
            phases: BTreeMap::new(),
            converged: true,
            fairness: Some(FairnessSummary {
                sessions: 16,
                ops_per_user_per_sec: 625.0,
                min_session_ops_per_sec: 500.0,
                max_session_ops_per_sec: 750.0,
                p99_session_rt_us: 2.5,
                jain_index: 0.99,
            }),
        };
        let j = r.to_json();
        assert!(j.ends_with(
            ",\"fairness\":{\"sessions\":16,\"ops_per_user_per_sec\":625,\
             \"min_session_ops_per_sec\":500,\"max_session_ops_per_sec\":750,\
             \"p99_session_rt_us\":2.5,\"jain_index\":0.99}}"
        ));
    }
}
