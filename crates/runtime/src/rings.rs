//! Single-writer single-reader ring buffers over remote memory.
//!
//! §4: "Each buffer has a head that is locally stored at the host node
//! and a tail that is remotely stored at the single writer node. ...
//! After a successful read, the head pointer is advanced to the next
//! location. The calls at locations before the head are already
//! executed. To avoid memory overflow, these locations are reused."
//!
//! A [`RingWriter`] lives at the writing node and owns the tail: it
//! assigns dense sequence numbers and posts one one-sided WRITE per
//! entry into the slot `(seq - 1) mod capacity` of the reader-side
//! ring. Flow control is single-sided too: when the tail runs more than
//! half the capacity ahead of the last known head, the writer posts a
//! one-sided READ of the reader's head counter and queues further
//! appends until the ring has room.
//!
//! A [`RingReader`] lives at the reading node and owns the head: it
//! polls the next expected slot, accepts the entry only when the
//! sequence number matches and the canary byte has landed, and
//! advances a local head counter the writer can read.

use std::collections::{HashMap, VecDeque};

use hamband_core::wire::Wire;
use rdma_sim::{CompletionStatus, Ctx, NodeId, RegionId, RingKind, TraceEvent, WrId};

use crate::codec::Entry;

/// Writer-side state of one ring (one per (writer, reader) pair for `F`
/// buffers; one per reader for each `L` buffer the leader feeds).
#[derive(Debug)]
pub struct RingWriter {
    kind: RingKind,
    target: NodeId,
    region: RegionId,
    base: usize,
    cap: u64,
    slot_size: usize,
    /// Sequence number of the next entry to append (1-based).
    next_seq: u64,
    /// The reader's head (applied count) as last observed.
    acked_head: u64,
    /// Entries assigned a sequence number but awaiting ring space.
    pending: VecDeque<(u64, Vec<u8>)>,
    /// In-flight append writes: work request → sequence number.
    posted: HashMap<WrId, u64>,
    /// In-flight head read, if any.
    head_read: Option<WrId>,
    /// Where the reader keeps its head counter (reader-local region).
    head_region: RegionId,
    head_offset: usize,
}

/// An append completion the caller should account.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AppendDone {
    /// Sequence number of the landed entry.
    pub seq: u64,
    /// Completion status of the write.
    pub status: CompletionStatus,
}

impl RingWriter {
    /// A writer of `kind` feeding the ring at `(target, region, base)`
    /// with `cap` slots of `slot_size` bytes, reading the head counter
    /// from `(head_region, head_offset)` on the same target.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        kind: RingKind,
        target: NodeId,
        region: RegionId,
        base: usize,
        cap: usize,
        slot_size: usize,
        head_region: RegionId,
        head_offset: usize,
    ) -> Self {
        assert!(cap > 1, "ring needs at least two slots");
        RingWriter {
            kind,
            target,
            region,
            base,
            cap: cap as u64,
            slot_size,
            next_seq: 1,
            acked_head: 0,
            pending: VecDeque::new(),
            posted: HashMap::new(),
            head_read: None,
            head_region,
            head_offset,
        }
    }

    /// The node this writer feeds.
    pub fn target(&self) -> NodeId {
        self.target
    }

    /// The sequence number the next append will get.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Number of entries appended so far.
    pub fn appended(&self) -> u64 {
        self.next_seq - 1
    }

    /// Adopt a tail position (used by a new leader taking over a ring).
    pub fn adopt_tail(&mut self, appended: u64) {
        self.next_seq = appended + 1;
        self.acked_head = self.acked_head.max(appended.saturating_sub(self.cap / 2));
    }

    fn slot_offset(&self, seq: u64) -> usize {
        self.base + (((seq - 1) % self.cap) as usize) * self.slot_size
    }

    /// Append an encoded entry; returns its sequence number. The write
    /// is posted immediately if the ring has room, otherwise queued.
    pub fn append<U: Wire>(&mut self, ctx: &mut Ctx<'_>, entry: &Entry<U>) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        let (kind, writer, reader) = (self.kind, ctx.node(), self.target);
        ctx.emit(|| TraceEvent::RingAppend { ring: kind, writer, reader, seq });
        let slot = entry.to_slot(seq, self.slot_size);
        self.push_slot(ctx, seq, slot);
        seq
    }

    /// Re-write a specific already-assigned slot (leader catch-up and
    /// broadcast recovery): positional, idempotent at the reader.
    pub fn rewrite(&mut self, ctx: &mut Ctx<'_>, seq: u64, slot: Vec<u8>) {
        let offset = self.slot_offset(seq);
        let wr = ctx.post_write(self.target, self.region, offset, &slot);
        self.posted.insert(wr, seq);
    }

    fn push_slot(&mut self, ctx: &mut Ctx<'_>, seq: u64, slot: Vec<u8>) {
        if self.pending.is_empty() && seq <= self.acked_head + self.cap {
            let offset = self.slot_offset(seq);
            let wr = ctx.post_write(self.target, self.region, offset, &slot);
            self.posted.insert(wr, seq);
        } else {
            self.pending.push_back((seq, slot));
        }
        self.maybe_read_head(ctx);
    }

    fn maybe_read_head(&mut self, ctx: &mut Ctx<'_>) {
        let lag = (self.next_seq - 1).saturating_sub(self.acked_head);
        if self.head_read.is_none() && (lag * 2 > self.cap || !self.pending.is_empty()) {
            self.head_read =
                Some(ctx.post_read(self.target, self.head_region, self.head_offset, 8));
        }
    }

    /// Feed a completion; returns `Some(done)` when it was one of this
    /// ring's appends, `None` otherwise (including head reads, which are
    /// absorbed internally).
    pub fn on_completion(
        &mut self,
        ctx: &mut Ctx<'_>,
        wr: WrId,
        status: CompletionStatus,
        data: Option<&[u8]>,
    ) -> Option<AppendDone> {
        if self.head_read == Some(wr) {
            self.head_read = None;
            if status.is_success() {
                if let Some(d) = data {
                    if d.len() == 8 {
                        let head = u64::from_le_bytes(d.try_into().expect("8 bytes"));
                        self.acked_head = self.acked_head.max(head);
                    }
                }
            }
            self.flush(ctx);
            return None;
        }
        let seq = self.posted.remove(&wr)?;
        Some(AppendDone { seq, status })
    }

    fn flush(&mut self, ctx: &mut Ctx<'_>) {
        while let Some((seq, _)) = self.pending.front() {
            if *seq <= self.acked_head + self.cap {
                let (seq, slot) = self.pending.pop_front().expect("front checked");
                let offset = self.slot_offset(seq);
                let wr = ctx.post_write(self.target, self.region, offset, &slot);
                self.posted.insert(wr, seq);
            } else {
                break;
            }
        }
        self.maybe_read_head(ctx);
    }

    /// Whether appends are queued waiting for ring space.
    pub fn is_backpressured(&self) -> bool {
        !self.pending.is_empty()
    }
}

/// Reader-side state of one ring.
#[derive(Debug)]
pub struct RingReader {
    kind: RingKind,
    region: RegionId,
    base: usize,
    cap: u64,
    slot_size: usize,
    /// Next sequence number to apply (1-based).
    next: u64,
    /// Where this reader's head counter lives (own region).
    head_region: RegionId,
    head_offset: usize,
}

impl RingReader {
    /// A reader of `kind` over the local ring at `(region, base)`; its
    /// head counter lives at `(head_region, head_offset)` in local
    /// memory.
    pub fn new(
        kind: RingKind,
        region: RegionId,
        base: usize,
        cap: usize,
        slot_size: usize,
        head_region: RegionId,
        head_offset: usize,
    ) -> Self {
        RingReader {
            kind,
            region,
            base,
            cap: cap as u64,
            slot_size,
            next: 1,
            head_region,
            head_offset,
        }
    }

    /// Sequence number of the next entry this reader expects.
    pub fn next_seq(&self) -> u64 {
        self.next
    }

    /// Number of entries applied so far.
    pub fn applied(&self) -> u64 {
        self.next - 1
    }

    fn slot_offset(&self, seq: u64) -> usize {
        self.base + (((seq - 1) % self.cap) as usize) * self.slot_size
    }

    /// Peek the next entry if it has fully landed (sequence and canary
    /// check — "to check whether the buffer is not empty and the call is
    /// not concurrently being written, the receiver checks the canary").
    pub fn peek<U: Wire>(&self, ctx: &Ctx<'_>) -> Option<Entry<U>> {
        let slot = ctx.local(self.region, self.slot_offset(self.next), self.slot_size);
        Entry::from_slot(slot, self.next)
    }

    /// Raw bytes of the slot holding `seq` (leader catch-up reads).
    pub fn raw_slot<'c>(&self, ctx: &'c Ctx<'_>, seq: u64) -> &'c [u8] {
        ctx.local(self.region, self.slot_offset(seq), self.slot_size)
    }

    /// Consume the entry just peeked: advance the head and publish the
    /// new head counter for the writer's flow-control reads. `writer`
    /// is the node that appended the consumed entry (the ring's feeder
    /// for `F` rings, the appending leader for `L` rings).
    pub fn advance(&mut self, ctx: &mut Ctx<'_>, writer: NodeId) {
        let seq = self.next;
        self.next += 1;
        let (kind, reader) = (self.kind, ctx.node());
        ctx.emit(|| TraceEvent::RingApply { ring: kind, reader, writer, seq });
        let head = self.next - 1;
        ctx.local_write(self.head_region, self.head_offset, &head.to_le_bytes());
    }

    /// Adopt a head position (node joining an in-progress ring — not
    /// used in the normal protocol, provided for recovery tooling).
    pub fn adopt_head(&mut self, ctx: &mut Ctx<'_>, applied: u64) {
        self.next = applied + 1;
        ctx.local_write(self.head_region, self.head_offset, &applied.to_le_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hamband_core::counts::DepMap;
    use hamband_core::demo::{Account, AccountUpdate};
    use hamband_core::ids::{Pid, Rid};
    use rdma_sim::{App, Event, FaultPlan, LatencyModel, SimDuration, SimTime, Simulator};

    const SLOT: usize = 64;
    const CAP: usize = 8;

    /// Node 0 writes `to_send` entries into node 1's ring; node 1 polls
    /// and applies. Exercises flow control across wrap-around.
    struct RingApp {
        #[allow(dead_code)]
        ring_region: RegionId,
        #[allow(dead_code)]
        heads_region: RegionId,
        writer: Option<RingWriter>,
        reader: Option<RingReader>,
        to_send: u64,
        sent: u64,
        received: Vec<u64>,
        completions: u64,
    }

    impl RingApp {
        fn new(node: usize, ring_region: RegionId, heads_region: RegionId, to_send: u64) -> Self {
            let writer = (node == 0).then(|| {
                RingWriter::new(RingKind::Free, NodeId(1), ring_region, 0, CAP, SLOT, heads_region, 0)
            });
            let reader = (node == 1)
                .then(|| RingReader::new(RingKind::Free, ring_region, 0, CAP, SLOT, heads_region, 0));
            RingApp {
                ring_region,
                heads_region,
                writer,
                reader,
                to_send,
                sent: 0,
                received: Vec::new(),
                completions: 0,
            }
        }

        fn pump_writer(&mut self, ctx: &mut Ctx<'_>) {
            if let Some(w) = self.writer.as_mut() {
                while self.sent < self.to_send && !w.is_backpressured() {
                    let e = Entry {
                        rid: Rid::new(Pid(0), self.sent),
                        update: Account::deposit(self.sent + 1),
                        deps: DepMap::empty(),
                    };
                    w.append(ctx, &e);
                    self.sent += 1;
                }
            }
        }

        fn pump_reader(&mut self, ctx: &mut Ctx<'_>) {
            if let Some(r) = self.reader.as_mut() {
                while let Some(e) = r.peek::<AccountUpdate>(ctx) {
                    let AccountUpdate::Deposit(v) = e.update else { panic!("deposit") };
                    self.received.push(v);
                    r.advance(ctx, NodeId(0));
                }
            }
        }
    }

    impl App for RingApp {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            self.pump_writer(ctx);
            ctx.set_timer(SimDuration::micros(1), 0);
        }

        fn on_event(&mut self, ctx: &mut Ctx<'_>, event: Event) {
            match event {
                Event::Timer { .. } => {
                    self.pump_reader(ctx);
                    self.pump_writer(ctx);
                    ctx.set_timer(SimDuration::micros(1), 0);
                }
                Event::Completion { wr, status, data, .. } => {
                    if let Some(w) = self.writer.as_mut() {
                        if let Some(done) = w.on_completion(ctx, wr, status, data.as_deref()) {
                            assert!(done.status.is_success());
                            self.completions += 1;
                        }
                    }
                    self.pump_writer(ctx);
                }
                _ => {}
            }
        }
    }

    fn run(to_send: u64, torn: bool) -> (Vec<u64>, u64) {
        let mut sim = Simulator::new(2, LatencyModel::deterministic(), 5);
        let ring = sim.add_region_all(CAP * SLOT);
        let heads = sim.add_region_all(8);
        if torn {
            sim.install_fault_plan(
                &FaultPlan::new().at(SimTime::ZERO, rdma_sim::Fault::TornWrites(NodeId(1))),
            );
        }
        sim.set_apps(|n| RingApp::new(n.index(), ring, heads, to_send));
        sim.run_for(SimDuration::millis(20));
        let recv = sim.app(NodeId(1)).received.clone();
        let comp = sim.app(NodeId(0)).completions;
        (recv, comp)
    }

    #[test]
    fn delivers_in_order_across_wraparound() {
        // 50 entries through an 8-slot ring: flow control must engage.
        let (received, completions) = run(50, false);
        assert_eq!(received, (1..=50).collect::<Vec<u64>>());
        assert_eq!(completions, 50);
    }

    #[test]
    fn canary_protects_against_torn_writes() {
        let (received, _) = run(20, true);
        assert_eq!(received, (1..=20).collect::<Vec<u64>>(), "no torn entry was consumed");
    }

    #[test]
    fn reader_sees_nothing_in_empty_ring() {
        let (received, _) = run(0, false);
        assert!(received.is_empty());
    }

    #[test]
    fn adopt_tail_continues_numbering() {
        let mut w = RingWriter::new(RingKind::Free, NodeId(1), RegionId(0), 0, 8, 64, RegionId(1), 0);
        w.adopt_tail(12);
        assert_eq!(w.next_seq(), 13);
        assert_eq!(w.appended(), 12);
    }
}
