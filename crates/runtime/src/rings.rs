//! Single-writer single-reader ring buffers over remote memory.
//!
//! §4: "Each buffer has a head that is locally stored at the host node
//! and a tail that is remotely stored at the single writer node. ...
//! After a successful read, the head pointer is advanced to the next
//! location. The calls at locations before the head are already
//! executed. To avoid memory overflow, these locations are reused."
//!
//! A [`RingWriter`] lives at the writing node and owns the tail: it
//! assigns dense sequence numbers on [`RingWriter::append`] and posts
//! the encoded slots on [`RingWriter::flush`], coalescing contiguous
//! pending entries into a single one-sided WRITE spanning adjacent
//! slots (doorbell batching). A batch splits only at ring wraparound
//! (slots are adjacent in memory within one lap), at the flow-control
//! limit, and at the configured [`max_batch`](RingWriter::with_max_batch).
//! Flow control is single-sided: when the tail runs more than half the
//! capacity ahead of the last known head, the writer posts a one-sided
//! READ of the reader's head counter and queues further appends until
//! the ring has room.
//!
//! A [`RingReader`] lives at the reading node and owns the head: it
//! polls the next expected slot, accepts the entry only when the
//! sequence number matches and the canary byte has landed, and
//! advances a local head counter the writer can read. The reader is
//! oblivious to batching: a coalesced WRITE lands as the same slot
//! bytes the per-entry WRITEs would have produced.

use std::collections::{HashMap, VecDeque};

use hamband_core::wire::Wire;
use rdma_sim::{CompletionStatus, NodeId, RegionId, RingKind, TraceEvent, WrId};

use crate::codec::Entry;
use crate::transport::Transport;

/// How many encoded-slot buffers a writer keeps around for reuse.
const SPARE_SLOTS: usize = 32;

/// Writer-side state of one ring (one per (writer, reader) pair for `F`
/// buffers; one per reader for each `L` buffer the leader feeds).
#[derive(Debug)]
pub struct RingWriter {
    kind: RingKind,
    target: NodeId,
    region: RegionId,
    base: usize,
    cap: u64,
    slot_size: usize,
    /// Max contiguous slots one WRITE may span (1 = unbatched).
    max_batch: u64,
    /// Sequence number of the next entry to append (1-based).
    next_seq: u64,
    /// The reader's head (applied count) as last observed.
    acked_head: u64,
    /// Entries assigned a sequence number, encoded, awaiting a flush
    /// (and, beyond the flow-control window, awaiting ring space).
    pending: VecDeque<(u64, Vec<u8>)>,
    /// In-flight writes: work request → (first, last) sequence spanned.
    posted: HashMap<WrId, (u64, u64)>,
    /// In-flight head read, if any.
    head_read: Option<WrId>,
    /// Where the reader keeps its head counter (reader-local region).
    head_region: RegionId,
    head_offset: usize,
    /// Recycled slot buffers (capacity `slot_size` each).
    spare: Vec<Vec<u8>>,
    /// Scratch for assembling a multi-slot WRITE payload.
    batch_buf: Vec<u8>,
}

/// An append completion the caller should account. One completion may
/// cover several entries when the writer coalesced them into a single
/// WRITE; the sequence range is inclusive on both ends.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AppendDone {
    /// First sequence number the landed write spans.
    pub first_seq: u64,
    /// Last sequence number the landed write spans (>= `first_seq`).
    pub last_seq: u64,
    /// Completion status of the write.
    pub status: CompletionStatus,
}

impl AppendDone {
    /// The sequence numbers this completion covers, in order.
    pub fn seqs(&self) -> std::ops::RangeInclusive<u64> {
        self.first_seq..=self.last_seq
    }

    /// Number of entries this completion covers.
    pub fn count(&self) -> u64 {
        self.last_seq - self.first_seq + 1
    }
}

impl RingWriter {
    /// A writer of `kind` feeding the ring at `(target, region, base)`
    /// with `cap` slots of `slot_size` bytes, reading the head counter
    /// from `(head_region, head_offset)` on the same target. Posts one
    /// WRITE per entry until [`with_max_batch`](Self::with_max_batch)
    /// raises the coalescing limit.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        kind: RingKind,
        target: NodeId,
        region: RegionId,
        base: usize,
        cap: usize,
        slot_size: usize,
        head_region: RegionId,
        head_offset: usize,
    ) -> Self {
        assert!(cap > 1, "ring needs at least two slots");
        RingWriter {
            kind,
            target,
            region,
            base,
            cap: cap as u64,
            slot_size,
            max_batch: 1,
            next_seq: 1,
            acked_head: 0,
            pending: VecDeque::new(),
            posted: HashMap::new(),
            head_read: None,
            head_region,
            head_offset,
            spare: Vec::new(),
            batch_buf: Vec::new(),
        }
    }

    /// Coalesce up to `max_batch` contiguous entries per WRITE.
    pub fn with_max_batch(mut self, max_batch: usize) -> Self {
        assert!(max_batch >= 1, "max_batch must be at least 1");
        self.max_batch = max_batch as u64;
        self
    }

    /// The node this writer feeds.
    pub fn target(&self) -> NodeId {
        self.target
    }

    /// The sequence number the next append will get.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Number of entries appended so far.
    pub fn appended(&self) -> u64 {
        self.next_seq - 1
    }

    /// Adopt a tail position (used by a new leader taking over a ring).
    pub fn adopt_tail(&mut self, appended: u64) {
        self.next_seq = appended + 1;
        self.acked_head = self.acked_head.max(appended.saturating_sub(self.cap / 2));
    }

    fn slot_offset(&self, seq: u64) -> usize {
        self.base + (((seq - 1) % self.cap) as usize) * self.slot_size
    }

    fn recycle(&mut self, slot: Vec<u8>) {
        if self.spare.len() < SPARE_SLOTS {
            self.spare.push(slot);
        }
    }

    /// Append an encoded entry; returns its sequence number. The entry
    /// is only queued: call [`flush`](Self::flush) to post the pending
    /// entries (coalesced) once the current burst of appends is done.
    pub fn append<U: Wire>(&mut self, ctx: &mut impl Transport, entry: &Entry<U>) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        let (kind, writer, reader) = (self.kind, ctx.node(), self.target);
        ctx.emit(|| TraceEvent::RingAppend { ring: kind, writer, reader, seq });
        let mut slot = self.spare.pop().unwrap_or_default();
        entry.to_slot_into(seq, self.slot_size, &mut slot);
        self.pending.push_back((seq, slot));
        seq
    }

    /// Re-write a specific already-assigned slot (leader catch-up and
    /// broadcast recovery): positional, idempotent at the reader.
    pub fn rewrite(&mut self, ctx: &mut impl Transport, seq: u64, slot: Vec<u8>) {
        let offset = self.slot_offset(seq);
        let wr = ctx.post_write(self.target, self.region, offset, &slot);
        ctx.note_ring_write(1);
        self.posted.insert(wr, (seq, seq));
    }

    fn maybe_read_head(&mut self, ctx: &mut impl Transport) {
        let lag = (self.next_seq - 1).saturating_sub(self.acked_head);
        if self.head_read.is_none() && (lag * 2 > self.cap || !self.pending.is_empty()) {
            self.head_read =
                Some(ctx.post_read(self.target, self.head_region, self.head_offset, 8));
        }
    }

    /// Feed a completion; returns `Some(done)` when it was one of this
    /// ring's writes, `None` otherwise (including head reads, which are
    /// absorbed internally).
    pub fn on_completion(
        &mut self,
        ctx: &mut impl Transport,
        wr: WrId,
        status: CompletionStatus,
        data: Option<&[u8]>,
    ) -> Option<AppendDone> {
        if self.head_read == Some(wr) {
            self.head_read = None;
            if status.is_success() {
                if let Some(d) = data {
                    if d.len() == 8 {
                        let head = u64::from_le_bytes(d.try_into().expect("8 bytes"));
                        self.acked_head = self.acked_head.max(head);
                    }
                }
            }
            self.flush(ctx);
            return None;
        }
        let (first_seq, last_seq) = self.posted.remove(&wr)?;
        Some(AppendDone { first_seq, last_seq, status })
    }

    /// Post the pending entries, coalescing contiguous runs into single
    /// WRITEs. A batch ends at the flow-control window (`acked_head +
    /// cap`), at ring wraparound (the next slot is not adjacent in
    /// memory), and at `max_batch` slots. Entries beyond the window
    /// stay queued until a head read observes room.
    pub fn flush(&mut self, ctx: &mut impl Transport) {
        loop {
            let first = match self.pending.front() {
                Some(&(seq, _)) if seq <= self.acked_head + self.cap => seq,
                _ => break,
            };
            self.batch_buf.clear();
            let mut last = first;
            while let Some(&(seq, _)) = self.pending.front() {
                let in_batch = seq - first;
                if seq > self.acked_head + self.cap
                    || in_batch >= self.max_batch
                    || (in_batch > 0 && (seq - 1) % self.cap == 0)
                {
                    break;
                }
                let (seq, slot) = self.pending.pop_front().expect("front checked");
                debug_assert_eq!(slot.len(), self.slot_size, "slots are fixed-size");
                self.batch_buf.extend_from_slice(&slot);
                self.recycle(slot);
                last = seq;
            }
            let offset = self.slot_offset(first);
            let wr = ctx.post_write(self.target, self.region, offset, &self.batch_buf);
            ctx.note_ring_write(last - first + 1);
            self.posted.insert(wr, (first, last));
            if last > first {
                let (kind, writer, reader) = (self.kind, ctx.node(), self.target);
                let count = last - first + 1;
                ctx.emit(|| TraceEvent::RingBatch {
                    ring: kind,
                    writer,
                    reader,
                    first_seq: first,
                    count,
                });
            }
        }
        self.maybe_read_head(ctx);
    }

    /// Whether the flow-control window is exhausted: the next append
    /// would not be postable until the reader's head advances.
    pub fn is_backpressured(&self) -> bool {
        self.next_seq > self.acked_head + self.cap
    }

    /// Whether entries are queued but not yet posted (awaiting a flush
    /// or ring space).
    pub fn has_pending(&self) -> bool {
        !self.pending.is_empty()
    }
}

/// Reader-side state of one ring.
#[derive(Debug)]
pub struct RingReader {
    kind: RingKind,
    region: RegionId,
    base: usize,
    cap: u64,
    slot_size: usize,
    /// Next sequence number to apply (1-based).
    next: u64,
    /// Where this reader's head counter lives (own region).
    head_region: RegionId,
    head_offset: usize,
}

impl RingReader {
    /// A reader of `kind` over the local ring at `(region, base)`; its
    /// head counter lives at `(head_region, head_offset)` in local
    /// memory.
    pub fn new(
        kind: RingKind,
        region: RegionId,
        base: usize,
        cap: usize,
        slot_size: usize,
        head_region: RegionId,
        head_offset: usize,
    ) -> Self {
        RingReader {
            kind,
            region,
            base,
            cap: cap as u64,
            slot_size,
            next: 1,
            head_region,
            head_offset,
        }
    }

    /// Sequence number of the next entry this reader expects.
    pub fn next_seq(&self) -> u64 {
        self.next
    }

    /// Number of entries applied so far.
    pub fn applied(&self) -> u64 {
        self.next - 1
    }

    fn slot_offset(&self, seq: u64) -> usize {
        self.base + (((seq - 1) % self.cap) as usize) * self.slot_size
    }

    /// Whether the next entry has fully landed (sequence and canary
    /// prefix check), without decoding the payload.
    pub fn next_ready(&self, ctx: &mut impl Transport) -> bool {
        let slot = ctx.local(self.region, self.slot_offset(self.next), self.slot_size);
        crate::codec::slot_ready(slot, self.next)
    }

    /// Peek the next entry if it has fully landed (sequence and canary
    /// check — "to check whether the buffer is not empty and the call is
    /// not concurrently being written, the receiver checks the canary").
    /// The cheap [`next_ready`](Self::next_ready) prefix check runs
    /// first so an empty or in-flight slot costs no payload decode.
    pub fn peek<U: Wire>(&self, ctx: &mut impl Transport) -> Option<Entry<U>> {
        if !self.next_ready(ctx) {
            return None;
        }
        let slot = ctx.local(self.region, self.slot_offset(self.next), self.slot_size);
        Entry::from_slot(slot, self.next)
    }

    /// Raw bytes of the slot holding `seq` (leader catch-up reads).
    pub fn raw_slot<'c>(&self, ctx: &'c mut impl Transport, seq: u64) -> &'c [u8] {
        ctx.local(self.region, self.slot_offset(seq), self.slot_size)
    }

    /// Consume the entry just peeked: advance the head and publish the
    /// new head counter for the writer's flow-control reads. `writer`
    /// is the node that appended the consumed entry (the ring's feeder
    /// for `F` rings, the appending leader for `L` rings).
    pub fn advance(&mut self, ctx: &mut impl Transport, writer: NodeId) {
        let seq = self.next;
        self.next += 1;
        let (kind, reader) = (self.kind, ctx.node());
        ctx.emit(|| TraceEvent::RingApply { ring: kind, reader, writer, seq });
        let head = self.next - 1;
        ctx.local_write(self.head_region, self.head_offset, &head.to_le_bytes());
    }

    /// Adopt a head position (node joining an in-progress ring — not
    /// used in the normal protocol, provided for recovery tooling).
    pub fn adopt_head(&mut self, ctx: &mut impl Transport, applied: u64) {
        self.next = applied + 1;
        ctx.local_write(self.head_region, self.head_offset, &applied.to_le_bytes());
    }

    /// Test-only: pretend entries through `applied` were consumed,
    /// without a transport (role-machine unit tests).
    #[cfg(test)]
    pub(crate) fn skip_to_for_test(&mut self, applied: u64) {
        self.next = applied + 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hamband_core::counts::DepMap;
    use hamband_core::demo::{Account, AccountUpdate};
    use hamband_core::ids::{Pid, Rid};
    use rdma_sim::{
        App, CollectingSink, Ctx, Event, FaultPlan, LatencyModel, SimDuration, SimTime, Simulator,
        Stats,
    };

    const SLOT: usize = 64;
    const CAP: usize = 8;

    /// Node 0 writes `to_send` entries into node 1's ring; node 1 polls
    /// and applies. Exercises flow control across wrap-around.
    struct RingApp {
        #[allow(dead_code)]
        ring_region: RegionId,
        #[allow(dead_code)]
        heads_region: RegionId,
        writer: Option<RingWriter>,
        reader: Option<RingReader>,
        to_send: u64,
        sent: u64,
        received: Vec<u64>,
        completions: u64,
    }

    impl RingApp {
        fn new(
            node: usize,
            ring_region: RegionId,
            heads_region: RegionId,
            to_send: u64,
            max_batch: usize,
        ) -> Self {
            let writer = (node == 0).then(|| {
                RingWriter::new(RingKind::Free, NodeId(1), ring_region, 0, CAP, SLOT, heads_region, 0)
                    .with_max_batch(max_batch)
            });
            let reader = (node == 1)
                .then(|| RingReader::new(RingKind::Free, ring_region, 0, CAP, SLOT, heads_region, 0));
            RingApp {
                ring_region,
                heads_region,
                writer,
                reader,
                to_send,
                sent: 0,
                received: Vec::new(),
                completions: 0,
            }
        }

        fn pump_writer(&mut self, ctx: &mut Ctx<'_>) {
            if let Some(w) = self.writer.as_mut() {
                while self.sent < self.to_send && !w.is_backpressured() {
                    let e = Entry {
                        rid: Rid::new(Pid(0), self.sent),
                        update: Account::deposit(self.sent + 1),
                        deps: DepMap::empty(),
                    };
                    w.append(ctx, &e);
                    self.sent += 1;
                }
                w.flush(ctx);
            }
        }

        fn pump_reader(&mut self, ctx: &mut Ctx<'_>) {
            if let Some(r) = self.reader.as_mut() {
                while let Some(e) = r.peek::<AccountUpdate>(ctx) {
                    let AccountUpdate::Deposit(v) = e.update else { panic!("deposit") };
                    self.received.push(v);
                    r.advance(ctx, NodeId(0));
                }
            }
        }
    }

    impl App for RingApp {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            self.pump_writer(ctx);
            ctx.set_timer(SimDuration::micros(1), 0);
        }

        fn on_event(&mut self, ctx: &mut Ctx<'_>, event: Event) {
            match event {
                Event::Timer { .. } => {
                    self.pump_reader(ctx);
                    self.pump_writer(ctx);
                    ctx.set_timer(SimDuration::micros(1), 0);
                }
                Event::Completion { wr, status, data, .. } => {
                    if let Some(w) = self.writer.as_mut() {
                        if let Some(done) = w.on_completion(ctx, wr, status, data.as_deref()) {
                            assert!(done.status.is_success());
                            self.completions += done.count();
                        }
                    }
                    self.pump_writer(ctx);
                }
                _ => {}
            }
        }
    }

    fn run_with(
        to_send: u64,
        torn: bool,
        max_batch: usize,
        sink: Option<CollectingSink>,
    ) -> (Vec<u64>, u64, Stats) {
        let mut sim = Simulator::new(2, LatencyModel::deterministic(), 5);
        let ring = sim.add_region_all(CAP * SLOT);
        let heads = sim.add_region_all(8);
        if torn {
            sim.install_fault_plan(
                &FaultPlan::new().at(SimTime::ZERO, rdma_sim::Fault::TornWrites(NodeId(1))),
            );
        }
        if let Some(sink) = sink {
            sim.set_trace_sink(Box::new(sink));
        }
        sim.set_apps(|n| RingApp::new(n.index(), ring, heads, to_send, max_batch));
        sim.run_for(SimDuration::millis(20));
        let recv = sim.app(NodeId(1)).received.clone();
        let comp = sim.app(NodeId(0)).completions;
        let stats = sim.stats().clone();
        (recv, comp, stats)
    }

    fn run(to_send: u64, torn: bool, max_batch: usize) -> (Vec<u64>, u64) {
        let (recv, comp, _) = run_with(to_send, torn, max_batch, None);
        (recv, comp)
    }

    #[test]
    fn delivers_in_order_across_wraparound() {
        // 50 entries through an 8-slot ring: flow control must engage.
        let (received, completions) = run(50, false, 4);
        assert_eq!(received, (1..=50).collect::<Vec<u64>>());
        assert_eq!(completions, 50, "every entry is covered by a completion");
    }

    #[test]
    fn batching_reduces_write_count() {
        let (recv_1, comp_1, stats_1) = run_with(50, false, 1, None);
        let (recv_8, comp_8, stats_8) = run_with(50, false, 8, None);
        assert_eq!(recv_1, recv_8, "delivery order is batch-invariant");
        assert_eq!(comp_1, 50);
        assert_eq!(comp_8, 50);
        assert_eq!(stats_1.ring_slots, 50, "every slot accounted");
        assert_eq!(stats_8.ring_slots, 50, "every slot accounted");
        assert_eq!(stats_1.ring_writes, 50, "unbatched: one WRITE per entry");
        assert!(
            stats_8.ring_writes < stats_1.ring_writes,
            "batched run posted {} ring WRITEs, unbatched {}",
            stats_8.ring_writes,
            stats_1.ring_writes
        );
        // Every one-sided WRITE this app posts is a ring write.
        assert_eq!(stats_8.ring_writes, stats_8.writes);
    }

    #[test]
    fn batches_never_cross_wraparound_or_max_batch() {
        let (sink, buf) = CollectingSink::new();
        let (received, _, _) = run_with(50, false, 4, Some(sink));
        assert_eq!(received, (1..=50).collect::<Vec<u64>>());
        let mut saw_batch = false;
        for rec in buf.take() {
            if let TraceEvent::RingBatch { first_seq, count, .. } = rec.event {
                saw_batch = true;
                assert!(count >= 2, "single-slot writes are not batch events");
                assert!(count <= 4, "batch of {count} exceeds max_batch");
                let first_slot = (first_seq - 1) % CAP as u64;
                assert!(
                    first_slot + count <= CAP as u64,
                    "batch [{first_seq}, +{count}) crosses the ring boundary"
                );
            }
        }
        assert!(saw_batch, "a 50-entry burst must coalesce at least once");
    }

    #[test]
    fn canary_protects_against_torn_writes() {
        let (received, _) = run(20, true, 8);
        assert_eq!(received, (1..=20).collect::<Vec<u64>>(), "no torn entry was consumed");
    }

    #[test]
    fn reader_sees_nothing_in_empty_ring() {
        let (received, _) = run(0, false, 4);
        assert!(received.is_empty());
    }

    #[test]
    fn adopt_tail_continues_numbering() {
        let mut w = RingWriter::new(RingKind::Free, NodeId(1), RegionId(0), 0, 8, 64, RegionId(1), 0)
            .with_max_batch(3);
        w.adopt_tail(12);
        assert_eq!(w.next_seq(), 13);
        assert_eq!(w.appended(), 12);
        assert!(!w.has_pending());
    }
}
