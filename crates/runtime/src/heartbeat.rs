//! Heartbeats and the pull-style failure detector.
//!
//! §4: "Each node has a heartbeat thread that periodically updates a
//! local counter. This counter is periodically read by other nodes to
//! determine whether that node is still alive or not."
//!
//! The emitter increments a counter in local registered memory; the
//! detector posts one-sided READs of each peer's counter and suspects a
//! peer whose counter stays unchanged for a configured number of
//! consecutive reads. Suspicion is *not* sticky at the detector level:
//! suspected peers keep being read, and observed counter progress clears
//! the suspicion ([`FdEvent::Recovered`]) — a heartbeat that resumes
//! after the threshold is again distinguishable from one that resumed
//! just before it. Protocol-level consequences that already fired
//! (quota adoption, leader takeover) are *not* rolled back; the replica
//! layer treats them as crash-stop and merely stops excluding the peer
//! from future delegate and election choices.
//!
//! Reads that complete back-to-back carry no new information: the
//! emitter only beats every heartbeat interval, so the detector counts
//! a read as "unchanged" only when at least [`min_sample_gap`] of
//! virtual time passed since the previous counted sample. This guards
//! against a burst of delayed reads (e.g. released by a healed network
//! partition) all observing the same counter value and escalating to a
//! false suspicion within one instant.
//!
//! [`min_sample_gap`]: FailureDetector::with_min_sample_gap

use std::collections::HashMap;

use rdma_sim::{NodeId, RegionId, SimDuration, SimTime, WrId};

use crate::membership::Membership;
use crate::transport::Transport;

/// Heartbeat emitter state.
#[derive(Debug)]
pub struct Heartbeat {
    region: RegionId,
    counter: u64,
    /// Set by the fault plan: a suspended heartbeat stops announcing
    /// liveness while the node keeps serving (§5 failure injection).
    pub suspended: bool,
}

impl Heartbeat {
    /// An emitter writing to offset 0 of `region`.
    pub fn new(region: RegionId) -> Self {
        Heartbeat { region, counter: 0, suspended: false }
    }

    /// One heartbeat tick: bump the local counter (no-op while
    /// suspended).
    pub fn beat(&mut self, ctx: &mut impl Transport) {
        if self.suspended {
            return;
        }
        self.counter += 1;
        ctx.local_write(self.region, 0, &self.counter.to_le_bytes());
    }
}

/// What a completed detector read revealed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FdEvent {
    /// The peer crossed the suspicion threshold.
    Suspected(NodeId),
    /// A previously suspected peer's counter moved again.
    Recovered(NodeId),
}

/// Failure-detector state for one observed peer.
#[derive(Debug, Clone, Copy)]
struct PeerView {
    last_value: u64,
    unchanged_reads: u32,
    /// When the last *counted* sample completed (bursts of reads
    /// completing within `min_sample_gap` count once).
    last_sample_at: SimTime,
    suspected: bool,
    /// The peer announced it will never serve again (workload-level
    /// crash-stop). Suspicion of such a peer is sticky even when its
    /// heartbeat counter keeps moving.
    workload_dead: bool,
}

/// The pull failure detector: reads peers' heartbeat counters.
#[derive(Debug)]
pub struct FailureDetector {
    hb_region: RegionId,
    suspect_after: u32,
    min_sample_gap: SimDuration,
    peers: Vec<PeerView>,
    inflight: HashMap<WrId, NodeId>,
    me: NodeId,
}

impl FailureDetector {
    /// A detector at `me` over a cluster of `n` nodes whose heartbeat
    /// counters live at offset 0 of `hb_region`; a peer is suspected
    /// after `suspect_after` consecutive unchanged reads.
    pub fn new(me: NodeId, n: usize, hb_region: RegionId, suspect_after: u32) -> Self {
        assert!(suspect_after > 0);
        FailureDetector {
            hb_region,
            suspect_after,
            min_sample_gap: SimDuration::ZERO,
            peers: vec![
                PeerView {
                    last_value: 0,
                    unchanged_reads: 0,
                    last_sample_at: SimTime::ZERO,
                    suspected: false,
                    workload_dead: false,
                };
                n
            ],
            inflight: HashMap::new(),
            me,
        }
    }

    /// Count an unchanged read only if at least `gap` passed since the
    /// previous counted sample (typically the heartbeat interval: any
    /// denser and an unchanged counter is expected, not suspicious).
    pub fn with_min_sample_gap(mut self, gap: SimDuration) -> Self {
        self.min_sample_gap = gap;
        self
    }

    /// Whether `peer` is currently suspected.
    pub fn is_suspected(&self, peer: NodeId) -> bool {
        self.peers[peer.index()].suspected
    }

    /// Record a peer's announcement that it has permanently stopped
    /// serving (e.g. it resumed from a pause it treats as crash-stop).
    /// The peer becomes suspected and stays so regardless of heartbeat
    /// progress. Returns `true` iff this newly suspected the peer.
    pub fn mark_workload_dead(&mut self, peer: NodeId) -> bool {
        let view = &mut self.peers[peer.index()];
        view.workload_dead = true;
        let newly = !view.suspected;
        view.suspected = true;
        newly
    }

    /// All currently suspected peers.
    pub fn suspected(&self) -> Vec<NodeId> {
        (0..self.peers.len())
            .map(NodeId)
            .filter(|&p| self.peers[p.index()].suspected)
            .collect()
    }

    /// A point-in-time [`Membership`] snapshot of the unsuspected set,
    /// for alive-set decisions (recovery delegate, election starter,
    /// quota adoption).
    pub fn membership(&self) -> Membership {
        Membership::new(
            self.me,
            self.peers.iter().map(|p| !p.suspected).collect(),
        )
    }

    /// The lowest-numbered node not suspected (and not `skip`), used to
    /// pick recovery delegates deterministically. Shorthand for
    /// [`membership`](Self::membership)`.lowest_alive(skip)`.
    pub fn lowest_alive(&self, skip: Option<NodeId>) -> NodeId {
        self.membership().lowest_alive(skip)
    }

    /// One detector tick: post a read of every peer's counter.
    /// Suspected peers are read too, so a resumed heartbeat is
    /// observed and the suspicion cleared.
    pub fn tick(&mut self, ctx: &mut impl Transport) {
        for p in 0..self.peers.len() {
            let peer = NodeId(p);
            if peer == self.me {
                continue;
            }
            let wr = ctx.post_read(peer, self.hb_region, 0, 8);
            self.inflight.insert(wr, peer);
        }
    }

    /// Feed a completion at virtual time `now`. Returns the state
    /// transition this read caused, if any.
    pub fn on_completion(
        &mut self,
        now: SimTime,
        wr: WrId,
        data: Option<&[u8]>,
    ) -> Option<FdEvent> {
        let peer = self.inflight.remove(&wr)?;
        let view = &mut self.peers[peer.index()];
        let value = data
            .filter(|d| d.len() == 8)
            .map(|d| u64::from_le_bytes(d.try_into().expect("8 bytes")))
            .unwrap_or(view.last_value);
        if value != view.last_value {
            view.last_value = value;
            view.unchanged_reads = 0;
            view.last_sample_at = now;
            if view.suspected && !view.workload_dead {
                view.suspected = false;
                return Some(FdEvent::Recovered(peer));
            }
            return None;
        }
        // Unchanged: only meaningful if the emitter had time to beat
        // since the last counted sample.
        if now < view.last_sample_at + self.min_sample_gap {
            return None;
        }
        view.last_sample_at = now;
        view.unchanged_reads += 1;
        if view.unchanged_reads >= self.suspect_after && !view.suspected {
            view.suspected = true;
            return Some(FdEvent::Suspected(peer));
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdma_sim::{App, Ctx, Event, LatencyModel, SimDuration, Simulator};

    struct HbApp {
        hb: Heartbeat,
        fd: FailureDetector,
        newly_suspected: Vec<NodeId>,
        recovered: Vec<NodeId>,
        beats_enabled: bool,
    }

    impl App for HbApp {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            ctx.set_timer(SimDuration::micros(5), 0); // beat
            ctx.set_timer(SimDuration::micros(12), 1); // detect
        }

        fn on_event(&mut self, ctx: &mut Ctx<'_>, event: Event) {
            match event {
                Event::Timer { tag: 0, .. } => {
                    if self.beats_enabled {
                        self.hb.beat(ctx);
                    }
                    ctx.set_timer(SimDuration::micros(5), 0);
                }
                Event::Timer { tag: 1, .. } => {
                    self.fd.tick(ctx);
                    ctx.set_timer(SimDuration::micros(12), 1);
                }
                Event::Completion { wr, data, .. } => {
                    match self.fd.on_completion(ctx.now(), wr, data.as_deref()) {
                        Some(FdEvent::Suspected(p)) => self.newly_suspected.push(p),
                        Some(FdEvent::Recovered(p)) => self.recovered.push(p),
                        None => {}
                    }
                }
                _ => {}
            }
        }
    }

    fn cluster(n: usize, dead: &[usize]) -> Simulator<HbApp> {
        let mut sim = Simulator::new(n, LatencyModel::deterministic(), 3);
        let hb = sim.add_region_all(8);
        let dead = dead.to_vec();
        sim.set_apps(|id| HbApp {
            hb: Heartbeat::new(hb),
            fd: FailureDetector::new(id, n, hb, 4)
                .with_min_sample_gap(SimDuration::micros(5)),
            newly_suspected: Vec::new(),
            recovered: Vec::new(),
            beats_enabled: !dead.contains(&id.index()),
        });
        sim
    }

    #[test]
    fn live_peers_are_not_suspected() {
        let mut sim = cluster(3, &[]);
        sim.run_for(SimDuration::millis(2));
        for n in 0..3 {
            assert!(sim.app(NodeId(n)).newly_suspected.is_empty());
            assert_eq!(sim.app(NodeId(n)).fd.suspected(), vec![]);
        }
    }

    #[test]
    fn silent_peer_is_suspected_exactly_once() {
        let mut sim = cluster(3, &[2]);
        sim.run_for(SimDuration::millis(2));
        for n in 0..2 {
            assert_eq!(sim.app(NodeId(n)).newly_suspected, vec![NodeId(2)]);
            assert!(sim.app(NodeId(n)).fd.is_suspected(NodeId(2)));
        }
    }

    #[test]
    fn lowest_alive_skips_suspects() {
        let mut sim = cluster(3, &[0]);
        sim.run_for(SimDuration::millis(2));
        let fd = &sim.app(NodeId(1)).fd;
        assert_eq!(fd.lowest_alive(None), NodeId(1));
        assert_eq!(fd.lowest_alive(Some(NodeId(1))), NodeId(2));
    }

    #[test]
    fn suspended_emitter_goes_silent() {
        let mut sim = cluster(2, &[]);
        sim.run_for(SimDuration::millis(1));
        assert!(sim.app(NodeId(0)).newly_suspected.is_empty());
        sim.app_mut(NodeId(1)).hb.suspended = true;
        sim.run_for(SimDuration::millis(2));
        assert_eq!(sim.app(NodeId(0)).newly_suspected, vec![NodeId(1)]);
    }

    #[test]
    fn resumed_emitter_clears_suspicion() {
        let mut sim = cluster(2, &[]);
        sim.run_for(SimDuration::millis(1));
        sim.app_mut(NodeId(1)).hb.suspended = true;
        sim.run_for(SimDuration::millis(2));
        assert!(sim.app(NodeId(0)).fd.is_suspected(NodeId(1)));
        // Resume well past the suspicion threshold: progress is
        // observed (suspects keep being read) and suspicion clears.
        sim.app_mut(NodeId(1)).hb.suspended = false;
        sim.run_for(SimDuration::millis(2));
        let app = sim.app(NodeId(0));
        assert!(!app.fd.is_suspected(NodeId(1)));
        assert_eq!(app.recovered, vec![NodeId(1)]);
        // A single suspect/recover cycle, not a flapping series.
        assert_eq!(app.newly_suspected, vec![NodeId(1)]);
    }

    #[test]
    fn burst_of_stale_reads_counts_once() {
        // Reads completing within the min sample gap carry no new
        // information and must not escalate to a suspicion by
        // themselves (regression for partition-heal read bursts).
        let mut fd = FailureDetector::new(NodeId(0), 2, RegionId(0), 3)
            .with_min_sample_gap(SimDuration::micros(5));
        let value = 7u64.to_le_bytes();
        // Seed a counted sample with a fresh value at t=10us.
        fd.inflight.insert(WrId(0), NodeId(1));
        assert_eq!(
            fd.on_completion(SimTime(10_000), WrId(0), Some(&value)),
            None
        );
        // A burst of identical values inside one gap: counted once.
        for (i, dt) in [100u64, 200, 300, 400].iter().enumerate() {
            let wr = WrId(1 + i as u64);
            fd.inflight.insert(wr, NodeId(1));
            assert_eq!(
                fd.on_completion(SimTime(10_000 + dt), wr, Some(&value)),
                None,
                "burst read {i} must not escalate"
            );
        }
        assert!(!fd.is_suspected(NodeId(1)));
        // Properly spaced unchanged samples do escalate.
        for i in 0..3u64 {
            let wr = WrId(10 + i);
            fd.inflight.insert(wr, NodeId(1));
            let at = SimTime(20_000 + i * 6_000);
            let got = fd.on_completion(at, wr, Some(&value));
            if i == 2 {
                assert_eq!(got, Some(FdEvent::Suspected(NodeId(1))));
            } else {
                assert_eq!(got, None);
            }
        }
    }
}
