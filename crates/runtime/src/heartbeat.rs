//! Heartbeats and the pull-style failure detector.
//!
//! §4: "Each node has a heartbeat thread that periodically updates a
//! local counter. This counter is periodically read by other nodes to
//! determine whether that node is still alive or not."
//!
//! The emitter increments a counter in local registered memory; the
//! detector posts one-sided READs of each peer's counter and suspects a
//! peer whose counter stays unchanged for a configured number of
//! consecutive reads. Suspicion is *sticky* (crash-stop model), matching
//! how the evaluation injects failures by suspending heartbeat threads.

use std::collections::HashMap;

use rdma_sim::{Ctx, NodeId, RegionId, WrId};

/// Heartbeat emitter state.
#[derive(Debug)]
pub struct Heartbeat {
    region: RegionId,
    counter: u64,
    /// Set by the fault plan: a suspended heartbeat stops announcing
    /// liveness while the node keeps serving (§5 failure injection).
    pub suspended: bool,
}

impl Heartbeat {
    /// An emitter writing to offset 0 of `region`.
    pub fn new(region: RegionId) -> Self {
        Heartbeat { region, counter: 0, suspended: false }
    }

    /// One heartbeat tick: bump the local counter (no-op while
    /// suspended).
    pub fn beat(&mut self, ctx: &mut Ctx<'_>) {
        if self.suspended {
            return;
        }
        self.counter += 1;
        ctx.local_write(self.region, 0, &self.counter.to_le_bytes());
    }
}

/// Failure-detector state for one observed peer.
#[derive(Debug, Clone, Copy)]
struct PeerView {
    last_value: u64,
    unchanged_reads: u32,
    suspected: bool,
}

/// The pull failure detector: reads peers' heartbeat counters.
#[derive(Debug)]
pub struct FailureDetector {
    hb_region: RegionId,
    suspect_after: u32,
    peers: Vec<PeerView>,
    inflight: HashMap<WrId, NodeId>,
    me: NodeId,
}

impl FailureDetector {
    /// A detector at `me` over a cluster of `n` nodes whose heartbeat
    /// counters live at offset 0 of `hb_region`; a peer is suspected
    /// after `suspect_after` consecutive unchanged reads.
    pub fn new(me: NodeId, n: usize, hb_region: RegionId, suspect_after: u32) -> Self {
        assert!(suspect_after > 0);
        FailureDetector {
            hb_region,
            suspect_after,
            peers: vec![PeerView { last_value: 0, unchanged_reads: 0, suspected: false }; n],
            inflight: HashMap::new(),
            me,
        }
    }

    /// Whether `peer` is currently suspected.
    pub fn is_suspected(&self, peer: NodeId) -> bool {
        self.peers[peer.index()].suspected
    }

    /// All currently suspected peers.
    pub fn suspected(&self) -> Vec<NodeId> {
        (0..self.peers.len())
            .map(NodeId)
            .filter(|&p| self.peers[p.index()].suspected)
            .collect()
    }

    /// The lowest-numbered node not suspected (and not `skip`), used to
    /// pick recovery delegates deterministically.
    pub fn lowest_alive(&self, skip: Option<NodeId>) -> NodeId {
        (0..self.peers.len())
            .map(NodeId)
            .find(|&p| !self.peers[p.index()].suspected && Some(p) != skip)
            .unwrap_or(self.me)
    }

    /// One detector tick: post a read of every unsuspected peer's
    /// counter.
    pub fn tick(&mut self, ctx: &mut Ctx<'_>) {
        for p in 0..self.peers.len() {
            let peer = NodeId(p);
            if peer == self.me || self.peers[p].suspected {
                continue;
            }
            let wr = ctx.post_read(peer, self.hb_region, 0, 8);
            self.inflight.insert(wr, peer);
        }
    }

    /// Feed a completion. Returns `Some(peer)` when this read caused a
    /// *new* suspicion.
    pub fn on_completion(&mut self, wr: WrId, data: Option<&[u8]>) -> Option<NodeId> {
        let peer = self.inflight.remove(&wr)?;
        let view = &mut self.peers[peer.index()];
        let value = data
            .filter(|d| d.len() == 8)
            .map(|d| u64::from_le_bytes(d.try_into().expect("8 bytes")))
            .unwrap_or(view.last_value);
        if value != view.last_value {
            view.last_value = value;
            view.unchanged_reads = 0;
            return None;
        }
        view.unchanged_reads += 1;
        if view.unchanged_reads >= self.suspect_after && !view.suspected {
            view.suspected = true;
            return Some(peer);
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdma_sim::{App, Event, LatencyModel, SimDuration, Simulator};

    struct HbApp {
        hb: Heartbeat,
        fd: FailureDetector,
        newly_suspected: Vec<NodeId>,
        beats_enabled: bool,
    }

    impl App for HbApp {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            ctx.set_timer(SimDuration::micros(5), 0); // beat
            ctx.set_timer(SimDuration::micros(12), 1); // detect
        }

        fn on_event(&mut self, ctx: &mut Ctx<'_>, event: Event) {
            match event {
                Event::Timer { tag: 0, .. } => {
                    if self.beats_enabled {
                        self.hb.beat(ctx);
                    }
                    ctx.set_timer(SimDuration::micros(5), 0);
                }
                Event::Timer { tag: 1, .. } => {
                    self.fd.tick(ctx);
                    ctx.set_timer(SimDuration::micros(12), 1);
                }
                Event::Completion { wr, data, .. } => {
                    if let Some(p) = self.fd.on_completion(wr, data.as_deref()) {
                        self.newly_suspected.push(p);
                    }
                }
                _ => {}
            }
        }
    }

    fn cluster(n: usize, dead: &[usize]) -> Simulator<HbApp> {
        let mut sim = Simulator::new(n, LatencyModel::deterministic(), 3);
        let hb = sim.add_region_all(8);
        let dead = dead.to_vec();
        sim.set_apps(|id| HbApp {
            hb: Heartbeat::new(hb),
            fd: FailureDetector::new(id, n, hb, 4),
            newly_suspected: Vec::new(),
            beats_enabled: !dead.contains(&id.index()),
        });
        sim
    }

    #[test]
    fn live_peers_are_not_suspected() {
        let mut sim = cluster(3, &[]);
        sim.run_for(SimDuration::millis(2));
        for n in 0..3 {
            assert!(sim.app(NodeId(n)).newly_suspected.is_empty());
            assert_eq!(sim.app(NodeId(n)).fd.suspected(), vec![]);
        }
    }

    #[test]
    fn silent_peer_is_suspected_exactly_once() {
        let mut sim = cluster(3, &[2]);
        sim.run_for(SimDuration::millis(2));
        for n in 0..2 {
            assert_eq!(sim.app(NodeId(n)).newly_suspected, vec![NodeId(2)]);
            assert!(sim.app(NodeId(n)).fd.is_suspected(NodeId(2)));
        }
    }

    #[test]
    fn lowest_alive_skips_suspects() {
        let mut sim = cluster(3, &[0]);
        sim.run_for(SimDuration::millis(2));
        let fd = &sim.app(NodeId(1)).fd;
        assert_eq!(fd.lowest_alive(None), NodeId(1));
        assert_eq!(fd.lowest_alive(Some(NodeId(1))), NodeId(2));
    }

    #[test]
    fn suspended_emitter_goes_silent() {
        let mut sim = cluster(2, &[]);
        sim.run_for(SimDuration::millis(1));
        assert!(sim.app(NodeId(0)).newly_suspected.is_empty());
        sim.app_mut(NodeId(1)).hb.suspended = true;
        sim.run_for(SimDuration::millis(2));
        assert_eq!(sim.app(NodeId(0)).newly_suspected, vec![NodeId(1)]);
    }
}
