//! Commit advancement for the CONF path (leader side).
//!
//! An `L`-ring entry is committed once a majority of the cluster holds
//! it (the leader's own copy plus `n/2` remote completions). The leader
//! advances the group's commit index over every contiguous committed
//! sequence, acknowledges the client calls it covers, and pushes the
//! index into every follower's commit cell — write-combined: at most
//! one round of commit-cell WRITEs is in flight per group, and a round
//! that lands stale (the index moved meanwhile) immediately triggers
//! the next (`HambandNode::flush_commit`).

use hamband_core::object::WorkloadSupport;
use hamband_core::wire::Wire;
use rdma_sim::{CompletionStatus, NodeId, TraceEvent};

use crate::calls::Route;
use crate::replica::HambandNode;
use crate::transport::Transport;

impl<O> HambandNode<O>
where
    O: WorkloadSupport,
    O::Update: Wire,
{
    /// Advance group `g`'s commit index over newly majority-acked
    /// sequences, acknowledge the committed client calls, and push the
    /// index to followers.
    pub(crate) fn advance_commit<T: Transport>(&mut self, ctx: &mut T, g: usize) {
        let need = self.majority_remote();
        let before = self.engines[g].commit;
        let commit = self.engines[g].advance_commit_index(need);
        if commit > before {
            // Recorded before the client acks below, so a collected
            // trace always shows CommitAdvance ahead of the Acks it
            // enables.
            let node = self.me;
            ctx.emit(|| TraceEvent::CommitAdvance { node, group: g, commit });
        }
        // Acknowledge committed client calls.
        let mut acked = Vec::new();
        if let Some(l) = self.engines[g].leader_mut() {
            acked = l
                .client_by_seq
                .iter()
                .filter(|&(&seq, _)| seq <= commit)
                .map(|(_, &cid)| cid)
                .collect();
            let seqs: Vec<u64> =
                l.client_by_seq.keys().copied().filter(|&s| s <= commit).collect();
            for s in seqs {
                l.client_by_seq.remove(&s);
            }
        }
        for cid in acked {
            if let Some(o) = self.outstanding.get_mut(&cid) {
                o.ack_remaining = 0;
            }
            self.finish_call(ctx, cid);
        }
        // Push the commit index to followers (coalesced).
        self.flush_commit(ctx, g);
        // The leader's own commit cell (read by poll_conf fallback and
        // by successors).
        ctx.local_write(
            self.layout.conf[g],
            self.layout.conf_commit_offset(),
            &commit.to_le_bytes(),
        );
    }

    /// Push `g`'s commit index to every follower's commit cell, unless
    /// a round is already in flight or the index has not moved.
    pub(crate) fn flush_commit<T: Transport>(&mut self, ctx: &mut T, g: usize) {
        if !self.engines[g].is_leader() {
            return;
        }
        let e = &self.engines[g];
        if e.commit > e.commit_written && e.commit_writes_inflight == 0 {
            let commit = e.commit;
            let mut inflight = 0;
            for q in 0..self.n {
                if q == self.me.index() {
                    continue;
                }
                let wr = ctx.post_write(
                    NodeId(q),
                    self.layout.conf[g],
                    self.layout.conf_commit_offset(),
                    &commit.to_le_bytes(),
                );
                self.wr_routes.insert(wr, Route::CommitWrite { group: g });
                inflight += 1;
            }
            let e = &mut self.engines[g];
            e.commit_written = commit;
            e.commit_writes_inflight = inflight;
        }
    }

    /// A commit-cell WRITE completed. Failure means the target has not
    /// granted this (possibly stale) leader permission yet: force a
    /// re-push on the next flush. The in-flight count survives
    /// deposition so a re-elected leader waits out stale rounds.
    pub(crate) fn on_commit_write_done<T: Transport>(
        &mut self,
        ctx: &mut T,
        g: usize,
        status: CompletionStatus,
    ) {
        let e = &mut self.engines[g];
        e.commit_writes_inflight = e.commit_writes_inflight.saturating_sub(1);
        if !status.is_success() {
            // Straggler has not granted us yet; force a re-push
            // of the commit index on the next flush.
            e.commit_written = 0;
        }
        self.flush_commit(ctx, g);
    }
}
