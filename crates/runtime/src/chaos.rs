//! Deterministic chaos campaigns: randomized fault schedules, invariant
//! checks, and shrinking of failing schedules to minimal repros.
//!
//! A *campaign* runs many seeded cases. Each case derives a randomized
//! [`FaultPlan`] from its seed ([`FaultPlan::generate`]), runs the full
//! Hamband (or MSG) cluster under that plan through [`Runner`], and
//! checks three families of properties:
//!
//! * **convergence** — the run's own convergence verdict (all alive
//!   nodes finished the workload and agree on the final state);
//! * **integrity** — every node's final state satisfies the object's
//!   invariant `I` (Lemma 1 of the paper; checked for crashed nodes
//!   too, since integrity must hold at every step, including the
//!   moment a node stopped);
//! * **trace invariants** — structured-trace properties, currently:
//!   every acknowledged conflicting call is covered by an earlier
//!   `CommitAdvance` on the acking node (acks never outrun commit).
//!
//! Everything is deterministic: the same `(object, seed, options)`
//! triple replays the same schedule, the same fabric timings, and the
//! same verdict. When a case fails, [`shrink_case`] re-runs the case
//! under subsets of the schedule (ddmin-style: chunked removal, then
//! single entries) until no entry can be dropped, and the resulting
//! minimal plan is printable as a paste-able literal
//! ([`FaultPlan::to_literal`]) for a regression test.
//!
//! The `chaos` binary in `hamband-bench` fronts this module on the
//! command line; `--canary` (or `HAMBAND_CHAOS_CANARY=1`) plants a
//! deliberate checker bug to prove end-to-end that the campaign both
//! *catches* a violation and *shrinks* it to a tiny repro.

use hamband_core::coord::CoordSpec;
use hamband_core::object::WorkloadSupport;
use hamband_core::wire::Wire;
use rdma_sim::{Fault, FaultGenConfig, FaultPlan, NodeId, Phase, SimTime, TraceEvent};

use crate::driver::WorkloadSpec;
use crate::harness::{RunConfig, Runner, System, TraceMode};

/// Knobs of one chaos campaign (shared by every case in it).
#[derive(Debug, Clone)]
pub struct ChaosOptions {
    /// Cluster size.
    pub nodes: usize,
    /// Calls per case (all nodes together).
    pub ops: u64,
    /// Fraction of calls that are updates.
    pub update_ratio: f64,
    /// Upper bound on faults per generated schedule.
    pub max_faults: usize,
    /// Faults are scheduled within `[horizon/8, horizon]` virtual time.
    pub horizon: SimTime,
    /// Hard cap on virtual time per case.
    pub max_time: SimTime,
    /// Which system to run the cases against.
    pub system: System,
    /// Per-sync-group key shards (see
    /// [`RuntimeConfig::sync_shards`](crate::config::RuntimeConfig::sync_shards)).
    /// Defaults to the env-derived runtime default, so a campaign run
    /// with `HAMBAND_SYNC_SHARDS=4` exercises the sharded issue paths
    /// without any code change.
    pub sync_shards: usize,
    /// Plant the deliberate checker bug (shrinker self-test): any
    /// schedule containing a `Crash` or `SuspendHeartbeat` is flagged
    /// as a violation, which a correct campaign must catch and shrink
    /// to a single-entry repro.
    pub canary: bool,
    /// Pair every generated `Crash` with a later [`Fault::Restart`]
    /// (half of them losing unfenced writes). Cases whose plan contains
    /// a restart run under [`DurabilityMode::Fenced`] so the restarted
    /// node recovers from its persist log and rejoins
    /// (see [`crate::rejoin`]); restart-free plans keep the default
    /// [`DurabilityMode::Off`], so existing campaigns and their golden
    /// trace fingerprints are untouched.
    ///
    /// [`DurabilityMode::Fenced`]: crate::persist::DurabilityMode::Fenced
    /// [`DurabilityMode::Off`]: crate::persist::DurabilityMode::Off
    pub restarts: bool,
}

impl Default for ChaosOptions {
    fn default() -> Self {
        ChaosOptions {
            nodes: 4,
            ops: 300,
            update_ratio: 0.5,
            max_faults: 6,
            horizon: SimTime(120_000),
            max_time: SimTime(20_000_000),
            system: System::Hamband,
            sync_shards: crate::config::RuntimeConfig::default().sync_shards,
            canary: false,
            restarts: false,
        }
    }
}

/// One property failure observed in a case.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Which check failed ("convergence", "integrity", "trace-commit",
    /// "canary").
    pub check: &'static str,
    /// Human-readable specifics.
    pub detail: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {}", self.check, self.detail)
    }
}

/// The verdict of one seeded case.
#[derive(Debug, Clone)]
pub struct CaseReport {
    /// The seed the schedule was generated from.
    pub seed: u64,
    /// The generated fault schedule.
    pub plan: FaultPlan,
    /// Failures (empty = the case passed).
    pub violations: Vec<Violation>,
}

impl CaseReport {
    /// Whether the case passed every check.
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Run one case: the given object under the given fault plan, with the
/// workload and fabric seeded from `seed`. Returns every check failure.
pub fn run_case<O>(
    spec: &O,
    coord: &CoordSpec,
    seed: u64,
    plan: &FaultPlan,
    opts: &ChaosOptions,
) -> Vec<Violation>
where
    O: WorkloadSupport + Clone + Send,
    O::Update: Wire + Send,
    O::State: Send,
{
    let workload = WorkloadSpec::ops(opts.ops).with_update_ratio(opts.update_ratio).with_seed(seed);
    let mut config = RunConfig::new(opts.nodes, workload)
        .with_seed(seed)
        .with_faults(plan.clone())
        .with_trace(TraceMode::Collect)
        .with_max_time(opts.max_time);
    config.runtime.sync_shards = opts.sync_shards;
    // Durability is decided by the *plan*, not the campaign option:
    // a shrunk sub-schedule that dropped every restart runs exactly
    // like a crash-stop case (byte-identical layout and traces), and
    // restart-free campaigns never pay the persist-log cost.
    config.runtime.durability = if plan.entries().iter().any(|(_, f)| matches!(f, Fault::Restart(..)))
    {
        crate::persist::DurabilityMode::Fenced
    } else {
        crate::persist::DurabilityMode::Off
    };
    let (outcome, states) = Runner::new(opts.system, config).run_with_states(spec, coord);

    let mut violations = Vec::new();

    if !outcome.report.converged {
        // Per-node status lines (from the structured NodeStatus
        // snapshots) show *where* each node stalled — which group has
        // an election in flight, who still holds uncommitted entries.
        let statuses: Vec<String> =
            states.iter().map(|s| format!("\n    {}", s.status)).collect();
        violations.push(Violation {
            check: "convergence",
            detail: format!(
                "run did not converge (completed_at={}, {} of {} nodes alive){}",
                outcome.report.completed_at,
                states.iter().filter(|s| s.alive).count(),
                opts.nodes,
                statuses.concat(),
            ),
        });
    }

    // Integrity (Lemma 1): the invariant holds in every node's final
    // state — crashed nodes included, at the moment they stopped.
    for (i, st) in states.iter().enumerate() {
        if !spec.invariant(&st.state) {
            violations.push(Violation {
                check: "integrity",
                detail: format!(
                    "node {i} ({}) final state violates the invariant: {:?}",
                    if st.alive { "alive" } else { "stopped" },
                    st.state,
                ),
            });
        }
    }

    // Trace invariant: a conflicting ack on a node is covered by an
    // earlier CommitAdvance on that node (same group, commit >= seq).
    for (i, rec) in outcome.events.iter().enumerate() {
        let TraceEvent::Ack { node, phase: Phase::Conf, group: Some(g), seq: Some(s), .. } =
            rec.event
        else {
            continue;
        };
        let committed = outcome.events[..i].iter().any(|earlier| {
            matches!(
                earlier.event,
                TraceEvent::CommitAdvance { node: n, group, commit }
                    if n == node && group == g && commit >= s
            )
        });
        if !committed {
            violations.push(Violation {
                check: "trace-commit",
                detail: format!(
                    "conf ack of seq {s} in group {g} on node {node:?} \
                     has no earlier CommitAdvance covering it"
                ),
            });
        }
    }

    // The planted checker bug: with the canary armed, flag any
    // schedule that silences a node. A correct campaign must catch
    // this and shrink the schedule to a single Crash/Suspend entry —
    // an honest end-to-end test of detection *and* shrinking.
    if opts.canary {
        let silencing = plan
            .entries()
            .iter()
            .any(|(_, f)| matches!(f, Fault::Crash(_) | Fault::SuspendHeartbeat(_)));
        if silencing {
            violations.push(Violation {
                check: "canary",
                detail: "canary armed: schedule silences a node".to_string(),
            });
        }
    }

    violations
}

/// Generate the schedule for `seed` (biased toward the object's group
/// leaders) and run the case.
pub fn run_seed<O>(spec: &O, coord: &CoordSpec, seed: u64, opts: &ChaosOptions) -> CaseReport
where
    O: WorkloadSupport + Clone + Send,
    O::Update: Wire + Send,
    O::State: Send,
{
    let leaders: Vec<NodeId> = hamband_core::coord::GroupMapper::new(coord, opts.sync_shards)
        .default_leaders(opts.nodes)
        .into_iter()
        .map(|p| NodeId(p.index()))
        .collect();
    let gen = FaultGenConfig::for_cluster(opts.nodes, opts.horizon)
        .with_leaders(leaders)
        .with_max_faults(opts.max_faults)
        .with_restarts(opts.restarts);
    let plan = FaultPlan::generate(seed, &gen);
    let violations = run_case(spec, coord, seed, &plan, opts);
    CaseReport { seed, plan, violations }
}

/// Whether every `Partition` in the plan is healed by a later `Heal`,
/// and every [`Fault::Restart`] follows a `Crash` of the same node.
///
/// The shrinker must not strip a `Heal` while keeping its `Partition`:
/// an eternally partitioned cluster fails convergence by construction,
/// and "minimizing" into that artifact would mask the original bug.
/// Symmetrically it must not strip a `Crash` while keeping its
/// `Restart`: restarting a node that never crashed is a no-op, so the
/// "shrunk" plan would silently stop exercising recovery at all.
pub fn plan_well_formed(plan: &FaultPlan) -> bool {
    let mut open = 0usize;
    let mut crashed: Vec<NodeId> = Vec::new();
    for (_, f) in plan.entries() {
        match f {
            Fault::Partition(_, _) => open += 1,
            Fault::Heal => {
                if open == 0 {
                    return false;
                }
                open -= 1;
            }
            Fault::Crash(n) if !crashed.contains(&n) => crashed.push(n),
            Fault::Restart(n, _) => {
                // Requires an earlier, still-unconsumed crash of `n`.
                let Some(i) = crashed.iter().position(|&c| c == n) else {
                    return false;
                };
                crashed.swap_remove(i);
            }
            _ => {}
        }
    }
    open == 0
}

/// Shrink a failing schedule to a locally minimal one: ddmin-style
/// chunked removal (halving chunk sizes), finishing with single-entry
/// removal, keeping any candidate for which `still_fails` holds.
/// Candidates with an unhealed partition are never proposed (see
/// [`plan_well_formed`]).
///
/// `still_fails` must be deterministic; it is called O(n²) times in the
/// worst case for an n-entry schedule.
pub fn shrink(plan: &FaultPlan, mut still_fails: impl FnMut(&FaultPlan) -> bool) -> FaultPlan {
    let mut entries = plan.entries();
    let mut chunk = entries.len().div_ceil(2).max(1);
    loop {
        let mut removed_any = false;
        let mut i = 0;
        while i < entries.len() {
            let end = (i + chunk).min(entries.len());
            let mut candidate = entries.clone();
            candidate.drain(i..end);
            let cand = FaultPlan::from_entries(candidate.clone());
            if plan_well_formed(&cand) && still_fails(&cand) {
                entries = candidate;
                removed_any = true;
                // Do not advance: position i now holds fresh entries.
            } else {
                i = end;
            }
        }
        if chunk == 1 {
            if !removed_any {
                break;
            }
        } else {
            chunk = (chunk / 2).max(1);
        }
    }
    FaultPlan::from_entries(entries)
}

/// Shrink a failing case's schedule by re-running the case under
/// candidate sub-schedules (same seed, same options) and keeping those
/// that still fail *any* check.
pub fn shrink_case<O>(
    spec: &O,
    coord: &CoordSpec,
    seed: u64,
    plan: &FaultPlan,
    opts: &ChaosOptions,
) -> FaultPlan
where
    O: WorkloadSupport + Clone + Send,
    O::Update: Wire + Send,
    O::State: Send,
{
    shrink(plan, |candidate| !run_case(spec, coord, seed, candidate, opts).is_empty())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdma_sim::SimDuration;

    fn plan_of(faults: &[(u64, Fault)]) -> FaultPlan {
        FaultPlan::from_entries(
            faults.iter().map(|(t, f)| (SimTime(*t), f.clone())).collect::<Vec<_>>(),
        )
    }

    #[test]
    fn well_formedness_requires_paired_heals() {
        assert!(plan_well_formed(&FaultPlan::new()));
        assert!(plan_well_formed(&plan_of(&[
            (10, Fault::Partition(vec![NodeId(0)], vec![NodeId(1)])),
            (20, Fault::Heal),
        ])));
        assert!(!plan_well_formed(&plan_of(&[(
            10,
            Fault::Partition(vec![NodeId(0)], vec![NodeId(1)])
        )])));
        assert!(!plan_well_formed(&plan_of(&[(10, Fault::Heal)])));
    }

    #[test]
    fn shrink_finds_the_single_culprit() {
        let plan = plan_of(&[
            (10, Fault::TornWrites(NodeId(1))),
            (20, Fault::Crash(NodeId(2))),
            (30, Fault::DuplicateCompletion(NodeId(0))),
            (40, Fault::DelaySpike(NodeId(3), 4, SimDuration::micros(10))),
            (50, Fault::TornWrites(NodeId(0))),
        ]);
        // "Fails" iff the schedule still crashes node 2.
        let shrunk =
            shrink(&plan, |p| p.entries().iter().any(|(_, f)| *f == Fault::Crash(NodeId(2))));
        assert_eq!(shrunk.len(), 1);
        assert_eq!(shrunk.entries()[0], (SimTime(20), Fault::Crash(NodeId(2))));
    }

    #[test]
    fn shrink_keeps_partitions_healed() {
        let plan = plan_of(&[
            (10, Fault::Partition(vec![NodeId(0)], vec![NodeId(1), NodeId(2)])),
            (20, Fault::TornWrites(NodeId(1))),
            (30, Fault::Heal),
        ]);
        // "Fails" iff a partition is present — the minimal failing
        // well-formed schedule must keep the heal.
        let shrunk = shrink(&plan, |p| {
            p.entries().iter().any(|(_, f)| matches!(f, Fault::Partition(_, _)))
        });
        assert_eq!(shrunk.len(), 2);
        assert!(plan_well_formed(&shrunk));
    }

    #[test]
    fn shrink_of_fault_independent_failure_is_empty() {
        let plan = plan_of(&[(10, Fault::Crash(NodeId(1))), (20, Fault::TornWrites(NodeId(0)))]);
        let shrunk = shrink(&plan, |_| true);
        assert!(shrunk.is_empty(), "a failure independent of faults shrinks to no faults");
    }

    #[test]
    fn well_formedness_requires_crash_before_restart() {
        // A restart of a node that never crashed is a no-op schedule.
        assert!(!plan_well_formed(&plan_of(&[(10, Fault::Restart(NodeId(1), true))])));
        // Crash alone (crash-stop) stays well-formed.
        assert!(plan_well_formed(&plan_of(&[(10, Fault::Crash(NodeId(1)))])));
        // Paired crash + restart is well-formed; a second restart of the
        // same node without a second crash is not.
        assert!(plan_well_formed(&plan_of(&[
            (10, Fault::Crash(NodeId(1))),
            (40, Fault::Restart(NodeId(1), false)),
        ])));
        assert!(!plan_well_formed(&plan_of(&[
            (10, Fault::Crash(NodeId(1))),
            (40, Fault::Restart(NodeId(1), false)),
            (60, Fault::Restart(NodeId(1), true)),
        ])));
        // The crash must be of the *same* node.
        assert!(!plan_well_formed(&plan_of(&[
            (10, Fault::Crash(NodeId(2))),
            (40, Fault::Restart(NodeId(1), true)),
        ])));
    }

    #[test]
    fn shrink_keeps_crash_restart_pairing() {
        let plan = plan_of(&[
            (10, Fault::TornWrites(NodeId(0))),
            (20, Fault::Crash(NodeId(2))),
            (30, Fault::DuplicateCompletion(NodeId(1))),
            (50, Fault::Restart(NodeId(2), true)),
        ]);
        // "Fails" iff a restart is present — the minimal failing
        // well-formed schedule must keep the crash that precedes it.
        let shrunk =
            shrink(&plan, |p| p.entries().iter().any(|(_, f)| matches!(f, Fault::Restart(..))));
        assert_eq!(shrunk.len(), 2);
        assert!(plan_well_formed(&shrunk));
        assert_eq!(shrunk.entries()[0], (SimTime(20), Fault::Crash(NodeId(2))));
        assert_eq!(shrunk.entries()[1], (SimTime(50), Fault::Restart(NodeId(2), true)));
    }

    #[test]
    fn restart_losing_all_unfenced_writes_converges() {
        // The acceptance scenario: node 2 crashes mid-workload and
        // restarts having lost every write after its last fence. The
        // recovery pass must rebuild hard state from the persist log
        // alone and the cluster must still converge with clean
        // invariants.
        use hamband_types::Counter;
        let spec = Counter::default();
        let coord = spec.coord_spec();
        let opts = ChaosOptions::default();
        let plan = plan_of(&[
            (40_000, Fault::Crash(NodeId(2))),
            (40_030, Fault::Restart(NodeId(2), true)),
        ]);
        let violations = run_case(&spec, &coord, 11, &plan, &opts);
        assert!(violations.is_empty(), "restart case failed: {violations:?}");
    }

    #[test]
    fn restart_campaign_smoke() {
        // A handful of generated crash+restart schedules end-to-end
        // (the 100-seed campaigns run in CI via the chaos binary).
        use hamband_types::Counter;
        let spec = Counter::default();
        let coord = spec.coord_spec();
        let opts = ChaosOptions { restarts: true, ..ChaosOptions::default() };
        for seed in 0..6u64 {
            let report = run_seed(&spec, &coord, seed, &opts);
            assert!(
                report.passed(),
                "seed {seed} failed under plan {}: {:?}",
                report.plan.to_literal(),
                report.violations,
            );
        }
    }
}
