//! Two-sided control messages.
//!
//! Hamband's data path is purely one-sided; messages are used only for
//! the *rare* slow paths, exactly as in Mu: leader change ("it requests
//! others to accept it as the leader and waits for a majority of them
//! to acknowledge", §4) and its announcement.

use hamband_core::wire::{DecodeError, Reader, Wire, Writer};

/// A control message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ControlMsg {
    /// A candidate asks to become leader of a synchronization group at
    /// the given epoch.
    LeaderRequest {
        /// Synchronization group index.
        group: u32,
        /// Proposed epoch (must exceed the receiver's promise).
        epoch: u64,
    },
    /// Acknowledgement of a [`ControlMsg::LeaderRequest`]: the voter has
    /// revoked the old leader's write permission and granted the
    /// candidate.
    LeaderAck {
        /// Synchronization group index.
        group: u32,
        /// Echoed epoch.
        epoch: u64,
        /// Highest fully-landed entry sequence in the voter's `L` ring.
        tail: u64,
        /// The voter's commit index for the group.
        commit: u64,
    },
    /// The elected leader announces itself.
    LeaderAnnounce {
        /// Synchronization group index.
        group: u32,
        /// Winning epoch.
        epoch: u64,
        /// The new leader.
        leader: u32,
    },
    /// The sender has permanently stopped serving the workload (its
    /// process resumed from a pause it treats as crash-stop) even
    /// though its heartbeat may keep beating. Receivers treat it like
    /// a crashed node: sticky suspicion, quota adoption, and a leader
    /// change for any group it still leads.
    Retired,
    /// A crash-restarted node asks every peer which leader it currently
    /// recognizes, per mapped group (the rejoin handshake; see
    /// [`crate::rejoin`]). Receivers reply with one
    /// [`ControlMsg::JoinAck`] per group.
    JoinRequest,
    /// Reply to a [`ControlMsg::JoinRequest`]: the sender's current
    /// promise and leader view for one mapped group. The joiner adopts
    /// the freshest ack per group (it re-seeds its permission grants
    /// from it) and ignores staler ones.
    JoinAck {
        /// Mapped group index.
        group: u32,
        /// The sender's promised epoch for the group.
        epoch: u64,
        /// The leader the sender currently recognizes.
        leader: u32,
    },
}

impl Wire for ControlMsg {
    fn encode(&self, w: &mut Writer) {
        match *self {
            ControlMsg::LeaderRequest { group, epoch } => {
                w.u8(0);
                w.varint(u64::from(group));
                w.varint(epoch);
            }
            ControlMsg::LeaderAck { group, epoch, tail, commit } => {
                w.u8(1);
                w.varint(u64::from(group));
                w.varint(epoch);
                w.varint(tail);
                w.varint(commit);
            }
            ControlMsg::LeaderAnnounce { group, epoch, leader } => {
                w.u8(2);
                w.varint(u64::from(group));
                w.varint(epoch);
                w.varint(u64::from(leader));
            }
            ControlMsg::Retired => {
                w.u8(3);
            }
            ControlMsg::JoinRequest => {
                w.u8(4);
            }
            ControlMsg::JoinAck { group, epoch, leader } => {
                w.u8(5);
                w.varint(u64::from(group));
                w.varint(epoch);
                w.varint(u64::from(leader));
            }
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        // Narrow u64 varints with a checked conversion: a wire value
        // that does not fit the field is a malformed message, not a
        // silent truncation to some other group/leader index.
        fn narrow(v: u64) -> Result<u32, DecodeError> {
            u32::try_from(v).map_err(|_| DecodeError)
        }
        match r.u8()? {
            0 => Ok(ControlMsg::LeaderRequest {
                group: narrow(r.varint()?)?,
                epoch: r.varint()?,
            }),
            1 => Ok(ControlMsg::LeaderAck {
                group: narrow(r.varint()?)?,
                epoch: r.varint()?,
                tail: r.varint()?,
                commit: r.varint()?,
            }),
            2 => Ok(ControlMsg::LeaderAnnounce {
                group: narrow(r.varint()?)?,
                epoch: r.varint()?,
                leader: narrow(r.varint()?)?,
            }),
            3 => Ok(ControlMsg::Retired),
            4 => Ok(ControlMsg::JoinRequest),
            5 => Ok(ControlMsg::JoinAck {
                group: narrow(r.varint()?)?,
                epoch: r.varint()?,
                leader: narrow(r.varint()?)?,
            }),
            _ => Err(DecodeError),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_variants() {
        let msgs = [
            ControlMsg::LeaderRequest { group: 1, epoch: 7 },
            ControlMsg::LeaderAck { group: 0, epoch: 7, tail: 123, commit: 120 },
            ControlMsg::LeaderAnnounce { group: 2, epoch: 8, leader: 3 },
            ControlMsg::Retired,
            ControlMsg::JoinRequest,
            ControlMsg::JoinAck { group: 3, epoch: 9, leader: 1 },
        ];
        for m in msgs {
            assert_eq!(ControlMsg::from_bytes(&m.to_bytes()).unwrap(), m);
        }
    }

    #[test]
    fn garbage_is_rejected() {
        assert!(ControlMsg::from_bytes(&[9, 9, 9]).is_err());
        assert!(ControlMsg::from_bytes(&[]).is_err());
    }

    #[test]
    fn oversize_narrow_fields_are_rejected_not_truncated() {
        // A `group`/`leader` varint above u32::MAX used to truncate via
        // `as u32` (e.g. 2^32 decoded as group 0). It must now fail.
        let mut w = Writer::new();
        w.u8(0); // LeaderRequest
        w.varint(1u64 << 32);
        w.varint(7);
        assert_eq!(ControlMsg::from_bytes(&w.into_vec()), Err(DecodeError));

        let mut w = Writer::new();
        w.u8(2); // LeaderAnnounce with oversize leader
        w.varint(1);
        w.varint(8);
        w.varint(u64::from(u32::MAX) + 1);
        assert_eq!(ControlMsg::from_bytes(&w.into_vec()), Err(DecodeError));

        // Boundary: exactly u32::MAX still decodes.
        let mut w = Writer::new();
        w.u8(0);
        w.varint(u64::from(u32::MAX));
        w.varint(7);
        assert_eq!(
            ControlMsg::from_bytes(&w.into_vec()),
            Ok(ControlMsg::LeaderRequest { group: u32::MAX, epoch: 7 })
        );
    }
}
