//! Regenerate the golden trace fingerprints asserted by
//! `tests/ingress_parity.rs`.
//!
//! Run with `cargo run --release --example trace_fingerprint` and
//! paste the printed tables over the `GOLDEN_*` constants — but only
//! after convincing yourself the change *legitimately* moves every
//! RNG- or byte-count-dependent timing (see the provenance note in the
//! test header). Event counts shifting is a red flag; hashes shifting
//! with counts intact is what a pure re-timing looks like.

use hamband_runtime::{RunConfig, Runner, System, TraceMode, TraceRecord, WorkloadSpec};
use hamband_types::{Bank, Counter, GSet};
use rdma_sim::{Fault, FaultPlan, NodeId, SimTime};

fn digest(events: &[TraceRecord]) -> (usize, u64) {
    let mut h: u64 = 0xcbf29ce484222325;
    for e in events {
        let s = format!("{:?}@{:?}", e.event, e.at);
        for b in s.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
    }
    (events.len(), h)
}

fn main() {
    println!("const GOLDEN_COUNTER: [(u64, usize, u64); 3] = [");
    for seed in [1u64, 7, 13] {
        let c = Counter::default();
        let cfg = RunConfig::new(3, WorkloadSpec::ops(300).with_update_ratio(0.5).with_seed(seed))
            .with_seed(seed)
            .with_trace(TraceMode::Collect);
        let out = Runner::new(System::Hamband, cfg).run(&c, &c.coord_spec());
        assert!(out.report.converged, "counter seed={seed} did not converge");
        let (n, h) = digest(&out.events);
        println!("    ({seed}, {n}, {h:#x}),");
    }
    println!("];");

    println!("const GOLDEN_BANK: [(u64, usize, u64); 3] = [");
    for seed in [1u64, 7, 13] {
        let b = Bank::default();
        let cfg = RunConfig::new(4, WorkloadSpec::ops(400).with_update_ratio(0.5).with_seed(seed))
            .with_seed(seed)
            .with_trace(TraceMode::Collect);
        let out = Runner::new(System::Hamband, cfg).run(&b, &b.coord_spec());
        assert!(out.report.converged, "bank seed={seed} did not converge");
        let (n, h) = digest(&out.events);
        println!("    ({seed}, {n}, {h:#x}),");
    }
    println!("];");

    println!("const GOLDEN_GSET_FAULTS: [(u64, usize, u64); 3] = [");
    for seed in [1u64, 7, 13] {
        let g = GSet::default();
        let plan = FaultPlan::new()
            .at(SimTime(40_000), Fault::SuspendHeartbeat(NodeId(0)))
            .at(SimTime(60_000), Fault::Crash(NodeId(2)));
        let cfg = RunConfig::new(4, WorkloadSpec::ops(300).with_update_ratio(0.5).with_seed(seed))
            .with_seed(seed)
            .with_faults(plan)
            .with_trace(TraceMode::Collect);
        let out = Runner::new(System::Hamband, cfg).run(&g, &g.coord_spec_buffered());
        assert!(out.report.converged, "gset+faults seed={seed} did not converge");
        let (n, h) = digest(&out.events);
        println!("    ({seed}, {n}, {h:#x}),");
    }
    println!("];");

    println!("const GOLDEN_BANK_LEADERFAULT: [(u64, usize, u64); 3] = [");
    for seed in [1u64, 7, 13] {
        let b = Bank::default();
        let plan = FaultPlan::new().at(SimTime(50_000), Fault::SuspendHeartbeat(NodeId(1)));
        let cfg = RunConfig::new(5, WorkloadSpec::ops(400).with_update_ratio(0.5).with_seed(seed))
            .with_seed(seed)
            .with_faults(plan)
            .with_trace(TraceMode::Collect);
        let out = Runner::new(System::Hamband, cfg).run(&b, &b.coord_spec());
        assert!(out.report.converged, "bank+leaderfault seed={seed} did not converge");
        let (n, h) = digest(&out.events);
        println!("    ({seed}, {n}, {h:#x}),");
    }
    println!("];");
}
