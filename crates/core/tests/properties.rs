//! Property tests: the paper's guarantees under random schedules.
//!
//! * Lemma 1 (integrity) and Lemma 2 (convergence) hold along every
//!   random abstract execution.
//! * Lemma 3 (refinement): every random concrete (RDMA) execution's
//!   trace replays in the abstract semantics.
//! * The checked semantics never lets an ill-coordinated step through:
//!   whatever interleaving is attempted, rejected steps leave the state
//!   unchanged and accepted steps preserve the invariants.

use hamband_core::abstract_sem::AbstractWrdt;
use hamband_core::demo::Account;
use hamband_core::ids::{GroupId, Pid};
use hamband_core::rdma_sem::RdmaWrdt;
use hamband_core::refinement::{replay, replay_and_check};
use proptest::prelude::*;

/// A random action against the abstract semantics.
#[derive(Debug, Clone)]
enum AbsOp {
    Deposit { node: usize, amount: u64 },
    Withdraw { node: usize, amount: u64 },
    Propagate { node: usize, pick: usize },
}

fn abs_op() -> impl Strategy<Value = AbsOp> {
    prop_oneof![
        (0..3usize, 1..30u64).prop_map(|(node, amount)| AbsOp::Deposit { node, amount }),
        (0..3usize, 1..30u64).prop_map(|(node, amount)| AbsOp::Withdraw { node, amount }),
        (0..3usize, 0..64usize).prop_map(|(node, pick)| AbsOp::Propagate { node, pick }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Lemmas 1 and 2 along arbitrary interleavings of calls and
    /// propagations, with rejected steps exercised freely.
    #[test]
    fn abstract_integrity_and_convergence(ops in prop::collection::vec(abs_op(), 1..120)) {
        let account = Account::new(50);
        let coord = account.coord_spec();
        let mut w = AbstractWrdt::new(&account, &coord, 3);
        for op in ops {
            match op {
                AbsOp::Deposit { node, amount } => {
                    let _ = w.call(node, Account::deposit(amount));
                }
                AbsOp::Withdraw { node, amount } => {
                    let _ = w.call(node, Account::withdraw(amount));
                }
                AbsOp::Propagate { node, pick } => {
                    let enabled = w.enabled_propagations(Pid(node));
                    if !enabled.is_empty() {
                        let rid = enabled[pick % enabled.len()];
                        w.propagate_rid(node, rid).expect("enabled propagation succeeds");
                    }
                }
            }
            prop_assert!(w.check_integrity(), "integrity violated mid-run");
            prop_assert!(w.check_convergence(), "convergence violated mid-run");
        }
        // Drain all propagations: full convergence.
        w.propagate_all();
        prop_assert!(w.fully_propagated());
        prop_assert!(w.check_convergence());
        let s0 = *w.state(Pid(0));
        prop_assert_eq!(*w.state(Pid(1)), s0);
        prop_assert_eq!(*w.state(Pid(2)), s0);
    }
}

/// A random action against the concrete RDMA semantics.
#[derive(Debug, Clone)]
enum ConcOp {
    Reduce { node: usize, amount: u64 },
    Conf { amount: u64 },
    FreeApp { node: usize, src: usize },
    ConfApp { node: usize },
}

fn conc_op() -> impl Strategy<Value = ConcOp> {
    prop_oneof![
        (0..3usize, 1..30u64).prop_map(|(node, amount)| ConcOp::Reduce { node, amount }),
        (1..30u64).prop_map(|amount| ConcOp::Conf { amount }),
        (0..3usize, 0..3usize).prop_map(|(node, src)| ConcOp::FreeApp { node, src }),
        (0..3usize).prop_map(|node| ConcOp::ConfApp { node }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Lemma 3: every concrete trace replays abstractly, and the
    /// corollaries (integrity, convergence) hold throughout.
    #[test]
    fn concrete_runs_refine(ops in prop::collection::vec(conc_op(), 1..120)) {
        let account = Account::new(50);
        let coord = account.coord_spec();
        let mut k = RdmaWrdt::new(&account, &coord, 3);
        for op in ops {
            match op {
                ConcOp::Reduce { node, amount } => {
                    let _ = k.reduce(node, Account::deposit(amount));
                }
                ConcOp::Conf { amount } => {
                    // The leader of the withdraw group is process 0.
                    let _ = k.conf(0, Account::withdraw(amount));
                }
                ConcOp::FreeApp { node, src } => {
                    let _ = k.free_app(Pid(node), Pid(src));
                }
                ConcOp::ConfApp { node } => {
                    let _ = k.conf_app(Pid(node), GroupId(0));
                }
            }
            prop_assert!(k.check_integrity(), "concrete integrity violated");
        }
        // Refinement of the partial trace.
        let w = replay(&account, &coord, 3, k.trace()).expect("refinement holds");
        prop_assert!(w.check_integrity());
        // Drain and check convergence plus state agreement with the
        // abstract replay.
        k.drain();
        prop_assert!(k.buffers_empty());
        prop_assert!(k.check_convergence());
        let w = replay_and_check(&account, &coord, 3, k.trace()).expect("refinement + lemmas");
        for p in 0..3 {
            prop_assert_eq!(*w.state(Pid(p)), k.current_state(Pid(p)),
                "abstract and concrete states agree at p{}", p);
        }
    }

    /// Permissibility is never bypassed: whatever the schedule, no
    /// replica's balance ever goes negative, and rejected calls leave
    /// state untouched.
    #[test]
    fn rejected_calls_have_no_effect(amounts in prop::collection::vec(1..40u64, 1..40)) {
        let account = Account::new(50);
        let coord = account.coord_spec();
        let mut k = RdmaWrdt::new(&account, &coord, 2);
        let mut expected: i128 = 0;
        for (i, a) in amounts.iter().enumerate() {
            if i % 2 == 0 {
                k.reduce(0, Account::deposit(*a)).unwrap();
                expected += i128::from(*a);
            } else {
                let before = k.current_state(Pid(0));
                match k.conf(0, Account::withdraw(*a)) {
                    Ok(_) => expected -= i128::from(*a),
                    Err(_) => prop_assert_eq!(k.current_state(Pid(0)), before),
                }
            }
            prop_assert!(expected >= 0);
            prop_assert_eq!(k.current_state(Pid(0)), expected);
        }
    }
}

/// Deterministic cross-check: the concrete semantics agrees with a
/// sequential reference when fully drained.
#[test]
fn concrete_matches_sequential_reference() {
    let account = Account::new(50);
    let coord = account.coord_spec();
    let mut k = RdmaWrdt::new(&account, &coord, 4);
    let mut reference: i128 = 0;
    for i in 1..=20u64 {
        k.reduce((i % 4) as usize, Account::deposit(i)).unwrap();
        reference += i128::from(i);
    }
    for i in 1..=5u64 {
        k.conf(0, Account::withdraw(i)).unwrap();
        reference -= i128::from(i);
    }
    k.drain();
    for p in 0..4 {
        assert_eq!(k.current_state(Pid(p)), reference);
    }
}
