//! Core model and operational semantics of **well-coordinated replicated
//! data types** (WRDTs) for the RDMA network model, reproducing §3 of
//! *Hamband: RDMA Replicated Data Types* (PLDI 2022).
//!
//! The crate provides, layer by layer:
//!
//! * [`object`] — the object data type model ⟨Σ, I, ū:=d̄, q̄:=d̄⟩ of
//!   Fig. 3: a state type, an integrity invariant, and executable update
//!   and query methods, captured by the [`ObjectSpec`] trait.
//! * [`relations`] — the semantic coordination relations of §3.2
//!   (S-commutativity, permissibility, invariant-sufficiency, 𝒫-R/L-
//!   commutativity, conflict and dependency) as executable checks.
//! * [`coord`] — declared method-level coordination relations
//!   ([`CoordSpec`]), the conflict graph, synchronization groups,
//!   summarization groups, and the three method categories of §3.3:
//!   *reducible*, *irreducible conflict-free*, and *conflicting*.
//! * [`analysis`] — a bounded checker that validates a declared
//!   [`CoordSpec`] against the executable object definition by sampling
//!   states and arguments.
//! * [`abstract_sem`] — the abstract WRDT operational semantics of
//!   Fig. 5 (rules CALL, PROP, QUERY) together with executable checkers
//!   for the paper's integrity (Lemma 1) and convergence (Lemma 2)
//!   guarantees.
//! * [`rdma_sem`] — the concrete RDMA WRDT semantics of Fig. 7 (rules
//!   REDUCE, FREE, CONF, FREE-APP, CONF-APP, QUERY) over configurations
//!   ⟨σ, A, S, F, L⟩.
//! * [`refinement`] — an executable refinement checker for Lemma 3:
//!   every trace of the concrete semantics replays in the abstract one.
//! * [`explore`] — bounded exhaustive exploration (small-scope model
//!   checking): the lemmas verified over *all* interleavings of small
//!   scripted executions.
//! * [`demo`] — the paper's running bank-account example (Fig. 1), used
//!   throughout the documentation and tests.
//!
//! # Quick example
//!
//! ```
//! use hamband_core::demo::Account;
//! use hamband_core::abstract_sem::AbstractWrdt;
//! use hamband_core::object::ObjectSpec;
//!
//! let account = Account::new(3);
//! let coord = account.coord_spec();
//! let mut wrdt = AbstractWrdt::new(&account, &coord, 3);
//! // Process 0 deposits 10, process 1 withdraws 4 after propagation.
//! let rid = wrdt.call(0, Account::deposit(10)).expect("deposit is permissible");
//! wrdt.propagate(1, 0, rid).expect("deposit propagates freely");
//! wrdt.call(1, Account::withdraw(4)).expect("withdraw is covered");
//! assert!(wrdt.check_integrity());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod abstract_sem;
pub mod analysis;
pub mod coord;
pub mod counts;
pub mod demo;
pub mod error;
pub mod explore;
pub mod graph;
pub mod ids;
pub mod object;
pub mod rdma_sem;
pub mod refinement;
pub mod relations;
pub mod trace;
pub mod wire;

pub use abstract_sem::AbstractWrdt;
pub use coord::{mix64, CoordSpec, GroupMapper, MethodCategory};
pub use counts::{CountMap, DepMap};
pub use error::SemError;
pub use ids::{GroupId, MethodId, Pid, Rid};
pub use object::{KeySkew, ObjectSpec, SpecSampler, WorkloadSupport};
pub use rdma_sem::RdmaWrdt;
