//! Bounded coordination analysis: validating (and inferring) the
//! method-level relations a [`CoordSpec`] declares.
//!
//! The paper assumes the conflict and dependency relations are provided
//! by an upstream analysis ("the representation and automated checking
//! and inference of conflict and dependency relations is a topic of
//! active research", §3.2, citing Hamsaz). This module supplies the
//! practical counterpart for this reproduction:
//!
//! * [`validate`] — checks a *declared* [`CoordSpec`] against the
//!   executable object definition by sampling states and arguments.
//!   A declared-conflict-free pair that exhibits a sampled conflict
//!   witness, an undeclared dependency, or an unsound summarization is
//!   reported as a [`Violation`]. Witnesses are real counterexamples;
//!   absence of witnesses is bounded evidence.
//! * [`infer`] — infers a [`CoordSpec`] from scratch by sampling, useful
//!   as a starting point for a new data type.

use std::collections::BTreeSet;
use std::fmt;

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::coord::CoordSpec;
use crate::ids::MethodId;
use crate::object::SpecSampler;
use crate::relations::BoundedRelations;

/// A discrepancy between a declared [`CoordSpec`] and sampled behaviour.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// Methods `a` and `b` were declared conflict-free (and not in the
    /// same synchronization group) but a sampled pair of calls conflicts.
    UndeclaredConflict {
        /// First method of the conflicting pair.
        a: MethodId,
        /// Second method of the conflicting pair.
        b: MethodId,
        /// Debug rendering of the witnessing calls.
        witness: String,
    },
    /// Method `dependent` was not declared dependent on `on`, the pair
    /// is not synchronized by a common group, yet a sampled pair of
    /// calls is dependent.
    UndeclaredDependency {
        /// The dependent method.
        dependent: MethodId,
        /// The method it was found to depend on.
        on: MethodId,
        /// Debug rendering of the witnessing calls.
        witness: String,
    },
    /// Two calls on methods of a declared summarization group failed to
    /// summarize (the group is not closed).
    SummarizationNotClosed {
        /// Method of the first call.
        a: MethodId,
        /// Method of the second call.
        b: MethodId,
        /// Debug rendering of the witnessing calls.
        witness: String,
    },
    /// A produced summary disagrees with the composition of the calls on
    /// a sampled state.
    SummaryMismatch {
        /// Method of the first call.
        a: MethodId,
        /// Method of the second call.
        b: MethodId,
        /// Debug rendering of the witnessing calls.
        witness: String,
    },
    /// Two sampled calls of the same synchronization group with
    /// *distinct* declared shard keys conflict. The shard-key
    /// declaration ([`crate::object::ObjectSpec::shard_key`]) asserts
    /// cross-key calls commute — key-sharded groups rely on it to
    /// serialize only same-key calls through one shard, so a cross-key
    /// conflict witness makes sharding unsound for this object.
    CrossKeyConflict {
        /// Method of the first call.
        a: MethodId,
        /// Method of the second call.
        b: MethodId,
        /// Debug rendering of the witnessing calls (keys included).
        witness: String,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::UndeclaredConflict { a, b, witness } => {
                write!(f, "undeclared conflict between {a} and {b}: {witness}")
            }
            Violation::UndeclaredDependency { dependent, on, witness } => {
                write!(f, "undeclared dependency of {dependent} on {on}: {witness}")
            }
            Violation::SummarizationNotClosed { a, b, witness } => {
                write!(f, "summarization group of {a}, {b} not closed: {witness}")
            }
            Violation::SummaryMismatch { a, b, witness } => {
                write!(f, "summary of {a}, {b} disagrees with composition: {witness}")
            }
            Violation::CrossKeyConflict { a, b, witness } => {
                write!(f, "cross-key conflict between {a} and {b}: {witness}")
            }
        }
    }
}

/// The result of [`validate`].
#[derive(Debug, Clone, Default)]
pub struct AnalysisReport {
    /// All violations found, in method order.
    pub violations: Vec<Violation>,
}

impl AnalysisReport {
    /// Whether the declared spec survived the bounded validation.
    pub fn is_valid(&self) -> bool {
        self.violations.is_empty()
    }
}

impl fmt::Display for AnalysisReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_valid() {
            write!(f, "coordination spec validated (bounded)")
        } else {
            writeln!(f, "{} violation(s):", self.violations.len())?;
            for v in &self.violations {
                writeln!(f, "  {v}")?;
            }
            Ok(())
        }
    }
}

/// Tuning for [`validate`] and [`infer`].
#[derive(Debug, Clone, Copy)]
pub struct AnalysisConfig {
    /// RNG seed for state and argument sampling.
    pub seed: u64,
    /// Sampled states per relation query.
    pub state_samples: usize,
    /// Sampled call pairs per method pair.
    pub call_samples: usize,
}

impl Default for AnalysisConfig {
    fn default() -> Self {
        AnalysisConfig { seed: 0x5eed, state_samples: 64, call_samples: 16 }
    }
}

fn sampled_calls<O: SpecSampler>(
    spec: &O,
    m: MethodId,
    cfg: &AnalysisConfig,
    salt: u64,
) -> Vec<O::Update> {
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ salt.wrapping_mul(0x9e37_79b9_7f4a_7c15));
    (0..cfg.call_samples).map(|_| spec.sample_update_of(m, &mut rng)).collect()
}

/// Validate a declared [`CoordSpec`] against sampled behaviour.
///
/// Sound for refutation: every reported violation carries a concrete
/// witness. Passing is bounded evidence only (as with any testing-based
/// analysis).
pub fn validate<O: SpecSampler>(
    spec: &O,
    coord: &CoordSpec,
    cfg: &AnalysisConfig,
) -> AnalysisReport {
    let rel = BoundedRelations::new(spec, cfg.seed, cfg.state_samples);
    let n = coord.method_count();
    let mut report = AnalysisReport::default();

    // Two methods are synchronized if they share a synchronization
    // group: the group's leader totally orders their calls, whether or
    // not the pair is directly adjacent in the conflict graph.
    let same_group = |a: MethodId, b: MethodId| {
        matches!((coord.sync_group(a), coord.sync_group(b)), (Some(x), Some(y)) if x == y)
    };

    for a in 0..n {
        for b in a..n {
            let (ma, mb) = (MethodId(a), MethodId(b));
            let ca = sampled_calls(spec, ma, cfg, a as u64);
            let cb = sampled_calls(spec, mb, cfg, b as u64 + 1000);
            let synchronized = coord.methods_conflict(ma, mb) || same_group(ma, mb);
            // Conflicts: every semantic conflict must be declared.
            if !synchronized {
                'outer: for x in &ca {
                    for y in &cb {
                        if rel.conflict(x, y) {
                            report.violations.push(Violation::UndeclaredConflict {
                                a: ma,
                                b: mb,
                                witness: format!("{x:?} vs {y:?}"),
                            });
                            break 'outer;
                        }
                    }
                }
            }
            // Dependencies: a dependent pair must be declared or
            // synchronized by conflict (same order everywhere).
            for (m2, m1, c2s, c1s) in [(ma, mb, &ca, &cb), (mb, ma, &cb, &ca)] {
                if m2 == m1 && a == b && ca.is_empty() {
                    continue;
                }
                if coord.dependencies(m2).contains(&m1)
                    || coord.methods_conflict(m2, m1)
                    || same_group(m2, m1)
                {
                    continue;
                }
                'dep: for x in c2s {
                    for y in c1s {
                        if rel.dependent(x, y) {
                            report.violations.push(Violation::UndeclaredDependency {
                                dependent: m2,
                                on: m1,
                                witness: format!("{x:?} after {y:?}"),
                            });
                            break 'dep;
                        }
                    }
                }
            }
        }
    }

    // Shard-key soundness: within a synchronization group, sampled
    // call pairs whose declared shard keys are both present and
    // *different* must not conflict — that is exactly the commutation
    // the key-sharded GroupMapper relies on. Keyless calls are exempt
    // (they are pinned to one shard and may conflict with anything).
    for a in 0..n {
        for b in a..n {
            let (ma, mb) = (MethodId(a), MethodId(b));
            if !same_group(ma, mb) {
                continue;
            }
            let ca = sampled_calls(spec, ma, cfg, a as u64 + 31);
            let cb = sampled_calls(spec, mb, cfg, b as u64 + 1031);
            'shard: for x in &ca {
                for y in &cb {
                    let (kx, ky) = (spec.shard_key(x), spec.shard_key(y));
                    let (Some(kx), Some(ky)) = (kx, ky) else { continue };
                    if kx != ky && rel.conflict(x, y) {
                        report.violations.push(Violation::CrossKeyConflict {
                            a: ma,
                            b: mb,
                            witness: format!("{x:?} (key {kx}) vs {y:?} (key {ky})"),
                        });
                        break 'shard;
                    }
                }
            }
        }
    }

    // Summarization groups: closure and soundness.
    for group in coord.sum_groups() {
        for &ma in group {
            for &mb in group {
                let ca = sampled_calls(spec, ma, cfg, ma.index() as u64 + 7);
                let cb = sampled_calls(spec, mb, cfg, mb.index() as u64 + 77);
                'sum: for x in &ca {
                    for y in &cb {
                        match spec.summarize(x, y) {
                            None => {
                                report.violations.push(Violation::SummarizationNotClosed {
                                    a: ma,
                                    b: mb,
                                    witness: format!("{x:?} then {y:?}"),
                                });
                                break 'sum;
                            }
                            Some(_) => {
                                if !rel.summary_sound(x, y) {
                                    report.violations.push(Violation::SummaryMismatch {
                                        a: ma,
                                        b: mb,
                                        witness: format!("{x:?} then {y:?}"),
                                    });
                                    break 'sum;
                                }
                            }
                        }
                    }
                }
            }
        }
    }

    report
}

/// Infer a [`CoordSpec`] by sampling: conflict edges and dependency
/// edges are added wherever a witness is found; summarization groups are
/// the equivalence classes of methods whose sampled calls pairwise
/// summarize soundly.
pub fn infer<O: SpecSampler>(spec: &O, cfg: &AnalysisConfig) -> CoordSpec {
    let rel = BoundedRelations::new(spec, cfg.seed, cfg.state_samples);
    let n = spec.method_count();
    let mut builder = CoordSpec::builder(n);

    let calls: Vec<Vec<O::Update>> = (0..n)
        .map(|m| sampled_calls(spec, MethodId(m), cfg, m as u64))
        .collect();

    for a in 0..n {
        for b in a..n {
            if calls[a].iter().any(|x| calls[b].iter().any(|y| rel.conflict(x, y))) {
                builder = builder.conflict(a, b);
            }
        }
    }
    for d in 0..n {
        for on in 0..n {
            if calls[d].iter().any(|x| calls[on].iter().any(|y| rel.dependent(x, y))) {
                builder = builder.depends(d, on);
            }
        }
    }

    // Summarizable methods: closed and sound against every member of the
    // candidate group, grown greedily.
    let summarizes = |a: usize, b: usize| {
        calls[a].iter().all(|x| {
            calls[b]
                .iter()
                .all(|y| spec.summarize(x, y).is_some() && rel.summary_sound(x, y))
        })
    };
    let mut grouped: BTreeSet<usize> = BTreeSet::new();
    let mut groups: Vec<Vec<usize>> = Vec::new();
    for m in 0..n {
        if grouped.contains(&m) || !summarizes(m, m) {
            continue;
        }
        let mut group = vec![m];
        for m2 in (m + 1)..n {
            if grouped.contains(&m2) {
                continue;
            }
            let closed = group.iter().all(|&g| {
                summarizes(g, m2) && summarizes(m2, g) && summarizes(m2, m2)
            });
            if closed {
                group.push(m2);
            }
        }
        for &g in &group {
            grouped.insert(g);
        }
        groups.push(group);
    }
    for g in groups {
        builder = builder.summarization_group(g);
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coord::MethodCategory;
    use crate::demo::Account;

    #[test]
    fn account_spec_validates() {
        let acc = Account::new(20);
        let coord = acc.coord_spec();
        let report = validate(&acc, &coord, &AnalysisConfig::default());
        assert!(report.is_valid(), "{report}");
        assert_eq!(report.to_string(), "coordination spec validated (bounded)");
    }

    #[test]
    fn missing_conflict_is_detected() {
        let acc = Account::new(20);
        // Declare withdraw conflict-free: the checker must object.
        let bad = CoordSpec::builder(2).summarization_group([0]).build();
        let report = validate(&acc, &bad, &AnalysisConfig::default());
        assert!(!report.is_valid());
        assert!(report
            .violations
            .iter()
            .any(|v| matches!(v, Violation::UndeclaredConflict { a, b, .. }
                if a.index() == 1 && b.index() == 1)));
        assert!(report.to_string().contains("undeclared conflict"));
    }

    #[test]
    fn missing_dependency_is_detected() {
        let acc = Account::new(20);
        let bad = CoordSpec::builder(2)
            .conflict(1, 1)
            .summarization_group([0])
            .build();
        let report = validate(&acc, &bad, &AnalysisConfig::default());
        assert!(report
            .violations
            .iter()
            .any(|v| matches!(v, Violation::UndeclaredDependency { dependent, on, .. }
                if dependent.index() == 1 && on.index() == 0)));
    }

    #[test]
    fn bad_summarization_group_is_detected() {
        let acc = Account::new(20);
        // Withdrawals do not summarize: closure violation.
        let bad = CoordSpec::builder(2)
            .conflict(1, 1)
            .depends(1, 0)
            .summarization_group([0, 1])
            .build();
        let report = validate(&acc, &bad, &AnalysisConfig::default());
        assert!(report
            .violations
            .iter()
            .any(|v| matches!(v, Violation::SummarizationNotClosed { .. })));
    }

    #[test]
    fn inference_recovers_account_structure() {
        let acc = Account::new(20);
        let inferred = infer(&acc, &AnalysisConfig::default());
        // deposit reducible, withdraw conflicting and dependent.
        assert!(matches!(
            inferred.category(MethodId(0)),
            MethodCategory::Reducible { .. }
        ));
        assert!(inferred.category(MethodId(1)).is_conflicting());
        assert!(inferred.dependencies(MethodId(1)).contains(&MethodId(0)));
        // And the inferred spec validates against the object.
        let report = validate(&acc, &inferred, &AnalysisConfig::default());
        assert!(report.is_valid(), "{report}");
    }

    #[test]
    fn violation_display_mentions_methods() {
        let v = Violation::UndeclaredConflict {
            a: MethodId(0),
            b: MethodId(1),
            witness: "w".into(),
        };
        assert_eq!(v.to_string(), "undeclared conflict between u0 and u1: w");
        let v = Violation::CrossKeyConflict {
            a: MethodId(1),
            b: MethodId(1),
            witness: "w".into(),
        };
        assert_eq!(v.to_string(), "cross-key conflict between u1 and u1: w");
    }

    /// The single-balance account with a bogus shard-key declaration:
    /// `withdraw(v)` keyed by its *amount*. Withdrawals with different
    /// amounts still race on the one shared balance, so the cross-key
    /// commutation the declaration asserts is false.
    #[derive(Debug, Clone)]
    struct MiskeyedAccount(Account);

    impl crate::object::ObjectSpec for MiskeyedAccount {
        type State = i128;
        type Update = crate::demo::AccountUpdate;
        type Query = crate::demo::AccountQuery;
        type Reply = i128;

        fn name(&self) -> &str {
            "miskeyed-account"
        }
        fn initial(&self) -> i128 {
            self.0.initial()
        }
        fn invariant(&self, state: &i128) -> bool {
            self.0.invariant(state)
        }
        fn apply(&self, state: &i128, call: &Self::Update) -> i128 {
            self.0.apply(state, call)
        }
        fn query(&self, state: &i128, query: &Self::Query) -> i128 {
            self.0.query(state, query)
        }
        fn method_names(&self) -> Vec<&'static str> {
            self.0.method_names()
        }
        fn method_of(&self, call: &Self::Update) -> MethodId {
            self.0.method_of(call)
        }
        fn summarize(&self, a: &Self::Update, b: &Self::Update) -> Option<Self::Update> {
            self.0.summarize(a, b)
        }
        fn shard_key(&self, call: &Self::Update) -> Option<u64> {
            match *call {
                crate::demo::AccountUpdate::Withdraw(v) => Some(v),
                crate::demo::AccountUpdate::Deposit(_) => None,
            }
        }
    }

    impl crate::object::SpecSampler for MiskeyedAccount {
        fn sample_state(&self, rng: &mut rand::rngs::StdRng) -> i128 {
            self.0.sample_state(rng)
        }
        fn sample_update_of(
            &self,
            method: MethodId,
            rng: &mut rand::rngs::StdRng,
        ) -> Self::Update {
            self.0.sample_update_of(method, rng)
        }
    }

    #[test]
    fn cross_key_conflict_is_detected() {
        let bad = MiskeyedAccount(Account::new(20));
        let report = validate(&bad, &bad.0.coord_spec(), &AnalysisConfig::default());
        assert!(report
            .violations
            .iter()
            .any(|v| matches!(v, Violation::CrossKeyConflict { a, b, .. }
                if a.index() == 1 && b.index() == 1)));
        assert!(report.to_string().contains("cross-key conflict"));
    }

    #[test]
    fn keyless_objects_pass_the_shard_key_check_vacuously() {
        // The plain Account declares no shard keys: the cross-key pass
        // has nothing to check and must stay silent.
        let acc = Account::new(20);
        let report = validate(&acc, &acc.coord_spec(), &AnalysisConfig::default());
        assert!(report.is_valid(), "{report}");
    }
}
