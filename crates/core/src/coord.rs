//! Method-level coordination relations and the three method categories
//! of §3.3.
//!
//! A [`CoordSpec`] declares, per object class:
//!
//! * the **conflict** relation between methods (symmetric) — inducing the
//!   conflict graph whose connected components are the *synchronization
//!   groups*;
//! * the **dependency** relation `Dep(u)` — which methods a method's
//!   calls may depend on;
//! * the **summarization groups** — sets of methods whose calls are
//!   closed under [`crate::object::ObjectSpec::summarize`].
//!
//! From these it derives each method's [`MethodCategory`]:
//!
//! * **Reducible** — conflict-free, dependence-free, and summarizable;
//!   propagated as a single remotely written summary call (rule REDUCE).
//! * **Irreducible conflict-free** — conflict-free but dependent or not
//!   summarizable; propagated through the per-source `F` buffers (rule
//!   FREE).
//! * **Conflicting** — member of a synchronization group; ordered by the
//!   group's leader into the `L` buffers (rule CONF).
//!
//! A synchronization group can additionally be *key-sharded*: when the
//! object declares a shard key per conflicting call
//! ([`crate::object::ObjectSpec::shard_key`]), a [`GroupMapper`] splits
//! each synchronization group into N per-key shards, each served by its
//! own consensus log. Same-key calls always land in the same shard
//! (Lemma 1 applies per shard); cross-key calls commute by the shard-key
//! declaration, so they may safely serialize in different shards.

use std::collections::BTreeSet;
use std::fmt;

use crate::graph::UndirectedGraph;
use crate::ids::{GroupId, MethodId, Pid};

/// splitmix64 finalizer: a full-avalanche 64-bit mix. Used to hash
/// shard keys onto shards and to derive per-session RNG seeds — places
/// where the XOR-of-affine-terms shortcuts this replaced allowed
/// distinct inputs to collide.
pub fn mix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The category of a method (§3.3), derived from a [`CoordSpec`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MethodCategory {
    /// Conflict-free, dependence-free, and summarizable: propagated by a
    /// single remote write of the updated summary (rule REDUCE).
    Reducible {
        /// The summarization group the method belongs to.
        sum_group: GroupId,
    },
    /// Conflict-free but dependent or not summarizable: propagated
    /// through the conflict-free buffers `F` (rule FREE).
    IrreducibleFree,
    /// Conflicting: ordered by the leader of its synchronization group
    /// into the conflicting buffers `L` (rule CONF).
    Conflicting {
        /// The synchronization group (connected component of the
        /// conflict graph) the method belongs to.
        sync_group: GroupId,
    },
}

impl fmt::Display for MethodCategory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MethodCategory::Reducible { sum_group } => write!(f, "reducible({sum_group})"),
            MethodCategory::IrreducibleFree => write!(f, "irreducible conflict-free"),
            MethodCategory::Conflicting { sync_group } => write!(f, "conflicting({sync_group})"),
        }
    }
}

/// Declared method-level coordination relations of an object class, plus
/// everything derived from them (conflict graph, synchronization groups,
/// categories, leader assignment).
///
/// Build one with [`CoordSpecBuilder`]:
///
/// ```
/// use hamband_core::coord::CoordSpec;
/// use hamband_core::ids::MethodId;
///
/// // The bank account: methods 0 = deposit, 1 = withdraw.
/// let coord = CoordSpec::builder(2)
///     .conflict(1, 1)          // withdraw 𝒫-conflicts with withdraw
///     .depends(1, 0)           // withdraw depends on deposit
///     .summarization_group([0]) // deposits summarize
///     .build();
/// assert!(coord.category(MethodId(0)).is_reducible());
/// assert!(coord.category(MethodId(1)).is_conflicting());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoordSpec {
    n_methods: usize,
    conflicts: BTreeSet<(usize, usize)>,
    depends: Vec<Vec<MethodId>>,
    sum_group_of: Vec<Option<GroupId>>,
    sum_groups: Vec<Vec<MethodId>>,
    sync_group_of: Vec<Option<GroupId>>,
    sync_groups: Vec<Vec<MethodId>>,
    categories: Vec<MethodCategory>,
}

impl MethodCategory {
    /// Whether this is the reducible category.
    pub fn is_reducible(self) -> bool {
        matches!(self, MethodCategory::Reducible { .. })
    }

    /// Whether this is the irreducible conflict-free category.
    pub fn is_irreducible_free(self) -> bool {
        matches!(self, MethodCategory::IrreducibleFree)
    }

    /// Whether this is the conflicting category.
    pub fn is_conflicting(self) -> bool {
        matches!(self, MethodCategory::Conflicting { .. })
    }
}

impl CoordSpec {
    /// Start building a specification for an object with `n_methods`
    /// update methods.
    pub fn builder(n_methods: usize) -> CoordSpecBuilder {
        CoordSpecBuilder {
            n_methods,
            conflicts: BTreeSet::new(),
            depends: vec![BTreeSet::new(); n_methods],
            sum_groups: Vec::new(),
        }
    }

    /// Number of update methods covered.
    pub fn method_count(&self) -> usize {
        self.n_methods
    }

    /// Whether methods `a` and `b` conflict (symmetric).
    pub fn methods_conflict(&self, a: MethodId, b: MethodId) -> bool {
        let (x, y) = if a.index() <= b.index() { (a.index(), b.index()) } else { (b.index(), a.index()) };
        self.conflicts.contains(&(x, y))
    }

    /// `Dep(u)`: the methods `u` is dependent on, sorted ascending.
    pub fn dependencies(&self, u: MethodId) -> &[MethodId] {
        &self.depends[u.index()]
    }

    /// Whether `u` is dependence-free (`Dep(u) = ∅`).
    pub fn is_dependence_free(&self, u: MethodId) -> bool {
        self.depends[u.index()].is_empty()
    }

    /// `SumGroup(u)`: the summarization group of `u`, or `None` (⊥).
    pub fn sum_group(&self, u: MethodId) -> Option<GroupId> {
        self.sum_group_of[u.index()]
    }

    /// `SyncGroup(u)`: the synchronization group of `u`, or `None` (⊥)
    /// if `u` is conflict-free.
    pub fn sync_group(&self, u: MethodId) -> Option<GroupId> {
        self.sync_group_of[u.index()]
    }

    /// The derived category of method `u`.
    pub fn category(&self, u: MethodId) -> MethodCategory {
        self.categories[u.index()]
    }

    /// All synchronization groups (connected components of the conflict
    /// graph), each a sorted list of methods.
    pub fn sync_groups(&self) -> &[Vec<MethodId>] {
        &self.sync_groups
    }

    /// All summarization groups, each a sorted list of methods.
    pub fn sum_groups(&self) -> &[Vec<MethodId>] {
        &self.sum_groups
    }

    /// Default leader assignment: synchronization group `g` is led by
    /// process `g mod n`, spreading groups across the cluster
    /// round-robin (this is what gives the Movie schema its two leaders
    /// in Fig. 10).
    pub fn default_leaders(&self, processes: usize) -> Vec<Pid> {
        assert!(processes > 0, "cluster must be non-empty");
        (0..self.sync_groups.len()).map(|g| Pid(g % processes)).collect()
    }

    /// Methods in each category, for reporting.
    pub fn category_summary(&self) -> (Vec<MethodId>, Vec<MethodId>, Vec<MethodId>) {
        let mut red = Vec::new();
        let mut free = Vec::new();
        let mut conf = Vec::new();
        for m in 0..self.n_methods {
            match self.categories[m] {
                MethodCategory::Reducible { .. } => red.push(MethodId(m)),
                MethodCategory::IrreducibleFree => free.push(MethodId(m)),
                MethodCategory::Conflicting { .. } => conf.push(MethodId(m)),
            }
        }
        (red, free, conf)
    }
}

/// Maps `(synchronization group, shard key)` onto a *mapped group* —
/// the index of the consensus engine / `L` ring that serializes the
/// call. With `shards == 1` this is the identity on synchronization
/// groups (the paper's layout); with `shards == N` every
/// synchronization group becomes `N` independent consensus logs, CNR
/// `LogMapper`-style, and a call's shard is chosen by hashing its
/// declared key ([`crate::object::ObjectSpec::shard_key`]).
///
/// Safety argument (DESIGN.md §4a): the mapper is a pure function of
/// `(group, key)`, so two conflicting calls on the same key always map
/// to the same shard, where the shard's leader totally orders them —
/// Lemma 1 holds per shard. Calls with *different* keys commute by the
/// shard-key declaration (validated by the bounded analysis), so
/// serializing them in different shards is sound. Keyless calls
/// (`shard_key == None`) conflict with every call of their group and
/// are pinned to shard 0.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GroupMapper {
    base_groups: usize,
    shards: usize,
}

impl GroupMapper {
    /// A mapper splitting each of `coord`'s synchronization groups into
    /// `shards` shards.
    ///
    /// # Panics
    ///
    /// Panics if `shards == 0`.
    pub fn new(coord: &CoordSpec, shards: usize) -> Self {
        assert!(shards >= 1, "at least one shard per synchronization group");
        GroupMapper { base_groups: coord.sync_groups().len(), shards }
    }

    /// The unsharded identity mapper (one shard per group).
    pub fn identity(coord: &CoordSpec) -> Self {
        GroupMapper::new(coord, 1)
    }

    /// Shards per synchronization group.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Total mapped groups: one consensus engine / `L` ring each.
    pub fn group_count(&self) -> usize {
        self.base_groups * self.shards
    }

    /// The shard a key hashes to. `None` (a keyless call, conflicting
    /// with *all* calls of its group) pins to shard 0.
    pub fn shard_of(&self, key: Option<u64>) -> usize {
        match key {
            Some(k) => (mix64(k) % self.shards as u64) as usize,
            None => 0,
        }
    }

    /// The mapped group of a call in synchronization group `sync_group`
    /// with shard key `key`.
    pub fn group_of(&self, sync_group: GroupId, key: Option<u64>) -> usize {
        debug_assert!(sync_group.index() < self.base_groups);
        sync_group.index() * self.shards + self.shard_of(key)
    }

    /// The mapped groups (shards) of synchronization group `sync_group`,
    /// as a contiguous range.
    pub fn shard_range(&self, sync_group: GroupId) -> std::ops::Range<usize> {
        let base = sync_group.index() * self.shards;
        base..base + self.shards
    }

    /// The synchronization group a mapped group belongs to.
    pub fn sync_group_of(&self, mapped: usize) -> GroupId {
        debug_assert!(mapped < self.group_count());
        GroupId(mapped / self.shards)
    }

    /// Default leader assignment over *mapped* groups: shard `g` led by
    /// process `g mod n`. At `shards == 1` this coincides with
    /// [`CoordSpec::default_leaders`]; with more shards it spreads the
    /// shards of every group across the cluster so sharding actually
    /// buys parallel leaders.
    pub fn default_leaders(&self, processes: usize) -> Vec<Pid> {
        assert!(processes > 0, "cluster must be non-empty");
        (0..self.group_count()).map(|g| Pid(g % processes)).collect()
    }
}

/// Builder for [`CoordSpec`].
#[derive(Debug, Clone)]
pub struct CoordSpecBuilder {
    n_methods: usize,
    conflicts: BTreeSet<(usize, usize)>,
    depends: Vec<BTreeSet<usize>>,
    sum_groups: Vec<BTreeSet<usize>>,
}

impl CoordSpecBuilder {
    /// Declare that methods `a` and `b` conflict (symmetric; `a == b`
    /// declares a self-conflict such as withdraw/withdraw).
    ///
    /// # Panics
    ///
    /// Panics if a method index is out of range.
    pub fn conflict(mut self, a: usize, b: usize) -> Self {
        assert!(a < self.n_methods && b < self.n_methods, "method out of range");
        let (x, y) = if a <= b { (a, b) } else { (b, a) };
        self.conflicts.insert((x, y));
        self
    }

    /// Declare that method `dependent` is dependent on method `on`
    /// (`on ∈ Dep(dependent)`).
    ///
    /// # Panics
    ///
    /// Panics if a method index is out of range.
    pub fn depends(mut self, dependent: usize, on: usize) -> Self {
        assert!(dependent < self.n_methods && on < self.n_methods, "method out of range");
        self.depends[dependent].insert(on);
        self
    }

    /// Declare a summarization group: a set of methods whose calls are
    /// closed under summarization.
    ///
    /// # Panics
    ///
    /// Panics if a method index is out of range or already belongs to a
    /// summarization group.
    pub fn summarization_group(mut self, methods: impl IntoIterator<Item = usize>) -> Self {
        let set: BTreeSet<usize> = methods.into_iter().collect();
        for &m in &set {
            assert!(m < self.n_methods, "method out of range");
            assert!(
                !self.sum_groups.iter().any(|g| g.contains(&m)),
                "method already in a summarization group"
            );
        }
        self.sum_groups.push(set);
        self
    }

    /// Finish building, deriving synchronization groups and categories.
    pub fn build(self) -> CoordSpec {
        let n = self.n_methods;
        let mut graph = UndirectedGraph::new(n);
        for &(a, b) in &self.conflicts {
            graph.add_edge(a, b);
        }
        let comps = graph.components_with_edges();
        let mut sync_group_of = vec![None; n];
        let mut sync_groups = Vec::new();
        for (gi, comp) in comps.iter().enumerate() {
            for &m in comp {
                sync_group_of[m] = Some(GroupId(gi));
            }
            sync_groups.push(comp.iter().map(|&m| MethodId(m)).collect());
        }

        let mut sum_group_of = vec![None; n];
        let mut sum_groups = Vec::new();
        for (gi, grp) in self.sum_groups.iter().enumerate() {
            for &m in grp {
                sum_group_of[m] = Some(GroupId(gi));
            }
            sum_groups.push(grp.iter().map(|&m| MethodId(m)).collect());
        }

        let depends: Vec<Vec<MethodId>> = self
            .depends
            .iter()
            .map(|set| set.iter().map(|&m| MethodId(m)).collect())
            .collect();

        let categories = (0..n)
            .map(|m| match sync_group_of[m] {
                Some(g) => MethodCategory::Conflicting { sync_group: g },
                None => match (depends[m].is_empty(), sum_group_of[m]) {
                    (true, Some(g)) => MethodCategory::Reducible { sum_group: g },
                    _ => MethodCategory::IrreducibleFree,
                },
            })
            .collect();

        CoordSpec {
            n_methods: n,
            conflicts: self.conflicts,
            depends,
            sum_group_of,
            sum_groups,
            sync_group_of,
            sync_groups,
            categories,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn account_coord() -> CoordSpec {
        // 0 = deposit, 1 = withdraw.
        CoordSpec::builder(2)
            .conflict(1, 1)
            .depends(1, 0)
            .summarization_group([0])
            .build()
    }

    #[test]
    fn account_categories() {
        let c = account_coord();
        assert_eq!(
            c.category(MethodId(0)),
            MethodCategory::Reducible { sum_group: GroupId(0) }
        );
        assert_eq!(
            c.category(MethodId(1)),
            MethodCategory::Conflicting { sync_group: GroupId(0) }
        );
        assert!(c.category(MethodId(0)).is_reducible());
        assert!(!c.category(MethodId(0)).is_conflicting());
        assert!(c.category(MethodId(1)).is_conflicting());
    }

    #[test]
    fn account_relations() {
        let c = account_coord();
        assert!(c.methods_conflict(MethodId(1), MethodId(1)));
        assert!(!c.methods_conflict(MethodId(0), MethodId(1)));
        assert_eq!(c.dependencies(MethodId(1)), &[MethodId(0)]);
        assert!(c.is_dependence_free(MethodId(0)));
        assert!(!c.is_dependence_free(MethodId(1)));
        assert_eq!(c.sync_groups().len(), 1);
        assert_eq!(c.sum_groups(), &[vec![MethodId(0)]]);
    }

    #[test]
    fn dependent_summarizable_method_is_irreducible() {
        // A method that is summarizable but dependent must not be
        // reducible (§2 "Method categories").
        let c = CoordSpec::builder(2)
            .depends(0, 1)
            .summarization_group([0])
            .build();
        assert_eq!(c.category(MethodId(0)), MethodCategory::IrreducibleFree);
        assert_eq!(c.category(MethodId(1)), MethodCategory::IrreducibleFree);
    }

    #[test]
    fn unsummarizable_free_method_is_irreducible() {
        let c = CoordSpec::builder(1).build();
        assert_eq!(c.category(MethodId(0)), MethodCategory::IrreducibleFree);
        assert!(c.category(MethodId(0)).is_irreducible_free());
    }

    #[test]
    fn movie_schema_has_two_sync_groups_and_two_leaders() {
        // 0 = addCustomer, 1 = deleteCustomer, 2 = addMovie, 3 = deleteMovie.
        let c = CoordSpec::builder(4)
            .conflict(0, 1)
            .conflict(1, 1)
            .conflict(2, 3)
            .conflict(3, 3)
            .build();
        assert_eq!(c.sync_groups().len(), 2);
        assert_eq!(c.sync_group(MethodId(0)), Some(GroupId(0)));
        assert_eq!(c.sync_group(MethodId(3)), Some(GroupId(1)));
        let leaders = c.default_leaders(4);
        assert_eq!(leaders, vec![Pid(0), Pid(1)]);
    }

    #[test]
    fn conflict_chain_merges_groups() {
        let c = CoordSpec::builder(3).conflict(0, 1).conflict(1, 2).build();
        assert_eq!(c.sync_groups().len(), 1);
        assert_eq!(c.sync_groups()[0], vec![MethodId(0), MethodId(1), MethodId(2)]);
    }

    #[test]
    fn category_summary_partitions_methods() {
        let c = account_coord();
        let (red, free, conf) = c.category_summary();
        assert_eq!(red, vec![MethodId(0)]);
        assert!(free.is_empty());
        assert_eq!(conf, vec![MethodId(1)]);
    }

    #[test]
    #[should_panic(expected = "method already in a summarization group")]
    fn duplicate_sum_group_membership_panics() {
        let _ = CoordSpec::builder(2)
            .summarization_group([0])
            .summarization_group([0, 1]);
    }

    #[test]
    #[should_panic(expected = "method out of range")]
    fn out_of_range_conflict_panics() {
        let _ = CoordSpec::builder(1).conflict(0, 1);
    }

    #[test]
    fn leaders_round_robin() {
        let c = CoordSpec::builder(6)
            .conflict(0, 0)
            .conflict(1, 1)
            .conflict(2, 2)
            .build();
        assert_eq!(c.default_leaders(2), vec![Pid(0), Pid(1), Pid(0)]);
    }

    #[test]
    fn mix64_avalanches_low_entropy_inputs() {
        // Nearby inputs (the session/node counters fed to the seeder)
        // must land far apart; the old affine XOR mix failed this.
        let outs: BTreeSet<u64> = (0..10_000).map(mix64).collect();
        assert_eq!(outs.len(), 10_000);
        assert_ne!(mix64(0), 0);
    }

    #[test]
    fn identity_mapper_matches_unsharded_layout() {
        let c = account_coord();
        let m = GroupMapper::identity(&c);
        assert_eq!(m.shards(), 1);
        assert_eq!(m.group_count(), 1);
        for key in [None, Some(0), Some(17), Some(u64::MAX)] {
            assert_eq!(m.group_of(GroupId(0), key), 0);
        }
        assert_eq!(m.default_leaders(4), c.default_leaders(4));
    }

    #[test]
    fn mapper_is_deterministic_and_in_range() {
        let c = account_coord();
        for shards in [1usize, 2, 3, 4, 8, 32] {
            let m = GroupMapper::new(&c, shards);
            assert_eq!(m.group_count(), shards);
            for k in 0..1_000u64 {
                let g = m.group_of(GroupId(0), Some(k));
                assert!(m.shard_range(GroupId(0)).contains(&g));
                // Same key, same shard — every time.
                assert_eq!(g, m.group_of(GroupId(0), Some(k)));
                assert_eq!(m.sync_group_of(g), GroupId(0));
            }
            assert_eq!(m.group_of(GroupId(0), None), 0, "keyless pins to shard 0");
        }
    }

    #[test]
    fn mapper_keeps_sync_groups_disjoint() {
        // Movie-style spec: two sync groups; their shard ranges must
        // never overlap, so per-group elections/quotas stay independent.
        let c = CoordSpec::builder(4)
            .conflict(0, 1)
            .conflict(1, 1)
            .conflict(2, 3)
            .conflict(3, 3)
            .build();
        for shards in [1usize, 4, 7] {
            let m = GroupMapper::new(&c, shards);
            assert_eq!(m.group_count(), 2 * shards);
            let r0 = m.shard_range(GroupId(0));
            let r1 = m.shard_range(GroupId(1));
            assert_eq!(r0.end, r1.start);
            for k in 0..500u64 {
                assert!(r0.contains(&m.group_of(GroupId(0), Some(k))));
                assert!(r1.contains(&m.group_of(GroupId(1), Some(k))));
            }
        }
    }

    #[test]
    fn mapper_spreads_keys_across_shards() {
        let c = account_coord();
        let m = GroupMapper::new(&c, 8);
        let mut hits = vec![0u32; 8];
        for k in 0..4_096u64 {
            hits[m.group_of(GroupId(0), Some(k))] += 1;
        }
        // A full-avalanche hash over 4096 keys should touch every shard
        // with a reasonably even load (expected 512 per shard).
        assert!(hits.iter().all(|&h| h > 256), "uneven shard load: {hits:?}");
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_is_rejected() {
        let _ = GroupMapper::new(&account_coord(), 0);
    }

    #[test]
    fn sharded_default_leaders_round_robin_over_mapped_groups() {
        let c = account_coord();
        let m = GroupMapper::new(&c, 4);
        assert_eq!(m.default_leaders(3), vec![Pid(0), Pid(1), Pid(2), Pid(0)]);
    }
}
