//! The object data type model of Fig. 3: ⟨Σ, I, ū:=d̄, q̄:=d̄⟩.
//!
//! A *class* defines a state type `Σ`, an integrity invariant `I` over
//! states, executable update methods `u` (state → state) and query
//! methods `q` (state → value). [`ObjectSpec`] captures exactly this
//! tuple; every replicated data type shipped with Hamband implements it.

use rand::rngs::StdRng;
use rand::Rng as _;

use crate::ids::MethodId;

/// How workload generators pick keys (accounts, set elements, cart
/// line-items) out of a key space.
///
/// The paper's evaluation draws keys uniformly; production traffic is
/// rarely uniform, so the ingress layer lets workloads skew key
/// popularity. Generators that have a notion of a key honor this via
/// [`WorkloadSupport::gen_update_skewed`]; key-free types (counters,
/// registers) ignore it.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum KeySkew {
    /// Every key equally likely (the paper's §5 setup).
    #[default]
    Uniform,
    /// Power-law popularity: low-numbered keys are hot. `theta` in
    /// `[0, 1)`; `0.0` degrades to uniform, `0.99` is a YCSB-style hot
    /// set. Implemented as a bounded Pareto draw
    /// (`key = ⌊space · u^(1/(1-theta))⌋`), the standard cheap
    /// approximation of a rank-zipfian — deterministic given the RNG
    /// stream.
    Zipfian {
        /// Skew exponent in `[0, 1)`: higher is more skewed.
        theta: f64,
    },
}

impl KeySkew {
    /// Sample a key in `0..space` under this skew.
    ///
    /// `Uniform` draws exactly one `gen_range(0..space)` so a uniform
    /// skewed generator consumes the same RNG stream as its unskewed
    /// counterpart (the ingress parity tests rely on this).
    ///
    /// # Panics
    ///
    /// Panics if `space == 0` or a zipfian `theta` is outside `[0, 1)`.
    pub fn sample(&self, rng: &mut StdRng, space: u64) -> u64 {
        assert!(space > 0, "key space must be non-empty");
        match *self {
            KeySkew::Uniform => rng.gen_range(0..space),
            KeySkew::Zipfian { theta } => {
                assert!((0.0..1.0).contains(&theta), "zipfian theta must be in [0,1)");
                let u: f64 = rng.gen_range(0.0..1.0);
                let x = u.powf(1.0 / (1.0 - theta));
                ((x * space as f64) as u64).min(space - 1)
            }
        }
    }

    /// Sample an index in `0..len` under this skew (for picking from an
    /// observed collection, e.g. the open accounts of a bank state).
    ///
    /// # Panics
    ///
    /// Panics if `len == 0`.
    pub fn sample_index(&self, rng: &mut StdRng, len: usize) -> usize {
        self.sample(rng, len as u64) as usize
    }
}

/// A class of replicated objects: ⟨Σ, I, ū:=d̄, q̄:=d̄⟩ (Fig. 3).
///
/// * `State` is the state type `Σ`.
/// * `Update` is the type of update calls `u(v)` — typically an enum
///   with one variant per update method, carrying the argument `v`.
/// * `Query`/`Reply` are query calls `q(v)` and their return values.
///
/// The executable definitions:
///
/// * [`initial`](ObjectSpec::initial) — the initial state `σ₀`, which
///   must satisfy the invariant.
/// * [`invariant`](ObjectSpec::invariant) — the integrity predicate `I`.
/// * [`apply`](ObjectSpec::apply) — the update definition
///   `d = λx, σ. e` (total: callers gate on permissibility separately).
/// * [`query`](ObjectSpec::query) — the query definition.
/// * [`summarize`](ObjectSpec::summarize) — the partial summarization
///   function of §3.3: `Summarize(c, c') = c''` with
///   `c' ∘ c = c''` when both calls belong to a summarization group.
///
/// # Example
///
/// The paper's bank account (Fig. 1) is shipped as
/// [`crate::demo::Account`]; see its source for a complete
/// implementation of this trait.
pub trait ObjectSpec {
    /// The object state `Σ`.
    type State: Clone + PartialEq + std::fmt::Debug;
    /// An update call `u(v)`: the method together with its argument.
    type Update: Clone + PartialEq + std::fmt::Debug;
    /// A query call `q(v)`.
    type Query: Clone + std::fmt::Debug;
    /// A query return value.
    type Reply: Clone + PartialEq + std::fmt::Debug;

    /// Human-readable class name (for reports and error messages).
    fn name(&self) -> &str;

    /// The initial state `σ₀`. Must satisfy [`invariant`](Self::invariant).
    fn initial(&self) -> Self::State;

    /// The integrity predicate `I` of the class.
    fn invariant(&self, state: &Self::State) -> bool;

    /// Execute the update call, producing the post-state.
    ///
    /// `apply` must be a *total function of its arguments*: callers are
    /// responsible for checking permissibility
    /// (`I(apply(state, call))`) before committing the result.
    fn apply(&self, state: &Self::State, call: &Self::Update) -> Self::State;

    /// Execute a query call against a state.
    fn query(&self, state: &Self::State, query: &Self::Query) -> Self::Reply;

    /// The update method names, in dense [`MethodId`] order.
    fn method_names(&self) -> Vec<&'static str>;

    /// The method a call belongs to.
    fn method_of(&self, call: &Self::Update) -> MethodId;

    /// Summarize two calls of a summarization group (§3.3):
    /// returns `c''` with `second ∘ first = c''`, or `None` if the calls
    /// do not summarize.
    ///
    /// The default declares nothing summarizable.
    fn summarize(&self, first: &Self::Update, second: &Self::Update) -> Option<Self::Update> {
        let _ = (first, second);
        None
    }

    /// Execute the update call in place. Semantically identical to
    /// [`apply`](Self::apply); override for states where cloning is
    /// expensive (large sets/maps). The runtime uses this on its hot
    /// path; the semantics and checkers use the pure `apply`.
    fn apply_mut(&self, state: &mut Self::State, call: &Self::Update) {
        *state = self.apply(state, call);
    }

    /// Whether re-applying a *newer version* of a summary call on top of
    /// a state that already includes an older version yields the same
    /// state as applying only the newer version.
    ///
    /// Holds for idempotent, growing summaries (set-union `add_all`,
    /// last-writer-wins `max`), not for accumulating ones (counter
    /// `add`, account `deposit`). When `true`, replicas maintain their
    /// query view incrementally as summary slots advance; when `false`,
    /// they recompute the view from the stored state and the latest
    /// summaries.
    fn summaries_monotone(&self) -> bool {
        false
    }

    /// Number of update methods.
    fn method_count(&self) -> usize {
        self.method_names().len()
    }

    /// The *shard key* of an update call, if it has one: the entity
    /// (bank account, set element, cart line-item) the call operates on.
    ///
    /// Declaring a shard key asserts that two calls of the same
    /// synchronization group with **different** keys commute — the
    /// [`crate::coord::GroupMapper`] then serializes only same-key
    /// calls through the same consensus shard (Lemma 1 per shard),
    /// letting conflicting throughput scale with the shard count. The
    /// bounded analysis validates the assertion by sampling
    /// ([`crate::analysis::Violation::CrossKeyConflict`]).
    ///
    /// Return `None` (the default) for calls that conflict regardless
    /// of key — such calls are pinned to shard 0 of their group.
    fn shard_key(&self, call: &Self::Update) -> Option<u64> {
        let _ = call;
        None
    }

    /// Permissibility `𝒫(σ, c)` (§3.2): the invariant holds in the
    /// post-state of the call.
    fn permissible(&self, state: &Self::State, call: &Self::Update) -> bool {
        self.invariant(&self.apply(state, call))
    }
}

/// Random generation of states and calls, used by the bounded relation
/// checker in [`crate::analysis`] and by property tests.
///
/// The paper assumes the conflict and dependency relations are given by
/// an upstream analysis (Hamsaz-style); this trait supplies the sampling
/// oracle our bounded checker uses to *validate* a declared
/// [`crate::coord::CoordSpec`] against the executable definitions.
pub trait SpecSampler: ObjectSpec {
    /// Sample a reachable-looking state satisfying the invariant.
    fn sample_state(&self, rng: &mut StdRng) -> Self::State;

    /// Sample an update call on the given method.
    fn sample_update_of(&self, method: MethodId, rng: &mut StdRng) -> Self::Update;

    /// Sample an update call on any method.
    fn sample_update(&self, rng: &mut StdRng) -> Self::Update {
        let m = rng.gen_range(0..self.method_count());
        self.sample_update_of(MethodId(m), rng)
    }
}

/// Everything a workload driver needs from an object class, beyond the
/// state-oblivious sampling of [`SpecSampler`]:
///
/// * query sampling (the evaluation mixes update and query calls);
/// * *state-aware* update generation — e.g. an OR-set `remove` must
///   target observed elements, a courseware `enroll` must reference a
///   registered student. The default delegates to the oblivious
///   sampler, which suffices for context-free types like counters.
pub trait WorkloadSupport: SpecSampler {
    /// Sample a query call.
    fn sample_query(&self, rng: &mut StdRng) -> Self::Query;

    /// Generate an update call on `method` appropriate for `state`.
    ///
    /// `node` and `seq` give the issuing replica and a per-node counter,
    /// letting generators mint collision-free identifiers (e.g. OR-set
    /// tags). Return `None` when no sensible call exists in this state
    /// (e.g. removing from an empty set); the driver will pick another
    /// method.
    fn gen_update(
        &self,
        state: &Self::State,
        node: usize,
        seq: u64,
        method: MethodId,
        rng: &mut StdRng,
    ) -> Option<Self::Update> {
        let _ = (state, node, seq);
        Some(self.sample_update_of(method, rng))
    }

    /// [`gen_update`](Self::gen_update) with key-popularity skew.
    ///
    /// Types with a notion of a key (bank accounts, set elements)
    /// override this to draw their key through `skew`; the override's
    /// `KeySkew::Uniform` path must consume the identical RNG stream as
    /// `gen_update` so uniform workloads stay bit-compatible with the
    /// pre-skew driver. Key-free types keep this default, which ignores
    /// `skew` entirely.
    fn gen_update_skewed(
        &self,
        state: &Self::State,
        node: usize,
        seq: u64,
        method: MethodId,
        rng: &mut StdRng,
        skew: KeySkew,
    ) -> Option<Self::Update> {
        let _ = skew;
        self.gen_update(state, node, seq, method, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::demo::Account;

    #[test]
    fn permissible_default_matches_invariant_on_post_state() {
        let acc = Account::new(2);
        let s = acc.initial();
        assert!(acc.permissible(&s, &Account::deposit(5)));
        assert!(!acc.permissible(&s, &Account::withdraw(1)));
        let s2 = acc.apply(&s, &Account::deposit(5));
        assert!(acc.permissible(&s2, &Account::withdraw(5)));
        assert!(!acc.permissible(&s2, &Account::withdraw(6)));
    }

    #[test]
    fn method_count_matches_names() {
        let acc = Account::new(2);
        assert_eq!(acc.method_count(), acc.method_names().len());
    }
}
