//! The concrete operational semantics of RDMA WRDTs — Fig. 6/7 of the
//! paper (rules REDUCE, FREE, CONF, FREE-APP, CONF-APP, QUERY).
//!
//! A configuration `K` maps each process to a tuple ⟨σ, A, S, F, L⟩:
//!
//! * `σ` — the stored state (result of applying conflicting and
//!   irreducible conflict-free calls);
//! * `A` — the applied-calls count map ([`CountMap`]);
//! * `S` — the summarized call per (summarization group, process);
//! * `F` — a buffer of irreducible conflict-free calls per source
//!   process, each entry shipped with its dependency map `D`;
//! * `L` — a buffer of conflicting calls per synchronization group.
//!
//! Remote writes are modelled exactly as in Fig. 7: a REDUCE step
//! updates the summary slot at *every* process in one transition
//! (the batch of independent one-sided writes), and FREE/CONF steps
//! append to the buffers of every other process. The buffered calls are
//! applied later, by the *internal* transitions FREE-APP and CONF-APP,
//! which model the periodic local buffer traversals of §4.
//!
//! Every transition records a [`Label`], so a complete run yields a
//! trace that [`crate::refinement`] replays against the abstract
//! semantics — the executable counterpart of Lemma 3.

use std::collections::VecDeque;

use crate::coord::{CoordSpec, MethodCategory};
use crate::counts::{CountMap, DepMap};
use crate::error::SemError;
use crate::ids::{GroupId, Pid, Rid};
use crate::object::ObjectSpec;
use crate::trace::{Label, Trace};

/// A buffered call: the call, its identifier, and the dependency map it
/// was shipped with.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BufferedCall<U> {
    /// The unique request identifier.
    pub rid: Rid,
    /// The call `u(v)`.
    pub update: U,
    /// The dependency map `D` shipped alongside (rule FREE/CONF).
    pub deps: DepMap,
}

/// Per-process component of the configuration `K` (Fig. 6).
#[derive(Debug)]
struct ProcState<O: ObjectSpec> {
    /// The stored state `σ`.
    sigma: O::State,
    /// The applied calls `A`.
    applied: CountMap,
    /// The summarized calls `S : G → P → C` (`None` = no calls yet).
    summaries: Vec<Vec<Option<O::Update>>>,
    /// The conflict-free buffers `F : P → List (C × D)`.
    free_bufs: Vec<VecDeque<BufferedCall<O::Update>>>,
    /// The conflicting buffers `L : G → List (C × D)`.
    conf_bufs: Vec<VecDeque<BufferedCall<O::Update>>>,
}

impl<O: ObjectSpec> Clone for ProcState<O> {
    fn clone(&self) -> Self {
        ProcState {
            sigma: self.sigma.clone(),
            applied: self.applied.clone(),
            summaries: self.summaries.clone(),
            free_bufs: self.free_bufs.clone(),
            conf_bufs: self.conf_bufs.clone(),
        }
    }
}

/// The executable RDMA WRDT semantics of Fig. 7.
///
/// ```
/// use hamband_core::demo::{Account, AccountQuery};
/// use hamband_core::rdma_sem::RdmaWrdt;
/// use hamband_core::ids::Pid;
///
/// let acc = Account::default();
/// let coord = acc.coord_spec();
/// let mut k = RdmaWrdt::new(&acc, &coord, 3);
/// // deposit is reducible: a single step updates summaries everywhere.
/// k.reduce(1, Account::deposit(10)).unwrap();
/// assert_eq!(k.query(0, &AccountQuery::Balance), 10);
/// // withdraw is conflicting: the leader (p0) orders it.
/// k.conf(0, Account::withdraw(4)).unwrap();
/// // other processes apply it from their L buffers.
/// assert!(k.conf_app(Pid(1), 0.into()).is_ok());
/// ```
pub struct RdmaWrdt<'a, O: ObjectSpec> {
    spec: &'a O,
    coord: &'a CoordSpec,
    leaders: Vec<Pid>,
    procs: Vec<ProcState<O>>,
    next_seq: Vec<u64>,
    trace: Trace<O::Update>,
}

impl<'a, O: ObjectSpec> RdmaWrdt<'a, O> {
    /// The initial configuration `K₀` with the default round-robin
    /// leader assignment.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`crate::AbstractWrdt::new`].
    pub fn new(spec: &'a O, coord: &'a CoordSpec, n: usize) -> Self {
        let leaders = coord.default_leaders(n);
        Self::with_leaders(spec, coord, n, leaders)
    }

    /// The initial configuration with an explicit leader per
    /// synchronization group.
    ///
    /// # Panics
    ///
    /// Panics if `leaders` does not name one in-range process per
    /// synchronization group.
    pub fn with_leaders(spec: &'a O, coord: &'a CoordSpec, n: usize, leaders: Vec<Pid>) -> Self {
        assert!(n > 0, "cluster must be non-empty");
        assert_eq!(
            coord.method_count(),
            spec.method_count(),
            "coordination spec must cover all methods"
        );
        assert_eq!(leaders.len(), coord.sync_groups().len(), "one leader per sync group");
        assert!(leaders.iter().all(|l| l.index() < n), "leader out of range");
        let sigma0 = spec.initial();
        assert!(spec.invariant(&sigma0), "initial state must satisfy the invariant");
        let methods = spec.method_count();
        let procs = (0..n)
            .map(|_| ProcState {
                sigma: sigma0.clone(),
                applied: CountMap::new(n, methods),
                summaries: vec![vec![None; n]; coord.sum_groups().len()],
                free_bufs: vec![VecDeque::new(); n],
                conf_bufs: vec![VecDeque::new(); coord.sync_groups().len()],
            })
            .collect();
        RdmaWrdt { spec, coord, leaders, procs, next_seq: vec![0; n], trace: Vec::new() }
    }

    /// Number of processes `|P|`.
    pub fn processes(&self) -> usize {
        self.procs.len()
    }

    /// The leader of synchronization group `g`.
    pub fn leader(&self, g: GroupId) -> Pid {
        self.leaders[g.index()]
    }

    /// The recorded trace.
    pub fn trace(&self) -> &Trace<O::Update> {
        &self.trace
    }

    /// `Apply(S_p)(σ_p)`: the current state of a process — its stored
    /// state with all summarized calls applied (in any order; they are
    /// conflict-free).
    pub fn current_state(&self, p: Pid) -> O::State {
        let proc = &self.procs[p.index()];
        let mut sigma = proc.sigma.clone();
        for group in &proc.summaries {
            for slot in group.iter().flatten() {
                sigma = self.spec.apply(&sigma, slot);
            }
        }
        sigma
    }

    /// The applied-calls map `A` of a process.
    pub fn applied(&self, p: Pid) -> &CountMap {
        &self.procs[p.index()].applied
    }

    /// The conflict-free buffer `F_p(src)`.
    pub fn free_buffer(&self, p: Pid, src: Pid) -> &VecDeque<BufferedCall<O::Update>> {
        &self.procs[p.index()].free_bufs[src.index()]
    }

    /// The conflicting buffer `L_p(g)`.
    pub fn conf_buffer(&self, p: Pid, g: GroupId) -> &VecDeque<BufferedCall<O::Update>> {
        &self.procs[p.index()].conf_bufs[g.index()]
    }

    fn mint_rid(&mut self, p: Pid) -> Rid {
        let rid = Rid::new(p, self.next_seq[p.index()]);
        self.next_seq[p.index()] += 1;
        rid
    }

    fn check_pid(&self, p: Pid) -> Result<(), SemError> {
        if p.index() < self.processes() {
            Ok(())
        } else {
            Err(SemError::NoSuchProcess { process: p, cluster: self.processes() })
        }
    }

    /// Rule REDUCE: a reducible call `u(v)` at process `p`.
    ///
    /// Summarizes the call into `p`'s summary slot for its summarization
    /// group and writes the new summary (and advanced applied count) to
    /// every process — the batch of independent one-sided remote writes.
    ///
    /// # Errors
    ///
    /// [`SemError::WrongCategory`] for non-reducible methods,
    /// [`SemError::NotPermissible`] if the call would violate the
    /// invariant, [`SemError::NotSummarizable`] if summarization fails
    /// (a violated closure declaration).
    pub fn reduce(&mut self, p: impl Into<Pid>, update: O::Update) -> Result<Rid, SemError> {
        let p = p.into();
        self.check_pid(p)?;
        let method = self.spec.method_of(&update);
        let g = match self.coord.category(method) {
            MethodCategory::Reducible { sum_group } => sum_group,
            _ => return Err(SemError::WrongCategory { method, rule: "REDUCE" }),
        };
        // 𝒫: I(u(v)(Apply(S_p)(σ_p))).
        let sigma = self.current_state(p);
        let post = self.spec.apply(&sigma, &update);
        if !self.spec.invariant(&post) {
            return Err(SemError::NotPermissible { process: p, method });
        }
        // Summarize(u'(v'), u(v)) = u''(v'').
        let new_summary = match &self.procs[p.index()].summaries[g.index()][p.index()] {
            None => update.clone(),
            Some(prev) => self
                .spec
                .summarize(prev, &update)
                .ok_or(SemError::NotSummarizable { method })?,
        };
        let rid = self.mint_rid(p);
        let n_applied = self.procs[p.index()].applied.get(p, method) + 1;
        // Local and remote writes of the summary and the applied count.
        for q in 0..self.processes() {
            self.procs[q].summaries[g.index()][p.index()] = Some(new_summary.clone());
            self.procs[q].applied.set(p, method, n_applied);
        }
        self.trace.push(Label::Call { process: p, rid, update: update.clone() });
        for q in Pid::all(self.processes()).filter(|&q| q != p) {
            self.trace.push(Label::Prop { process: q, rid });
        }
        Ok(rid)
    }

    /// Rule FREE: an irreducible conflict-free call `u(v)` at `p`.
    ///
    /// Applies the call locally and appends it, with its dependency
    /// map, to the conflict-free buffer for `p` at every other process.
    ///
    /// # Errors
    ///
    /// [`SemError::WrongCategory`] or [`SemError::NotPermissible`].
    pub fn free(&mut self, p: impl Into<Pid>, update: O::Update) -> Result<Rid, SemError> {
        let p = p.into();
        self.check_pid(p)?;
        let method = self.spec.method_of(&update);
        if !self.coord.category(method).is_irreducible_free() {
            return Err(SemError::WrongCategory { method, rule: "FREE" });
        }
        self.issue_buffered(p, method, update, None)
    }

    /// Rule CONF: a conflicting call `u(v)` at the leader of its
    /// synchronization group.
    ///
    /// # Errors
    ///
    /// [`SemError::WrongCategory`], [`SemError::NotLeader`], or
    /// [`SemError::NotPermissible`].
    pub fn conf(&mut self, p: impl Into<Pid>, update: O::Update) -> Result<Rid, SemError> {
        let p = p.into();
        self.check_pid(p)?;
        let method = self.spec.method_of(&update);
        let g = match self.coord.category(method) {
            MethodCategory::Conflicting { sync_group } => sync_group,
            _ => return Err(SemError::WrongCategory { method, rule: "CONF" }),
        };
        let leader = self.leaders[g.index()];
        if leader != p {
            return Err(SemError::NotLeader { process: p, group: g, leader });
        }
        self.issue_buffered(p, method, update, Some(g))
    }

    /// Shared body of FREE and CONF: check permissibility against
    /// `Apply(S)(u(v)(σ))`, apply locally, advance `A`, and append the
    /// call with its dependency projection to the remote buffers.
    fn issue_buffered(
        &mut self,
        p: Pid,
        method: crate::ids::MethodId,
        update: O::Update,
        conf_group: Option<GroupId>,
    ) -> Result<Rid, SemError> {
        let sigma_post = self.spec.apply(&self.procs[p.index()].sigma, &update);
        // I(Apply(S_j)(σ'_j)).
        let mut check = sigma_post.clone();
        for group in &self.procs[p.index()].summaries {
            for slot in group.iter().flatten() {
                check = self.spec.apply(&check, slot);
            }
        }
        if !self.spec.invariant(&check) {
            return Err(SemError::NotPermissible { process: p, method });
        }
        // D = A_j | Dep(u), projected before advancing A for this call.
        let deps = self.procs[p.index()].applied.project(self.coord.dependencies(method));
        let rid = self.mint_rid(p);
        self.procs[p.index()].sigma = sigma_post;
        self.procs[p.index()].applied.increment(p, method);
        let entry = BufferedCall { rid, update: update.clone(), deps };
        for q in 0..self.processes() {
            if q == p.index() {
                continue;
            }
            match conf_group {
                None => self.procs[q].free_bufs[p.index()].push_back(entry.clone()),
                Some(g) => self.procs[q].conf_bufs[g.index()].push_back(entry.clone()),
            }
        }
        self.trace.push(Label::Call { process: p, rid, update });
        Ok(rid)
    }

    /// Rule FREE-APP: apply the head of the conflict-free buffer that
    /// `p` stores for `src`, provided its dependency map is satisfied
    /// (`D ≤ A`).
    ///
    /// # Errors
    ///
    /// [`SemError::EmptyBuffer`] or
    /// [`SemError::DependencyNotSatisfied`].
    pub fn free_app(&mut self, p: Pid, src: Pid) -> Result<Rid, SemError> {
        self.check_pid(p)?;
        self.check_pid(src)?;
        let proc = &mut self.procs[p.index()];
        let entry = proc.free_bufs[src.index()]
            .front()
            .cloned()
            .ok_or(SemError::EmptyBuffer { process: p })?;
        Self::apply_buffered(self.spec, proc, p, &entry)?;
        self.procs[p.index()].free_bufs[src.index()].pop_front();
        self.trace.push(Label::Prop { process: p, rid: entry.rid });
        Ok(entry.rid)
    }

    /// Rule CONF-APP: apply the head of the conflicting buffer for
    /// synchronization group `g` at `p`, provided `D ≤ A`.
    ///
    /// # Errors
    ///
    /// [`SemError::EmptyBuffer`] or
    /// [`SemError::DependencyNotSatisfied`].
    pub fn conf_app(&mut self, p: Pid, g: GroupId) -> Result<Rid, SemError> {
        self.check_pid(p)?;
        let proc = &mut self.procs[p.index()];
        let entry = proc.conf_bufs[g.index()]
            .front()
            .cloned()
            .ok_or(SemError::EmptyBuffer { process: p })?;
        Self::apply_buffered(self.spec, proc, p, &entry)?;
        self.procs[p.index()].conf_bufs[g.index()].pop_front();
        self.trace.push(Label::Prop { process: p, rid: entry.rid });
        Ok(entry.rid)
    }

    fn apply_buffered(
        spec: &O,
        proc: &mut ProcState<O>,
        p: Pid,
        entry: &BufferedCall<O::Update>,
    ) -> Result<(), SemError> {
        if let Some((dp, du, _)) = proc.applied.first_unsatisfied(&entry.deps) {
            return Err(SemError::DependencyNotSatisfied {
                process: p,
                dep_process: dp,
                dep_method: du,
            });
        }
        proc.sigma = spec.apply(&proc.sigma, &entry.update);
        proc.applied.increment(entry.rid.issuer, spec.method_of(&entry.update));
        Ok(())
    }

    /// Rule QUERY: execute a query at `p` against `Apply(S_p)(σ_p)`.
    pub fn query(&mut self, p: impl Into<Pid>, q: &O::Query) -> O::Reply {
        let p = p.into();
        let sigma = self.current_state(p);
        self.trace.push(Label::Query { process: p });
        self.spec.query(&sigma, q)
    }

    /// Issue a call through whichever rule its category demands; for
    /// conflicting methods the call is redirected to the group leader,
    /// as the runtime does (§5 "Platform and setup").
    ///
    /// # Errors
    ///
    /// As the underlying rule.
    pub fn issue(&mut self, p: impl Into<Pid>, update: O::Update) -> Result<Rid, SemError> {
        let p = p.into();
        let method = self.spec.method_of(&update);
        match self.coord.category(method) {
            MethodCategory::Reducible { .. } => self.reduce(p, update),
            MethodCategory::IrreducibleFree => self.free(p, update),
            MethodCategory::Conflicting { sync_group } => {
                let leader = self.leaders[sync_group.index()];
                self.conf(leader, update)
            }
        }
    }

    /// Drain every buffer at every process, applying entries whose
    /// dependencies are satisfied, until a fixpoint. Returns the number
    /// of calls applied.
    pub fn drain(&mut self) -> usize {
        let mut applied = 0;
        loop {
            let mut progressed = false;
            for p in 0..self.processes() {
                for src in 0..self.processes() {
                    while self.free_app(Pid(p), Pid(src)).is_ok() {
                        applied += 1;
                        progressed = true;
                    }
                }
                for g in 0..self.coord.sync_groups().len() {
                    while self.conf_app(Pid(p), GroupId(g)).is_ok() {
                        applied += 1;
                        progressed = true;
                    }
                }
            }
            if !progressed {
                return applied;
            }
        }
    }

    /// Whether all `F` and `L` buffers are empty at every process.
    pub fn buffers_empty(&self) -> bool {
        self.procs.iter().all(|pr| {
            pr.free_bufs.iter().all(VecDeque::is_empty)
                && pr.conf_bufs.iter().all(VecDeque::is_empty)
        })
    }

    /// Corollary 1 (Integrity): `I(Apply(S_i)(σ_i))` for every process.
    pub fn check_integrity(&self) -> bool {
        (0..self.processes()).all(|p| self.spec.invariant(&self.current_state(Pid(p))))
    }

    /// Corollary 2 (Convergence): with all buffers empty, the current
    /// states of all processes coincide.
    ///
    /// Returns `true` vacuously when buffers are non-empty.
    pub fn check_convergence(&self) -> bool {
        if !self.buffers_empty() {
            return true;
        }
        let s0 = self.current_state(Pid(0));
        (1..self.processes()).all(|p| self.current_state(Pid(p)) == s0)
    }
}

impl<'a, O: ObjectSpec> Clone for RdmaWrdt<'a, O> {
    fn clone(&self) -> Self {
        RdmaWrdt {
            spec: self.spec,
            coord: self.coord,
            leaders: self.leaders.clone(),
            procs: self.procs.clone(),
            next_seq: self.next_seq.clone(),
            trace: self.trace.clone(),
        }
    }
}

impl<O: ObjectSpec> std::fmt::Debug for RdmaWrdt<'_, O> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RdmaWrdt")
            .field("object", &self.spec.name())
            .field("processes", &self.processes())
            .field("leaders", &self.leaders)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::demo::{Account, AccountQuery};

    fn setup() -> (Account, CoordSpec) {
        let acc = Account::default();
        let coord = acc.coord_spec();
        (acc, coord)
    }

    #[test]
    fn reduce_updates_all_summaries_atomically() {
        let (acc, coord) = setup();
        let mut k = RdmaWrdt::new(&acc, &coord, 3);
        k.reduce(1, Account::deposit(5)).unwrap();
        k.reduce(1, Account::deposit(7)).unwrap();
        for p in Pid::all(3) {
            assert_eq!(k.current_state(p), 12);
        }
        // Two calls collapsed into one summary slot.
        assert!(k.buffers_empty());
    }

    #[test]
    fn reduce_rejects_wrong_category() {
        let (acc, coord) = setup();
        let mut k = RdmaWrdt::new(&acc, &coord, 2);
        assert!(matches!(
            k.reduce(0, Account::withdraw(1)).unwrap_err(),
            SemError::WrongCategory { rule: "REDUCE", .. }
        ));
    }

    #[test]
    fn conf_requires_leader() {
        let (acc, coord) = setup();
        let mut k = RdmaWrdt::new(&acc, &coord, 3);
        k.reduce(0, Account::deposit(10)).unwrap();
        let err = k.conf(1, Account::withdraw(5)).unwrap_err();
        assert!(matches!(err, SemError::NotLeader { leader: Pid(0), .. }));
        k.conf(0, Account::withdraw(5)).unwrap();
    }

    #[test]
    fn conf_app_applies_ordered_calls() {
        let (acc, coord) = setup();
        let mut k = RdmaWrdt::new(&acc, &coord, 2);
        k.reduce(0, Account::deposit(10)).unwrap();
        k.conf(0, Account::withdraw(4)).unwrap();
        assert_eq!(k.conf_buffer(Pid(1), GroupId(0)).len(), 1);
        k.conf_app(Pid(1), GroupId(0)).unwrap();
        assert_eq!(k.current_state(Pid(1)), 6);
        assert!(k.buffers_empty());
        assert!(k.check_convergence());
    }

    #[test]
    fn dependency_blocks_buffer_application() {
        // A withdraw shipped with a dependency on deposits cannot be
        // applied before those deposits are visible. With reducible
        // deposits the summary write is atomic in this semantics, so
        // force the scenario through the dependency map directly: issue
        // deposits as summaries, then tamper-check via an account where
        // deposit is buffered. Here we exercise the simpler direction:
        // the dependency map of a withdraw covering prior deposits is
        // satisfied because REDUCE advanced A everywhere.
        let (acc, coord) = setup();
        let mut k = RdmaWrdt::new(&acc, &coord, 2);
        k.reduce(0, Account::deposit(10)).unwrap();
        k.conf(0, Account::withdraw(10)).unwrap();
        // The withdraw depends on one deposit from p0; p1 has it.
        assert!(k.conf_app(Pid(1), GroupId(0)).is_ok());
        assert_eq!(k.current_state(Pid(1)), 0);
        assert!(k.check_integrity());
    }

    #[test]
    fn impermissible_conf_rejected_at_leader() {
        let (acc, coord) = setup();
        let mut k = RdmaWrdt::new(&acc, &coord, 2);
        assert!(matches!(
            k.conf(0, Account::withdraw(1)).unwrap_err(),
            SemError::NotPermissible { .. }
        ));
    }

    #[test]
    fn query_sees_summaries() {
        let (acc, coord) = setup();
        let mut k = RdmaWrdt::new(&acc, &coord, 2);
        k.reduce(1, Account::deposit(9)).unwrap();
        assert_eq!(k.query(0, &AccountQuery::Balance), 9);
    }

    #[test]
    fn issue_routes_by_category() {
        let (acc, coord) = setup();
        let mut k = RdmaWrdt::new(&acc, &coord, 3);
        k.issue(2, Account::deposit(10)).unwrap();
        // withdraw issued anywhere lands at the leader (p0).
        k.issue(2, Account::withdraw(3)).unwrap();
        k.drain();
        for p in Pid::all(3) {
            assert_eq!(k.current_state(p), 7);
        }
        assert!(k.check_convergence());
        assert!(k.check_integrity());
    }

    #[test]
    fn drain_reaches_convergence() {
        let (acc, coord) = setup();
        let mut k = RdmaWrdt::new(&acc, &coord, 4);
        for p in 0..4 {
            k.reduce(p, Account::deposit(5)).unwrap();
        }
        k.conf(0, Account::withdraw(20)).unwrap();
        let applied = k.drain();
        assert_eq!(applied, 3); // withdraw applied at 3 followers
        assert!(k.buffers_empty());
        for p in Pid::all(4) {
            assert_eq!(k.current_state(p), 0);
        }
    }

    #[test]
    fn empty_buffer_app_rejected() {
        let (acc, coord) = setup();
        let mut k = RdmaWrdt::new(&acc, &coord, 2);
        assert!(matches!(
            k.free_app(Pid(0), Pid(1)).unwrap_err(),
            SemError::EmptyBuffer { .. }
        ));
        assert!(matches!(
            k.conf_app(Pid(0), GroupId(0)).unwrap_err(),
            SemError::EmptyBuffer { .. }
        ));
    }

    #[test]
    fn with_leaders_validates() {
        let (acc, coord) = setup();
        let k = RdmaWrdt::with_leaders(&acc, &coord, 3, vec![Pid(2)]);
        assert_eq!(k.leader(GroupId(0)), Pid(2));
    }

    #[test]
    #[should_panic(expected = "one leader per sync group")]
    fn wrong_leader_count_panics() {
        let (acc, coord) = setup();
        let _ = RdmaWrdt::with_leaders(&acc, &coord, 3, vec![]);
    }
}
