//! Error types reported by the executable semantics.

use std::error::Error;
use std::fmt;

use crate::ids::{GroupId, MethodId, Pid, Rid};

/// Why a transition of the abstract (Fig. 5) or concrete (Fig. 7)
/// semantics is not enabled.
///
/// The executable semantics are *checked*: attempting a transition whose
/// side conditions fail returns one of these variants instead of silently
/// corrupting the replicated state. Tests use the variants to assert that
/// ill-coordinated schedules are rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SemError {
    /// The call is not locally permissible: applying it would violate the
    /// integrity invariant `I` (condition `𝒫(σ, c)` of rule CALL).
    NotPermissible {
        /// The process at which the call was attempted.
        process: Pid,
        /// The method of the offending call.
        method: MethodId,
    },
    /// Condition `CallConfSync` of rule CALL failed: a conflicting call
    /// executed elsewhere has not yet been applied locally.
    ConflictSyncViolation {
        /// The process at which the call was attempted.
        process: Pid,
        /// The pending conflicting call.
        pending: Rid,
    },
    /// Condition `PropDep` of rule PROP failed: a dependency of the call
    /// has not yet been applied at the receiving process.
    DependencyViolation {
        /// The receiving process.
        process: Pid,
        /// The missing dependency.
        missing: Rid,
    },
    /// The call to propagate was not found in the source history.
    UnknownCall {
        /// The process whose history was searched.
        process: Pid,
        /// The request that was not found.
        rid: Rid,
    },
    /// The call was already applied at the receiving process.
    AlreadyApplied {
        /// The receiving process.
        process: Pid,
        /// The duplicated request.
        rid: Rid,
    },
    /// A category-specific rule was invoked on a method of a different
    /// category (e.g. REDUCE on a conflicting method).
    WrongCategory {
        /// The offending method.
        method: MethodId,
        /// The rule that was attempted.
        rule: &'static str,
    },
    /// Rule CONF was attempted at a process that is not the leader of the
    /// method's synchronization group.
    NotLeader {
        /// The process that attempted the call.
        process: Pid,
        /// The synchronization group of the method.
        group: GroupId,
        /// The actual leader of that group.
        leader: Pid,
    },
    /// Rules FREE-APP / CONF-APP: the buffer to apply from is empty.
    EmptyBuffer {
        /// The process whose buffer was traversed.
        process: Pid,
    },
    /// Rules FREE-APP / CONF-APP: the head call's dependency map `D` is
    /// not yet satisfied by the local applied map `A` (`D ≰ A`).
    DependencyNotSatisfied {
        /// The process whose buffer was traversed.
        process: Pid,
        /// The source process of the unsatisfied dependency entry.
        dep_process: Pid,
        /// The method of the unsatisfied dependency entry.
        dep_method: MethodId,
    },
    /// Two calls of a summarization group failed to summarize, violating
    /// the group's closure property.
    NotSummarizable {
        /// The method whose call failed to summarize.
        method: MethodId,
    },
    /// A process identifier was out of range for the cluster.
    NoSuchProcess {
        /// The offending identifier.
        process: Pid,
        /// The cluster size.
        cluster: usize,
    },
}

impl fmt::Display for SemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SemError::NotPermissible { process, method } => {
                write!(f, "call on {method} not permissible at {process}")
            }
            SemError::ConflictSyncViolation { process, pending } => write!(
                f,
                "conflict synchronization violated at {process}: {pending} not yet applied"
            ),
            SemError::DependencyViolation { process, missing } => write!(
                f,
                "dependency preservation violated at {process}: {missing} not yet applied"
            ),
            SemError::UnknownCall { process, rid } => {
                write!(f, "call {rid} not found in history of {process}")
            }
            SemError::AlreadyApplied { process, rid } => {
                write!(f, "call {rid} already applied at {process}")
            }
            SemError::WrongCategory { method, rule } => {
                write!(f, "rule {rule} not applicable to method {method}")
            }
            SemError::NotLeader { process, group, leader } => write!(
                f,
                "{process} is not the leader of {group} (leader is {leader})"
            ),
            SemError::EmptyBuffer { process } => {
                write!(f, "no applicable buffered call at {process}")
            }
            SemError::DependencyNotSatisfied { process, dep_process, dep_method } => write!(
                f,
                "dependency on {dep_method} from {dep_process} not satisfied at {process}"
            ),
            SemError::NotSummarizable { method } => {
                write!(f, "calls on {method} failed to summarize")
            }
            SemError::NoSuchProcess { process, cluster } => {
                write!(f, "{process} out of range for cluster of {cluster}")
            }
        }
    }
}

impl Error for SemError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_unpunctuated() {
        let errors = [
            SemError::NotPermissible { process: Pid(0), method: MethodId(1) },
            SemError::ConflictSyncViolation { process: Pid(0), pending: Rid::new(Pid(1), 3) },
            SemError::DependencyViolation { process: Pid(2), missing: Rid::new(Pid(0), 1) },
            SemError::UnknownCall { process: Pid(0), rid: Rid::new(Pid(0), 0) },
            SemError::AlreadyApplied { process: Pid(0), rid: Rid::new(Pid(0), 0) },
            SemError::WrongCategory { method: MethodId(0), rule: "REDUCE" },
            SemError::NotLeader { process: Pid(1), group: GroupId(0), leader: Pid(0) },
            SemError::EmptyBuffer { process: Pid(0) },
            SemError::DependencyNotSatisfied {
                process: Pid(0),
                dep_process: Pid(1),
                dep_method: MethodId(0),
            },
            SemError::NotSummarizable { method: MethodId(0) },
            SemError::NoSuchProcess { process: Pid(9), cluster: 3 },
        ];
        for e in errors {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(!s.ends_with('.'), "no trailing punctuation: {s}");
        }
    }

    #[test]
    fn error_trait_object_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SemError>();
    }
}
