//! The paper's running example: the replicated bank account of Fig. 1.
//!
//! State: the balance `b`, with the integrity invariant `I(b) = b ≥ 0`.
//! Update methods: `deposit(v)` and `withdraw(v)`; query: `balance()`.
//!
//! Coordination analysis (Fig. 1(b,c)):
//!
//! * `withdraw` 𝒫-conflicts with itself (two racing withdrawals can
//!   overdraft) — the conflict graph has a self-loop on `withdraw`;
//! * `withdraw` depends on `deposit` (a withdrawal covered by a local
//!   deposit may overdraft elsewhere if it overtakes that deposit);
//! * `deposit` is invariant-sufficient, conflict- and dependence-free,
//!   and summarizable (`deposit(a); deposit(b) ≡ deposit(a+b)`), hence
//!   **reducible**, while `withdraw` is **conflicting**.

use rand::rngs::StdRng;
use rand::Rng;

use crate::coord::CoordSpec;
use crate::ids::MethodId;
use crate::object::{ObjectSpec, SpecSampler, WorkloadSupport};
use crate::wire::{DecodeError, Reader, Wire, Writer};

/// Method index of `deposit`.
pub const DEPOSIT: MethodId = MethodId(0);
/// Method index of `withdraw`.
pub const WITHDRAW: MethodId = MethodId(1);

/// An update call on the account.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccountUpdate {
    /// `deposit(amount)`: add to the balance.
    Deposit(u64),
    /// `withdraw(amount)`: subtract from the balance.
    Withdraw(u64),
}

/// A query call on the account.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccountQuery {
    /// `balance()`: the current balance.
    Balance,
}

/// The bank account class of Fig. 1.
///
/// ```
/// use hamband_core::demo::Account;
/// use hamband_core::object::ObjectSpec;
///
/// let acc = Account::new(3);
/// let s = acc.apply(&acc.initial(), &Account::deposit(10));
/// assert_eq!(s, 10);
/// assert!(acc.permissible(&s, &Account::withdraw(10)));
/// assert!(!acc.permissible(&s, &Account::withdraw(11)));
/// ```
#[derive(Debug, Clone)]
pub struct Account {
    max_sample_amount: u64,
}

impl Account {
    /// An account class whose [`SpecSampler`] draws amounts in
    /// `1..=max_sample_amount`.
    pub fn new(max_sample_amount: u64) -> Self {
        assert!(max_sample_amount > 0, "sample amounts must be positive");
        Account { max_sample_amount }
    }

    /// Convenience constructor for a `deposit(amount)` call.
    pub fn deposit(amount: u64) -> AccountUpdate {
        AccountUpdate::Deposit(amount)
    }

    /// Convenience constructor for a `withdraw(amount)` call.
    pub fn withdraw(amount: u64) -> AccountUpdate {
        AccountUpdate::Withdraw(amount)
    }

    /// The coordination relations of Fig. 1(b,c).
    pub fn coord_spec(&self) -> CoordSpec {
        CoordSpec::builder(2)
            .conflict(WITHDRAW.index(), WITHDRAW.index())
            .depends(WITHDRAW.index(), DEPOSIT.index())
            .summarization_group([DEPOSIT.index()])
            .build()
    }
}

impl Default for Account {
    fn default() -> Self {
        Account::new(100)
    }
}

impl ObjectSpec for Account {
    type State = i128;
    type Update = AccountUpdate;
    type Query = AccountQuery;
    type Reply = i128;

    fn name(&self) -> &str {
        "account"
    }

    fn initial(&self) -> i128 {
        0
    }

    fn invariant(&self, state: &i128) -> bool {
        *state >= 0
    }

    fn apply(&self, state: &i128, call: &AccountUpdate) -> i128 {
        match *call {
            AccountUpdate::Deposit(v) => state + i128::from(v),
            AccountUpdate::Withdraw(v) => state - i128::from(v),
        }
    }

    fn query(&self, state: &i128, query: &AccountQuery) -> i128 {
        match query {
            AccountQuery::Balance => *state,
        }
    }

    fn method_names(&self) -> Vec<&'static str> {
        vec!["deposit", "withdraw"]
    }

    fn method_of(&self, call: &AccountUpdate) -> MethodId {
        match call {
            AccountUpdate::Deposit(_) => DEPOSIT,
            AccountUpdate::Withdraw(_) => WITHDRAW,
        }
    }

    fn summarize(&self, first: &AccountUpdate, second: &AccountUpdate) -> Option<AccountUpdate> {
        match (first, second) {
            (AccountUpdate::Deposit(a), AccountUpdate::Deposit(b)) => {
                Some(AccountUpdate::Deposit(a + b))
            }
            _ => None,
        }
    }
}

impl SpecSampler for Account {
    fn sample_state(&self, rng: &mut StdRng) -> i128 {
        i128::from(rng.gen_range(0..=self.max_sample_amount * 4))
    }

    fn sample_update_of(&self, method: MethodId, rng: &mut StdRng) -> AccountUpdate {
        let amount = rng.gen_range(1..=self.max_sample_amount);
        match method {
            DEPOSIT => AccountUpdate::Deposit(amount),
            WITHDRAW => AccountUpdate::Withdraw(amount),
            other => panic!("account has no method {other}"),
        }
    }
}

impl WorkloadSupport for Account {
    fn sample_query(&self, _rng: &mut StdRng) -> AccountQuery {
        AccountQuery::Balance
    }

    fn gen_update(
        &self,
        state: &i128,
        _node: usize,
        _seq: u64,
        method: MethodId,
        rng: &mut StdRng,
    ) -> Option<AccountUpdate> {
        match method {
            DEPOSIT => Some(AccountUpdate::Deposit(rng.gen_range(1..=self.max_sample_amount))),
            WITHDRAW => {
                // Withdraw at most half the locally visible balance, so
                // calls are usually permissible and a withdraw-heavy
                // workload can never drain the account to a standstill.
                if *state < 2 {
                    return None;
                }
                let cap = (*state / 2).min(i128::from(self.max_sample_amount)) as u64;
                Some(AccountUpdate::Withdraw(rng.gen_range(1..=cap)))
            }
            other => panic!("account has no method {other}"),
        }
    }
}

impl Wire for AccountUpdate {
    fn encode(&self, w: &mut Writer) {
        match *self {
            AccountUpdate::Deposit(v) => {
                w.u8(0);
                w.varint(v);
            }
            AccountUpdate::Withdraw(v) => {
                w.u8(1);
                w.varint(v);
            }
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        match r.u8()? {
            0 => Ok(AccountUpdate::Deposit(r.varint()?)),
            1 => Ok(AccountUpdate::Withdraw(r.varint()?)),
            _ => Err(DecodeError),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn deposit_then_withdraw_roundtrip() {
        let acc = Account::default();
        let s0 = acc.initial();
        assert!(acc.invariant(&s0));
        let s1 = acc.apply(&s0, &Account::deposit(7));
        let s2 = acc.apply(&s1, &Account::withdraw(7));
        assert_eq!(s2, 0);
        assert!(acc.invariant(&s2));
    }

    #[test]
    fn overdraft_violates_invariant() {
        let acc = Account::default();
        let s = acc.apply(&acc.initial(), &Account::withdraw(1));
        assert!(!acc.invariant(&s));
    }

    #[test]
    fn deposits_summarize_by_addition() {
        let acc = Account::default();
        assert_eq!(
            acc.summarize(&Account::deposit(3), &Account::deposit(4)),
            Some(Account::deposit(7))
        );
        assert_eq!(acc.summarize(&Account::deposit(3), &Account::withdraw(4)), None);
        assert_eq!(acc.summarize(&Account::withdraw(3), &Account::withdraw(4)), None);
    }

    #[test]
    fn summary_matches_composition() {
        // Summarize(c, c') must equal c' ∘ c on all states.
        let acc = Account::default();
        let c1 = Account::deposit(3);
        let c2 = Account::deposit(4);
        let c12 = acc.summarize(&c1, &c2).unwrap();
        for s in [0i128, 5, 100] {
            assert_eq!(acc.apply(&acc.apply(&s, &c1), &c2), acc.apply(&s, &c12));
        }
    }

    #[test]
    fn query_returns_balance() {
        let acc = Account::default();
        let s = acc.apply(&acc.initial(), &Account::deposit(42));
        assert_eq!(acc.query(&s, &AccountQuery::Balance), 42);
    }

    #[test]
    fn sampler_respects_bounds_and_invariant() {
        let acc = Account::new(10);
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..100 {
            let s = acc.sample_state(&mut rng);
            assert!(acc.invariant(&s));
            match acc.sample_update_of(DEPOSIT, &mut rng) {
                AccountUpdate::Deposit(v) => assert!((1..=10).contains(&v)),
                other => panic!("unexpected call {other:?}"),
            }
        }
    }

    #[test]
    fn method_of_is_consistent_with_names() {
        let acc = Account::default();
        assert_eq!(acc.method_names()[acc.method_of(&Account::deposit(1)).index()], "deposit");
        assert_eq!(acc.method_names()[acc.method_of(&Account::withdraw(1)).index()], "withdraw");
    }
}
