//! Executable versions of the coordination relations of §3.2.
//!
//! The paper defines the relations semantically, quantified over all
//! states:
//!
//! * **S-commutativity** — `c₁ ⇄ₛ c₂` iff `c₁ ∘ c₂ = c₂ ∘ c₁`;
//!   otherwise the calls *S-conflict*.
//! * **Permissibility** — `𝒫(σ, c)` iff `I(c(σ))`.
//! * **Invariant-sufficiency** — `c` is invariant-sufficient iff
//!   `I(σ) ⇒ 𝒫(σ, c)` for every `σ`.
//! * **𝒫-R-commutativity** — `c₁ ▷𝒫 c₂` iff
//!   `𝒫(σ, c₁) ⇒ 𝒫(c₂(σ), c₁)`.
//! * **𝒫-L-commutativity** — `c₂ ◁𝒫 c₁` iff
//!   `𝒫(c₁(σ), c₂) ⇒ 𝒫(σ, c₂)`.
//! * **𝒫-concurrence / conflict / dependency** — the derived notions.
//!
//! The universal quantification over `Σ` is undecidable in general, so
//! this module provides *per-state* checks (exact, used as building
//! blocks) and *bounded* checks that sample states through a
//! [`SpecSampler`]. Bounded checks are sound for *refuting* a relation
//! (a found counterexample is real) and best-effort for confirming it —
//! exactly the role they play in [`crate::analysis`].
//!
//! One refinement over a literal reading of the definitions: the
//! quantification is evaluated over *coordination-relevant*
//! configurations — states satisfying the invariant in which both
//! calls are individually permissible. Well-coordination only ever
//! reorders calls that were locally permissible where they executed
//! (rule CALL checks `𝒫(σ, c)` first), so counterexamples built from
//! impermissible calls or invariant-violating states can never arise
//! in an execution. This conditioning is also what makes the paper's
//! own §2 classification come out: the multi-account bank's `deposit`
//! is conflict-free even though a deposit after an *impermissible*
//! withdraw would inherit the latter's violation.

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::object::{ObjectSpec, SpecSampler};

/// Per-state S-commutativity: do `c1` and `c2` commute on `state`?
pub fn s_commute_on<O: ObjectSpec>(
    spec: &O,
    state: &O::State,
    c1: &O::Update,
    c2: &O::Update,
) -> bool {
    let a = spec.apply(&spec.apply(state, c1), c2);
    let b = spec.apply(&spec.apply(state, c2), c1);
    a == b
}

/// Per-state invariant-sufficiency: `I(state) ⇒ 𝒫(state, c)`.
pub fn invariant_sufficient_on<O: ObjectSpec>(spec: &O, state: &O::State, c: &O::Update) -> bool {
    !spec.invariant(state) || spec.permissible(state, c)
}

/// Per-state 𝒫-R-commutativity: over states with integrity where both
/// calls are permissible, `𝒫(σ, c1) ⇒ 𝒫(c2(σ), c1)` (see module docs
/// for the conditioning).
pub fn p_r_commutes_on<O: ObjectSpec>(
    spec: &O,
    state: &O::State,
    c1: &O::Update,
    c2: &O::Update,
) -> bool {
    let relevant = spec.invariant(state)
        && spec.permissible(state, c1)
        && spec.permissible(state, c2);
    !relevant || spec.permissible(&spec.apply(state, c2), c1)
}

/// Per-state 𝒫-L-commutativity: over states with integrity where `c1`
/// is permissible, `𝒫(c1(σ), c2) ⇒ 𝒫(σ, c2)` (see module docs for the
/// conditioning).
pub fn p_l_commutes_on<O: ObjectSpec>(
    spec: &O,
    state: &O::State,
    c2: &O::Update,
    c1: &O::Update,
) -> bool {
    let relevant = spec.invariant(state)
        && spec.permissible(state, c1)
        && spec.permissible(&spec.apply(state, c1), c2);
    !relevant || spec.permissible(state, c2)
}

/// A bounded checker for the quantified relations, sampling states and
/// calls through a [`SpecSampler`].
///
/// ```
/// use hamband_core::demo::Account;
/// use hamband_core::relations::BoundedRelations;
///
/// let acc = Account::new(20);
/// let rel = BoundedRelations::new(&acc, 0xa11ce, 200);
/// // Deposits are invariant-sufficient; withdrawals are not.
/// assert!(rel.invariant_sufficient(&Account::deposit(5)));
/// assert!(!rel.invariant_sufficient(&Account::withdraw(5)));
/// // Two withdrawals 𝒫-conflict; they do not S-conflict.
/// assert!(rel.conflict(&Account::withdraw(5), &Account::withdraw(5)));
/// assert!(!rel.s_conflict(&Account::withdraw(5), &Account::withdraw(5)));
/// // A withdraw is dependent on a deposit.
/// assert!(rel.dependent(&Account::withdraw(5), &Account::deposit(5)));
/// ```
#[derive(Debug)]
pub struct BoundedRelations<'a, O> {
    spec: &'a O,
    seed: u64,
    samples: usize,
}

impl<'a, O: SpecSampler> BoundedRelations<'a, O> {
    /// A checker drawing `samples` states per query from a deterministic
    /// stream seeded with `seed`.
    pub fn new(spec: &'a O, seed: u64, samples: usize) -> Self {
        assert!(samples > 0, "need at least one sample");
        BoundedRelations { spec, seed, samples }
    }

    fn states(&self) -> impl Iterator<Item = O::State> + '_ {
        let mut rng = StdRng::seed_from_u64(self.seed);
        (0..self.samples).map(move |_| self.spec.sample_state(&mut rng))
    }

    /// Bounded `c1 ⇄ₛ c2`: no sampled state distinguishes the two
    /// application orders.
    pub fn s_commute(&self, c1: &O::Update, c2: &O::Update) -> bool {
        self.states().all(|s| s_commute_on(self.spec, &s, c1, c2))
    }

    /// Bounded S-conflict: a sampled state witnesses non-commutation.
    pub fn s_conflict(&self, c1: &O::Update, c2: &O::Update) -> bool {
        !self.s_commute(c1, c2)
    }

    /// Bounded invariant-sufficiency of a call.
    pub fn invariant_sufficient(&self, c: &O::Update) -> bool {
        self.states().all(|s| invariant_sufficient_on(self.spec, &s, c))
    }

    /// Bounded `c1 ▷𝒫 c2`.
    pub fn p_r_commutes(&self, c1: &O::Update, c2: &O::Update) -> bool {
        self.states().all(|s| p_r_commutes_on(self.spec, &s, c1, c2))
    }

    /// Bounded `c2 ◁𝒫 c1`.
    pub fn p_l_commutes(&self, c2: &O::Update, c1: &O::Update) -> bool {
        self.states().all(|s| p_l_commutes_on(self.spec, &s, c2, c1))
    }

    /// `c1` 𝒫-concurs with `c2`: invariant-sufficient or `c1 ▷𝒫 c2`.
    pub fn p_concurs(&self, c1: &O::Update, c2: &O::Update) -> bool {
        self.invariant_sufficient(c1) || self.p_r_commutes(c1, c2)
    }

    /// `c1` and `c2` *concur*: they S-commute and mutually 𝒫-concur.
    /// Otherwise they **conflict** and need synchronization.
    pub fn conflict(&self, c1: &O::Update, c2: &O::Update) -> bool {
        !(self.s_commute(c1, c2) && self.p_concurs(c1, c2) && self.p_concurs(c2, c1))
    }

    /// `c2 ⊥ c1` (independence): invariant-sufficient or `c2 ◁𝒫 c1`.
    pub fn independent(&self, c2: &O::Update, c1: &O::Update) -> bool {
        self.invariant_sufficient(c2) || self.p_l_commutes(c2, c1)
    }

    /// `c2 ⊥̸ c1`: `c2` is **dependent** on `c1`.
    pub fn dependent(&self, c2: &O::Update, c1: &O::Update) -> bool {
        !self.independent(c2, c1)
    }

    /// Bounded summarization soundness: `Summarize(c, c')` (if defined)
    /// agrees with `c' ∘ c` on every sampled state.
    pub fn summary_sound(&self, c1: &O::Update, c2: &O::Update) -> bool {
        match self.spec.summarize(c1, c2) {
            None => true,
            Some(sum) => self.states().all(|s| {
                self.spec.apply(&self.spec.apply(&s, c1), c2) == self.spec.apply(&s, &sum)
            }),
        }
    }

    /// The object specification under check.
    pub fn spec(&self) -> &'a O {
        self.spec
    }

    /// Number of sampled states per query.
    pub fn samples(&self) -> usize {
        self.samples
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::demo::Account;

    fn rel(acc: &Account) -> BoundedRelations<'_, Account> {
        BoundedRelations::new(acc, 42, 300)
    }

    #[test]
    fn deposits_commute_and_are_sufficient() {
        let acc = Account::new(50);
        let r = rel(&acc);
        let d1 = Account::deposit(3);
        let d2 = Account::deposit(9);
        assert!(r.s_commute(&d1, &d2));
        assert!(r.invariant_sufficient(&d1));
        assert!(!r.conflict(&d1, &d2));
        assert!(r.independent(&d1, &d2));
    }

    #[test]
    fn withdrawals_p_conflict() {
        let acc = Account::new(50);
        let r = rel(&acc);
        let w1 = Account::withdraw(30);
        let w2 = Account::withdraw(40);
        // Withdrawals S-commute (subtraction commutes)...
        assert!(r.s_commute(&w1, &w2));
        // ...but are neither invariant-sufficient nor 𝒫-R-commutative.
        assert!(!r.invariant_sufficient(&w1));
        assert!(!r.p_r_commutes(&w1, &w2));
        assert!(r.conflict(&w1, &w2));
    }

    #[test]
    fn withdraw_depends_on_deposit_not_vice_versa() {
        let acc = Account::new(50);
        let r = rel(&acc);
        let w = Account::withdraw(30);
        let d = Account::deposit(30);
        assert!(r.dependent(&w, &d));
        assert!(r.independent(&d, &w));
    }

    #[test]
    fn deposit_does_not_conflict_with_withdraw() {
        // deposit is invariant-sufficient and S-commutes with withdraw;
        // withdraw 𝒫-R-commutes with deposit (extra funds never hurt).
        let acc = Account::new(50);
        let r = rel(&acc);
        let w = Account::withdraw(30);
        let d = Account::deposit(5);
        assert!(r.p_r_commutes(&w, &d));
        assert!(!r.conflict(&d, &w));
    }

    #[test]
    fn deposit_summaries_are_sound() {
        let acc = Account::new(50);
        let r = rel(&acc);
        assert!(r.summary_sound(&Account::deposit(3), &Account::deposit(4)));
        assert!(r.summary_sound(&Account::deposit(3), &Account::withdraw(4)));
    }

    #[test]
    fn per_state_checks_agree_with_definitions() {
        let acc = Account::new(50);
        let s = 10i128;
        assert!(s_commute_on(&acc, &s, &Account::deposit(1), &Account::withdraw(1)));
        assert!(invariant_sufficient_on(&acc, &s, &Account::deposit(1)));
        assert!(!invariant_sufficient_on(&acc, &s, &Account::withdraw(11)));
        // Broke state: implication holds vacuously.
        assert!(invariant_sufficient_on(&acc, &(-5i128), &Account::withdraw(11)));
        assert!(p_r_commutes_on(&acc, &s, &Account::withdraw(5), &Account::deposit(1)));
        assert!(!p_r_commutes_on(&acc, &s, &Account::withdraw(10), &Account::withdraw(1)));
        assert!(p_l_commutes_on(&acc, &s, &Account::deposit(1), &Account::deposit(2)));
        assert!(!p_l_commutes_on(&acc, &(0i128), &Account::withdraw(3), &Account::deposit(5)));
    }

    #[test]
    #[should_panic(expected = "need at least one sample")]
    fn zero_samples_panics() {
        let acc = Account::new(50);
        let _ = BoundedRelations::new(&acc, 0, 0);
    }
}
