//! Small undirected-graph utilities: the conflict graph and its
//! connected components (synchronization groups).
//!
//! §3.3 of the paper: "The conflict relation on methods induces an
//! undirected graph that we call the conflict graph. The synchronization
//! group of a method is the connected component of the method in the
//! conflict graph."

/// An undirected graph over `n` densely numbered vertices.
///
/// ```
/// use hamband_core::graph::UndirectedGraph;
/// let mut g = UndirectedGraph::new(4);
/// g.add_edge(0, 1);
/// g.add_edge(2, 2); // self-loop (e.g. withdraw conflicts with itself)
/// let comps = g.components_with_edges();
/// assert_eq!(comps, vec![vec![0, 1], vec![2]]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UndirectedGraph {
    n: usize,
    adj: Vec<Vec<usize>>,
    /// Vertices that carry at least one edge (including self-loops).
    touched: Vec<bool>,
    /// Vertices with a self-loop.
    looped: Vec<bool>,
}

impl UndirectedGraph {
    /// An edgeless graph over `n` vertices.
    pub fn new(n: usize) -> Self {
        UndirectedGraph {
            n,
            adj: vec![Vec::new(); n],
            touched: vec![false; n],
            looped: vec![false; n],
        }
    }

    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the graph has no vertices.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Add the undirected edge `{a, b}`. Self-loops (`a == b`) are
    /// allowed and mark the vertex as conflicting with itself.
    ///
    /// # Panics
    ///
    /// Panics if `a` or `b` is out of range.
    pub fn add_edge(&mut self, a: usize, b: usize) {
        assert!(a < self.n && b < self.n, "vertex out of range");
        self.touched[a] = true;
        self.touched[b] = true;
        if a == b {
            self.looped[a] = true;
        } else if !self.adj[a].contains(&b) {
            self.adj[a].push(b);
            self.adj[b].push(a);
        }
    }

    /// Whether vertex `v` carries at least one edge (possibly a
    /// self-loop). In conflict-graph terms: whether the method is
    /// *conflicting*.
    pub fn has_edges(&self, v: usize) -> bool {
        self.touched[v]
    }

    /// Whether `a` and `b` are adjacent (self-loops count as adjacency
    /// of a vertex with itself).
    pub fn adjacent(&self, a: usize, b: usize) -> bool {
        if a == b {
            self.looped[a]
        } else {
            self.adj[a].contains(&b)
        }
    }

    /// The connected components restricted to vertices that carry at
    /// least one edge, each sorted ascending, ordered by their smallest
    /// vertex. These are exactly the paper's synchronization groups.
    pub fn components_with_edges(&self) -> Vec<Vec<usize>> {
        let mut seen = vec![false; self.n];
        let mut comps = Vec::new();
        for start in 0..self.n {
            if seen[start] || !self.touched[start] {
                continue;
            }
            let mut comp = Vec::new();
            let mut stack = vec![start];
            seen[start] = true;
            while let Some(v) = stack.pop() {
                comp.push(v);
                for &w in &self.adj[v] {
                    if !seen[w] {
                        seen[w] = true;
                        stack.push(w);
                    }
                }
            }
            comp.sort_unstable();
            comps.push(comp);
        }
        comps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_graph_has_no_components() {
        let g = UndirectedGraph::new(5);
        assert!(g.components_with_edges().is_empty());
        assert_eq!(g.len(), 5);
        assert!(!g.is_empty());
        assert!(UndirectedGraph::new(0).is_empty());
    }

    #[test]
    fn self_loop_forms_singleton_component() {
        // The bank account: withdraw conflicts with itself, deposit free.
        let mut g = UndirectedGraph::new(2);
        g.add_edge(1, 1);
        assert!(g.has_edges(1));
        assert!(!g.has_edges(0));
        assert_eq!(g.components_with_edges(), vec![vec![1]]);
    }

    #[test]
    fn chain_is_one_component() {
        let mut g = UndirectedGraph::new(5);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g.add_edge(3, 4);
        assert_eq!(g.components_with_edges(), vec![vec![0, 1, 2], vec![3, 4]]);
    }

    #[test]
    fn duplicate_edges_are_idempotent() {
        let mut g = UndirectedGraph::new(3);
        g.add_edge(0, 1);
        g.add_edge(1, 0);
        g.add_edge(0, 1);
        assert_eq!(g.components_with_edges(), vec![vec![0, 1]]);
        assert!(g.adjacent(0, 1));
        assert!(g.adjacent(1, 0));
        assert!(!g.adjacent(0, 2));
    }

    #[test]
    #[should_panic(expected = "vertex out of range")]
    fn out_of_range_edge_panics() {
        let mut g = UndirectedGraph::new(2);
        g.add_edge(0, 2);
    }

    #[test]
    fn two_sync_groups_like_movie_schema() {
        // Movie: {addCustomer, deleteCustomer} and {addMovie, deleteMovie}.
        let mut g = UndirectedGraph::new(4);
        g.add_edge(0, 1);
        g.add_edge(1, 1);
        g.add_edge(2, 3);
        g.add_edge(3, 3);
        assert_eq!(g.components_with_edges(), vec![vec![0, 1], vec![2, 3]]);
    }
}
