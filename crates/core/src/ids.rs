//! Identifier newtypes shared across the model: processes, requests,
//! methods, and groups.
//!
//! These correspond to the basic syntax of Fig. 3 in the paper: a process
//! `p : P`, a request identifier `r : R`, an update method `u : U`, and —
//! for the concrete semantics of Fig. 7 — a method group `g : G`.

use std::fmt;

/// A replica process identifier (`p : P` in the paper).
///
/// Processes are numbered densely from `0` to `|P| - 1`.
///
/// ```
/// use hamband_core::ids::Pid;
/// let p = Pid(2);
/// assert_eq!(p.index(), 2);
/// assert_eq!(p.to_string(), "p2");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Pid(pub usize);

impl Pid {
    /// The dense index of this process, usable for `Vec` indexing.
    pub fn index(self) -> usize {
        self.0
    }

    /// Iterate over all process identifiers of a cluster of size `n`.
    ///
    /// ```
    /// use hamband_core::ids::Pid;
    /// let all: Vec<Pid> = Pid::all(3).collect();
    /// assert_eq!(all, vec![Pid(0), Pid(1), Pid(2)]);
    /// ```
    pub fn all(n: usize) -> impl Iterator<Item = Pid> {
        (0..n).map(Pid)
    }
}

impl fmt::Display for Pid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl From<usize> for Pid {
    fn from(i: usize) -> Self {
        Pid(i)
    }
}

/// A globally unique request identifier (`r : R` in the paper).
///
/// Uniqueness is achieved by pairing the issuing process with a local
/// sequence number, so replicas can mint identifiers without
/// coordination.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Rid {
    /// The process that issued the request.
    pub issuer: Pid,
    /// The issuer-local sequence number.
    pub seq: u64,
}

impl Rid {
    /// Create a request identifier for the `seq`-th request of `issuer`.
    pub fn new(issuer: Pid, seq: u64) -> Self {
        Rid { issuer, seq }
    }
}

impl fmt::Display for Rid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}#{}", self.issuer, self.seq)
    }
}

/// An update-method identifier (`u : U` in the paper).
///
/// Methods of an object are numbered densely in the order returned by
/// [`crate::object::ObjectSpec::method_names`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct MethodId(pub usize);

impl MethodId {
    /// The dense index of this method.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for MethodId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "u{}", self.0)
    }
}

impl From<usize> for MethodId {
    fn from(i: usize) -> Self {
        MethodId(i)
    }
}

/// A method-group identifier (`g : G` in Fig. 6).
///
/// Identifies either a *synchronization group* (a connected component of
/// the conflict graph) or a *summarization group*, depending on context.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct GroupId(pub usize);

impl GroupId {
    /// The dense index of this group.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for GroupId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "g{}", self.0)
    }
}

impl From<usize> for GroupId {
    fn from(i: usize) -> Self {
        GroupId(i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pid_roundtrip_and_display() {
        let p: Pid = 4.into();
        assert_eq!(p.index(), 4);
        assert_eq!(format!("{p}"), "p4");
    }

    #[test]
    fn pid_all_enumerates_cluster() {
        assert_eq!(Pid::all(0).count(), 0);
        assert_eq!(Pid::all(5).count(), 5);
        assert_eq!(Pid::all(2).collect::<Vec<_>>(), vec![Pid(0), Pid(1)]);
    }

    #[test]
    fn rid_uniqueness_by_pair() {
        let a = Rid::new(Pid(0), 1);
        let b = Rid::new(Pid(1), 1);
        let c = Rid::new(Pid(0), 2);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a, Rid::new(Pid(0), 1));
        assert_eq!(format!("{a}"), "p0#1");
    }

    #[test]
    fn rid_orders_by_issuer_then_seq() {
        let mut v = vec![Rid::new(Pid(1), 0), Rid::new(Pid(0), 9), Rid::new(Pid(0), 1)];
        v.sort();
        assert_eq!(
            v,
            vec![Rid::new(Pid(0), 1), Rid::new(Pid(0), 9), Rid::new(Pid(1), 0)]
        );
    }

    #[test]
    fn method_and_group_display() {
        assert_eq!(MethodId(3).to_string(), "u3");
        assert_eq!(GroupId(0).to_string(), "g0");
        assert_eq!(MethodId::from(7).index(), 7);
        assert_eq!(GroupId::from(7).index(), 7);
    }
}
