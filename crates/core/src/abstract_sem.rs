//! The abstract operational semantics of well-coordinated replicated
//! data types — Fig. 5 of the paper (rules CALL, PROP, QUERY).
//!
//! The semantic state is `W = ⟨ss, xs⟩`: the replicated state `ss`
//! (a state `σ` per process) and the replicated execution `xs`
//! (a history — a sequence of update calls — per process).
//!
//! The rules enforce the three well-coordination conditions of §2:
//!
//! 1. **local permissibility** — rule CALL checks `𝒫(σ, c)`;
//! 2. **conflict synchronization** — conditions `CallConfSync` /
//!    `PropConfSync` keep every pair of conflicting calls in the same
//!    order across processes;
//! 3. **dependency preservation** — condition `PropDep` applies a call
//!    only after the calls it depends on (and succeeded in its issuing
//!    process) have been applied.
//!
//! The struct [`AbstractWrdt`] is an *executable, checked* version of the
//! semantics: attempting a transition whose side conditions fail returns
//! a [`SemError`] and leaves the state unchanged. The paper's guarantees
//! are exposed as runtime checkers: [`AbstractWrdt::check_integrity`]
//! (Lemma 1) and [`AbstractWrdt::check_convergence`] (Lemma 2).

use std::collections::BTreeSet;

use crate::coord::CoordSpec;
use crate::error::SemError;
use crate::ids::{Pid, Rid};
use crate::object::ObjectSpec;
use crate::trace::{Label, Trace};

/// An update call together with its decorations `u(v)_{p,r}` (Fig. 3).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecoratedCall<U> {
    /// The unique request identifier (which also names the issuer).
    pub rid: Rid,
    /// The call `u(v)`.
    pub update: U,
}

/// The abstract WRDT semantics of Fig. 5, replicated over `n` processes.
///
/// See the [crate-level example](crate) for typical usage.
pub struct AbstractWrdt<'a, O: ObjectSpec> {
    spec: &'a O,
    coord: &'a CoordSpec,
    states: Vec<O::State>,
    histories: Vec<Vec<DecoratedCall<O::Update>>>,
    applied: Vec<BTreeSet<Rid>>,
    next_seq: Vec<u64>,
    trace: Trace<O::Update>,
}

impl<'a, O: ObjectSpec> AbstractWrdt<'a, O> {
    /// The initial configuration `W₀`: every process holds the initial
    /// state `σ₀` and an empty history.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`, if the coordination spec does not cover the
    /// object's methods, or if `σ₀` violates the invariant.
    pub fn new(spec: &'a O, coord: &'a CoordSpec, n: usize) -> Self {
        assert!(n > 0, "cluster must be non-empty");
        assert_eq!(
            coord.method_count(),
            spec.method_count(),
            "coordination spec must cover all methods"
        );
        let sigma0 = spec.initial();
        assert!(spec.invariant(&sigma0), "initial state must satisfy the invariant");
        AbstractWrdt {
            spec,
            coord,
            states: vec![sigma0; n],
            histories: vec![Vec::new(); n],
            applied: vec![BTreeSet::new(); n],
            next_seq: vec![0; n],
            trace: Vec::new(),
        }
    }

    /// Number of processes `|P|`.
    pub fn processes(&self) -> usize {
        self.states.len()
    }

    /// The current state `ss(p)` of a process.
    pub fn state(&self, p: Pid) -> &O::State {
        &self.states[p.index()]
    }

    /// The execution history `xs(p)` of a process.
    pub fn history(&self, p: Pid) -> &[DecoratedCall<O::Update>] {
        &self.histories[p.index()]
    }

    /// The recorded trace of all transitions so far.
    pub fn trace(&self) -> &Trace<O::Update> {
        &self.trace
    }

    /// Whether the call identified by `rid` has been applied at `p`.
    pub fn has_applied(&self, p: Pid, rid: Rid) -> bool {
        self.applied[p.index()].contains(&rid)
    }

    fn conflict(&self, c1: &DecoratedCall<O::Update>, c2: &DecoratedCall<O::Update>) -> bool {
        self.coord
            .methods_conflict(self.spec.method_of(&c1.update), self.spec.method_of(&c2.update))
    }

    fn depends(&self, c2: &DecoratedCall<O::Update>, c1: &DecoratedCall<O::Update>) -> bool {
        self.coord
            .dependencies(self.spec.method_of(&c2.update))
            .contains(&self.spec.method_of(&c1.update))
    }

    /// Rule CALL: accept and execute the update call `u(v)` at `p`.
    ///
    /// Checks local permissibility `𝒫(σ, c)` and `CallConfSync`: every
    /// call executed anywhere that conflicts with the new call must
    /// already be applied at `p`.
    ///
    /// # Errors
    ///
    /// [`SemError::NotPermissible`] or
    /// [`SemError::ConflictSyncViolation`] when a side condition fails;
    /// the state is unchanged.
    pub fn call(&mut self, p: impl Into<Pid>, update: O::Update) -> Result<Rid, SemError> {
        let p = p.into();
        self.check_pid(p)?;
        let method = self.spec.method_of(&update);
        if !self.spec.permissible(&self.states[p.index()], &update) {
            return Err(SemError::NotPermissible { process: p, method });
        }
        let rid = Rid::new(p, self.next_seq[p.index()]);
        let call = DecoratedCall { rid, update };
        // CallConfSync(xs, p, c).
        for p2 in 0..self.processes() {
            for c2 in &self.histories[p2] {
                if self.conflict(c2, &call) && !self.applied[p.index()].contains(&c2.rid) {
                    return Err(SemError::ConflictSyncViolation { process: p, pending: c2.rid });
                }
            }
        }
        self.next_seq[p.index()] += 1;
        self.states[p.index()] = self.spec.apply(&self.states[p.index()], &call.update);
        self.applied[p.index()].insert(rid);
        self.trace.push(Label::Call { process: p, rid, update: call.update.clone() });
        self.histories[p.index()].push(call);
        Ok(rid)
    }

    /// Rule PROP: propagate the call `rid` from process `from` to
    /// process `p`.
    ///
    /// Checks `PropConfSync` (conflicting predecessors anywhere are
    /// already applied at `p`) and `PropDep` (dependencies preceding the
    /// call in its issuing process are already applied at `p`).
    ///
    /// # Errors
    ///
    /// [`SemError::UnknownCall`] if `from` has not executed `rid`,
    /// [`SemError::AlreadyApplied`], [`SemError::ConflictSyncViolation`],
    /// or [`SemError::DependencyViolation`]; the state is unchanged.
    pub fn propagate(
        &mut self,
        p: impl Into<Pid>,
        from: impl Into<Pid>,
        rid: Rid,
    ) -> Result<(), SemError> {
        let p = p.into();
        let from = from.into();
        self.check_pid(p)?;
        self.check_pid(from)?;
        let call = self.histories[from.index()]
            .iter()
            .find(|c| c.rid == rid)
            .cloned()
            .ok_or(SemError::UnknownCall { process: from, rid })?;
        if self.applied[p.index()].contains(&rid) {
            return Err(SemError::AlreadyApplied { process: p, rid });
        }
        // PropConfSync(xs, p, c): if a conflicting c' precedes c in any
        // process, then c' is already applied at p.
        for p2 in 0..self.processes() {
            if !self.applied[p2].contains(&rid) {
                continue;
            }
            for c2 in &self.histories[p2] {
                if c2.rid == rid {
                    break; // only calls preceding c in xs(p2) constrain
                }
                if self.conflict(c2, &call) && !self.applied[p.index()].contains(&c2.rid) {
                    return Err(SemError::ConflictSyncViolation { process: p, pending: c2.rid });
                }
            }
        }
        // PropDep(xs, p, c): dependencies of c preceding it at its
        // issuing process must be applied at p.
        let issuer = rid.issuer;
        for c2 in &self.histories[issuer.index()] {
            if c2.rid == rid {
                break;
            }
            if self.depends(&call, c2) && !self.applied[p.index()].contains(&c2.rid) {
                return Err(SemError::DependencyViolation { process: p, missing: c2.rid });
            }
        }
        self.states[p.index()] = self.spec.apply(&self.states[p.index()], &call.update);
        self.applied[p.index()].insert(rid);
        self.histories[p.index()].push(call);
        self.trace.push(Label::Prop { process: p, rid });
        Ok(())
    }

    /// Propagate the call `rid` to `p` from any process that has executed
    /// it (used by the refinement replayer, where the source process is
    /// immaterial).
    ///
    /// # Errors
    ///
    /// As [`AbstractWrdt::propagate`]; [`SemError::UnknownCall`] if no
    /// process has executed `rid`.
    pub fn propagate_rid(&mut self, p: impl Into<Pid>, rid: Rid) -> Result<(), SemError> {
        let p = p.into();
        let from = (0..self.processes())
            .map(Pid)
            .find(|q| *q != p && self.applied[q.index()].contains(&rid))
            .ok_or(SemError::UnknownCall { process: p, rid })?;
        self.propagate(p, from, rid)
    }

    /// Rule QUERY: execute a query call at `p` against its current state.
    pub fn query(&mut self, p: impl Into<Pid>, q: &O::Query) -> O::Reply {
        let p = p.into();
        self.trace.push(Label::Query { process: p });
        self.spec.query(&self.states[p.index()], q)
    }

    /// All propagations currently enabled at `p`: calls executed
    /// elsewhere, not yet applied at `p`, whose side conditions hold.
    pub fn enabled_propagations(&self, p: Pid) -> Vec<Rid> {
        let mut rids = BTreeSet::new();
        for p2 in 0..self.processes() {
            if p2 == p.index() {
                continue;
            }
            for c in &self.histories[p2] {
                if !self.applied[p.index()].contains(&c.rid) {
                    rids.insert(c.rid);
                }
            }
        }
        rids.into_iter()
            .filter(|&rid| {
                let mut probe = self.clone_for_probe();
                probe.propagate_rid(p, rid).is_ok()
            })
            .collect()
    }

    fn clone_for_probe(&self) -> AbstractWrdt<'a, O> {
        AbstractWrdt {
            spec: self.spec,
            coord: self.coord,
            states: self.states.clone(),
            histories: self.histories.clone(),
            applied: self.applied.clone(),
            next_seq: self.next_seq.clone(),
            trace: Vec::new(),
        }
    }

    /// Propagate every call everywhere, in dependency-respecting order,
    /// until a fixpoint. Returns the number of propagation steps taken.
    pub fn propagate_all(&mut self) -> usize {
        let mut steps = 0;
        loop {
            let mut progressed = false;
            for p in 0..self.processes() {
                let enabled = self.enabled_propagations(Pid(p));
                for rid in enabled {
                    if self.propagate_rid(Pid(p), rid).is_ok() {
                        steps += 1;
                        progressed = true;
                    }
                }
            }
            if !progressed {
                return steps;
            }
        }
    }

    /// Lemma 1 (Integrity): the invariant holds at every process.
    pub fn check_integrity(&self) -> bool {
        self.states.iter().all(|s| self.spec.invariant(s))
    }

    /// Lemma 2 (Convergence): processes with equivalent histories
    /// (the same set of calls) have equal states.
    pub fn check_convergence(&self) -> bool {
        for p in 0..self.processes() {
            for q in (p + 1)..self.processes() {
                if self.applied[p] == self.applied[q] && self.states[p] != self.states[q] {
                    return false;
                }
            }
        }
        true
    }

    /// Whether every call has been applied at every process.
    pub fn fully_propagated(&self) -> bool {
        let all: BTreeSet<Rid> = self.applied.iter().flatten().copied().collect();
        self.applied.iter().all(|a| *a == all)
    }

    fn check_pid(&self, p: Pid) -> Result<(), SemError> {
        if p.index() < self.processes() {
            Ok(())
        } else {
            Err(SemError::NoSuchProcess { process: p, cluster: self.processes() })
        }
    }
}

impl<'a, O: ObjectSpec> Clone for AbstractWrdt<'a, O> {
    fn clone(&self) -> Self {
        AbstractWrdt {
            spec: self.spec,
            coord: self.coord,
            states: self.states.clone(),
            histories: self.histories.clone(),
            applied: self.applied.clone(),
            next_seq: self.next_seq.clone(),
            trace: self.trace.clone(),
        }
    }
}

impl<O: ObjectSpec> std::fmt::Debug for AbstractWrdt<'_, O> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AbstractWrdt")
            .field("object", &self.spec.name())
            .field("states", &self.states)
            .field("history_lens", &self.histories.iter().map(Vec::len).collect::<Vec<_>>())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::demo::Account;

    fn setup(_n: usize) -> (Account, CoordSpec) {
        let acc = Account::default();
        let coord = acc.coord_spec();
        (acc, coord)
    }

    #[test]
    fn call_applies_locally() {
        let (acc, coord) = setup(2);
        let mut w = AbstractWrdt::new(&acc, &coord, 2);
        let rid = w.call(0, Account::deposit(5)).unwrap();
        assert_eq!(*w.state(Pid(0)), 5);
        assert_eq!(*w.state(Pid(1)), 0);
        assert!(w.has_applied(Pid(0), rid));
        assert!(!w.has_applied(Pid(1), rid));
    }

    #[test]
    fn impermissible_call_rejected() {
        let (acc, coord) = setup(2);
        let mut w = AbstractWrdt::new(&acc, &coord, 2);
        let err = w.call(0, Account::withdraw(1)).unwrap_err();
        assert!(matches!(err, SemError::NotPermissible { .. }));
        assert_eq!(*w.state(Pid(0)), 0);
    }

    #[test]
    fn conflicting_calls_must_synchronize() {
        let (acc, coord) = setup(2);
        let mut w = AbstractWrdt::new(&acc, &coord, 2);
        // Fund both replicas.
        let d0 = w.call(0, Account::deposit(10)).unwrap();
        w.propagate(1, 0, d0).unwrap();
        // A withdraw at p0...
        w.call(0, Account::withdraw(1)).unwrap();
        // ...blocks a concurrent conflicting withdraw at p1.
        let err = w.call(1, Account::withdraw(1)).unwrap_err();
        assert!(matches!(err, SemError::ConflictSyncViolation { .. }));
    }

    #[test]
    fn propagation_respects_dependencies() {
        let (acc, coord) = setup(2);
        let mut w = AbstractWrdt::new(&acc, &coord, 2);
        let d = w.call(0, Account::deposit(10)).unwrap();
        let wd = w.call(0, Account::withdraw(10)).unwrap();
        // withdraw depends on the preceding deposit: cannot overtake it.
        let err = w.propagate(1, 0, wd).unwrap_err();
        assert!(matches!(err, SemError::DependencyViolation { .. }));
        w.propagate(1, 0, d).unwrap();
        w.propagate(1, 0, wd).unwrap();
        assert_eq!(*w.state(Pid(1)), 0);
        assert!(w.check_integrity());
    }

    #[test]
    fn double_propagation_rejected() {
        let (acc, coord) = setup(2);
        let mut w = AbstractWrdt::new(&acc, &coord, 2);
        let d = w.call(0, Account::deposit(10)).unwrap();
        w.propagate(1, 0, d).unwrap();
        assert!(matches!(
            w.propagate(1, 0, d).unwrap_err(),
            SemError::AlreadyApplied { .. }
        ));
    }

    #[test]
    fn unknown_call_rejected() {
        let (acc, coord) = setup(2);
        let mut w = AbstractWrdt::new(&acc, &coord, 2);
        let bogus = Rid::new(Pid(0), 99);
        assert!(matches!(
            w.propagate(1, 0, bogus).unwrap_err(),
            SemError::UnknownCall { .. }
        ));
    }

    #[test]
    fn propagate_all_converges() {
        let (acc, coord) = setup(3);
        let mut w = AbstractWrdt::new(&acc, &coord, 3);
        w.call(0, Account::deposit(5)).unwrap();
        w.call(1, Account::deposit(7)).unwrap();
        w.call(2, Account::deposit(11)).unwrap();
        let steps = w.propagate_all();
        assert_eq!(steps, 6);
        assert!(w.fully_propagated());
        assert!(w.check_convergence());
        for p in Pid::all(3) {
            assert_eq!(*w.state(p), 23);
        }
    }

    #[test]
    fn query_reads_local_state() {
        let (acc, coord) = setup(2);
        let mut w = AbstractWrdt::new(&acc, &coord, 2);
        w.call(0, Account::deposit(5)).unwrap();
        assert_eq!(w.query(0, &crate::demo::AccountQuery::Balance), 5);
        assert_eq!(w.query(1, &crate::demo::AccountQuery::Balance), 0);
    }

    #[test]
    fn enabled_propagations_excludes_blocked_dependents() {
        let (acc, coord) = setup(2);
        let mut w = AbstractWrdt::new(&acc, &coord, 2);
        let d = w.call(0, Account::deposit(10)).unwrap();
        let wd = w.call(0, Account::withdraw(10)).unwrap();
        let enabled = w.enabled_propagations(Pid(1));
        assert!(enabled.contains(&d));
        assert!(!enabled.contains(&wd));
    }

    #[test]
    fn trace_records_labels_in_order() {
        let (acc, coord) = setup(2);
        let mut w = AbstractWrdt::new(&acc, &coord, 2);
        let d = w.call(0, Account::deposit(5)).unwrap();
        w.propagate(1, 0, d).unwrap();
        w.query(1, &crate::demo::AccountQuery::Balance);
        assert_eq!(w.trace().len(), 3);
        assert!(matches!(w.trace()[0], Label::Call { process: Pid(0), .. }));
        assert!(matches!(w.trace()[1], Label::Prop { process: Pid(1), .. }));
        assert!(matches!(w.trace()[2], Label::Query { process: Pid(1) }));
    }

    #[test]
    fn out_of_range_process_rejected() {
        let (acc, coord) = setup(2);
        let mut w = AbstractWrdt::new(&acc, &coord, 2);
        assert!(matches!(
            w.call(5, Account::deposit(1)).unwrap_err(),
            SemError::NoSuchProcess { .. }
        ));
    }
}
