//! Labels and traces (Fig. 3).
//!
//! A label `ℓ` records an externally visible step: a call request
//! `(p, u(v)_r)` or a query `(p, q(v))`. A trace `τ` is a sequence of
//! labels. The refinement theorem (Lemma 3) is stated over traces: every
//! trace of the concrete RDMA semantics is a trace of the abstract WRDT
//! semantics; [`crate::refinement`] checks this executably, which is why
//! our labels additionally record propagation steps.

use crate::ids::{Pid, Rid};

/// One step of an execution, recorded by the executable semantics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Label<U> {
    /// An update call `u(v)` issued (and locally applied) at `process`.
    Call {
        /// The issuing process.
        process: Pid,
        /// The unique request identifier assigned to the call.
        rid: Rid,
        /// The call itself.
        update: U,
    },
    /// The call `rid` propagated to (applied at) `process`.
    Prop {
        /// The receiving process.
        process: Pid,
        /// The propagated call.
        rid: Rid,
    },
    /// A query executed at `process`.
    Query {
        /// The queried process.
        process: Pid,
    },
}

impl<U> Label<U> {
    /// The process this label is anchored at.
    pub fn process(&self) -> Pid {
        match *self {
            Label::Call { process, .. }
            | Label::Prop { process, .. }
            | Label::Query { process } => process,
        }
    }

    /// The request identifier, for call and propagation labels.
    pub fn rid(&self) -> Option<Rid> {
        match *self {
            Label::Call { rid, .. } | Label::Prop { rid, .. } => Some(rid),
            Label::Query { .. } => None,
        }
    }
}

/// A recorded execution trace.
pub type Trace<U> = Vec<Label<U>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn label_accessors() {
        let call: Label<u32> = Label::Call { process: Pid(1), rid: Rid::new(Pid(1), 0), update: 7 };
        let prop: Label<u32> = Label::Prop { process: Pid(2), rid: Rid::new(Pid(1), 0) };
        let query: Label<u32> = Label::Query { process: Pid(0) };
        assert_eq!(call.process(), Pid(1));
        assert_eq!(prop.process(), Pid(2));
        assert_eq!(query.process(), Pid(0));
        assert_eq!(call.rid(), Some(Rid::new(Pid(1), 0)));
        assert_eq!(prop.rid(), Some(Rid::new(Pid(1), 0)));
        assert_eq!(query.rid(), None);
    }
}
