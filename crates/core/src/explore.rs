//! Bounded exhaustive exploration — small-scope model checking of the
//! paper's guarantees.
//!
//! The paper proves Lemmas 1–3 by hand. This module complements the
//! proofs with machine checking on small instances: given per-process
//! *scripts* of calls, it enumerates **every** interleaving of call
//! issuance, propagation (abstract semantics), and buffer application
//! (concrete semantics), asserting along every path that
//!
//! * integrity holds in every reachable configuration (Lemma 1),
//! * processes with equal call sets have equal states, and fully
//!   drained terminal configurations agree (Lemma 2), and
//! * every complete concrete path's trace replays in the abstract
//!   semantics (Lemma 3).
//!
//! States are deduplicated by their `Debug` rendering, which is exact
//! for the value-semantic states used here; exploration is bounded by
//! [`ExploreConfig`] and reports whether it was exhaustive.

use std::collections::HashSet;

use crate::abstract_sem::AbstractWrdt;
use crate::coord::CoordSpec;
use crate::ids::{GroupId, Pid};
use crate::object::ObjectSpec;
use crate::rdma_sem::RdmaWrdt;
use crate::refinement::replay_and_check;

/// Exploration bounds.
#[derive(Debug, Clone, Copy)]
pub struct ExploreConfig {
    /// Maximum distinct configurations to visit.
    pub max_states: usize,
}

impl Default for ExploreConfig {
    fn default() -> Self {
        ExploreConfig { max_states: 200_000 }
    }
}

/// Outcome of an exploration.
#[derive(Debug, Clone)]
pub struct ExploreReport {
    /// Distinct configurations visited.
    pub states: usize,
    /// Complete terminal configurations reached.
    pub terminals: usize,
    /// Whether the state space was fully explored within bounds.
    pub exhaustive: bool,
}

/// A property violation found during exploration.
#[derive(Debug, Clone)]
pub struct ExploreViolation {
    /// Which lemma failed.
    pub property: &'static str,
    /// Human-readable details.
    pub detail: String,
}

impl std::fmt::Display for ExploreViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} violated: {}", self.property, self.detail)
    }
}

impl std::error::Error for ExploreViolation {}

/// Exhaustively explore the **abstract** semantics (Fig. 5) for the
/// given per-process call scripts.
///
/// Every interleaving of scripted CALLs and enabled PROPs is visited.
/// Terminal configurations (no transition enabled) with all calls
/// issued and fully propagated must agree across processes.
///
/// # Errors
///
/// The first [`ExploreViolation`] found, if any.
pub fn explore_abstract<O: ObjectSpec>(
    spec: &O,
    coord: &CoordSpec,
    scripts: &[Vec<O::Update>],
    cfg: &ExploreConfig,
) -> Result<ExploreReport, ExploreViolation> {
    let n = scripts.len();
    assert!(n > 0, "need at least one process");
    let w0 = AbstractWrdt::new(spec, coord, n);
    let mut seen: HashSet<String> = HashSet::new();
    let mut stack: Vec<(AbstractWrdt<'_, O>, Vec<usize>)> = vec![(w0, vec![0; n])];
    let mut terminals = 0usize;
    let mut exhaustive = true;

    while let Some((w, progress)) = stack.pop() {
        let key = format!("{:?}{:?}", keyed(&w), progress);
        if !seen.insert(key) {
            continue;
        }
        if seen.len() > cfg.max_states {
            exhaustive = false;
            break;
        }
        if !w.check_integrity() {
            return Err(ExploreViolation {
                property: "integrity (Lemma 1)",
                detail: format!("reachable state violates the invariant: {w:?}"),
            });
        }
        if !w.check_convergence() {
            return Err(ExploreViolation {
                property: "convergence (Lemma 2)",
                detail: format!("equal call sets, unequal states: {w:?}"),
            });
        }

        let mut advanced = false;
        // CALL transitions: each process may issue its next scripted call.
        for p in 0..n {
            if progress[p] < scripts[p].len() {
                let mut w2 = w.clone();
                if w2.call(p, scripts[p][progress[p]].clone()).is_ok() {
                    let mut pr = progress.clone();
                    pr[p] += 1;
                    stack.push((w2, pr));
                    advanced = true;
                }
            }
        }
        // PROP transitions: every enabled propagation.
        for p in 0..n {
            for rid in w.enabled_propagations(Pid(p)) {
                let mut w2 = w.clone();
                w2.propagate_rid(p, rid).expect("enabled propagation succeeds");
                stack.push((w2, progress.clone()));
                advanced = true;
            }
        }
        if !advanced {
            terminals += 1;
            // A terminal with all scripts issued must be fully
            // propagated and convergent.
            let all_issued = (0..n).all(|p| progress[p] == scripts[p].len());
            if all_issued {
                if !w.fully_propagated() {
                    return Err(ExploreViolation {
                        property: "progress",
                        detail: "terminal configuration with unpropagated calls".to_string(),
                    });
                }
                let s0 = w.state(Pid(0));
                for p in 1..n {
                    if w.state(Pid(p)) != s0 {
                        return Err(ExploreViolation {
                            property: "convergence (Lemma 2)",
                            detail: format!("terminal states differ: {w:?}"),
                        });
                    }
                }
            }
        }
    }
    Ok(ExploreReport { states: seen.len(), terminals, exhaustive })
}

fn keyed<O: ObjectSpec>(w: &AbstractWrdt<'_, O>) -> String {
    let mut s = String::new();
    for p in 0..w.processes() {
        s.push_str(&format!("{:?}|{:?};", w.state(Pid(p)), w.history(Pid(p))));
    }
    s
}

/// Exhaustively explore the **concrete RDMA** semantics (Fig. 7) for
/// the given per-process call scripts, checking integrity along every
/// path, convergence in every drained terminal, and refinement
/// (Lemma 3) of every terminal trace.
///
/// Conflicting calls in a script are issued through the group leader,
/// as the runtime redirects them.
///
/// # Errors
///
/// The first [`ExploreViolation`] found, if any.
pub fn explore_rdma<O: ObjectSpec>(
    spec: &O,
    coord: &CoordSpec,
    scripts: &[Vec<O::Update>],
    cfg: &ExploreConfig,
) -> Result<ExploreReport, ExploreViolation> {
    let n = scripts.len();
    assert!(n > 0, "need at least one process");
    let k0 = RdmaWrdt::new(spec, coord, n);
    let mut seen: HashSet<String> = HashSet::new();
    let mut stack: Vec<(RdmaWrdt<'_, O>, Vec<usize>)> = vec![(k0, vec![0; n])];
    let mut terminals = 0usize;
    let mut exhaustive = true;

    while let Some((k, progress)) = stack.pop() {
        let key = format!("{}{:?}", rdma_key(&k, n, coord), progress);
        if !seen.insert(key) {
            continue;
        }
        if seen.len() > cfg.max_states {
            exhaustive = false;
            break;
        }
        if !k.check_integrity() {
            return Err(ExploreViolation {
                property: "integrity (Corollary 1)",
                detail: "reachable concrete state violates the invariant".to_string(),
            });
        }

        let mut advanced = false;
        // Issue transitions (REDUCE / FREE / CONF via routing).
        for p in 0..n {
            if progress[p] < scripts[p].len() {
                let mut k2 = k.clone();
                if k2.issue(p, scripts[p][progress[p]].clone()).is_ok() {
                    let mut pr = progress.clone();
                    pr[p] += 1;
                    stack.push((k2, pr));
                    advanced = true;
                }
            }
        }
        // FREE-APP / CONF-APP transitions.
        for p in 0..n {
            for src in 0..n {
                let mut k2 = k.clone();
                if k2.free_app(Pid(p), Pid(src)).is_ok() {
                    stack.push((k2, progress.clone()));
                    advanced = true;
                }
            }
            for g in 0..coord.sync_groups().len() {
                let mut k2 = k.clone();
                if k2.conf_app(Pid(p), GroupId(g)).is_ok() {
                    stack.push((k2, progress.clone()));
                    advanced = true;
                }
            }
        }
        if !advanced {
            terminals += 1;
            let all_issued = (0..n).all(|p| progress[p] == scripts[p].len());
            if all_issued {
                if !k.buffers_empty() {
                    return Err(ExploreViolation {
                        property: "progress",
                        detail: "terminal concrete configuration with pending buffers"
                            .to_string(),
                    });
                }
                if !k.check_convergence() {
                    return Err(ExploreViolation {
                        property: "convergence (Corollary 2)",
                        detail: "drained terminal states differ".to_string(),
                    });
                }
                // Lemma 3 on this complete path.
                if let Err(e) = replay_and_check(spec, coord, n, k.trace()) {
                    return Err(ExploreViolation {
                        property: "refinement (Lemma 3)",
                        detail: e,
                    });
                }
            }
        }
    }
    Ok(ExploreReport { states: seen.len(), terminals, exhaustive })
}

fn rdma_key<O: ObjectSpec>(k: &RdmaWrdt<'_, O>, n: usize, coord: &CoordSpec) -> String {
    let mut s = String::new();
    for p in 0..n {
        s.push_str(&format!("{:?}|{}|", k.current_state(Pid(p)), k.applied(Pid(p))));
        for src in 0..n {
            s.push_str(&format!("{:?}", k.free_buffer(Pid(p), Pid(src))));
        }
        for g in 0..coord.sync_groups().len() {
            s.push_str(&format!("{:?}", k.conf_buffer(Pid(p), GroupId(g))));
        }
        s.push(';');
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::demo::Account;

    #[test]
    fn account_two_processes_exhaustive() {
        let acc = Account::default();
        let coord = acc.coord_spec();
        // p0: deposit 5, withdraw 3; p1: deposit 2, withdraw 4.
        let scripts = vec![
            vec![Account::deposit(5), Account::withdraw(3)],
            vec![Account::deposit(2), Account::withdraw(4)],
        ];
        let report = explore_abstract(&acc, &coord, &scripts, &ExploreConfig::default())
            .expect("lemmas hold on all interleavings");
        assert!(report.exhaustive);
        assert!(report.states > 10, "nontrivial state space: {report:?}");
        assert!(report.terminals > 0);
    }

    #[test]
    fn account_rdma_exhaustive_and_refines() {
        let acc = Account::default();
        let coord = acc.coord_spec();
        let scripts = vec![
            vec![Account::deposit(5), Account::withdraw(3)],
            vec![Account::deposit(2)],
        ];
        let report = explore_rdma(&acc, &coord, &scripts, &ExploreConfig::default())
            .expect("corollaries and refinement hold on all interleavings");
        assert!(report.exhaustive);
        assert!(report.terminals > 0);
    }

    #[test]
    fn bounded_exploration_reports_truncation() {
        let acc = Account::default();
        let coord = acc.coord_spec();
        let scripts = vec![
            vec![Account::deposit(1), Account::deposit(2), Account::deposit(3)],
            vec![Account::deposit(4), Account::deposit(5), Account::deposit(6)],
            vec![Account::deposit(7), Account::deposit(8)],
        ];
        let tight = ExploreConfig { max_states: 50 };
        let report = explore_abstract(&acc, &coord, &scripts, &tight).expect("no violation");
        assert!(!report.exhaustive, "tight bound must truncate: {report:?}");
    }

    /// A deliberately wrong coordination spec is caught: declaring
    /// withdraw conflict-free lets two concurrent overdrafts through,
    /// and the explorer finds the integrity violation.
    #[test]
    fn wrong_spec_is_refuted() {
        let acc = Account::default();
        let bad = CoordSpec::builder(2).summarization_group([0]).build();
        let scripts = vec![
            vec![Account::deposit(5), Account::withdraw(5)],
            vec![Account::withdraw(5)],
        ];
        // p1's withdraw(5) is permissible after p0's deposit propagates;
        // with no conflict declared, both withdraws can execute and one
        // process ends up overdrafted.
        let err = explore_abstract(&acc, &bad, &scripts, &ExploreConfig::default())
            .expect_err("the explorer must refute the unsound spec");
        assert!(err.property.contains("integrity"), "{err}");
    }
}
