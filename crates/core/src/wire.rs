//! Byte-level encoding of calls, for shipping through registered
//! memory.
//!
//! §4 of the paper: "Before propagation, a call is assigned a unique
//! id, paired with its dependency arrays and is serialized into a byte
//! stream." This module defines the compact little-endian varint codec
//! the runtime uses, and the [`Wire`] trait each data type's update
//! enum implements so its calls can live in ring-buffer entries and
//! summary slots.

use std::fmt;

/// Error returned when decoding malformed bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecodeError;

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "malformed wire encoding")
    }
}

impl std::error::Error for DecodeError {}

/// A cursor over bytes being decoded.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Read from the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Consume one byte.
    ///
    /// # Errors
    ///
    /// [`DecodeError`] at end of input.
    pub fn u8(&mut self) -> Result<u8, DecodeError> {
        let b = *self.buf.get(self.pos).ok_or(DecodeError)?;
        self.pos += 1;
        Ok(b)
    }

    /// Consume a LEB128 varint.
    ///
    /// # Errors
    ///
    /// [`DecodeError`] on truncation or overlong encoding.
    pub fn varint(&mut self) -> Result<u64, DecodeError> {
        let mut value = 0u64;
        let mut shift = 0u32;
        loop {
            let b = self.u8()?;
            if shift >= 64 {
                return Err(DecodeError);
            }
            value |= u64::from(b & 0x7f) << shift;
            if b & 0x80 == 0 {
                return Ok(value);
            }
            shift += 7;
        }
    }

    /// Consume a signed varint (zigzag).
    ///
    /// # Errors
    ///
    /// As [`Reader::varint`].
    pub fn svarint(&mut self) -> Result<i64, DecodeError> {
        let z = self.varint()?;
        Ok(((z >> 1) as i64) ^ -((z & 1) as i64))
    }

    /// Consume `len` raw bytes.
    ///
    /// # Errors
    ///
    /// [`DecodeError`] on truncation.
    pub fn bytes(&mut self, len: usize) -> Result<&'a [u8], DecodeError> {
        if self.remaining() < len {
            return Err(DecodeError);
        }
        let s = &self.buf[self.pos..self.pos + len];
        self.pos += len;
        Ok(s)
    }

    /// Consume a length-prefixed byte string.
    ///
    /// # Errors
    ///
    /// [`DecodeError`] on truncation.
    pub fn lp_bytes(&mut self) -> Result<&'a [u8], DecodeError> {
        let len = self.varint()? as usize;
        self.bytes(len)
    }

    /// Consume a length-prefixed UTF-8 string.
    ///
    /// # Errors
    ///
    /// [`DecodeError`] on truncation or invalid UTF-8.
    pub fn lp_str(&mut self) -> Result<&'a str, DecodeError> {
        std::str::from_utf8(self.lp_bytes()?).map_err(|_| DecodeError)
    }
}

/// Append-only encoding helpers over a `Vec<u8>`.
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// An empty writer.
    pub fn new() -> Self {
        Writer::default()
    }

    /// A writer reusing `buf`'s allocation (contents are cleared).
    /// Recover the buffer with [`into_vec`](Self::into_vec) — this is
    /// the allocation-free encode cycle used by the runtime hot path.
    pub fn from_vec(mut buf: Vec<u8>) -> Self {
        buf.clear();
        Writer { buf }
    }

    /// The encoded bytes.
    pub fn into_vec(self) -> Vec<u8> {
        self.buf
    }

    /// Current length.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Append one byte.
    pub fn u8(&mut self, b: u8) {
        self.buf.push(b);
    }

    /// Append a LEB128 varint.
    pub fn varint(&mut self, mut v: u64) {
        loop {
            let b = (v & 0x7f) as u8;
            v >>= 7;
            if v == 0 {
                self.buf.push(b);
                return;
            }
            self.buf.push(b | 0x80);
        }
    }

    /// Append a signed varint (zigzag).
    pub fn svarint(&mut self, v: i64) {
        self.varint(((v << 1) ^ (v >> 63)) as u64);
    }

    /// Append raw bytes.
    pub fn bytes(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Append a length-prefixed byte string.
    pub fn lp_bytes(&mut self, bytes: &[u8]) {
        self.varint(bytes.len() as u64);
        self.bytes(bytes);
    }

    /// Append a length-prefixed UTF-8 string.
    pub fn lp_str(&mut self, s: &str) {
        self.lp_bytes(s.as_bytes());
    }
}

/// Types that can cross the wire (live in ring entries and summary
/// slots).
pub trait Wire: Sized {
    /// Append the encoding of `self` to the writer.
    fn encode(&self, w: &mut Writer);

    /// Decode one value from the reader.
    ///
    /// # Errors
    ///
    /// [`DecodeError`] if the bytes are malformed.
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError>;

    /// Convenience: encode into a fresh vector.
    fn to_bytes(&self) -> Vec<u8> {
        let mut w = Writer::new();
        self.encode(&mut w);
        w.into_vec()
    }

    /// Convenience: decode from a complete buffer.
    ///
    /// # Errors
    ///
    /// [`DecodeError`] if the bytes are malformed.
    fn from_bytes(bytes: &[u8]) -> Result<Self, DecodeError> {
        Self::decode(&mut Reader::new(bytes))
    }
}

impl Wire for u64 {
    fn encode(&self, w: &mut Writer) {
        w.varint(*self);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        r.varint()
    }
}

impl Wire for i64 {
    fn encode(&self, w: &mut Writer) {
        w.svarint(*self);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        r.svarint()
    }
}

impl Wire for String {
    fn encode(&self, w: &mut Writer) {
        w.lp_str(self);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(r.lp_str()?.to_owned())
    }
}

impl<T: Wire> Wire for Vec<T> {
    fn encode(&self, w: &mut Writer) {
        w.varint(self.len() as u64);
        for item in self {
            item.encode(w);
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let len = r.varint()? as usize;
        // Guard against absurd lengths from corrupt buffers.
        if len > r.remaining() {
            return Err(DecodeError);
        }
        let mut v = Vec::with_capacity(len);
        for _ in 0..len {
            v.push(T::decode(r)?);
        }
        Ok(v)
    }
}

impl<A: Wire, B: Wire> Wire for (A, B) {
    fn encode(&self, w: &mut Writer) {
        self.0.encode(w);
        self.1.encode(w);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok((A::decode(r)?, B::decode(r)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_roundtrip() {
        let values = [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX];
        for v in values {
            let mut w = Writer::new();
            w.varint(v);
            let bytes = w.into_vec();
            let mut r = Reader::new(&bytes);
            assert_eq!(r.varint().unwrap(), v);
            assert_eq!(r.remaining(), 0);
        }
    }

    #[test]
    fn svarint_roundtrip() {
        for v in [0i64, 1, -1, 63, -64, i64::MAX, i64::MIN] {
            let mut w = Writer::new();
            w.svarint(v);
            let bytes = w.into_vec();
            let mut r = Reader::new(&bytes);
            assert_eq!(r.svarint().unwrap(), v);
        }
    }

    #[test]
    fn truncated_input_errors() {
        let mut r = Reader::new(&[0x80]); // continuation bit, no next byte
        assert_eq!(r.varint(), Err(DecodeError));
        let mut r2 = Reader::new(&[5, b'a', b'b']); // claims 5 bytes, has 2
        assert_eq!(r2.lp_bytes(), Err(DecodeError));
    }

    #[test]
    fn overlong_varint_errors() {
        let bytes = [0xff; 11];
        let mut r = Reader::new(&bytes);
        assert_eq!(r.varint(), Err(DecodeError));
    }

    #[test]
    fn string_and_vec_roundtrip() {
        let v: Vec<String> = vec!["hello".into(), "".into(), "höla".into()];
        let bytes = v.to_bytes();
        assert_eq!(Vec::<String>::from_bytes(&bytes).unwrap(), v);
    }

    #[test]
    fn tuple_roundtrip() {
        let v: (u64, i64) = (42, -7);
        assert_eq!(<(u64, i64)>::from_bytes(&v.to_bytes()).unwrap(), v);
    }

    #[test]
    fn vec_length_bomb_rejected() {
        let mut w = Writer::new();
        w.varint(1 << 40);
        let bytes = w.into_vec();
        assert!(Vec::<u64>::from_bytes(&bytes).is_err());
    }

    #[test]
    fn invalid_utf8_rejected() {
        let mut w = Writer::new();
        w.lp_bytes(&[0xff, 0xfe]);
        let bytes = w.into_vec();
        assert!(String::from_bytes(&bytes).is_err());
    }

    #[test]
    fn writer_accessors() {
        let mut w = Writer::new();
        assert!(w.is_empty());
        w.u8(7);
        assert_eq!(w.len(), 1);
        assert!(!w.is_empty());
        assert_eq!(w.into_vec(), vec![7]);
    }
}
