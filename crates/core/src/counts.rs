//! Applied-call and dependency count maps.
//!
//! Fig. 6 of the paper defines the *applied calls* map
//! `A : P → U → Nat` (how many calls on each update method from each
//! process have been applied locally) and the *dependency* map
//! `D : P → U → Nat` that accompanies a propagated call. A call may be
//! applied at a process only once the local applied map is pointwise
//! ahead of the call's dependency map (`D ≤ A`).
//!
//! Both are represented as a dense matrix of counters indexed by process
//! and method, exactly matching the runtime representation described in
//! §4 of the paper ("an integer array that is indexed by method
//! identifiers" per node). A [`DepMap`] is a *sparse projection* of a
//! [`CountMap`] over the methods a call depends on.

use std::fmt;

use crate::ids::{MethodId, Pid};

/// The applied-calls map `A : P → U → Nat` of Fig. 6.
///
/// ```
/// use hamband_core::counts::CountMap;
/// use hamband_core::ids::{MethodId, Pid};
///
/// let mut a = CountMap::new(2, 3);
/// a.increment(Pid(1), MethodId(2));
/// assert_eq!(a.get(Pid(1), MethodId(2)), 1);
/// assert_eq!(a.get(Pid(0), MethodId(0)), 0);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CountMap {
    processes: usize,
    methods: usize,
    counts: Vec<u64>,
}

impl CountMap {
    /// An all-zero map for a cluster of `processes` replicas of an object
    /// with `methods` update methods.
    pub fn new(processes: usize, methods: usize) -> Self {
        CountMap { processes, methods, counts: vec![0; processes * methods] }
    }

    /// Number of processes this map covers.
    pub fn processes(&self) -> usize {
        self.processes
    }

    /// Number of update methods this map covers.
    pub fn methods(&self) -> usize {
        self.methods
    }

    fn idx(&self, p: Pid, u: MethodId) -> usize {
        debug_assert!(p.index() < self.processes && u.index() < self.methods);
        p.index() * self.methods + u.index()
    }

    /// The count `A(p, u)`.
    pub fn get(&self, p: Pid, u: MethodId) -> u64 {
        self.counts[self.idx(p, u)]
    }

    /// Set `A(p, u)` to `n`, returning the previous value.
    pub fn set(&mut self, p: Pid, u: MethodId, n: u64) -> u64 {
        let i = self.idx(p, u);
        std::mem::replace(&mut self.counts[i], n)
    }

    /// Advance `A(p, u)` by one, returning the new value.
    pub fn increment(&mut self, p: Pid, u: MethodId) -> u64 {
        let i = self.idx(p, u);
        self.counts[i] += 1;
        self.counts[i]
    }

    /// The projection `A | {ū}` of this map over the methods `deps`,
    /// used by rules FREE and CONF to ship a call's dependencies.
    pub fn project(&self, deps: &[MethodId]) -> DepMap {
        let mut entries = Vec::new();
        for p in 0..self.processes {
            for &u in deps {
                let n = self.get(Pid(p), u);
                if n > 0 {
                    entries.push((Pid(p), u, n));
                }
            }
        }
        DepMap { entries }
    }

    /// Whether the dependency map `d` is satisfied: `d ≤ self` pointwise.
    pub fn satisfies(&self, d: &DepMap) -> bool {
        d.entries.iter().all(|&(p, u, n)| self.get(p, u) >= n)
    }

    /// The first unsatisfied entry of `d`, if any (for diagnostics).
    pub fn first_unsatisfied(&self, d: &DepMap) -> Option<(Pid, MethodId, u64)> {
        d.entries.iter().copied().find(|&(p, u, n)| self.get(p, u) < n)
    }

    /// Pointwise `≤` against another full map.
    pub fn le(&self, other: &CountMap) -> bool {
        debug_assert_eq!(self.processes, other.processes);
        debug_assert_eq!(self.methods, other.methods);
        self.counts.iter().zip(&other.counts).all(|(a, b)| a <= b)
    }

    /// Total number of applied calls recorded.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }
}

impl fmt::Display for CountMap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "A[")?;
        for p in 0..self.processes {
            if p > 0 {
                write!(f, "; ")?;
            }
            write!(f, "p{p}:")?;
            for u in 0..self.methods {
                if u > 0 {
                    write!(f, ",")?;
                }
                write!(f, "{}", self.get(Pid(p), MethodId(u)))?;
            }
        }
        write!(f, "]")
    }
}

/// The dependency map `D : P → U → Nat` of Fig. 6, shipped with a call.
///
/// Stored sparsely: only non-zero entries over the methods the call's
/// method depends on. §4 of the paper notes the runtime equivalent is a
/// variable-sized array per call, sized by the method's dependency set.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct DepMap {
    entries: Vec<(Pid, MethodId, u64)>,
}

impl DepMap {
    /// The empty dependency map (for dependence-free calls).
    pub fn empty() -> Self {
        DepMap::default()
    }

    /// Build a dependency map from explicit entries.
    ///
    /// Zero-count entries are dropped since they are trivially satisfied.
    pub fn from_entries(entries: impl IntoIterator<Item = (Pid, MethodId, u64)>) -> Self {
        DepMap { entries: entries.into_iter().filter(|&(_, _, n)| n > 0).collect() }
    }

    /// Whether the map has no constraints.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterate over the non-zero entries `(p, u, D(p, u))`.
    pub fn iter(&self) -> impl Iterator<Item = (Pid, MethodId, u64)> + '_ {
        self.entries.iter().copied()
    }

    /// Number of non-zero entries (the shipped array length).
    pub fn len(&self) -> usize {
        self.entries.len()
    }
}

impl fmt::Display for DepMap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "D{{")?;
        for (i, (p, u, n)) in self.entries.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{p}.{u}≥{n}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_map_is_zero() {
        let a = CountMap::new(3, 2);
        for p in Pid::all(3) {
            for u in 0..2 {
                assert_eq!(a.get(p, MethodId(u)), 0);
            }
        }
        assert_eq!(a.total(), 0);
    }

    #[test]
    fn increment_and_set() {
        let mut a = CountMap::new(2, 2);
        assert_eq!(a.increment(Pid(0), MethodId(1)), 1);
        assert_eq!(a.increment(Pid(0), MethodId(1)), 2);
        assert_eq!(a.set(Pid(0), MethodId(1), 10), 2);
        assert_eq!(a.get(Pid(0), MethodId(1)), 10);
        assert_eq!(a.total(), 10);
    }

    #[test]
    fn projection_keeps_only_dependency_methods() {
        let mut a = CountMap::new(2, 3);
        a.set(Pid(0), MethodId(0), 5);
        a.set(Pid(0), MethodId(1), 7);
        a.set(Pid(1), MethodId(2), 2);
        let d = a.project(&[MethodId(1), MethodId(2)]);
        let entries: Vec<_> = d.iter().collect();
        assert_eq!(
            entries,
            vec![(Pid(0), MethodId(1), 7), (Pid(1), MethodId(2), 2)]
        );
    }

    #[test]
    fn satisfies_is_pointwise() {
        let mut a = CountMap::new(2, 2);
        a.set(Pid(0), MethodId(0), 3);
        let ok = DepMap::from_entries([(Pid(0), MethodId(0), 3)]);
        let too_high = DepMap::from_entries([(Pid(0), MethodId(0), 4)]);
        let elsewhere = DepMap::from_entries([(Pid(1), MethodId(1), 1)]);
        assert!(a.satisfies(&ok));
        assert!(!a.satisfies(&too_high));
        assert!(!a.satisfies(&elsewhere));
        assert!(a.satisfies(&DepMap::empty()));
        assert_eq!(
            a.first_unsatisfied(&too_high),
            Some((Pid(0), MethodId(0), 4))
        );
        assert_eq!(a.first_unsatisfied(&ok), None);
    }

    #[test]
    fn zero_entries_are_dropped() {
        let d = DepMap::from_entries([(Pid(0), MethodId(0), 0), (Pid(1), MethodId(0), 1)]);
        assert_eq!(d.len(), 1);
        assert!(!d.is_empty());
        assert!(DepMap::empty().is_empty());
    }

    #[test]
    fn le_compares_whole_maps() {
        let mut a = CountMap::new(2, 2);
        let mut b = CountMap::new(2, 2);
        a.set(Pid(0), MethodId(0), 1);
        b.set(Pid(0), MethodId(0), 2);
        assert!(a.le(&b));
        assert!(!b.le(&a));
        assert!(a.le(&a));
    }

    #[test]
    fn display_formats() {
        let mut a = CountMap::new(2, 2);
        a.set(Pid(1), MethodId(0), 4);
        assert_eq!(a.to_string(), "A[p0:0,0; p1:4,0]");
        let d = DepMap::from_entries([(Pid(1), MethodId(0), 4)]);
        assert_eq!(d.to_string(), "D{p1.u0≥4}");
    }
}
