//! Executable refinement checking — Lemma 3 of the paper.
//!
//! The lemma states that the concrete RDMA WRDT semantics (Fig. 7)
//! refines the abstract WRDT semantics (Fig. 5): for every concrete
//! trace there is an abstract execution with the same trace. The
//! concrete rules map to abstract steps as follows:
//!
//! * REDUCE at `p` ↦ CALL at `p` followed by a PROP at every other
//!   process (the rule writes the summary everywhere in one step, and
//!   reducible methods are conflict- and dependence-free, so the PROPs
//!   are always enabled);
//! * FREE / CONF at `p` ↦ CALL at `p`;
//! * FREE-APP / CONF-APP at `p` ↦ PROP at `p`;
//! * QUERY ↦ QUERY.
//!
//! [`replay`] re-executes a recorded concrete trace against a fresh
//! [`AbstractWrdt`] and reports the first abstract side condition that
//! fails, if any. Running it after a concrete execution is the
//! executable counterpart of the refinement proof — used extensively by
//! the property tests.

use crate::abstract_sem::AbstractWrdt;
use crate::coord::CoordSpec;
use crate::error::SemError;
use crate::object::ObjectSpec;
use crate::trace::{Label, Trace};

/// A refinement failure: the `index`-th label of the concrete trace was
/// not enabled in the abstract semantics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RefinementError {
    /// Position in the trace of the offending label.
    pub index: usize,
    /// The abstract side condition that failed.
    pub cause: SemError,
}

impl std::fmt::Display for RefinementError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "trace label {} not abstractly enabled: {}", self.index, self.cause)
    }
}

impl std::error::Error for RefinementError {}

/// Replay a concrete trace in the abstract semantics (Lemma 3, checked).
///
/// Returns the final abstract configuration on success, so callers can
/// additionally compare abstract and concrete states.
///
/// # Errors
///
/// [`RefinementError`] naming the first label whose abstract transition
/// was not enabled.
pub fn replay<'a, O: ObjectSpec>(
    spec: &'a O,
    coord: &'a CoordSpec,
    n: usize,
    trace: &Trace<O::Update>,
) -> Result<AbstractWrdt<'a, O>, RefinementError> {
    let mut w = AbstractWrdt::new(spec, coord, n);
    for (index, label) in trace.iter().enumerate() {
        let result = match label {
            Label::Call { process, update, .. } => {
                w.call(*process, update.clone()).map(|_| ())
            }
            Label::Prop { process, rid } => w.propagate_rid(*process, *rid),
            Label::Query { process } => {
                // Queries have no side conditions; they only read. The
                // abstract rule needs a query value, which traces do not
                // carry, so replay records the process touch only.
                let _ = process;
                Ok(())
            }
        };
        if let Err(cause) = result {
            return Err(RefinementError { index, cause });
        }
    }
    Ok(w)
}

/// Replay a trace and additionally check the abstract integrity and
/// convergence lemmas on the resulting configuration.
///
/// # Errors
///
/// As [`replay`], plus a synthesized error if an abstract guarantee
/// fails (which would indicate an unsound coordination spec rather than
/// a refinement failure).
pub fn replay_and_check<'a, O: ObjectSpec>(
    spec: &'a O,
    coord: &'a CoordSpec,
    n: usize,
    trace: &Trace<O::Update>,
) -> Result<AbstractWrdt<'a, O>, String> {
    let w = replay(spec, coord, n, trace).map_err(|e| e.to_string())?;
    if !w.check_integrity() {
        return Err("abstract integrity violated after replay".to_string());
    }
    if !w.check_convergence() {
        return Err("abstract convergence violated after replay".to_string());
    }
    Ok(w)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::demo::{Account, AccountQuery};
    use crate::ids::{Pid, Rid};
    use crate::rdma_sem::RdmaWrdt;

    #[test]
    fn concrete_account_run_refines() {
        let acc = Account::default();
        let coord = acc.coord_spec();
        let mut k = RdmaWrdt::new(&acc, &coord, 3);
        k.reduce(1, Account::deposit(10)).unwrap();
        k.reduce(2, Account::deposit(5)).unwrap();
        k.conf(0, Account::withdraw(12)).unwrap();
        k.drain();
        k.query(1, &AccountQuery::Balance);
        let w = replay(&acc, &coord, 3, k.trace()).expect("refinement holds");
        assert!(w.check_integrity());
        assert!(w.check_convergence());
        // Final abstract states match the concrete current states.
        for p in Pid::all(3) {
            assert_eq!(*w.state(p), k.current_state(p));
        }
    }

    #[test]
    fn fabricated_ill_trace_is_rejected() {
        let acc = Account::default();
        let coord = acc.coord_spec();
        // A withdraw with no prior deposit is not abstractly enabled.
        let trace = vec![Label::Call {
            process: Pid(0),
            rid: Rid::new(Pid(0), 0),
            update: Account::withdraw(1),
        }];
        let err = replay(&acc, &coord, 2, &trace).unwrap_err();
        assert_eq!(err.index, 0);
        assert!(matches!(err.cause, SemError::NotPermissible { .. }));
        assert!(err.to_string().contains("label 0"));
    }

    #[test]
    fn prop_of_unknown_call_is_rejected() {
        let acc = Account::default();
        let coord = acc.coord_spec();
        let trace = vec![Label::Prop { process: Pid(0), rid: Rid::new(Pid(1), 7) }];
        let err = replay(&acc, &coord, 2, &trace).unwrap_err();
        assert!(matches!(err.cause, SemError::UnknownCall { .. }));
    }

    #[test]
    fn replay_and_check_passes_on_good_run() {
        let acc = Account::default();
        let coord = acc.coord_spec();
        let mut k = RdmaWrdt::new(&acc, &coord, 2);
        k.reduce(0, Account::deposit(3)).unwrap();
        k.drain();
        assert!(replay_and_check(&acc, &coord, 2, k.trace()).is_ok());
    }
}
