//! Verb and event vocabulary: work-request identifiers, completion
//! statuses, and the events delivered to node applications.
//!
//! The simulator models RDMA's Reliable Connection (RC) service: posted
//! one-sided operations complete in order per issuer, and a successful
//! WRITE completion means the data has been placed in the remote
//! region (no remote CPU involved). Two-sided messages model SEND/RECV
//! through the network stack and *do* consume receiver CPU.

use bytes::Bytes;

use crate::time::SimTime;

/// A node of the simulated cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct NodeId(pub usize);

impl NodeId {
    /// Dense index for `Vec` addressing.
    pub fn index(self) -> usize {
        self.0
    }
}

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl From<usize> for NodeId {
    fn from(i: usize) -> Self {
        NodeId(i)
    }
}

/// A registered memory region of a node. Regions are registered before
/// the simulation starts and addressed as `(NodeId, RegionId)` — the
/// moral equivalent of exchanging rkeys at connection setup.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RegionId(pub usize);

impl RegionId {
    /// Dense index for `Vec` addressing.
    pub fn index(self) -> usize {
        self.0
    }
}

impl std::fmt::Display for RegionId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "mr{}", self.0)
    }
}

/// Identifier of a posted work request, unique per issuing node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct WrId(pub u64);

/// Identifier of an armed timer, unique per node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TimerId(pub u64);

/// The kind of one-sided verb a completion refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VerbKind {
    /// One-sided RDMA WRITE.
    Write,
    /// One-sided RDMA READ.
    Read,
    /// One-sided RDMA compare-and-swap.
    CompareAndSwap,
    /// Two-sided SEND (completion at the sender).
    Send,
}

/// Completion status of a work request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CompletionStatus {
    /// The operation succeeded.
    Success,
    /// The target region denied write access to this issuer (the
    /// permission mechanism Mu-style consensus uses for leader
    /// exclusion).
    AccessDenied,
    /// The request addressed memory outside the target region.
    OutOfBounds,
}

impl CompletionStatus {
    /// Whether the request succeeded.
    pub fn is_success(self) -> bool {
        self == CompletionStatus::Success
    }
}

/// An event delivered to a node application.
#[derive(Debug, Clone)]
pub enum Event {
    /// A previously armed timer fired.
    Timer {
        /// The timer that fired.
        id: TimerId,
        /// The application-chosen tag.
        tag: u64,
    },
    /// A two-sided message arrived (SEND/RECV path; costs receiver CPU).
    Message {
        /// The sending node.
        from: NodeId,
        /// The payload.
        payload: Bytes,
    },
    /// A posted work request completed.
    Completion {
        /// The completed request.
        wr: WrId,
        /// What kind of verb it was.
        kind: VerbKind,
        /// Outcome.
        status: CompletionStatus,
        /// For READ: the fetched bytes; for CAS: the 8-byte prior value.
        data: Option<Bytes>,
        /// When the operation took effect at the target.
        completed_at: SimTime,
    },
    /// A fault-plan action aimed at this node's application (e.g.
    /// "suspend your heartbeat thread", the paper's failure injection).
    Fault {
        /// The injected application-level fault.
        kind: AppFault,
    },
}

/// Application-level fault actions the fault plan can deliver.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AppFault {
    /// Suspend the heartbeat thread: the node keeps serving but stops
    /// announcing liveness, so peers will suspect it (§5 "we inject
    /// failures into a node by suspending its heartbeat thread").
    SuspendHeartbeat,
    /// Resume the heartbeat thread.
    ResumeHeartbeat,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_display() {
        assert_eq!(NodeId(3).to_string(), "n3");
        assert_eq!(RegionId(1).to_string(), "mr1");
        assert_eq!(NodeId::from(2).index(), 2);
        assert_eq!(RegionId(4).index(), 4);
    }

    #[test]
    fn status_predicate() {
        assert!(CompletionStatus::Success.is_success());
        assert!(!CompletionStatus::AccessDenied.is_success());
        assert!(!CompletionStatus::OutOfBounds.is_success());
    }
}
