//! Structured run tracing: typed events delivered to a pluggable
//! per-run sink.
//!
//! The event vocabulary spans both layers of the stack — fabric-level
//! verb activity (posted/completed) emitted by the simulator itself,
//! and protocol-level events (ring append/apply, summary writes,
//! broadcast acks, commit advancement, leader changes, failure-detector
//! suspicion) emitted by the runtime through [`Ctx::emit`] — so a
//! single sink observes a run end to end. This replaces the old
//! process-global `TRACE` boolean: sinks are installed per simulator
//! ([`Simulator::set_trace_sink`]), so concurrent runs never share
//! tracing state, and with no sink installed the hot paths pay one
//! branch and construct nothing.
//!
//! [`Ctx::emit`]: crate::Ctx::emit
//! [`Simulator::set_trace_sink`]: crate::Simulator::set_trace_sink

use std::cell::RefCell;
use std::rc::Rc;

use crate::time::SimTime;
use crate::verbs::{CompletionStatus, NodeId, VerbKind, WrId};

/// Which protocol path a call travelled — the paper's three issue
/// paths (§4) plus local queries. Shared across layers so trace events
/// and latency metrics classify calls identically.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Phase {
    /// Reducible updates: summary fold + reliable broadcast.
    Reduce,
    /// Irreducible conflict-free updates: F-ring append to every peer.
    Free,
    /// Conflicting updates: consensus through the group leader's L-ring.
    Conf,
    /// Queries: executed locally against the visible state.
    Query,
}

impl Phase {
    /// All phases, in a stable order (array-indexing friendly).
    pub const ALL: [Phase; 4] = [Phase::Reduce, Phase::Free, Phase::Conf, Phase::Query];

    /// Dense index for array addressing.
    pub fn index(self) -> usize {
        match self {
            Phase::Reduce => 0,
            Phase::Free => 1,
            Phase::Conf => 2,
            Phase::Query => 3,
        }
    }

    /// Stable lowercase label ("reduce", "free", "conf", "query").
    pub fn label(self) -> &'static str {
        match self {
            Phase::Reduce => "reduce",
            Phase::Free => "free",
            Phase::Conf => "conf",
            Phase::Query => "query",
        }
    }
}

/// Which ring buffer a ring event refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RingKind {
    /// A conflict-free buffer `F` (one per (writer, reader) pair).
    Free,
    /// A conflicting buffer `L` (one per (group, replica) pair).
    Conf,
}

/// One structured event in a run.
///
/// Runtime-level concepts (methods, synchronization groups, ring
/// sequence numbers) are carried as plain indices so the vocabulary
/// lives below the runtime yet spans it.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// A one-sided verb or two-sided send was posted.
    VerbPosted {
        /// Posting node.
        issuer: NodeId,
        /// Verb kind (WRITE/READ/CAS/SEND).
        kind: VerbKind,
        /// Target node.
        target: NodeId,
        /// Work request id (sends, which have no completion handle
        /// visible to the app, report the fabric's internal id).
        wr: WrId,
        /// Payload or read length in bytes.
        bytes: usize,
    },
    /// A posted verb completed (at the fabric; delivery to the
    /// application may be deferred by CPU contention).
    VerbCompleted {
        /// The node that posted it.
        issuer: NodeId,
        /// Verb kind.
        kind: VerbKind,
        /// Work request id.
        wr: WrId,
        /// Outcome.
        status: CompletionStatus,
    },
    /// A ring-buffer entry was appended (writer side).
    RingAppend {
        /// Free or conflicting ring.
        ring: RingKind,
        /// The appending node.
        writer: NodeId,
        /// The node hosting the ring.
        reader: NodeId,
        /// Ring sequence number of the entry.
        seq: u64,
    },
    /// A ring-buffer entry was applied to the local state (reader
    /// side).
    RingApply {
        /// Free or conflicting ring.
        ring: RingKind,
        /// The applying node.
        reader: NodeId,
        /// The node that wrote the entry.
        writer: NodeId,
        /// Ring sequence number of the entry.
        seq: u64,
    },
    /// Several contiguous ring entries were coalesced into a single
    /// one-sided WRITE (doorbell batching). Emitted in addition to the
    /// per-entry [`TraceEvent::RingAppend`] events, and only when the
    /// batch spans more than one slot.
    RingBatch {
        /// Free or conflicting ring.
        ring: RingKind,
        /// The appending node.
        writer: NodeId,
        /// The node hosting the ring.
        reader: NodeId,
        /// Ring sequence number of the first entry in the batch.
        first_seq: u64,
        /// Number of contiguous entries the WRITE spans.
        count: u64,
    },
    /// A reducible summary slot was written to a peer.
    SummaryWrite {
        /// The summarizing node.
        issuer: NodeId,
        /// The peer receiving the summary.
        target: NodeId,
        /// Method index the summary folds.
        method: usize,
        /// Summary slot version (seqlock word).
        version: u64,
    },
    /// An update or query call was acknowledged to the client.
    Ack {
        /// The acknowledging (issuing) node.
        node: NodeId,
        /// Method index of the call.
        method: usize,
        /// Which protocol path it travelled.
        phase: Phase,
        /// For conflicting calls: the synchronization group.
        group: Option<usize>,
        /// For conflicting calls: the L-ring sequence number the call
        /// committed at (correlates with [`TraceEvent::CommitAdvance`]).
        seq: Option<u64>,
    },
    /// A group leader advanced the commit index.
    CommitAdvance {
        /// The leader node.
        node: NodeId,
        /// Synchronization group.
        group: usize,
        /// New commit index (entries with `seq <= commit` are decided).
        commit: u64,
    },
    /// A node took over leadership of a group.
    LeaderChange {
        /// Synchronization group.
        group: usize,
        /// The new leader.
        leader: NodeId,
        /// The new epoch/ballot.
        epoch: u64,
    },
    /// A leader observed a higher epoch and stepped down.
    Deposed {
        /// Synchronization group.
        group: usize,
        /// The deposed node.
        node: NodeId,
        /// The epoch that deposed it.
        epoch: u64,
    },
    /// The pull failure detector started suspecting a peer.
    FdSuspect {
        /// The suspecting node.
        node: NodeId,
        /// The peer whose heartbeat stalled.
        suspect: NodeId,
    },
    /// The pull failure detector observed counter progress on a peer
    /// it had suspected, and cleared the suspicion.
    FdRecover {
        /// The observing node.
        node: NodeId,
        /// The peer whose heartbeat resumed.
        peer: NodeId,
    },
    /// A node resumed its heartbeat but stays excluded from the
    /// workload: the suspension already halted its driver, and quota
    /// adoption or leader takeover by peers is not rolled back
    /// (crash-stop at the protocol level).
    ResumedButExcluded {
        /// The resumed node.
        node: NodeId,
    },
}

/// A trace event stamped with the virtual time it was recorded at.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceRecord {
    /// Virtual time of the event.
    pub at: SimTime,
    /// The event.
    pub event: TraceEvent,
}

/// A per-run consumer of trace events.
///
/// Installed on a simulator with [`Simulator::set_trace_sink`]; events
/// are delivered synchronously as they happen, in virtual-time order.
///
/// [`Simulator::set_trace_sink`]: crate::Simulator::set_trace_sink
pub trait TraceSink {
    /// Record one event observed at virtual time `now`.
    fn record(&mut self, now: SimTime, event: &TraceEvent);
}

/// A sink that prints one line per event to stderr.
#[derive(Debug, Default)]
pub struct StderrSink;

impl TraceSink for StderrSink {
    fn record(&mut self, now: SimTime, event: &TraceEvent) {
        eprintln!("[{now}] {event:?}");
    }
}

/// Shared handle to the records collected by a [`CollectingSink`].
///
/// The simulation is single-threaded, so an `Rc<RefCell<..>>` suffices:
/// the sink writes during the run, the harness drains afterwards.
#[derive(Debug, Clone, Default)]
pub struct TraceBuffer {
    records: Rc<RefCell<Vec<TraceRecord>>>,
}

impl TraceBuffer {
    /// Number of records collected so far.
    pub fn len(&self) -> usize {
        self.records.borrow().len()
    }

    /// Whether nothing has been collected.
    pub fn is_empty(&self) -> bool {
        self.records.borrow().is_empty()
    }

    /// Move the collected records out, leaving the buffer empty.
    pub fn take(&self) -> Vec<TraceRecord> {
        std::mem::take(&mut *self.records.borrow_mut())
    }

    /// Clone the collected records.
    pub fn snapshot(&self) -> Vec<TraceRecord> {
        self.records.borrow().clone()
    }
}

/// A sink that appends every event to a [`TraceBuffer`].
#[derive(Debug, Default)]
pub struct CollectingSink {
    buffer: TraceBuffer,
}

impl CollectingSink {
    /// A new sink plus the buffer its records land in.
    pub fn new() -> (CollectingSink, TraceBuffer) {
        let buffer = TraceBuffer::default();
        (CollectingSink { buffer: buffer.clone() }, buffer)
    }
}

impl TraceSink for CollectingSink {
    fn record(&mut self, now: SimTime, event: &TraceEvent) {
        self.buffer.records.borrow_mut().push(TraceRecord { at: now, event: event.clone() });
    }
}

/// The fabric's trace attachment point: either no sink (events are
/// never constructed) or one boxed sink.
#[derive(Default)]
pub(crate) struct TraceHandle {
    sink: Option<Box<dyn TraceSink>>,
}

impl TraceHandle {
    pub(crate) fn set(&mut self, sink: Option<Box<dyn TraceSink>>) {
        self.sink = sink;
    }

    /// Whether a sink is installed (the hot-path guard).
    #[inline]
    pub(crate) fn enabled(&self) -> bool {
        self.sink.is_some()
    }

    /// Deliver the event built by `make` iff a sink is installed.
    #[inline]
    pub(crate) fn emit(&mut self, now: SimTime, make: impl FnOnce() -> TraceEvent) -> bool {
        match &mut self.sink {
            Some(sink) => {
                sink.record(now, &make());
                true
            }
            None => false,
        }
    }
}

impl std::fmt::Debug for TraceHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceHandle").field("enabled", &self.enabled()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_labels_and_indices_are_stable() {
        for (i, p) in Phase::ALL.iter().enumerate() {
            assert_eq!(p.index(), i);
        }
        assert_eq!(Phase::Reduce.label(), "reduce");
        assert_eq!(Phase::Conf.label(), "conf");
    }

    #[test]
    fn collecting_sink_accumulates_and_drains() {
        let (mut sink, buf) = CollectingSink::new();
        assert!(buf.is_empty());
        sink.record(SimTime(5), &TraceEvent::FdSuspect { node: NodeId(0), suspect: NodeId(1) });
        sink.record(
            SimTime(9),
            &TraceEvent::CommitAdvance { node: NodeId(2), group: 0, commit: 3 },
        );
        assert_eq!(buf.len(), 2);
        let records = buf.take();
        assert_eq!(records[0].at, SimTime(5));
        assert!(matches!(records[1].event, TraceEvent::CommitAdvance { commit: 3, .. }));
        assert!(buf.is_empty(), "take drains");
    }

    #[test]
    fn handle_skips_construction_without_sink() {
        let mut h = TraceHandle::default();
        assert!(!h.enabled());
        let emitted = h.emit(SimTime(0), || panic!("must not construct"));
        assert!(!emitted);
        let (sink, buf) = CollectingSink::new();
        h.set(Some(Box::new(sink)));
        assert!(h.enabled());
        assert!(h.emit(SimTime(1), || TraceEvent::FdSuspect {
            node: NodeId(0),
            suspect: NodeId(1)
        }));
        assert_eq!(buf.len(), 1);
    }
}
