//! Fault injection.
//!
//! Two levels, matching the paper's evaluation:
//!
//! * [`Fault::SuspendHeartbeat`] — the injection §5 actually uses:
//!   the node's application is told to stop its heartbeat thread, so
//!   peers *suspect* it while it keeps executing. Delivered to the
//!   application as an [`crate::verbs::Event::Fault`].
//! * [`Fault::Crash`] — a full fail-stop: the node's application stops
//!   executing (no events are delivered, no new verbs are posted).
//!   Its registered memory remains remotely accessible, as on real
//!   RDMA hardware where the NIC can serve DMA while the host CPU is
//!   wedged — which is precisely what makes remote-read recovery of the
//!   reliable-broadcast backup slot possible.
//! * [`Fault::TornWrites`] — a fabric-level mode: subsequent one-sided
//!   writes to the given node land in two halves with a gap, exposing
//!   readers that do not honor the canary-bit protocol of §4.
//! * [`Fault::DelaySpike`] — a fabric-level mode: for a bounded window
//!   all traffic to or from the node is slowed by a factor, modelling a
//!   congested link or a garbage-collected NIC driver. Stretches
//!   election and detection windows without silencing anyone.
//! * [`Fault::Partition`] / [`Fault::Heal`] — a fabric-level link
//!   outage between two node sets. An RC transport retransmits through
//!   transient outages, so cross-partition verbs and messages are
//!   *parked*, not dropped, and land (in their original per-channel
//!   order) when the partition heals. A partition that is never healed
//!   parks that traffic forever — generated schedules always pair the
//!   two.
//! * [`Fault::DuplicateCompletion`] — the next completion event
//!   delivered to the node is delivered twice, modelling the at-least-
//!   once completion semantics seen across QP error recovery. Exposes
//!   completion handlers that are not idempotent.

use crate::time::{SimDuration, SimTime};
use crate::verbs::NodeId;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A fault-plan action.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Fault {
    /// Tell the node's application to suspend its heartbeat.
    SuspendHeartbeat(NodeId),
    /// Tell the node's application to resume its heartbeat.
    ResumeHeartbeat(NodeId),
    /// Fail-stop the node (memory stays remotely readable/writable).
    Crash(NodeId),
    /// From now on, one-sided writes landing at this node are torn in
    /// two (payload first, last byte later), stressing canary checks.
    TornWrites(NodeId),
    /// For the given duration, all fabric traffic to or from the node
    /// is slowed by the given factor.
    DelaySpike(NodeId, u32, SimDuration),
    /// Cut the links between the two node sets. Cross-partition verbs
    /// and messages are parked until [`Fault::Heal`].
    Partition(Vec<NodeId>, Vec<NodeId>),
    /// Heal the active partition, releasing all parked traffic.
    Heal,
    /// The next completion delivered to the node arrives twice.
    DuplicateCompletion(NodeId),
    /// Restart a previously [`Fault::Crash`]ed node. Volatile regions
    /// are zeroed; durable regions keep what landed remotely or was
    /// fenced locally. If the flag is `true`, local writes made after
    /// the last [`crate::Ctx::fence_region`] are lost (power-fail
    /// semantics); if `false`, the cache line survived (orderly kill).
    /// The application's `on_restart` hook runs for its recovery pass.
    /// A `Restart` of a node that never crashed is a no-op, so plan
    /// shrinkers may drop the crash independently.
    Restart(NodeId, bool),
}

impl Fault {
    /// The node the fault targets, for single-node faults.
    pub fn target(&self) -> Option<NodeId> {
        match self {
            Fault::SuspendHeartbeat(n)
            | Fault::ResumeHeartbeat(n)
            | Fault::Crash(n)
            | Fault::TornWrites(n)
            | Fault::DelaySpike(n, _, _)
            | Fault::DuplicateCompletion(n)
            | Fault::Restart(n, _) => Some(*n),
            Fault::Partition(_, _) | Fault::Heal => None,
        }
    }

    /// Render as a Rust expression (used by [`FaultPlan::to_literal`]).
    fn literal(&self) -> String {
        fn nodes(v: &[NodeId]) -> String {
            let inner: Vec<String> =
                v.iter().map(|n| format!("NodeId({})", n.0)).collect();
            format!("vec![{}]", inner.join(", "))
        }
        match self {
            Fault::SuspendHeartbeat(n) => format!("Fault::SuspendHeartbeat(NodeId({}))", n.0),
            Fault::ResumeHeartbeat(n) => format!("Fault::ResumeHeartbeat(NodeId({}))", n.0),
            Fault::Crash(n) => format!("Fault::Crash(NodeId({}))", n.0),
            Fault::TornWrites(n) => format!("Fault::TornWrites(NodeId({}))", n.0),
            Fault::DelaySpike(n, f, d) => format!(
                "Fault::DelaySpike(NodeId({}), {}, SimDuration::nanos({}))",
                n.0,
                f,
                d.as_nanos()
            ),
            Fault::Partition(a, b) => {
                format!("Fault::Partition({}, {})", nodes(a), nodes(b))
            }
            Fault::Heal => "Fault::Heal".to_string(),
            Fault::DuplicateCompletion(n) => {
                format!("Fault::DuplicateCompletion(NodeId({}))", n.0)
            }
            Fault::Restart(n, lose) => {
                format!("Fault::Restart(NodeId({}), {})", n.0, lose)
            }
        }
    }
}

/// A schedule of faults to inject at given virtual times.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    entries: Vec<(SimTime, Fault)>,
}

/// Bounds for [`FaultPlan::generate`].
#[derive(Debug, Clone)]
pub struct FaultGenConfig {
    /// Cluster size; targets are drawn from `0..nodes`.
    pub nodes: usize,
    /// Faults are scheduled in `(warmup, horizon]` where `warmup` is
    /// an eighth of the horizon.
    pub horizon: SimTime,
    /// Upper bound on primary faults per plan (paired entries such as
    /// `Heal` / `ResumeHeartbeat` and election-window chasers ride on
    /// top, so plans can run a few entries longer).
    pub max_faults: usize,
    /// Max distinct nodes silenced (crashed or heartbeat-suspended).
    /// Keep this below a majority or convergence is unachievable.
    pub silence_budget: usize,
    /// Nodes that lead synchronization groups; half of all targeted
    /// faults are biased toward these.
    pub leaders: Vec<NodeId>,
    /// When `true`, every generated `Crash` is paired with a
    /// [`Fault::Restart`] 10–60µs later (half of them losing unfenced
    /// writes). Off by default so crash-stop campaigns and their golden
    /// fingerprints are unchanged.
    pub restarts: bool,
}

impl FaultGenConfig {
    /// Sensible bounds for an `nodes`-replica cluster: at most a
    /// minority silenced, faults spread over `horizon`.
    pub fn for_cluster(nodes: usize, horizon: SimTime) -> Self {
        FaultGenConfig {
            nodes,
            horizon,
            max_faults: 6,
            silence_budget: nodes.saturating_sub(1) / 2,
            leaders: vec![NodeId(0)],
            restarts: false,
        }
    }

    /// Override the leader set used for target bias.
    pub fn with_leaders(mut self, leaders: Vec<NodeId>) -> Self {
        self.leaders = leaders;
        self
    }

    /// Override the primary-fault budget.
    pub fn with_max_faults(mut self, max_faults: usize) -> Self {
        self.max_faults = max_faults;
        self
    }

    /// Enable crash-restart pairing: see [`FaultGenConfig::restarts`].
    pub fn with_restarts(mut self, restarts: bool) -> Self {
        self.restarts = restarts;
        self
    }
}

impl FaultPlan {
    /// An empty plan.
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Schedule `fault` at time `at`.
    pub fn at(mut self, at: SimTime, fault: Fault) -> Self {
        self.entries.push((at, fault));
        self
    }

    /// A plan from pre-built entries (used by shrinkers).
    pub fn from_entries(entries: Vec<(SimTime, Fault)>) -> Self {
        FaultPlan { entries }
    }

    /// The scheduled entries, sorted by time.
    pub fn entries(&self) -> Vec<(SimTime, Fault)> {
        let mut v = self.entries.clone();
        v.sort_by_key(|&(t, _)| t);
        v
    }

    /// Whether the plan is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of scheduled entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Render the plan as a paste-able Rust expression, for minimal
    /// repros printed by the chaos campaign driver.
    pub fn to_literal(&self) -> String {
        let mut s = String::from("FaultPlan::new()");
        for (t, f) in self.entries() {
            s.push_str(&format!("\n    .at(SimTime({}), {})", t.0, f.literal()));
        }
        s
    }

    /// Sample a randomized, deterministic fault schedule.
    ///
    /// The same `(seed, config)` always yields the same plan. Targeted
    /// faults are biased toward `config.leaders` (half the draws), and
    /// a leader crash or suspension is often chased by a second fault
    /// scheduled inside the detection/election window that follows it —
    /// the most schedule-sensitive stretch of the protocol.
    ///
    /// Generated plans are *survivable by construction*: at most
    /// `silence_budget` distinct nodes are crashed or suspended, and
    /// every `Partition` is paired with a `Heal` inside the horizon.
    pub fn generate(seed: u64, config: &FaultGenConfig) -> FaultPlan {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xc4a0_5eed);
        let mut plan = FaultPlan::new();
        let nodes = config.nodes.max(1);
        let warmup = config.horizon.0 / 8;
        let span = config.horizon.0.saturating_sub(warmup).max(1);
        let mut silenced: Vec<NodeId> = Vec::new();
        let mut partition_open = false;
        let n_faults = rng.gen_range(1..=config.max_faults.max(1));
        for _ in 0..n_faults {
            let t = SimTime(warmup + rng.gen_range(0..span));
            // Half of all targeted faults hit a leader.
            let target = if !config.leaders.is_empty() && rng.gen_bool(0.5) {
                config.leaders[rng.gen_range(0..config.leaders.len())]
            } else {
                NodeId(rng.gen_range(0..nodes))
            };
            match rng.gen_range(0u32..12) {
                // Crash / suspend consume the silence budget; a victim
                // that leads a group usually gets an election-window
                // chaser ~30us later, when detection and takeover run.
                0..=4 => {
                    if silenced.len() >= config.silence_budget
                        || silenced.contains(&target)
                    {
                        plan = plan.at(t, Fault::TornWrites(target));
                        continue;
                    }
                    silenced.push(target);
                    let crash = rng.gen_bool(0.6);
                    if crash {
                        plan = plan.at(t, Fault::Crash(target));
                        // Crash-restart mode: every crash is paired
                        // with a restart shortly after (draws stay
                        // inside the gate so default plans are
                        // byte-identical to crash-stop ones).
                        if config.restarts {
                            let dt = SimDuration::micros(rng.gen_range(10..60));
                            let lose = rng.gen_bool(0.5);
                            plan = plan.at(t + dt, Fault::Restart(target, lose));
                        }
                    } else {
                        plan = plan.at(t, Fault::SuspendHeartbeat(target));
                        if rng.gen_bool(0.5) {
                            let dt = SimDuration::micros(rng.gen_range(5..60));
                            plan = plan.at(t + dt, Fault::ResumeHeartbeat(target));
                        }
                    }
                    if config.leaders.contains(&target) && rng.gen_bool(0.6) {
                        let chaser_at = t + SimDuration::micros(rng.gen_range(20..50));
                        let other =
                            NodeId((target.0 + 1 + rng.gen_range(0..nodes - 1)) % nodes);
                        let chaser = if rng.gen_bool(0.5) {
                            Fault::TornWrites(other)
                        } else {
                            Fault::DelaySpike(
                                other,
                                rng.gen_range(2..10),
                                SimDuration::micros(rng.gen_range(10..40)),
                            )
                        };
                        plan = plan.at(chaser_at, chaser);
                    }
                }
                5..=6 => plan = plan.at(t, Fault::TornWrites(target)),
                7..=8 => {
                    plan = plan.at(
                        t,
                        Fault::DelaySpike(
                            target,
                            rng.gen_range(2..16),
                            SimDuration::micros(rng.gen_range(5..60)),
                        ),
                    );
                }
                9..=10 => plan = plan.at(t, Fault::DuplicateCompletion(target)),
                _ => {
                    // One partition per plan, always healed in-horizon.
                    if partition_open || nodes < 3 {
                        plan = plan.at(t, Fault::DuplicateCompletion(target));
                        continue;
                    }
                    partition_open = true;
                    let minority = rng.gen_range(1..=(nodes - 1) / 2);
                    // Draw `minority` distinct nodes for side A.
                    let mut side_a: Vec<NodeId> = Vec::new();
                    while side_a.len() < minority {
                        let n = NodeId(rng.gen_range(0..nodes));
                        if !side_a.contains(&n) {
                            side_a.push(n);
                        }
                    }
                    let side_b: Vec<NodeId> = (0..nodes)
                        .map(NodeId)
                        .filter(|n| !side_a.contains(n))
                        .collect();
                    let heal_at = t + SimDuration::micros(rng.gen_range(5..40));
                    plan = plan
                        .at(t, Fault::Partition(side_a, side_b))
                        .at(heal_at, Fault::Heal);
                }
            }
        }
        plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn plan_sorts_by_time() {
        let plan = FaultPlan::new()
            .at(SimTime::ZERO + SimDuration::micros(50), Fault::Crash(NodeId(1)))
            .at(SimTime::ZERO + SimDuration::micros(10), Fault::SuspendHeartbeat(NodeId(2)));
        let entries = plan.entries();
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].1, Fault::SuspendHeartbeat(NodeId(2)));
        assert_eq!(entries[1].1, Fault::Crash(NodeId(1)));
        assert!(!plan.is_empty());
        assert_eq!(plan.len(), 2);
        assert!(FaultPlan::new().is_empty());
    }

    #[test]
    fn fault_targets() {
        assert_eq!(Fault::Crash(NodeId(3)).target(), Some(NodeId(3)));
        assert_eq!(Fault::TornWrites(NodeId(1)).target(), Some(NodeId(1)));
        assert_eq!(Fault::ResumeHeartbeat(NodeId(0)).target(), Some(NodeId(0)));
        assert_eq!(
            Fault::DelaySpike(NodeId(2), 4, SimDuration::micros(10)).target(),
            Some(NodeId(2))
        );
        assert_eq!(Fault::DuplicateCompletion(NodeId(1)).target(), Some(NodeId(1)));
        assert_eq!(Fault::Heal.target(), None);
        assert_eq!(
            Fault::Partition(vec![NodeId(0)], vec![NodeId(1)]).target(),
            None
        );
    }

    #[test]
    fn generate_is_deterministic() {
        let cfg = FaultGenConfig::for_cluster(5, SimTime(120_000));
        let a = FaultPlan::generate(42, &cfg);
        let b = FaultPlan::generate(42, &cfg);
        assert_eq!(a, b);
        assert!(!a.is_empty());
        // A different seed should (for this pair) differ.
        let c = FaultPlan::generate(43, &cfg);
        assert_ne!(a, c);
    }

    #[test]
    fn generate_respects_budgets() {
        let cfg = FaultGenConfig::for_cluster(5, SimTime(120_000)).with_max_faults(8);
        for seed in 0..200 {
            let plan = FaultPlan::generate(seed, &cfg);
            let entries = plan.entries();
            let mut silenced: Vec<NodeId> = Vec::new();
            let mut partitions = 0usize;
            let mut heals = 0usize;
            for (t, fault) in &entries {
                assert!(*t <= SimTime(200_000), "fault past horizon+pairing slack");
                match fault {
                    Fault::Crash(n) | Fault::SuspendHeartbeat(n) if !silenced.contains(n) => {
                        silenced.push(*n);
                    }
                    Fault::Partition(a, b) => {
                        partitions += 1;
                        assert!(!a.is_empty() && !b.is_empty());
                        assert!(a.len() + b.len() == 5);
                        assert!(a.len() <= 2, "majority side must stay connected");
                    }
                    Fault::Heal => heals += 1,
                    _ => {}
                }
            }
            assert!(silenced.len() <= 2, "seed {seed} silences a majority");
            assert_eq!(partitions, heals, "seed {seed} leaves a partition open");
        }
    }

    #[test]
    fn restarts_are_gated_and_paired() {
        let base = FaultGenConfig::for_cluster(5, SimTime(120_000)).with_max_faults(8);
        let with = base.clone().with_restarts(true);
        for seed in 0..200 {
            // Off by default: no Restart ever appears, and the plan is
            // byte-identical to the pre-restart generator's output.
            let a = FaultPlan::generate(seed, &base);
            assert!(
                a.entries().iter().all(|(_, f)| !matches!(f, Fault::Restart(..))),
                "seed {seed} emitted a Restart without opting in"
            );
            // On: every Crash gets a later Restart of the same node,
            // and every Restart follows a Crash.
            let b = FaultPlan::generate(seed, &with);
            let entries = b.entries();
            for (t, f) in &entries {
                match f {
                    Fault::Crash(n) => assert!(
                        entries.iter().any(
                            |(tr, fr)| matches!(fr, Fault::Restart(m, _) if m == n) && tr > t
                        ),
                        "seed {seed}: crash of {n:?} never restarts"
                    ),
                    Fault::Restart(n, _) => assert!(
                        entries.iter().any(|(tc, fc)| *fc == Fault::Crash(*n) && tc < t),
                        "seed {seed}: restart of {n:?} without a prior crash"
                    ),
                    _ => {}
                }
            }
        }
    }

    #[test]
    fn literal_round_trips_shape() {
        let plan = FaultPlan::new()
            .at(SimTime(40_000), Fault::Crash(NodeId(0)))
            .at(
                SimTime(60_000),
                Fault::DelaySpike(NodeId(1), 8, SimDuration::micros(20)),
            )
            .at(
                SimTime(70_000),
                Fault::Partition(vec![NodeId(0)], vec![NodeId(1), NodeId(2)]),
            )
            .at(SimTime(90_000), Fault::Heal);
        let lit = plan.to_literal();
        assert!(lit.starts_with("FaultPlan::new()"));
        assert!(lit.contains(".at(SimTime(40000), Fault::Crash(NodeId(0)))"));
        assert!(lit.contains("Fault::DelaySpike(NodeId(1), 8, SimDuration::nanos(20000))"));
        assert!(lit.contains("Fault::Partition(vec![NodeId(0)], vec![NodeId(1), NodeId(2)])"));
        assert!(lit.contains("Fault::Heal"));
    }
}
