//! Fault injection.
//!
//! Two levels, matching the paper's evaluation:
//!
//! * [`Fault::SuspendHeartbeat`] — the injection §5 actually uses:
//!   the node's application is told to stop its heartbeat thread, so
//!   peers *suspect* it while it keeps executing. Delivered to the
//!   application as an [`crate::verbs::Event::Fault`].
//! * [`Fault::Crash`] — a full fail-stop: the node's application stops
//!   executing (no events are delivered, no new verbs are posted).
//!   Its registered memory remains remotely accessible, as on real
//!   RDMA hardware where the NIC can serve DMA while the host CPU is
//!   wedged — which is precisely what makes remote-read recovery of the
//!   reliable-broadcast backup slot possible.
//! * [`Fault::TornWrites`] — a fabric-level mode: subsequent one-sided
//!   writes to the given node land in two halves with a gap, exposing
//!   readers that do not honor the canary-bit protocol of §4.

use crate::time::SimTime;
use crate::verbs::NodeId;

/// A fault-plan action.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Tell the node's application to suspend its heartbeat.
    SuspendHeartbeat(NodeId),
    /// Tell the node's application to resume its heartbeat.
    ResumeHeartbeat(NodeId),
    /// Fail-stop the node (memory stays remotely readable/writable).
    Crash(NodeId),
    /// From now on, one-sided writes landing at this node are torn in
    /// two (payload first, last byte later), stressing canary checks.
    TornWrites(NodeId),
}

impl Fault {
    /// The node the fault targets.
    pub fn target(self) -> NodeId {
        match self {
            Fault::SuspendHeartbeat(n)
            | Fault::ResumeHeartbeat(n)
            | Fault::Crash(n)
            | Fault::TornWrites(n) => n,
        }
    }
}

/// A schedule of faults to inject at given virtual times.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    entries: Vec<(SimTime, Fault)>,
}

impl FaultPlan {
    /// An empty plan.
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Schedule `fault` at time `at`.
    pub fn at(mut self, at: SimTime, fault: Fault) -> Self {
        self.entries.push((at, fault));
        self
    }

    /// The scheduled entries, sorted by time.
    pub fn entries(&self) -> Vec<(SimTime, Fault)> {
        let mut v = self.entries.clone();
        v.sort_by_key(|&(t, _)| t);
        v
    }

    /// Whether the plan is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn plan_sorts_by_time() {
        let plan = FaultPlan::new()
            .at(SimTime::ZERO + SimDuration::micros(50), Fault::Crash(NodeId(1)))
            .at(SimTime::ZERO + SimDuration::micros(10), Fault::SuspendHeartbeat(NodeId(2)));
        let entries = plan.entries();
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].1, Fault::SuspendHeartbeat(NodeId(2)));
        assert_eq!(entries[1].1, Fault::Crash(NodeId(1)));
        assert!(!plan.is_empty());
        assert!(FaultPlan::new().is_empty());
    }

    #[test]
    fn fault_targets() {
        assert_eq!(Fault::Crash(NodeId(3)).target(), NodeId(3));
        assert_eq!(Fault::TornWrites(NodeId(1)).target(), NodeId(1));
        assert_eq!(Fault::ResumeHeartbeat(NodeId(0)).target(), NodeId(0));
    }
}
