//! The latency and CPU-cost model of the simulated cluster.
//!
//! The Hamband evaluation hinges on the *relative* costs of the three
//! communication mechanisms available on an RDMA-equipped cluster:
//!
//! 1. **one-sided verbs** (WRITE/READ/CAS) — 1–2 µs wire latency, no
//!    remote CPU involvement, tiny posting cost at the issuer;
//! 2. **two-sided messages** (SEND/RECV through the network and OS
//!    stack, as the message-passing CRDT baseline uses) — tens of µs
//!    and a receive-path CPU cost at the target;
//! 3. **local computation** — order of 0.1 µs per call.
//!
//! The default numbers below are calibrated from the paper's own
//! reports (Mu consensus commits in ~1.3 µs; message-passing CRDTs show
//! ~23× the response time of Hamband; 40 Gbps links ≈ 0.2 ns/byte) and
//! the DARE/Mu literature. Absolute values are synthetic; the *ratios*
//! are what the reproduction preserves.

use rand::rngs::StdRng;
use rand::Rng;

use crate::time::SimDuration;

/// Latency/cost parameters of the simulated fabric.
#[derive(Debug, Clone)]
pub struct LatencyModel {
    /// One-way latency of a one-sided WRITE before per-byte cost.
    pub write_base: SimDuration,
    /// Round-trip latency of a one-sided READ before per-byte cost.
    pub read_base: SimDuration,
    /// Round-trip latency of a one-sided CAS (dearer than READ; the
    /// paper's §2 motivates the single-writer design by this cost).
    pub cas_base: SimDuration,
    /// One-way latency of a two-sided message before per-byte cost
    /// (network + OS stack).
    pub msg_base: SimDuration,
    /// Per-byte wire cost (applies to all transfers).
    pub per_byte_ns: f64,
    /// CPU time the issuer spends posting any verb or message.
    pub post_cost: SimDuration,
    /// NIC transmit serialization cost per verb (limits per-node
    /// injection rate).
    pub nic_tx_cost: SimDuration,
    /// CPU time a receiver spends in the network stack per delivered
    /// two-sided message (zero for one-sided traffic — the whole point).
    pub recv_cpu_cost: SimDuration,
    /// CPU time to execute one data-type method locally.
    pub apply_cost: SimDuration,
    /// Relative jitter amplitude (0.1 = ±10 %), applied to wire
    /// latencies with a deterministic RNG.
    pub jitter: f64,
}

impl Default for LatencyModel {
    fn default() -> Self {
        LatencyModel {
            write_base: SimDuration::nanos(1_000),
            read_base: SimDuration::nanos(2_000),
            cas_base: SimDuration::nanos(2_600),
            msg_base: SimDuration::nanos(25_000),
            per_byte_ns: 0.2,
            post_cost: SimDuration::nanos(60),
            nic_tx_cost: SimDuration::nanos(110),
            recv_cpu_cost: SimDuration::nanos(3_200),
            apply_cost: SimDuration::nanos(150),
            jitter: 0.08,
        }
    }
}

impl LatencyModel {
    /// A model with zero jitter, for bit-exact tests.
    pub fn deterministic() -> Self {
        LatencyModel { jitter: 0.0, ..LatencyModel::default() }
    }

    fn jittered(&self, base: SimDuration, len: usize, rng: &mut StdRng) -> SimDuration {
        let wire = base + SimDuration::nanos((self.per_byte_ns * len as f64) as u64);
        if self.jitter == 0.0 {
            wire
        } else {
            let f = 1.0 + rng.gen_range(-self.jitter..=self.jitter);
            wire.mul_f64(f)
        }
    }

    /// Sampled latency of a one-sided WRITE of `len` bytes.
    pub fn write_latency(&self, len: usize, rng: &mut StdRng) -> SimDuration {
        self.jittered(self.write_base, len, rng)
    }

    /// Sampled round-trip latency of a one-sided READ of `len` bytes.
    pub fn read_latency(&self, len: usize, rng: &mut StdRng) -> SimDuration {
        self.jittered(self.read_base, len, rng)
    }

    /// Sampled round-trip latency of a CAS.
    pub fn cas_latency(&self, rng: &mut StdRng) -> SimDuration {
        self.jittered(self.cas_base, 8, rng)
    }

    /// Sampled one-way latency of a two-sided message of `len` bytes.
    pub fn msg_latency(&self, len: usize, rng: &mut StdRng) -> SimDuration {
        self.jittered(self.msg_base, len, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn deterministic_model_has_no_jitter() {
        let m = LatencyModel::deterministic();
        let mut r1 = StdRng::seed_from_u64(1);
        let mut r2 = StdRng::seed_from_u64(2);
        assert_eq!(m.write_latency(100, &mut r1), m.write_latency(100, &mut r2));
        assert_eq!(m.write_latency(0, &mut r1), m.write_base);
    }

    #[test]
    fn per_byte_cost_scales() {
        let m = LatencyModel::deterministic();
        let mut rng = StdRng::seed_from_u64(0);
        let small = m.write_latency(10, &mut rng);
        let large = m.write_latency(10_000, &mut rng);
        assert!(large > small);
        assert_eq!(large.as_nanos() - m.write_base.as_nanos(), 2_000);
    }

    #[test]
    fn cost_ordering_matches_rdma_reality() {
        let m = LatencyModel::default();
        assert!(m.write_base < m.read_base);
        assert!(m.read_base < m.cas_base);
        assert!(m.cas_base < m.msg_base);
        assert!(m.recv_cpu_cost > SimDuration::ZERO);
    }

    #[test]
    fn jitter_stays_within_bounds() {
        let m = LatencyModel::default();
        let mut rng = StdRng::seed_from_u64(7);
        let base = m.write_base.as_nanos() as f64;
        for _ in 0..500 {
            let l = m.write_latency(0, &mut rng).as_nanos() as f64;
            assert!(l >= base * (1.0 - m.jitter) - 1.0);
            assert!(l <= base * (1.0 + m.jitter) + 1.0);
        }
    }

    #[test]
    fn same_seed_same_samples() {
        let m = LatencyModel::default();
        let a: Vec<_> = {
            let mut rng = StdRng::seed_from_u64(42);
            (0..10).map(|_| m.msg_latency(64, &mut rng)).collect()
        };
        let b: Vec<_> = {
            let mut rng = StdRng::seed_from_u64(42);
            (0..10).map(|_| m.msg_latency(64, &mut rng)).collect()
        };
        assert_eq!(a, b);
    }
}
