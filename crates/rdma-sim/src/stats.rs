//! Fabric-level traffic statistics, for reports and ablations.

/// Counters of simulated traffic, global and per node.
#[derive(Debug, Clone, Default)]
pub struct Stats {
    /// One-sided WRITE verbs posted.
    pub writes: u64,
    /// One-sided READ verbs posted.
    pub reads: u64,
    /// One-sided CAS verbs posted.
    pub cas: u64,
    /// Two-sided messages sent.
    pub messages: u64,
    /// Total bytes moved by one-sided verbs.
    pub one_sided_bytes: u64,
    /// Total bytes moved by two-sided messages.
    pub message_bytes: u64,
    /// Trace events delivered to the installed sink (0 with no sink).
    pub trace_events: u64,
    /// Ring-slot WRITEs posted (each may span several slots when
    /// doorbell batching coalesces contiguous entries). A subset of
    /// `writes`; reported by the runtime via
    /// [`Ctx::note_ring_write`](crate::Ctx::note_ring_write).
    pub ring_writes: u64,
    /// Ring slots carried by those WRITEs; `ring_slots / ring_writes`
    /// is the achieved batching factor.
    pub ring_slots: u64,
    /// Per-node posted verb counts (writes + reads + cas + sends).
    pub per_node_ops: Vec<u64>,
}

impl Stats {
    /// Zeroed statistics for a cluster of `n` nodes.
    pub fn new(n: usize) -> Self {
        Stats { per_node_ops: vec![0; n], ..Stats::default() }
    }

    /// Total one-sided verbs posted.
    pub fn one_sided_total(&self) -> u64 {
        self.writes + self.reads + self.cas
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals() {
        let mut s = Stats::new(2);
        s.writes = 3;
        s.reads = 2;
        s.cas = 1;
        assert_eq!(s.one_sided_total(), 6);
        assert_eq!(s.per_node_ops.len(), 2);
    }
}
