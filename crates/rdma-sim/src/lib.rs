//! # rdma-sim — a deterministic discrete-event RDMA cluster simulator
//!
//! This crate is the substrate substitution for the Hamband
//! reproduction: the paper ran on a 7-node InfiniBand cluster through
//! ibverbs' Reliable Connection (RC) queue pairs; this simulator
//! provides the same programming model under deterministic virtual
//! time:
//!
//! * **one-sided verbs** — [`Ctx::post_write`], [`Ctx::post_read`],
//!   [`Ctx::post_cas`] operate directly on a remote node's registered
//!   memory without involving its CPU, completing asynchronously
//!   through [`Event::Completion`];
//! * **registered memory** with per-source **write permissions**
//!   ([`Ctx::set_write_permission`]) — the primitive behind Mu-style
//!   single-leader enforcement;
//! * **two-sided messages** ([`Ctx::send`]) through a modelled network
//!   and OS stack that *does* cost receiver CPU — the transport of the
//!   message-passing CRDT baseline;
//! * a calibrated **latency model** ([`LatencyModel`]) capturing the
//!   cost asymmetries the paper's evaluation rests on;
//! * **fault injection** ([`FaultPlan`]): heartbeat suspension (the
//!   paper's §5 failure mode), fail-stop crashes with still-accessible
//!   memory, and torn-write landing to stress canary-bit protocols.
//!
//! Virtual time makes every run exactly reproducible from its seed, and
//! lets benchmark harnesses report microsecond-scale throughput and
//! response times comparable in *shape* to the paper's testbed numbers.
//!
//! See the [`Simulator`] docs for a complete ping example.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fabric;
pub mod fault;
pub mod latency;
pub mod sim;
pub mod stats;
pub mod time;
pub mod trace;
pub mod verbs;

pub use fabric::{Ctx, Fabric};
pub use fault::{Fault, FaultGenConfig, FaultPlan};
pub use latency::LatencyModel;
pub use sim::{App, Simulator};
pub use stats::Stats;
pub use time::{SimDuration, SimTime};
pub use trace::{
    CollectingSink, Phase, RingKind, StderrSink, TraceBuffer, TraceEvent, TraceRecord, TraceSink,
};
pub use verbs::{
    AppFault, CompletionStatus, Event, NodeId, RegionId, TimerId, VerbKind, WrId,
};
