//! Virtual time. The simulator advances a nanosecond-resolution clock;
//! all latencies and measurements are expressed in it.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in virtual time, in nanoseconds since simulation start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

/// A span of virtual time, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// The simulation epoch.
    pub const ZERO: SimTime = SimTime(0);

    /// Nanoseconds since simulation start.
    pub fn nanos(self) -> u64 {
        self.0
    }

    /// This time expressed in (fractional) microseconds.
    pub fn as_micros(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// The span from `earlier` to `self`.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is later than `self`.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        assert!(earlier <= self, "time went backwards");
        SimDuration(self.0 - earlier.0)
    }
}

impl SimDuration {
    /// The zero duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// A duration of `n` nanoseconds.
    pub const fn nanos(n: u64) -> SimDuration {
        SimDuration(n)
    }

    /// A duration of `n` microseconds.
    pub const fn micros(n: u64) -> SimDuration {
        SimDuration(n * 1_000)
    }

    /// A duration of `n` milliseconds.
    pub const fn millis(n: u64) -> SimDuration {
        SimDuration(n * 1_000_000)
    }

    /// The duration in nanoseconds.
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    /// The duration in (fractional) microseconds.
    pub fn as_micros(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Scale by a factor (used for jitter), saturating at zero.
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        SimDuration((self.0 as f64 * factor).max(0.0) as u64)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl Sub for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.since(rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}us", self.as_micros())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}us", self.as_micros())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let t = SimTime::ZERO + SimDuration::micros(2);
        assert_eq!(t.nanos(), 2_000);
        let t2 = t + SimDuration::nanos(500);
        assert_eq!(t2.since(t), SimDuration::nanos(500));
        assert_eq!(t2 - t, SimDuration::nanos(500));
        assert_eq!(
            SimDuration::millis(1),
            SimDuration::micros(1_000)
        );
    }

    #[test]
    fn conversions_and_display() {
        assert_eq!(SimTime(1_500).as_micros(), 1.5);
        assert_eq!(SimDuration::micros(3).as_nanos(), 3_000);
        assert_eq!(SimTime(1_500).to_string(), "1.500us");
        assert_eq!(SimDuration::nanos(250).to_string(), "0.250us");
    }

    #[test]
    fn mul_f64_scales_and_saturates() {
        assert_eq!(SimDuration::nanos(100).mul_f64(1.5), SimDuration::nanos(150));
        assert_eq!(SimDuration::nanos(100).mul_f64(-1.0), SimDuration::ZERO);
    }

    #[test]
    #[should_panic(expected = "time went backwards")]
    fn negative_span_panics() {
        let _ = SimTime(1).since(SimTime(2));
    }
}
