//! The fabric: registered memory, clocks, the event queue, and the
//! [`Ctx`] handle through which node applications drive verbs.
//!
//! The fabric models the resources the protocols contend on:
//!
//! * a **CPU clock** per node — event handlers and verb posting charge
//!   it; event delivery waits for it (this is what makes two-sided
//!   receive paths expensive and one-sided writes free for the target);
//! * a **NIC transmit clock** per node — each posted verb serializes
//!   through it, bounding a node's injection rate;
//! * a **FIFO channel clock** per (issuer, target) pair — Reliable
//!   Connection QPs deliver one-sided operations in posting order, which
//!   the single-writer ring buffers of §4 rely on;
//! * **registered memory regions** with per-source write permissions —
//!   the primitive Mu-style leader change is built on.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashSet};

use bytes::Bytes;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::fault::Fault;
use crate::latency::LatencyModel;
use crate::stats::Stats;
use crate::time::{SimDuration, SimTime};
use crate::trace::{TraceEvent, TraceHandle};
use crate::verbs::{
    CompletionStatus, Event, NodeId, RegionId, TimerId, VerbKind, WrId,
};

/// A registered memory region.
#[derive(Debug, Clone)]
pub(crate) struct Region {
    pub(crate) bytes: Vec<u8>,
    /// Per-source write permission (the owner itself is always allowed).
    pub(crate) write_allowed: Vec<bool>,
    /// Durable shadow copy (`Some` iff the region was registered
    /// durable). Remote one-sided writes and CAS swaps write through to
    /// it on landing — an RDMA WRITE into persistent memory is durable
    /// once placed — while *local* CPU stores reach it only at an
    /// explicit [`Ctx::fence_region`]. A crash-restart that loses
    /// unfenced writes reverts `bytes` to this copy.
    pub(crate) shadow: Option<Vec<u8>>,
    /// Local-store span not yet fenced to the shadow (durable regions
    /// only): `(lo, hi)` byte offsets, half-open.
    pub(crate) dirty: Option<(usize, usize)>,
}

impl Region {
    pub(crate) fn new(size: usize, sources: usize, durable: bool) -> Region {
        Region {
            bytes: vec![0; size],
            write_allowed: vec![true; sources],
            shadow: durable.then(|| vec![0; size]),
            dirty: None,
        }
    }

    /// Write-through for a remotely landed range (durable-on-landing).
    pub(crate) fn land_through(&mut self, offset: usize, len: usize) {
        if let Some(shadow) = &mut self.shadow {
            shadow[offset..offset + len].copy_from_slice(&self.bytes[offset..offset + len]);
        }
    }

    /// Note an unfenced local store over `[offset, offset + len)`.
    pub(crate) fn mark_dirty(&mut self, offset: usize, len: usize) {
        if self.shadow.is_some() {
            let (lo, hi) = self.dirty.unwrap_or((offset, offset + len));
            self.dirty = Some((lo.min(offset), hi.max(offset + len)));
        }
    }

    /// Make every local store so far durable (copy the dirty span to
    /// the shadow). No-op for volatile regions or when nothing is
    /// dirty.
    pub(crate) fn fence(&mut self) {
        if let (Some(shadow), Some((lo, hi))) = (&mut self.shadow, self.dirty.take()) {
            shadow[lo..hi].copy_from_slice(&self.bytes[lo..hi]);
        }
    }

    /// Apply crash-restart semantics: a volatile region loses all
    /// content; a durable one either keeps everything (`!lose_unfenced`
    /// — the shadow is resynchronized) or reverts to its last durable
    /// image.
    pub(crate) fn restart(&mut self, lose_unfenced: bool) {
        match &mut self.shadow {
            None => self.bytes.iter_mut().for_each(|b| *b = 0),
            Some(shadow) => {
                if lose_unfenced {
                    self.bytes.copy_from_slice(shadow);
                } else {
                    shadow.copy_from_slice(&self.bytes);
                }
            }
        }
        self.dirty = None;
    }
}

#[derive(Debug)]
pub(crate) struct NodeFabric {
    pub(crate) regions: Vec<Region>,
    /// CPU availability: events are handled no earlier than this.
    pub(crate) cpu_free: SimTime,
    /// NIC transmit availability.
    pub(crate) nic_free: SimTime,
    pub(crate) crashed: bool,
    /// Writes landing at this node are torn in two (fault mode).
    pub(crate) torn_writes: bool,
    /// Latency multiplier applied to traffic touching this node while
    /// a delay spike is active (fault mode; 1 = no spike).
    pub(crate) delay_factor: u32,
    /// The delay spike is active for posts strictly before this time.
    pub(crate) delay_until: SimTime,
    /// One-shot fault mode: the next completion event delivered to
    /// this node is delivered twice.
    pub(crate) duplicate_next_completion: bool,
    pub(crate) next_wr: u64,
    pub(crate) next_timer: u64,
    pub(crate) cancelled: HashSet<TimerId>,
    /// Timers that fire even while the node's (application) CPU is
    /// busy — modelling dedicated threads such as the paper's
    /// heartbeat thread on a multi-core node.
    pub(crate) isolated: HashSet<TimerId>,
}

impl NodeFabric {
    /// Clear per-node fault modes and timer bookkeeping across a
    /// crash-restart. `next_wr`/`next_timer` stay monotone so
    /// post-restart ids never collide with stale in-flight ones.
    pub(crate) fn reset_for_restart(&mut self, now: SimTime) {
        self.crashed = false;
        self.torn_writes = false;
        self.delay_factor = 1;
        self.delay_until = SimTime::ZERO;
        self.duplicate_next_completion = false;
        self.cancelled.clear();
        self.isolated.clear();
        // A fresh host CPU/NIC is idle.
        self.cpu_free = now;
        self.nic_free = now;
    }
}

/// Internal queue actions.
#[derive(Debug)]
pub(crate) enum Action {
    Deliver {
        node: NodeId,
        event: Event,
    },
    Land {
        issuer: NodeId,
        wr: WrId,
        target: NodeId,
        region: RegionId,
        offset: usize,
        bytes: Bytes,
        /// Whether to notify the issuer on landing (false for the first
        /// half of a torn write).
        notify: bool,
    },
    ReadAt {
        issuer: NodeId,
        wr: WrId,
        target: NodeId,
        region: RegionId,
        offset: usize,
        len: usize,
        return_delay: SimDuration,
    },
    CasAt {
        issuer: NodeId,
        wr: WrId,
        target: NodeId,
        region: RegionId,
        offset: usize,
        expected: u64,
        swap: u64,
        return_delay: SimDuration,
    },
    InjectFault(Fault),
}

impl Action {
    /// The (issuer, target) pair for actions that cross the network —
    /// the partition check applies to these.
    pub(crate) fn endpoints(&self) -> Option<(NodeId, NodeId)> {
        match self {
            Action::Land { issuer, target, .. }
            | Action::ReadAt { issuer, target, .. }
            | Action::CasAt { issuer, target, .. } => Some((*issuer, *target)),
            Action::Deliver { node, event: Event::Message { from, .. } } => {
                Some((*from, *node))
            }
            _ => None,
        }
    }
}

#[derive(Debug)]
pub(crate) struct QueueEntry {
    pub(crate) time: SimTime,
    pub(crate) seq: u64,
    pub(crate) action: Action,
}

impl PartialEq for QueueEntry {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for QueueEntry {}
impl PartialOrd for QueueEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for QueueEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

/// The shared fabric state (everything except the applications).
#[derive(Debug)]
pub struct Fabric {
    pub(crate) now: SimTime,
    pub(crate) queue: BinaryHeap<Reverse<QueueEntry>>,
    pub(crate) seq: u64,
    pub(crate) nodes: Vec<NodeFabric>,
    pub(crate) latency: LatencyModel,
    pub(crate) rng: StdRng,
    pub(crate) stats: Stats,
    pub(crate) trace: TraceHandle,
    /// FIFO landing clock per (issuer, target) pair of one-sided verbs.
    pub(crate) chan_free: Vec<Vec<SimTime>>,
    /// FIFO delivery clock per (issuer, target) pair of messages.
    pub(crate) msg_chan_free: Vec<Vec<SimTime>>,
    /// Active partition sides (both empty when no partition is active).
    /// Traffic between a side-A and a side-B node is parked.
    pub(crate) part_a: Vec<bool>,
    pub(crate) part_b: Vec<bool>,
    /// Actions held back by the active partition, with their original
    /// sequence numbers; released in order by [`Fault::Heal`].
    pub(crate) parked: Vec<(u64, Action)>,
}

impl Fabric {
    pub(crate) fn new(n: usize, latency: LatencyModel, seed: u64) -> Self {
        assert!(n > 0, "cluster must be non-empty");
        Fabric {
            now: SimTime::ZERO,
            queue: BinaryHeap::new(),
            seq: 0,
            nodes: (0..n)
                .map(|_| NodeFabric {
                    regions: Vec::new(),
                    cpu_free: SimTime::ZERO,
                    nic_free: SimTime::ZERO,
                    crashed: false,
                    torn_writes: false,
                    delay_factor: 1,
                    delay_until: SimTime::ZERO,
                    duplicate_next_completion: false,
                    next_wr: 0,
                    next_timer: 0,
                    cancelled: HashSet::new(),
                    isolated: HashSet::new(),
                })
                .collect(),
            latency,
            rng: StdRng::seed_from_u64(seed),
            stats: Stats::new(n),
            trace: TraceHandle::default(),
            chan_free: vec![vec![SimTime::ZERO; n]; n],
            msg_chan_free: vec![vec![SimTime::ZERO; n]; n],
            part_a: vec![false; n],
            part_b: vec![false; n],
            parked: Vec::new(),
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the cluster is empty (never true after construction).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Traffic statistics so far.
    pub fn stats(&self) -> &Stats {
        &self.stats
    }

    /// Deliver a trace event to the installed sink, if any. Counted in
    /// [`Stats::trace_events`]; free (one branch) with no sink.
    #[inline]
    pub(crate) fn emit(&mut self, make: impl FnOnce() -> TraceEvent) {
        if self.trace.emit(self.now, make) {
            self.stats.trace_events += 1;
        }
    }

    pub(crate) fn push(&mut self, time: SimTime, action: Action) {
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Reverse(QueueEntry { time, seq, action }));
    }

    /// Re-enqueue a deferred event *keeping its original sequence
    /// number*, so that a postponed delivery cannot be overtaken at the
    /// same timestamp by a logically later event that still carries a
    /// lower sequence number (per-channel FIFO would silently break
    /// otherwise).
    pub(crate) fn push_with_seq(&mut self, time: SimTime, seq: u64, action: Action) {
        self.queue.push(Reverse(QueueEntry { time, seq, action }));
    }

    pub(crate) fn mint_wr(&mut self, node: NodeId) -> WrId {
        let nf = &mut self.nodes[node.index()];
        let wr = WrId(nf.next_wr);
        nf.next_wr += 1;
        wr
    }

    /// Charge CPU time to a node starting no earlier than `now`.
    pub(crate) fn charge_cpu(&mut self, node: NodeId, cost: SimDuration) -> SimTime {
        let nf = &mut self.nodes[node.index()];
        let start = nf.cpu_free.max(self.now);
        nf.cpu_free = start + cost;
        nf.cpu_free
    }

    /// Reserve NIC transmit time; returns when the verb leaves the NIC.
    pub(crate) fn reserve_nic(&mut self, node: NodeId) -> SimTime {
        let cost = self.latency.nic_tx_cost;
        let nf = &mut self.nodes[node.index()];
        let start = nf.nic_free.max(self.now);
        nf.nic_free = start + cost;
        nf.nic_free
    }

    /// FIFO-ordered landing time on the (issuer → target) channel.
    pub(crate) fn fifo_land(&mut self, issuer: NodeId, target: NodeId, earliest: SimTime) -> SimTime {
        let slot = &mut self.chan_free[issuer.index()][target.index()];
        let t = (*slot).max(earliest);
        *slot = t;
        t
    }

    pub(crate) fn fifo_msg(&mut self, issuer: NodeId, target: NodeId, earliest: SimTime) -> SimTime {
        let slot = &mut self.msg_chan_free[issuer.index()][target.index()];
        let t = (*slot).max(earliest);
        *slot = t;
        t
    }

    /// Whether the active partition separates `a` from `b`.
    pub(crate) fn partition_blocks(&self, a: NodeId, b: NodeId) -> bool {
        (self.part_a[a.index()] && self.part_b[b.index()])
            || (self.part_a[b.index()] && self.part_b[a.index()])
    }

    /// Scale a fabric latency by the strongest delay spike active at
    /// either endpoint (no spike → unchanged).
    pub(crate) fn spiked(
        &self,
        issuer: NodeId,
        target: NodeId,
        base: SimDuration,
    ) -> SimDuration {
        let active = |n: &NodeFabric| {
            if self.now < n.delay_until {
                n.delay_factor.max(1)
            } else {
                1
            }
        };
        let factor = active(&self.nodes[issuer.index()])
            .max(active(&self.nodes[target.index()]));
        if factor <= 1 {
            base
        } else {
            SimDuration::nanos(base.as_nanos() * factor as u64)
        }
    }

    pub(crate) fn check_access(
        &self,
        issuer: NodeId,
        target: NodeId,
        region: RegionId,
        offset: usize,
        len: usize,
        write: bool,
    ) -> CompletionStatus {
        let Some(r) = self.nodes[target.index()].regions.get(region.index()) else {
            return CompletionStatus::OutOfBounds;
        };
        if offset + len > r.bytes.len() {
            return CompletionStatus::OutOfBounds;
        }
        if write && issuer != target && !r.write_allowed[issuer.index()] {
            return CompletionStatus::AccessDenied;
        }
        CompletionStatus::Success
    }
}

/// The handle through which a node application interacts with the
/// fabric during an event callback.
///
/// All operations are asynchronous: verbs return a [`WrId`] immediately
/// and complete later through [`Event::Completion`]. This mirrors how
/// the real runtime posts to a QP and polls the completion queue.
pub struct Ctx<'a> {
    pub(crate) fabric: &'a mut Fabric,
    pub(crate) node: NodeId,
}

impl Ctx<'_> {
    /// The node this context belongs to.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.fabric.now
    }

    /// Cluster size.
    pub fn cluster_size(&self) -> usize {
        self.fabric.len()
    }

    /// The deterministic RNG of the fabric (shared; use for workload
    /// generation and protocol timeouts).
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.fabric.rng
    }

    /// Charge `cost` of local CPU work (e.g. executing a method body).
    pub fn consume(&mut self, cost: SimDuration) {
        self.fabric.charge_cpu(self.node, cost);
    }

    /// The configured latency model (read-only).
    pub fn latency(&self) -> &LatencyModel {
        &self.fabric.latency
    }

    /// Whether a trace sink is installed on this run.
    ///
    /// [`emit`](Ctx::emit) already skips event construction without a
    /// sink; use this only to guard work beyond building the event.
    pub fn trace_enabled(&self) -> bool {
        self.fabric.trace.enabled()
    }

    /// Emit a protocol-level trace event to the run's sink, if any.
    ///
    /// The closure runs only when a sink is installed, so hot paths
    /// pay a single branch when tracing is off.
    #[inline]
    pub fn emit(&mut self, make: impl FnOnce() -> TraceEvent) {
        self.fabric.emit(make);
    }

    /// Record that the WRITE just posted carried `slots` ring entries.
    ///
    /// The fabric cannot tell ring-slot WRITEs from other one-sided
    /// traffic, so the runtime reports them; `ring_slots / ring_writes`
    /// in [`Stats`] is then the achieved doorbell-batching factor.
    pub fn note_ring_write(&mut self, slots: u64) {
        self.fabric.stats.ring_writes += 1;
        self.fabric.stats.ring_slots += slots;
    }

    /// Post a one-sided RDMA WRITE of `data` into
    /// `(target, region, offset)`.
    ///
    /// Completes with [`CompletionStatus::Success`] once the data is
    /// placed, [`CompletionStatus::AccessDenied`] if write permission
    /// was revoked, or [`CompletionStatus::OutOfBounds`]. The target's
    /// CPU is *not* involved. Writes from one node to the same target
    /// land in posting order (RC FIFO).
    pub fn post_write(
        &mut self,
        target: NodeId,
        region: RegionId,
        offset: usize,
        data: &[u8],
    ) -> WrId {
        let wr = self.fabric.mint_wr(self.node);
        let post_cost = self.fabric.latency.post_cost;
        self.fabric.charge_cpu(self.node, post_cost);
        let tx = self.fabric.reserve_nic(self.node);
        let lat = self.fabric.latency.write_latency(data.len(), &mut self.fabric.rng);
        let lat = self.fabric.spiked(self.node, target, lat);
        let land = self.fabric.fifo_land(self.node, target, tx + lat);
        self.fabric.stats.writes += 1;
        self.fabric.stats.one_sided_bytes += data.len() as u64;
        self.fabric.stats.per_node_ops[self.node.index()] += 1;
        let (issuer, len) = (self.node, data.len());
        self.fabric.emit(|| TraceEvent::VerbPosted {
            issuer,
            kind: VerbKind::Write,
            target,
            wr,
            bytes: len,
        });
        self.fabric.push(
            land,
            Action::Land {
                issuer: self.node,
                wr,
                target,
                region,
                offset,
                bytes: Bytes::copy_from_slice(data),
                notify: true,
            },
        );
        wr
    }

    /// Post a one-sided RDMA READ of `len` bytes from
    /// `(target, region, offset)`. Completes with the fetched bytes.
    pub fn post_read(
        &mut self,
        target: NodeId,
        region: RegionId,
        offset: usize,
        len: usize,
    ) -> WrId {
        let wr = self.fabric.mint_wr(self.node);
        let post_cost = self.fabric.latency.post_cost;
        self.fabric.charge_cpu(self.node, post_cost);
        let tx = self.fabric.reserve_nic(self.node);
        let rtt = self.fabric.latency.read_latency(len, &mut self.fabric.rng);
        let rtt = self.fabric.spiked(self.node, target, rtt);
        let half = SimDuration::nanos(rtt.as_nanos() / 2);
        self.fabric.stats.reads += 1;
        self.fabric.stats.one_sided_bytes += len as u64;
        self.fabric.stats.per_node_ops[self.node.index()] += 1;
        let issuer = self.node;
        self.fabric.emit(|| TraceEvent::VerbPosted {
            issuer,
            kind: VerbKind::Read,
            target,
            wr,
            bytes: len,
        });
        self.fabric.push(
            tx + half,
            Action::ReadAt {
                issuer: self.node,
                wr,
                target,
                region,
                offset,
                len,
                return_delay: half,
            },
        );
        wr
    }

    /// Post a one-sided compare-and-swap on the 8-byte little-endian
    /// word at `(target, region, offset)`. Completes with the *prior*
    /// value; the swap happened iff the prior value equals `expected`.
    pub fn post_cas(
        &mut self,
        target: NodeId,
        region: RegionId,
        offset: usize,
        expected: u64,
        swap: u64,
    ) -> WrId {
        let wr = self.fabric.mint_wr(self.node);
        let post_cost = self.fabric.latency.post_cost;
        self.fabric.charge_cpu(self.node, post_cost);
        let tx = self.fabric.reserve_nic(self.node);
        let rtt = self.fabric.latency.cas_latency(&mut self.fabric.rng);
        let rtt = self.fabric.spiked(self.node, target, rtt);
        let half = SimDuration::nanos(rtt.as_nanos() / 2);
        self.fabric.stats.cas += 1;
        self.fabric.stats.per_node_ops[self.node.index()] += 1;
        let issuer = self.node;
        self.fabric.emit(|| TraceEvent::VerbPosted {
            issuer,
            kind: VerbKind::CompareAndSwap,
            target,
            wr,
            bytes: 8,
        });
        self.fabric.push(
            tx + half,
            Action::CasAt {
                issuer: self.node,
                wr,
                target,
                region,
                offset,
                expected,
                swap,
                return_delay: half,
            },
        );
        wr
    }

    /// Send a two-sided message (SEND/RECV through the network stack).
    /// Costs the receiver CPU time on delivery; per-pair FIFO.
    pub fn send(&mut self, target: NodeId, payload: Bytes) {
        let wr = self.fabric.mint_wr(self.node);
        let post_cost = self.fabric.latency.post_cost;
        self.fabric.charge_cpu(self.node, post_cost);
        let tx = self.fabric.reserve_nic(self.node);
        let lat = self.fabric.latency.msg_latency(payload.len(), &mut self.fabric.rng);
        let lat = self.fabric.spiked(self.node, target, lat);
        let deliver = self.fabric.fifo_msg(self.node, target, tx + lat);
        self.fabric.stats.messages += 1;
        self.fabric.stats.message_bytes += payload.len() as u64;
        self.fabric.stats.per_node_ops[self.node.index()] += 1;
        let (issuer, len) = (self.node, payload.len());
        self.fabric.emit(|| TraceEvent::VerbPosted {
            issuer,
            kind: VerbKind::Send,
            target,
            wr,
            bytes: len,
        });
        self.fabric.push(
            deliver,
            Action::Deliver { node: target, event: Event::Message { from: self.node, payload } },
        );
    }

    /// Arm a timer that fires after `delay` with the given tag.
    pub fn set_timer(&mut self, delay: SimDuration, tag: u64) -> TimerId {
        let nf = &mut self.fabric.nodes[self.node.index()];
        let id = TimerId(nf.next_timer);
        nf.next_timer += 1;
        let at = self.fabric.now + delay;
        self.fabric.push(at, Action::Deliver { node: self.node, event: Event::Timer { id, tag } });
        id
    }

    /// Arm a timer that fires *even while the node's CPU is busy* —
    /// the moral equivalent of a dedicated thread on another core
    /// (§4's heartbeat thread). Use sparingly: handlers still share
    /// application state.
    pub fn set_timer_isolated(&mut self, delay: SimDuration, tag: u64) -> TimerId {
        let id = self.set_timer(delay, tag);
        self.fabric.nodes[self.node.index()].isolated.insert(id);
        id
    }

    /// Cancel a previously armed timer (no-op if already fired).
    pub fn cancel_timer(&mut self, id: TimerId) {
        self.fabric.nodes[self.node.index()].cancelled.insert(id);
    }

    /// Read this node's own region memory (free: local access).
    ///
    /// # Panics
    ///
    /// Panics if the region or range is invalid.
    pub fn local(&self, region: RegionId, offset: usize, len: usize) -> &[u8] {
        &self.fabric.nodes[self.node.index()].regions[region.index()].bytes[offset..offset + len]
    }

    /// Write this node's own region memory (free: local access).
    ///
    /// On a durable region the store is *volatile until fenced*: it
    /// reaches the durable shadow only at the next
    /// [`fence_region`](Ctx::fence_region) and is lost by a
    /// crash-restart that drops unfenced writes.
    ///
    /// # Panics
    ///
    /// Panics if the region or range is invalid.
    pub fn local_write(&mut self, region: RegionId, offset: usize, data: &[u8]) {
        let r = &mut self.fabric.nodes[self.node.index()].regions[region.index()];
        r.bytes[offset..offset + data.len()].copy_from_slice(data);
        r.mark_dirty(offset, data.len());
    }

    /// Synchronously persist every unfenced local store to `region`'s
    /// durable shadow (a flush + fence over the dirty span, like a
    /// `clwb`+`sfence` sequence on persistent memory). No-op for
    /// volatile regions. Remote one-sided writes need no fence — they
    /// are durable once landed.
    pub fn fence_region(&mut self, region: RegionId) {
        self.fabric.nodes[self.node.index()].regions[region.index()].fence();
    }

    /// Grant or revoke write permission on a local region for a source
    /// node (local, instantaneous operation by the region owner — the
    /// QP permission mechanism of Mu).
    pub fn set_write_permission(&mut self, region: RegionId, source: NodeId, allowed: bool) {
        self.fabric.nodes[self.node.index()].regions[region.index()].write_allowed
            [source.index()] = allowed;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queue_orders_by_time_then_seq() {
        let mut f = Fabric::new(1, LatencyModel::deterministic(), 0);
        f.push(SimTime(10), Action::InjectFault(Fault::Crash(NodeId(0))));
        f.push(SimTime(5), Action::InjectFault(Fault::Crash(NodeId(0))));
        f.push(SimTime(5), Action::InjectFault(Fault::TornWrites(NodeId(0))));
        let Reverse(e1) = f.queue.pop().unwrap();
        let Reverse(e2) = f.queue.pop().unwrap();
        let Reverse(e3) = f.queue.pop().unwrap();
        assert_eq!(e1.time, SimTime(5));
        assert!(matches!(e1.action, Action::InjectFault(Fault::Crash(_))));
        assert_eq!(e2.time, SimTime(5));
        assert!(matches!(e2.action, Action::InjectFault(Fault::TornWrites(_))));
        assert_eq!(e3.time, SimTime(10));
    }

    #[test]
    fn cpu_charging_accumulates() {
        let mut f = Fabric::new(1, LatencyModel::deterministic(), 0);
        let t1 = f.charge_cpu(NodeId(0), SimDuration::nanos(100));
        let t2 = f.charge_cpu(NodeId(0), SimDuration::nanos(50));
        assert_eq!(t1, SimTime(100));
        assert_eq!(t2, SimTime(150));
    }

    #[test]
    fn fifo_channel_is_monotonic() {
        let mut f = Fabric::new(2, LatencyModel::deterministic(), 0);
        let a = f.fifo_land(NodeId(0), NodeId(1), SimTime(100));
        let b = f.fifo_land(NodeId(0), NodeId(1), SimTime(50));
        assert_eq!(a, SimTime(100));
        assert_eq!(b, SimTime(100), "later post cannot land earlier");
    }

    #[test]
    fn delay_spike_scales_latency_within_window() {
        let mut f = Fabric::new(2, LatencyModel::deterministic(), 0);
        f.nodes[1].delay_factor = 4;
        f.nodes[1].delay_until = SimTime(1_000);
        let base = SimDuration::nanos(100);
        // Either endpoint being spiked scales the latency.
        assert_eq!(f.spiked(NodeId(0), NodeId(1), base), SimDuration::nanos(400));
        assert_eq!(f.spiked(NodeId(1), NodeId(0), base), SimDuration::nanos(400));
        assert_eq!(f.spiked(NodeId(0), NodeId(0), base), base);
        // Expired spike no longer applies.
        f.now = SimTime(1_000);
        assert_eq!(f.spiked(NodeId(0), NodeId(1), base), base);
    }

    #[test]
    fn partition_blocks_cross_side_only() {
        let mut f = Fabric::new(3, LatencyModel::deterministic(), 0);
        f.part_a[0] = true;
        f.part_b[1] = true;
        f.part_b[2] = true;
        assert!(f.partition_blocks(NodeId(0), NodeId(1)));
        assert!(f.partition_blocks(NodeId(2), NodeId(0)));
        assert!(!f.partition_blocks(NodeId(1), NodeId(2)));
        assert!(!f.partition_blocks(NodeId(0), NodeId(0)));
    }

    #[test]
    fn access_checks() {
        let mut f = Fabric::new(2, LatencyModel::deterministic(), 0);
        f.nodes[1].regions.push(Region::new(64, 2, false));
        assert_eq!(
            f.check_access(NodeId(0), NodeId(1), RegionId(0), 0, 64, true),
            CompletionStatus::Success
        );
        assert_eq!(
            f.check_access(NodeId(0), NodeId(1), RegionId(0), 60, 8, true),
            CompletionStatus::OutOfBounds
        );
        assert_eq!(
            f.check_access(NodeId(0), NodeId(1), RegionId(1), 0, 1, false),
            CompletionStatus::OutOfBounds
        );
        f.nodes[1].regions[0].write_allowed[0] = false;
        assert_eq!(
            f.check_access(NodeId(0), NodeId(1), RegionId(0), 0, 8, true),
            CompletionStatus::AccessDenied
        );
        // Reads ignore write permission; owner writes ignore it too.
        assert_eq!(
            f.check_access(NodeId(0), NodeId(1), RegionId(0), 0, 8, false),
            CompletionStatus::Success
        );
        assert_eq!(
            f.check_access(NodeId(1), NodeId(1), RegionId(0), 0, 8, true),
            CompletionStatus::Success
        );
    }
}
